"""Shim so `pip install -e .` works offline (no wheel / no build isolation).

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
