#!/usr/bin/env python
"""Watch elastic lane re-partitioning across phase changes, live.

Builds a custom two-phase workload (a DRAM-streaming phase followed by a
cache-resident compute phase) and co-runs it against a long compute
kernel, stepping the machine manually and printing every lane-plan change
the LaneMgr makes — the paper's Fig. 8 "eager-lazy" dance.

Run:  python examples/elastic_phases.py
"""

from repro import (
    Assign,
    BinOp,
    Const,
    Job,
    Kernel,
    Load,
    Loop,
    Machine,
    OCCAMY,
    build_image,
    compile_kernel,
    experiment_config,
)
from repro.compiler.pipeline import CompileOptions


def streaming_then_compute() -> Kernel:
    streaming = Loop(
        "stream",
        trip_count=16384,
        body=(
            Assign("s_out", BinOp("add", Load("s_a"), Load("s_b"))),
            Assign("s_out2", BinOp("max", Load("s_c"), Load("s_a"))),
        ),
    )
    expr = BinOp("mul", Load("c_x"), Load("c_y"))
    for index in range(10):
        expr = BinOp("add", BinOp("mul", expr, Const(1.0 + 0.001 * index)), Load("c_x"))
    compute = Loop("crunch", trip_count=1024, repeats=60, body=(Assign("c_z", expr),))
    return Kernel("two_phase", array_length=16386, loops=(streaming, compute))


def long_compute() -> Kernel:
    expr = BinOp("mul", Load("w_a"), Load("w_b"))
    for index in range(9):
        expr = BinOp("add", BinOp("mul", expr, Const(1.0 + 0.002 * index)), Load("w_b"))
    loop = Loop("worker", trip_count=1024, repeats=300, body=(Assign("w_o", expr),))
    return Kernel("worker", array_length=1026, loops=(loop,))


def main() -> None:
    config = experiment_config()
    options = CompileOptions(memory=config.memory)
    wl0, wl1 = streaming_then_compute(), long_compute()
    machine = Machine(
        config,
        OCCAMY,
        [
            Job(compile_kernel(wl0, options), build_image(wl0, 0)),
            Job(compile_kernel(wl1, options), build_image(wl1, 1)),
        ],
    )

    print("cycle     core0 lanes   core1 lanes   free   event")
    table = machine.coproc.resource_table
    seen = (None, None)
    cycle = 0
    while not machine.finished and cycle < 500_000:
        machine.step(cycle)
        state = (table.vl(0), table.vl(1))
        if state != seen:
            oi0, oi1 = table.oi(0), table.oi(1)
            event = []
            if not oi0.is_phase_end:
                event.append(f"c0 in phase oi={oi0}")
            if not oi1.is_phase_end:
                event.append(f"c1 in phase oi={oi1}")
            print(
                f"{cycle:>8}   {state[0]:>6}        {state[1]:>6}      "
                f"{table.free_lanes:>4}   {'; '.join(event) or 'idle'}"
            )
            seen = state
        cycle += 1
    machine.metrics.close(cycle)
    print(f"\nDone in {cycle} cycles; "
          f"SIMD utilisation {100 * machine.metrics.simd_utilization():.1f}%; "
          f"{machine.coproc.lane_table.reconfigurations} lane-table "
          f"reconfigurations.")


if __name__ == "__main__":
    main()
