#!/usr/bin/env python
"""Explore the vector-length-aware roofline and the greedy partitioner.

Shows, for a workload of a given operational intensity, how the three
ceilings of Eq. 4 interact and how many lanes LaneMgr's greedy algorithm
would assign to it against different co-runners — including the paper's
Case 4 (Table 5), where extra lanes are traded for issue bandwidth.

Run:  python examples/roofline_explorer.py [oi_issue] [oi_mem]
"""

import sys

from repro import OIValue, RooflineModel, greedy_partition, table4_config
from repro.analysis.reporting import format_table


def main(oi_issue: float = 1.0 / 6.0, oi_mem: float = 0.25) -> None:
    config = table4_config()
    roofline = RooflineModel.from_config(config)
    oi = OIValue(issue=oi_issue, mem=oi_mem)

    print(f"Workload OI: issue={oi.issue:.3f}, mem={oi.mem:.3f} "
          f"[{oi.level}] (FLOPs/byte)\n")

    rows = []
    for lanes in (1, 2, 4, 8, 12, 16, 20, 24, 28, 32):
        rows.append(
            [
                lanes,
                f"{roofline.fp_peak(lanes) * 2:.1f}",
                f"{roofline.issue_bound(lanes, oi) * 2:.1f}",
                f"{roofline.mem_bound(oi) * 2:.1f}",
                f"{roofline.attainable_gflops(lanes, oi):.1f}",
            ]
        )
    print(format_table(
        ["lanes", "CompBound", "IssueBound", "MemBound", "Attainable (GFLOP/s)"],
        rows,
    ))
    saturation = roofline.saturation_lanes(oi)
    print(f"\nSaturation: no further gain beyond {saturation} lanes.\n")

    co_runners = {
        "a wsm5-style compute stencil": OIValue(0.6, 1.0, level="vec_cache"),
        "a pure streaming loop (oi 0.083)": OIValue.uniform(0.083),
        "an identical workload": oi,
    }
    print("Greedy partition of 32 lanes when co-running against...")
    for label, other in co_runners.items():
        plan = greedy_partition({0: oi, 1: other}, 32, roofline)
        print(f"  {label:<36} -> this: {plan[0]:>2} lanes, other: {plan[1]:>2} lanes")

    print("\n(With the default arguments this reproduces Table 5 / Case 4:")
    print(" the workload receives 12 lanes — 4 more than memory bandwidth")
    print(" alone would justify — to buy SIMD issue bandwidth.)")


if __name__ == "__main__":
    args = sys.argv[1:]
    issue = float(args[0]) if len(args) > 0 else 1.0 / 6.0
    mem = float(args[1]) if len(args) > 1 else 0.25
    main(issue, mem)
