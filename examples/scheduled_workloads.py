#!/usr/bin/env python
"""Time-slice six workloads over two cores with EM-SIMD context switching.

Demonstrates the paper's §5 OS interaction: on every context switch the
scheduler drains the outgoing workload's SIMD pipeline, saves its
``<OI>``/``<VL>`` registers, releases its lanes, and on resume restores
``<OI>`` — triggering a fresh lane partition — before re-applying the
saved vector length.  The workloads themselves are oblivious: their
Fig. 9 monitors re-adapt at the next lazy point.

Run:  python examples/scheduled_workloads.py
"""

import numpy as np

from repro import (
    OCCAMY,
    Job,
    build_image,
    compile_kernel,
    experiment_config,
    reference_execute,
)
from repro.core.scheduling import TimeSliceScheduler
from repro.workloads.spec import spec_workload


def main() -> None:
    config = experiment_config()
    # Six SPEC workloads — three per core — with mixed behaviour.
    ids = [1, 16, 20, 17, 8, 13]
    kernels = [spec_workload(i, scale=0.15) for i in ids]
    jobs = [
        Job(compile_kernel(k), build_image(k, core_id=index % 2))
        for index, k in enumerate(kernels)
    ]
    oracles = [reference_execute(k, j.image) for k, j in zip(kernels, jobs)]

    scheduler = TimeSliceScheduler(config, OCCAMY, jobs, quantum=2500)
    result = scheduler.run()

    print(f"{'workload':>10} {'core':>4} {'finish':>8} {'cpu cycles':>10} ok")
    for index, (kernel, job, oracle) in enumerate(zip(kernels, jobs, oracles)):
        ok = all(
            np.allclose(job.image.array(name), array, rtol=1e-3)
            for name, array in oracle
        )
        print(
            f"{kernel.name:>10} {index % 2:>4} "
            f"{result.finish_cycles[index]:>8} "
            f"{result.scheduled_cycles[index]:>10} {'yes' if ok else 'NO!'}"
        )
    print(
        f"\ntotal {result.total_cycles} cycles, "
        f"{result.context_switches} context switches, "
        f"SIMD utilisation {100 * result.metrics.simd_utilization():.1f}%"
    )
    print("Every workload's results matched the numpy oracle despite being")
    print("preempted mid-loop and resumed with freshly re-planned lanes.")


if __name__ == "__main__":
    main()
