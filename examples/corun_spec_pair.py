#!/usr/bin/env python
"""Co-run a <memory, compute> SPEC pair under the four architectures.

Reproduces the paper's core scenario on one pair (WL20 + WL17 by
default): a memory-intensive workload on Core0 and a compute-intensive
one on Core1, showing per-core speedups over Private, SIMD utilisation,
renaming stalls and Occamy's lane plan history.

Run:  python examples/corun_spec_pair.py [mem_id comp_id] [scale]
e.g.  python examples/corun_spec_pair.py 8 17 0.5
"""

import sys

from repro import ALL_POLICIES, StallReason, experiment_config, run_policy
from repro.analysis.reporting import format_table
from repro.workloads.pairs import CoRunPair, jobs_for_pair


def main(mem_id: int = 20, comp_id: int = 17, scale: float = 0.5) -> None:
    pair = CoRunPair("spec", mem_id, comp_id)
    config = experiment_config()
    print(f"Co-running {pair}: WL{mem_id} (memory) on Core0, "
          f"WL{comp_id} (compute) on Core1\n")

    results = {}
    for policy in ALL_POLICIES:
        results[policy.key] = run_policy(config, policy, jobs_for_pair(pair, scale))

    base = results["private"]
    rows = []
    for key, result in results.items():
        metrics = result.metrics
        rows.append(
            [
                key,
                result.core_time(0),
                result.core_time(1),
                f"{result.speedup_over(base, 0):.2f}x",
                f"{result.speedup_over(base, 1):.2f}x",
                f"{100 * metrics.simd_utilization():.1f}%",
                f"{100 * metrics.stall_fraction(1, StallReason.RENAME):.0f}%",
            ]
        )
    print(
        format_table(
            ["arch", "c0 cycles", "c1 cycles", "sp0", "sp1", "util", "rename(c1)"],
            rows,
        )
    )

    occamy = results["occamy"]
    print("\nOccamy lane plans (cycle -> {core: lanes}):")
    for cycle, plan in occamy.lane_manager.plan_history:
        print(f"  {cycle:>8}: {plan}")
    print("\nPer-phase SIMD issue rates under Occamy:")
    for phase in occamy.metrics.phases:
        print(
            f"  core{phase.core} oi={phase.oi} "
            f"[{phase.oi.level}] dur={phase.duration} "
            f"issue={phase.issue_rate:.2f}/cycle"
        )


if __name__ == "__main__":
    args = sys.argv[1:]
    mem = int(args[0]) if len(args) > 0 else 20
    comp = int(args[1]) if len(args) > 1 else 17
    scale = float(args[2]) if len(args) > 2 else 0.5
    main(mem, comp, scale)
