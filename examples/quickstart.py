#!/usr/bin/env python
"""Quickstart: compile a kernel, run it under every sharing policy.

Builds a simple saxpy-like kernel in the loop IR, compiles it with the
Occamy compiler (which inserts the Fig. 9 eager-lazy EM-SIMD
instrumentation automatically), and simulates it solo on a two-core
machine under all four SIMD sharing architectures, printing cycles,
utilisation and the lane plan.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ALL_POLICIES,
    Assign,
    BinOp,
    Job,
    Kernel,
    Load,
    Loop,
    Param,
    build_image,
    compile_kernel,
    experiment_config,
    reference_execute,
    run_policy,
)


def main() -> None:
    # y = a*x + y over 4096 elements, repeated 8 times.
    kernel = Kernel(
        name="saxpy",
        array_length=4096,
        loops=(
            Loop(
                "saxpy",
                trip_count=4096,
                repeats=8,
                body=(
                    Assign(
                        "y",
                        BinOp("add", BinOp("mul", Param("a"), Load("x")), Load("y")),
                    ),
                ),
            ),
        ),
        params={"a": 2.0},
    )

    config = experiment_config()
    # Passing the memory config lets the compiler tag each phase's <OI>
    # with its cache-residency level (hierarchical roofline, §5.1).
    from repro import CompileOptions

    program = compile_kernel(kernel, CompileOptions(memory=config.memory))
    print(f"Compiled {kernel.name}: {len(program)} instructions")
    print(f"Phase operational intensity: {program.meta['phase_ois'][0]}")
    print()

    # The numpy oracle we will verify every simulation against.
    oracle = reference_execute(kernel, build_image(kernel, core_id=0))

    print(f"{'policy':>8} {'cycles':>8} {'util':>7} {'lanes used'}")
    for policy in ALL_POLICIES:
        image = build_image(kernel, core_id=0)
        result = run_policy(config, policy, [Job(program, image), None])
        assert np.allclose(image.array("y"), oracle.array("y"), rtol=1e-4), (
            "simulation diverged from the numpy oracle!"
        )
        lanes = sorted(
            {int(v) for _, v in result.metrics.lane_timeline[0].points if v}
        )
        print(
            f"{policy.key:>8} {result.total_cycles:>8} "
            f"{100 * result.metrics.simd_utilization():>6.1f}% {lanes}"
        )
    print()
    print("All four policies computed bit-identical results. Occamy/FTS give")
    print("a solo workload the whole 32-lane pool; Private caps it at 16.")


if __name__ == "__main__":
    main()
