#!/usr/bin/env python
"""Write your own lane manager and run it as a fifth sharing policy.

The lane-manager interface is one method:
``on_phase_change(resource_table, cycle) -> {core: lanes}``, invoked by
the co-processor whenever any core executes ``MSR <OI>`` (a
phase-changing point).  This example implements a *history-aware*
manager: it tracks how many cycles each workload has been starved below
its roofline saturation point and tops up the longest-starved workload
first — then races it against the paper's four policies.

Run:  python examples/custom_policy.py
"""

from typing import Dict

from repro import (
    ALL_POLICIES,
    Job,
    Policy,
    RooflineModel,
    build_image,
    compile_kernel,
    experiment_config,
    greedy_partition,
    run_policy,
)
from repro.compiler.pipeline import CompileOptions
from repro.coproc.coprocessor import SharingMode
from repro.workloads.motivating import motivating_pair


class StarvationAwareLaneManager:
    """Greedy planning plus a tie-break favouring long-starved cores."""

    def __init__(self, roofline: RooflineModel, total_lanes: int) -> None:
        self.roofline = roofline
        self.total_lanes = total_lanes
        self.starved_since: Dict[int, int] = {}
        self.plan_history = []

    def on_phase_change(self, table, cycle: int) -> Dict[int, int]:
        running = table.running_phases()
        plan = greedy_partition(running, self.total_lanes, self.roofline)
        # Track starvation: a core below its saturation point is starved.
        leftovers = self.total_lanes - sum(plan.values())
        starved = []
        for core, oi in running.items():
            saturation = self.roofline.saturation_lanes(oi)
            if plan[core] < saturation:
                self.starved_since.setdefault(core, cycle)
                starved.append((self.starved_since[core], core, saturation))
            else:
                self.starved_since.pop(core, None)
        # Hand spare lanes to whoever has waited longest.
        for _since, core, saturation in sorted(starved):
            grant = min(leftovers, saturation - plan[core])
            plan[core] += grant
            leftovers -= grant
        decisions = {core: plan.get(core, 0) for core in range(table.num_cores)}
        self.plan_history.append((cycle, dict(decisions)))
        return decisions


def main() -> None:
    config = experiment_config()
    custom = Policy(
        key="starvation-aware",
        label="Starvation-aware elastic",
        mode=SharingMode.SPATIAL,
        _factory=lambda cfg, ois: StarvationAwareLaneManager(
            RooflineModel.from_config(cfg), cfg.vector.total_lanes
        ),
    )

    wl0, wl1 = motivating_pair(scale=0.4)
    options = CompileOptions(memory=config.memory)
    p0, p1 = compile_kernel(wl0, options), compile_kernel(wl1, options)

    def jobs():
        return [Job(p0, build_image(wl0, 0)), Job(p1, build_image(wl1, 1))]

    print(f"{'policy':>20} {'WL#0':>8} {'WL#1':>8} {'util':>7}")
    base = None
    for policy in list(ALL_POLICIES) + [custom]:
        result = run_policy(config, policy, jobs())
        if base is None:
            base = result
        print(
            f"{policy.key:>20} {result.core_time(0):>8} {result.core_time(1):>8} "
            f"{100 * result.metrics.simd_utilization():>6.1f}%"
        )
    print("\nAny object with on_phase_change(table, cycle) -> {core: lanes}")
    print("plugs straight into the co-processor as a lane manager.")


if __name__ == "__main__":
    main()
