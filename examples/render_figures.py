#!/usr/bin/env python
"""Render the paper's key figures as standalone SVG files.

Runs the motivating example on all four architectures and writes:

* ``fig2_busy_lanes.svg`` — per-core busy-lane curves (Fig. 2(b)/(e));
* ``fig8_lane_plan.svg`` — Occamy's elastic lane schedule (Fig. 8);
* ``fig2f_speedups.svg`` — per-architecture speedup bars (Fig. 2(f));
* ``energy_edp.svg`` — the energy-delay comparison (extension).

Run:  python examples/render_figures.py [output_dir]
"""

import os
import sys

from repro.analysis.energy import compare_energy
from repro.analysis.experiments import motivation_fig2
from repro.analysis.plots import (
    bar_chart_svg,
    lane_timeline_svg,
    series_svg,
    write_svg,
)


def main(output_dir: str = "figures") -> None:
    os.makedirs(output_dir, exist_ok=True)
    print("simulating the motivating example on all four architectures...")
    result = motivation_fig2(scale=0.5)

    # Fig. 2(b)/(e): busy lanes per 1000-cycle bucket.
    for key in ("private", "occamy"):
        svg = series_svg(
            {
                "core0 (WL#0, memory)": result.lane_series(key, 0),
                "core1 (WL#1, compute)": result.lane_series(key, 1),
            },
            title=f"Busy lanes — {key}",
        )
        path = os.path.join(output_dir, f"fig2_busy_lanes_{key}.svg")
        write_svg(svg, path)
        print("wrote", path)

    # Fig. 8: the elastic lane plan.
    occamy = result.results["occamy"]
    svg = lane_timeline_svg(
        {
            "core0 (WL#0)": occamy.metrics.lane_timeline[0].points,
            "core1 (WL#1)": occamy.metrics.lane_timeline[1].points,
        },
        total_cycles=occamy.total_cycles,
        title="Occamy elastic lane schedule (Fig. 8)",
    )
    path = os.path.join(output_dir, "fig8_lane_plan.svg")
    write_svg(svg, path)
    print("wrote", path)

    # Fig. 2(f): speedups.
    policies = ("private", "fts", "vls", "occamy")
    svg = bar_chart_svg(
        ["Core0 (memory)", "Core1 (compute)"],
        {key: [result.speedup(key, 0), result.speedup(key, 1)] for key in policies},
        y_label="speedup over Private",
        title="Motivating example speedups (Fig. 2(f))",
        width=520,
    )
    path = os.path.join(output_dir, "fig2f_speedups.svg")
    write_svg(svg, path)
    print("wrote", path)

    # Extension: energy-delay product.
    reports = compare_energy(result.results)
    svg = bar_chart_svg(
        ["energy (uJ)", "EDP (uJ*us / 10)"],
        {
            key: [report.total_uj, report.edp / 10]
            for key, report in reports.items()
        },
        y_label="",
        baseline=None,
        title="Energy and energy-delay product",
        width=520,
    )
    path = os.path.join(output_dir, "energy_edp.svg")
    write_svg(svg, path)
    print("wrote", path)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "figures")
