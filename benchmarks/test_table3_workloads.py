"""Table 3: the 34 workloads and their per-phase operational intensities.

Regenerates the table from our kernels via the Eq. 5 analysis and compares
each phase's oi_mem with the paper's reported value.  (Tables 1/2 are
definitional — the ISA registers and ordering rules — and are asserted by
the unit tests; Table 4 is the machine configuration echoed below.)
"""

import pytest

from benchmarks.conftest import banner, run_once
from repro.common.config import describe, table4_config
from repro.compiler import analyze_kernel
from repro.analysis.reporting import format_table
from repro.workloads.opencv import OPENCV_KERNELS, OPENCV_WORKLOADS, opencv_workload
from repro.workloads.spec import SPEC_PHASES, SPEC_WORKLOADS, spec_workload


def _rows():
    rows = []
    for workload_id in sorted(SPEC_WORKLOADS):
        kernel = spec_workload(workload_id, scale=0.05)
        for info, phase in zip(analyze_kernel(kernel), SPEC_WORKLOADS[workload_id]):
            rows.append(
                ("spec", f"WL{workload_id}", phase,
                 SPEC_PHASES[phase].oi_mem, info.oi.mem, info.oi.issue)
            )
    for workload_id in sorted(OPENCV_WORKLOADS):
        kernel = opencv_workload(workload_id, scale=0.05)
        for info, phase in zip(analyze_kernel(kernel), OPENCV_WORKLOADS[workload_id]):
            rows.append(
                ("opencv", f"WL{workload_id}", phase,
                 OPENCV_KERNELS[phase].oi_mem, info.oi.mem, info.oi.issue)
            )
    return rows


def test_table3_workload_intensities(benchmark):
    rows = run_once(benchmark, _rows)

    banner("Table 3 — per-phase operational intensity (paper vs measured)")
    print(
        format_table(
            ["suite", "WL", "phase", "oi_mem(paper)", "oi_mem", "oi_issue"],
            [
                [s, w, p, f"{t:.3f}", f"{m:.3f}", f"{i:.3f}"]
                for s, w, p, t, m, i in rows
            ],
        )
    )
    banner("Table 4 — evaluated configuration")
    for name, (value, unit) in describe(table4_config()).items():
        print(f"  {name:>10}: {value} {unit}")

    worst = max(abs(m - t) / t for _s, _w, _p, t, m, _i in rows)
    benchmark.extra_info["worst_relative_oi_error"] = worst
    assert worst < 0.16
    assert len({(s, w) for s, w, *_ in rows}) == 34  # 22 SPEC + 12 OpenCV
