"""O(active-work) engine stack: cold-run speed on a 16-core mixed co-run.

The baseline is the seed-path engine — every construction-time
accelerator killed (``REPRO_NO_PRE_DECODE``, ``REPRO_NO_EVENT_WHEEL``,
``REPRO_NO_BATCH_EXEC``, ``REPRO_NO_HIER_WHEEL``, ``REPRO_NO_LANE_SHARDS``)
and the run-time fast paths off — so every cycle steps every core, scans
the full lane pool and ticks per-core metrics.  The fast run is the
default stack, whose per-cycle cost tracks the components that actually
have work: the hierarchical wake index skips sleeping cores in one step,
sharded lane bookkeeping keeps repartitions off the full-pool scan, and
metric settling batches per touched core.

The workload is the shape N-core machines actually present: most cores
stream DRAM-resident axpys (asleep through memory round-trips), while
every fourth runs a Vec-Cache-resident dot product that is busy nearly
every cycle — so the *global* idle fast-forward rarely applies and only
per-component accounting can help.  Both runs must be bit-identical; the
default stack must be at least 3x faster at 16 cores.

The record also times the fast engine at 8 and 32 cores so the
perf-trajectory (and ``repro perf-report``) can show how wall-clock
scales with machine size.
"""

from __future__ import annotations

import time

from benchmarks.conftest import banner, record_bench, run_once
from repro.common.config import experiment_config
from repro.core.machine import Machine
from repro.core.policies import policy
from tests.conftest import compiled_job, make_axpy, make_reduction, run_fingerprint

GATE_CORES = 16
SCALING_CORES = (8, 16, 32)
STREAM_LENGTH = 6144  # 2 x 24 KiB arrays per core: misses the scaled L2
DOT_LENGTH = 256  # Vec-Cache resident
DOT_REPEATS = 48
MIN_SPEEDUP = 3.0

#: Every construction-time engine kill switch (the run-time fast paths —
#: idle fast-forward and loop replay — are ``Machine.run`` arguments).
CONSTRUCTION_SWITCHES = (
    "REPRO_NO_PRE_DECODE",
    "REPRO_NO_EVENT_WHEEL",
    "REPRO_NO_BATCH_EXEC",
    "REPRO_NO_HIER_WHEEL",
    "REPRO_NO_LANE_SHARDS",
)


def _jobs(num_cores):
    jobs = []
    for core in range(num_cores):
        if core % 4 == 3:
            jobs.append(compiled_job(make_reduction(DOT_LENGTH, DOT_REPEATS), core))
        else:
            jobs.append(compiled_job(make_axpy(STREAM_LENGTH), core))
    return jobs


def _run(monkeypatch, num_cores, seed_engine):
    for var in CONSTRUCTION_SWITCHES:
        if seed_engine:
            monkeypatch.setenv(var, "1")
        else:
            monkeypatch.delenv(var, raising=False)
    config = experiment_config(num_cores=num_cores)
    machine = Machine(config, policy("occamy"), _jobs(num_cores))
    result = machine.run(
        fast_forward=not seed_engine, fast_path=not seed_engine
    )
    return result, machine.profile


def test_ncore_speedup(benchmark, monkeypatch):
    start = time.perf_counter()
    slow_result, _ = _run(monkeypatch, GATE_CORES, seed_engine=True)
    slow_seconds = time.perf_counter() - start

    def fast():
        return _run(monkeypatch, GATE_CORES, seed_engine=False)

    start = time.perf_counter()
    fast_result, profile = run_once(benchmark, fast)
    fast_seconds = time.perf_counter() - start
    speedup = slow_seconds / max(fast_seconds, 1e-9)

    # Fast-engine wall clock across machine sizes: the scaling trend the
    # O(active-work) restructuring exists for.
    extra = {}
    for num_cores in SCALING_CORES:
        if num_cores == GATE_CORES:
            seconds, cycles = fast_seconds, fast_result.total_cycles
        else:
            start = time.perf_counter()
            scaled_result, _ = _run(monkeypatch, num_cores, seed_engine=False)
            seconds = time.perf_counter() - start
            cycles = scaled_result.total_cycles
        extra[f"fast_seconds_{num_cores}"] = round(seconds, 4)
        extra[f"cycles_{num_cores}"] = cycles

    banner("O(active-work) core — seed-path engine vs default stack, 16 cores")
    print(
        f"workload: 12x axpy{STREAM_LENGTH} (DRAM streams) co-running "
        f"4x dot{DOT_LENGTH} x{DOT_REPEATS} (resident), occamy policy"
    )
    print(f"seed path:     {slow_seconds:.2f}s (every core, every cycle)")
    print(f"default stack: {fast_seconds:.2f}s")
    print(f"speedup: {speedup:.2f}x (required: >= {MIN_SPEEDUP:.1f}x)")
    for num_cores in SCALING_CORES:
        print(
            f"  {num_cores:>2} cores: {extra[f'fast_seconds_{num_cores}']:.2f}s "
            f"for {extra[f'cycles_{num_cores}']} cycles"
        )
    print()
    print(profile.report())
    benchmark.extra_info["slow_seconds"] = slow_seconds
    benchmark.extra_info["fast_seconds"] = fast_seconds
    benchmark.extra_info["speedup"] = speedup
    record_bench("ncore", speedup, slow_seconds, fast_seconds, extra=extra)

    assert run_fingerprint(fast_result) == run_fingerprint(slow_result)
    assert speedup >= MIN_SPEEDUP
