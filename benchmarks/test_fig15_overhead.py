"""Fig. 15: runtime overhead of supporting elastic spatial sharing.

Paper reference: Occamy spends ~0.5% of a workload's execution time on
EM-SIMD support — ~0.3% monitoring lane-partitioning decisions (cheap:
reads of <decision> are speculative) and ~0.2% reconfiguring the vector
length (pipeline drains).
"""

from benchmarks.conftest import banner, run_once
from repro.analysis.experiments import overhead_fig15
from repro.analysis.reporting import format_table, geomean


def test_fig15_emsimd_overhead(benchmark, bench_scale):
    rows_data = run_once(benchmark, lambda: overhead_fig15(scale=bench_scale))

    rows = []
    for pair, overhead in rows_data:
        rows.append(
            [
                str(pair),
                f"{100 * overhead['monitor']:.2f}%",
                f"{100 * overhead['reconfig']:.2f}%",
                f"{100 * (overhead['monitor'] + overhead['reconfig']):.2f}%",
            ]
        )
    monitors = [o["monitor"] for _, o in rows_data]
    reconfigs = [o["reconfig"] for _, o in rows_data]
    totals = [m + r for m, r in zip(monitors, reconfigs)]
    gm_total = geomean([t for t in totals if t > 0]) if any(totals) else 0.0
    rows.append(["GM", "", "", f"{100 * gm_total:.2f}%"])
    rows.append(["paper", "~0.3%", "~0.2%", "~0.5%"])
    banner("Fig. 15 — EM-SIMD runtime overhead under Occamy")
    print(format_table(["pair", "monitor", "reconfig", "total"], rows))

    benchmark.extra_info["gm_total_overhead"] = gm_total

    # Shape: the overhead is a small fraction of runtime everywhere.
    # (Our reconfiguration figure includes spin-waiting for a co-runner to
    # release lanes, which the busiest pair stretches to a few percent.)
    assert max(totals) < 0.09
    assert gm_total < 0.03
