"""Benchmark harness configuration.

Every benchmark regenerates one table/figure of the paper's evaluation
(§7) and prints a paper-vs-measured comparison (run pytest with ``-s`` to
see it; the same numbers are attached as ``extra_info`` on the benchmark
record).  Simulations run once per benchmark (``pedantic`` with one round)
— the interesting output is the *reproduction*, not the harness's own
wall time.

``REPRO_BENCH_SCALE`` (default 0.5) scales workload repeat counts; larger
values sharpen the reproduced ratios at the cost of wall time.
"""

import os

import pytest

#: Workload repeat-count multiplier for all benchmarks.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(autouse=True, scope="session")
def _fresh_result_cache(tmp_path_factory):
    """Point the persistent result cache at a per-session directory.

    Benchmarks time *simulations*; a warm ``~/.cache/repro`` would quietly
    turn them into deserialisation benchmarks.  A fresh directory keeps
    every session cold (and the user's real cache untouched) while still
    letting figures share results within the session.
    """
    cache_dir = tmp_path_factory.mktemp("bench-result-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
