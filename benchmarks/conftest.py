"""Benchmark harness configuration.

Every benchmark regenerates one table/figure of the paper's evaluation
(§7) and prints a paper-vs-measured comparison (run pytest with ``-s`` to
see it; the same numbers are attached as ``extra_info`` on the benchmark
record).  Simulations run once per benchmark (``pedantic`` with one round)
— the interesting output is the *reproduction*, not the harness's own
wall time.

``REPRO_BENCH_SCALE`` (default 0.5) scales workload repeat counts; larger
values sharpen the reproduced ratios at the cost of wall time.
"""

import os

import pytest

#: Workload repeat-count multiplier for all benchmarks.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(autouse=True, scope="session")
def _fresh_result_cache(tmp_path_factory):
    """Point the persistent result cache at a per-session directory.

    Benchmarks time *simulations*; a warm ``~/.cache/repro`` would quietly
    turn them into deserialisation benchmarks.  A fresh directory keeps
    every session cold (and the user's real cache untouched) while still
    letting figures share results within the session.
    """
    cache_dir = tmp_path_factory.mktemp("bench-result-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


#: Shared schema tag for every BENCH_*.json perf-trajectory artifact.
BENCH_SCHEMA = "repro-bench/1"

#: Directory BENCH_*.json files land in (default: current directory).
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def record_bench(name, speedup, slow_seconds, fast_seconds, extra=None):
    """Write one ``BENCH_<name>.json`` perf-trajectory record.

    Every CI-gated speedup benchmark emits one of these in a shared
    schema so the perf trajectory across PRs is a set of comparable
    artifacts rather than scrollback.  Files go to ``$REPRO_BENCH_DIR``
    (created if needed) or the working directory.
    """
    import json
    import pathlib
    import platform
    import time

    record = {
        "schema": BENCH_SCHEMA,
        "bench": name,
        "speedup": round(float(speedup), 4),
        "slow_seconds": round(float(slow_seconds), 4),
        "fast_seconds": round(float(fast_seconds), 4),
        "bench_scale": BENCH_SCALE,
        "python": platform.python_version(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    if extra:
        record["extra"] = {
            key: value
            for key, value in extra.items()
            if isinstance(value, (int, float, str, bool)) or value is None
        }
    out_dir = pathlib.Path(os.environ.get(BENCH_DIR_ENV) or ".")
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"perf-trajectory record: {path}")
    return path
