"""Benchmark harness configuration.

Every benchmark regenerates one table/figure of the paper's evaluation
(§7) and prints a paper-vs-measured comparison (run pytest with ``-s`` to
see it; the same numbers are attached as ``extra_info`` on the benchmark
record).  Simulations run once per benchmark (``pedantic`` with one round)
— the interesting output is the *reproduction*, not the harness's own
wall time.

``REPRO_BENCH_SCALE`` (default 0.5) scales workload repeat counts; larger
values sharpen the reproduced ratios at the cost of wall time.
"""

import os

import pytest

#: Workload repeat-count multiplier for all benchmarks.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
