"""Tickless event wheel: cold-run speed on a mixed-bound co-run.

The baseline is the reference run loop (``REPRO_NO_EVENT_WHEEL=1``): every
cycle steps every component and every stalled window is re-scanned in
full.  The fast run uses the tickless engine — per-component sleep/wake on
the event wheel plus ready-set dispatch indexing.  Loop replay is disabled
on *both* sides so the measurement isolates the wheel (replay would
otherwise skip the very steady-state cycles the wheel accelerates).

The workload is the shape the wheel exists for: three cores stream
DRAM-resident axpys (their components sleep through memory round-trips
and index-stall the rest of the time) while the fourth runs a
Vec-Cache-resident dot product that is busy nearly every cycle — so the
*global* idle fast-forward almost never applies and only per-component
skipping can help.  Both runs must be bit-identical; the wheel must be
at least 2x faster.
"""

from __future__ import annotations

import time

from benchmarks.conftest import banner, record_bench, run_once
from repro.common.config import experiment_config
from repro.core.machine import Machine
from repro.core.policies import policy
from tests.conftest import compiled_job, make_axpy, make_reduction, run_fingerprint

NUM_CORES = 4
STREAM_LENGTH = 24576  # 2 x 96 KiB arrays: misses the 128 KiB scaled L2
DOT_LENGTH = 256  # Vec-Cache resident
DOT_REPEATS = 160
MIN_SPEEDUP = 2.0


def _run(monkeypatch, event_wheel):
    monkeypatch.setenv("REPRO_NO_LOOP_REPLAY", "1")
    if event_wheel:
        monkeypatch.delenv("REPRO_NO_EVENT_WHEEL", raising=False)
    else:
        monkeypatch.setenv("REPRO_NO_EVENT_WHEEL", "1")
    config = experiment_config(num_cores=NUM_CORES)
    jobs = [
        compiled_job(make_axpy(STREAM_LENGTH), 0),
        compiled_job(make_axpy(STREAM_LENGTH), 1),
        compiled_job(make_axpy(STREAM_LENGTH), 2),
        compiled_job(make_reduction(DOT_LENGTH, DOT_REPEATS), 3),
    ]
    machine = Machine(config, policy("occamy"), jobs)
    result = machine.run()
    return result, machine.profile


def test_event_wheel_speedup(benchmark, monkeypatch):
    start = time.perf_counter()
    slow_result, _ = _run(monkeypatch, event_wheel=False)
    slow_seconds = time.perf_counter() - start

    def fast():
        return _run(monkeypatch, event_wheel=True)

    start = time.perf_counter()
    fast_result, profile = run_once(benchmark, fast)
    fast_seconds = time.perf_counter() - start
    speedup = slow_seconds / max(fast_seconds, 1e-9)
    asleep = sum(profile.component_asleep)
    stepped = asleep + sum(profile.component_busy) + sum(profile.component_idle)
    asleep_pct = 100.0 * asleep / max(1, stepped)

    banner("Tickless event wheel — reference tick vs per-component sleep/wake")
    print(
        f"workload: 3x axpy{STREAM_LENGTH} (DRAM streams) co-running "
        f"dot{DOT_LENGTH} x{DOT_REPEATS} (resident), occamy policy, "
        f"{NUM_CORES} cores"
    )
    print(f"reference tick: {slow_seconds:.2f}s (every component, every cycle)")
    print(
        f"event wheel:    {fast_seconds:.2f}s "
        f"({asleep_pct:.1f}% of component-cycles slept)"
    )
    print(f"speedup: {speedup:.2f}x (required: >= {MIN_SPEEDUP:.1f}x)")
    print()
    print(profile.report())
    benchmark.extra_info["slow_seconds"] = slow_seconds
    benchmark.extra_info["fast_seconds"] = fast_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["asleep_pct"] = asleep_pct
    record_bench(
        "event_wheel", speedup, slow_seconds, fast_seconds,
        extra={"asleep_pct": asleep_pct},
    )

    assert run_fingerprint(fast_result) == run_fingerprint(slow_result)
    assert asleep > 0
    assert speedup >= MIN_SPEEDUP
