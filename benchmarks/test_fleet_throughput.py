"""Fleet gateway: cache-cold job throughput, 4 daemons vs 1.

The load harness drives hundreds of concurrent submitters (thousands of
jobs per minute of capacity) through the HTTP gateway at a daemon fleet
whose workers run a fixed-latency stub job — so the measurement is the
*serving path* (gateway routing, admission control, queue turnover,
socket round-trips), not simulator speed.  Every job key is unique, so
nothing coalesces and nothing is a cache hit: throughput scales only if
shard routing actually spreads load and the gateway adds no serial
bottleneck.  The CI gate is >= 2x jobs/second for 4 daemons vs 1.

Admission control must *hold* under the load spike: with ~2.4x more
in-flight submitters than the single daemon's queue depth, the daemon
answers queue-full/quota rejections (HTTP 429) instead of buffering
without bound, and the harness retries until every job lands — the gate
also asserts every job executed exactly once.

``test_fleet_identity_across_sharing_modes`` is the correctness half of
the acceptance criterion: per-section SHA-256 fingerprints prove
gateway-served == daemon-served == direct in-process ``Machine.run``
results across occamy/fts/cts, with the daemon-served copy coming from a
*different* shard than the one that executed (the shared cache tier).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path
from types import SimpleNamespace

from benchmarks.conftest import banner, record_bench, run_once
from repro.analysis.parallel import execute_task
from repro.service.client import ServiceClient
from repro.service.fleet import FleetManager
from repro.service.gateway import Gateway, GatewayOptions, serve_in_thread
from repro.service.protocol import summarize_result
from repro.service.specs import build_task, spec_for_pair

from tests.service import runners

#: Unique (cache-cold) jobs pushed through each fleet.
JOBS = 400
#: Concurrent keep-alive HTTP submitters.
CONCURRENCY = 96
#: Stub job latency (seconds) inside each worker — long enough that
#: worker capacity, not python serving overhead, bounds the single-daemon
#: leg (keeps the measured ratio stable on slow CI machines).
JOB_SLEEP_S = 0.04
#: Per-daemon queue depth — deliberately smaller than CONCURRENCY so the
#: single-daemon leg must reject (HTTP 429) and the harness must retry.
QUEUE_DEPTH = 64
MIN_SPEEDUP = 2.0

PAIR = ("spec", 20, 17)
SCALE = 0.05
SHARING_MODES = ("occamy", "fts", "cts")

REPO_ROOT = Path(__file__).resolve().parent.parent


def _fleet_env(sleep_s=None):
    """Environment for daemon subprocesses: repo importable, stub latency set."""
    env = dict(os.environ)
    parts = [str(REPO_ROOT / "src"), str(REPO_ROOT)]
    if env.get("PYTHONPATH"):
        parts.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    if sleep_s is not None:
        env[runners.SLEEP_ENV] = str(sleep_s)
    return env


def _job_specs(count):
    """``count`` distinct job keys (one compile: only max_cycles varies)."""
    return [
        spec_for_pair(*PAIR, scale=SCALE, max_cycles=3_000_000 + index)
        for index in range(count)
    ]


# --- asyncio load generator ---------------------------------------------------


async def _read_response(reader):
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("gateway closed the connection")
    status = int(status_line.split()[1])
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length)
    return status, json.loads(body.decode("utf-8"))


async def _drive(port, specs, concurrency):
    """Pump every spec through the gateway with ``concurrency`` keep-alive
    submitters; 429 rejections back off and retry until the job lands."""
    pending = iter(list(specs))
    results = []
    rejections = [0]

    async def submitter(index):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            for spec in pending:
                body = json.dumps(
                    {"spec": spec, "client": f"load-{index}"}
                ).encode("utf-8")
                head = (
                    "POST /submit HTTP/1.1\r\n"
                    "Host: bench\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode("latin-1")
                while True:
                    writer.write(head + body)
                    await writer.drain()
                    status, payload = await _read_response(reader)
                    if status == 429:
                        rejections[0] += 1
                        await asyncio.sleep(
                            float(payload.get("retry_after_ms", 250)) / 1000.0
                        )
                        continue
                    results.append((status, payload))
                    break
        finally:
            writer.close()

    await asyncio.gather(*(submitter(index) for index in range(concurrency)))
    return results, rejections[0]


# --- one fleet leg ------------------------------------------------------------


def _run_leg(base_dir, n_daemons, specs):
    manager = FleetManager(
        base_dir=base_dir,
        workers=2,
        queue_depth=QUEUE_DEPTH,
        runner="tests.service.runners:sleep_runner",
        env=_fleet_env(JOB_SLEEP_S),
    )
    gateway = thread = None
    try:
        manager.start(n_daemons)
        gateway = Gateway(
            GatewayOptions(shards=manager.addresses(), health_interval=30.0)
        )
        thread = serve_in_thread(gateway)
        start = time.perf_counter()
        results, rejections = asyncio.run(
            _drive(gateway.bound_port, specs, CONCURRENCY)
        )
        elapsed = time.perf_counter() - start
        executed = submitted = 0
        for address in manager.addresses():
            with ServiceClient(address, timeout=30.0) as client:
                status = client.status()
            executed += status["counters"]["executed"]
            submitted += status["counters"]["submitted"]
        return SimpleNamespace(
            daemons=n_daemons,
            elapsed=elapsed,
            throughput=len(specs) / max(elapsed, 1e-9),
            results=results,
            rejections=rejections,
            executed=executed,
            submitted=submitted,
        )
    finally:
        if gateway is not None:
            gateway.stop_threadsafe()
        if thread is not None:
            thread.join(timeout=15.0)
        manager.stop_all()


def _assert_leg_clean(leg, jobs):
    assert len(leg.results) == jobs
    assert all(code == 200 for code, _ in leg.results), [
        code for code, _ in leg.results if code != 200
    ][:5]
    assert all(payload["event"] == "done" for _, payload in leg.results)
    # Unique cache-cold keys: every job executed exactly once, fleet-wide.
    assert leg.executed == jobs, (leg.executed, jobs)
    # Daemons count rejected submissions too; each 429 the harness retried
    # shows up exactly once more here.
    assert leg.submitted == jobs + leg.rejections, (leg.submitted, leg.rejections)


def test_fleet_throughput_scales(benchmark, tmp_path):
    specs = _job_specs(JOBS)

    single = _run_leg(tmp_path / "single", 1, specs)
    _assert_leg_clean(single, JOBS)

    quad_box = {}

    def quad_leg():
        quad_box["leg"] = _run_leg(tmp_path / "quad", 4, specs)
        return quad_box["leg"]

    quad = run_once(benchmark, quad_leg)
    _assert_leg_clean(quad, JOBS)

    speedup = quad.throughput / max(single.throughput, 1e-9)

    banner("Fleet gateway — cache-cold throughput, 4 daemons vs 1")
    print(
        f"load: {JOBS} unique jobs, {CONCURRENCY} concurrent submitters, "
        f"{JOB_SLEEP_S * 1000:.0f}ms stub jobs, queue depth {QUEUE_DEPTH}/daemon"
    )
    print(
        f"1 daemon : {single.elapsed:.2f}s = {single.throughput:.0f} jobs/s "
        f"({single.rejections} admission rejections retried)"
    )
    print(
        f"4 daemons: {quad.elapsed:.2f}s = {quad.throughput:.0f} jobs/s "
        f"({quad.rejections} admission rejections retried)"
    )
    print(f"speedup: {speedup:.2f}x (required: >= {MIN_SPEEDUP:.1f}x)")
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["throughput_1"] = single.throughput
    benchmark.extra_info["throughput_4"] = quad.throughput
    benchmark.extra_info["rejections_1"] = single.rejections
    benchmark.extra_info["rejections_4"] = quad.rejections
    record_bench(
        "fleet",
        speedup,
        single.elapsed,
        quad.elapsed,
        extra={
            "jobs": JOBS,
            "concurrency": CONCURRENCY,
            "throughput_1_jobs_per_s": round(single.throughput, 1),
            "throughput_4_jobs_per_s": round(quad.throughput, 1),
            "rejections_1": single.rejections,
            "rejections_4": quad.rejections,
        },
    )

    assert speedup >= MIN_SPEEDUP


def test_fleet_identity_across_sharing_modes(tmp_path):
    """Gateway-served == daemon-served == direct, across all 3 modes."""
    import urllib.request

    manager = FleetManager(
        base_dir=tmp_path / "fleet", workers=1, env=_fleet_env()
    )
    gateway = thread = None
    try:
        manager.start(2)
        addresses = manager.addresses()
        gateway = Gateway(
            GatewayOptions(shards=addresses, health_interval=30.0)
        )
        thread = serve_in_thread(gateway)
        for policy in SHARING_MODES:
            spec = spec_for_pair(*PAIR, policy=policy, scale=SCALE)
            body = json.dumps({"spec": spec, "client": "identity"}).encode()
            request = urllib.request.Request(
                f"http://127.0.0.1:{gateway.bound_port}/submit",
                data=body, method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=300) as response:
                served = json.loads(response.read().decode("utf-8"))
            assert served["event"] == "done", policy

            direct = summarize_result(execute_task(build_task(spec)))
            assert served["result"]["fingerprint"] == direct["fingerprint"], policy
            assert served["result"]["total_cycles"] == direct["total_cycles"]

            # Daemon-served from the *other* shard: the shared cache tier
            # answers with the executing shard's bytes, zero re-execution.
            executing = served["gateway"]["shard"]
            other = addresses[0 if executing == "shard1" else 1]
            with ServiceClient(other, timeout=300.0) as client:
                relayed = client.submit(spec, timeout=300)
            assert relayed["cached"], policy
            assert relayed["result"]["fingerprint"] == direct["fingerprint"], policy
    finally:
        if gateway is not None:
            gateway.stop_threadsafe()
        if thread is not None:
            thread.join(timeout=15.0)
        manager.stop_all()
