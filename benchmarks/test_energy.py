"""Energy and energy-delay product across the sharing policies.

Not a paper figure — the paper's FTS/VLS baselines descend from Beldianu
& Ziavras's *performance-energy* studies, so a full reproduction should
say what elastic sharing costs energetically.  Expectation: the policies
execute the same instructions (same dynamic compute/memory energy, within
cache-behaviour noise), so the winner is decided by *leakage over
runtime* — Occamy's shorter co-run makes it the energy-delay winner.
"""

from benchmarks.conftest import banner, run_once
from repro import Job, build_image, compile_kernel, run_policy
from repro.analysis.energy import compare_energy
from repro.analysis.reporting import format_table
from repro.common.config import experiment_config
from repro.compiler.pipeline import CompileOptions
from repro.core.policies import ALL_POLICIES
from repro.workloads.motivating import motivating_pair


def _run(scale):
    config = experiment_config()
    wl0, wl1 = motivating_pair(scale)
    options = CompileOptions(memory=config.memory)
    p0, p1 = compile_kernel(wl0, options), compile_kernel(wl1, options)
    results = {}
    for policy in ALL_POLICIES:
        jobs = [Job(p0, build_image(wl0, 0)), Job(p1, build_image(wl1, 1))]
        results[policy.key] = run_policy(config, policy, jobs)
    return compare_energy(results)


def test_energy_delay_product(benchmark, bench_scale):
    reports = run_once(benchmark, lambda: _run(max(bench_scale, 0.5)))

    rows = []
    for key, report in reports.items():
        rows.append(
            [
                key,
                f"{report.total_uj:.1f}",
                f"{report.components_uj['dram']:.1f}",
                f"{report.components_uj['leakage']:.1f}",
                f"{report.runtime_us:.1f}",
                f"{report.edp:.0f}",
            ]
        )
    banner("Energy — motivating pair (uJ; EDP in uJ*us)")
    print(
        format_table(
            ["arch", "total", "dram", "leakage", "runtime us", "EDP"], rows
        )
    )

    # Same workloads => DRAM traffic within noise across policies.
    dram = [r.components_uj["dram"] for r in reports.values()]
    assert max(dram) < 1.6 * min(dram)
    # Occamy finishes soonest => best energy-delay product.
    edp = {key: report.edp for key, report in reports.items()}
    assert edp["occamy"] == min(edp.values())
    # And its leakage share shrinks with runtime.
    assert (
        reports["occamy"].components_uj["leakage"]
        <= reports["private"].components_uj["leakage"]
    )
    benchmark.extra_info["edp"] = edp
