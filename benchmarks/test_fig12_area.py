"""Fig. 12: chip-area breakdown of the four SIMD architectures.

Paper reference: ~1.263 mm² (1.265 mm² for Occamy) in TSMC 7 nm for the
two-core configuration; SIMD execution units 46%, LSU 23%, register file
15%; the Manager costs < 1% of total area (Occamy only).
"""

import pytest

from benchmarks.conftest import banner, run_once
from repro.analysis.area import area_model
from repro.analysis.reporting import format_table
from repro.common.config import table4_config

POLICIES = ("private", "fts", "vls", "occamy")


def test_fig12_area_breakdown(benchmark):
    config = table4_config()
    breakdowns = run_once(
        benchmark, lambda: {key: area_model(config, key) for key in POLICIES}
    )

    components = sorted(
        {name for b in breakdowns.values() for name in b.components},
        key=lambda name: -breakdowns["occamy"].components.get(name, 0),
    )
    rows = [
        [name] + [f"{breakdowns[key].components.get(name, 0):.4f}" for key in POLICIES]
        for name in components
    ]
    rows.append(["TOTAL"] + [f"{breakdowns[key].total:.3f}" for key in POLICIES])
    rows.append(["TOTAL(paper)", "1.263", "1.263", "1.263", "1.265"])
    banner("Fig. 12 — area breakdown (mm², 2-core configuration)")
    print(format_table(["component"] + [p.upper() for p in POLICIES], rows))

    occamy = breakdowns["occamy"]
    benchmark.extra_info["totals"] = {k: b.total for k, b in breakdowns.items()}

    assert occamy.total == pytest.approx(1.265, abs=0.02)
    assert occamy.fraction("simd_exe_units") == pytest.approx(0.46, abs=0.02)
    assert occamy.fraction("lsu") == pytest.approx(0.23, abs=0.02)
    assert occamy.fraction("register_file") == pytest.approx(0.15, abs=0.02)
    assert occamy.fraction("manager") < 0.01
    # Scaling to 4 cores: FTS pays +33.5% for per-core contexts (§7.6).
    config4 = table4_config(num_cores=4)
    ratio = area_model(config4, "fts").total / area_model(config4, "private").total
    print(f"4-core FTS area overhead: +{100 * (ratio - 1):.1f}% (paper: +33.5%)")
    assert ratio - 1 == pytest.approx(0.335, abs=0.04)
