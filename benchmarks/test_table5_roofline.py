"""Table 5: attainable performance (GFLOP/s) for WL8.p1 under Eq. 4.

Paper reference (exact): issue-bound 5.3/10.7/16/21.3/26.7/32/37.3/42.7,
memory bound 16 flat, computation bound 8/16/24/32/40/48/56/64, attained
performance 5.3/10.7/16/16/... — issue-bandwidth-bound below 12 lanes,
memory-bound above.
"""

import pytest

from benchmarks.conftest import banner, run_once
from repro.analysis.experiments import table5_rows
from repro.analysis.reporting import format_table
from repro.common.config import table4_config

PAPER = {
    4: (5.3, 16.0, 8.0, 5.3),
    8: (10.7, 16.0, 16.0, 10.7),
    12: (16.0, 16.0, 24.0, 16.0),
    16: (21.3, 16.0, 32.0, 16.0),
    20: (26.7, 16.0, 40.0, 16.0),
    24: (32.0, 16.0, 48.0, 16.0),
    28: (37.3, 16.0, 56.0, 16.0),
    32: (42.7, 16.0, 64.0, 16.0),
}


def test_table5_attainable_performance(benchmark):
    rows = run_once(benchmark, lambda: table5_rows(table4_config()))

    printable = []
    for row in rows:
        paper = PAPER[int(row["vl"])]
        printable.append(
            [
                int(row["vl"]),
                f"{row['simd_issue_bound']:.1f} ({paper[0]})",
                f"{row['mem_bound']:.1f} ({paper[1]})",
                f"{row['comp_bound']:.1f} ({paper[2]})",
                f"{row['performance']:.1f} ({paper[3]})",
            ]
        )
    banner("Table 5 — WL8.p1 attainable GFLOP/s, measured (paper)")
    print(
        format_table(
            ["VL", "SIMDIssueBound", "MemBound", "CompBound", "Performance"],
            printable,
        )
    )

    for row in rows:
        paper = PAPER[int(row["vl"])]
        assert row["simd_issue_bound"] == pytest.approx(paper[0], abs=0.05)
        assert row["mem_bound"] == pytest.approx(paper[1], abs=0.05)
        assert row["comp_bound"] == pytest.approx(paper[2], abs=0.05)
        assert row["performance"] == pytest.approx(paper[3], abs=0.05)
