"""Fig. 11: SIMD utilisation of the four architectures over the 25 pairs.

Paper reference (geometric means): Private 63.2%, FTS 72.5%, VLS 70.8%,
Occamy 84.2%.  Our absolute utilisation runs lower (our memory-intensive
phases stream DRAM harder than SPEC REF's partially-resident loops — see
EXPERIMENTS.md), so the comparison is about ordering and relative gain.
"""

from benchmarks.conftest import banner, run_once
from repro.analysis.experiments import sweep_pairs
from repro.analysis.reporting import format_table, geomean

PAPER_GM = {"private": 0.632, "fts": 0.725, "vls": 0.708, "occamy": 0.842}
POLICIES = ("private", "fts", "vls", "occamy")


def test_fig11_utilization(benchmark, bench_scale):
    outcomes = run_once(benchmark, lambda: sweep_pairs(scale=bench_scale))

    rows = [
        [str(o.pair)] + [f"{100 * o.utilization(key):.1f}%" for key in POLICIES]
        for o in outcomes
    ]
    gms = {key: geomean([o.utilization(key) for o in outcomes]) for key in POLICIES}
    rows.append(["GM"] + [f"{100 * gms[key]:.1f}%" for key in POLICIES])
    rows.append(["GM(paper)"] + [f"{100 * PAPER_GM[key]:.1f}%" for key in POLICIES])
    banner("Fig. 11 — SIMD utilisation")
    print(format_table(["pair", "Private", "FTS", "VLS", "Occamy"], rows))

    benchmark.extra_info["gm_utilization"] = gms

    # Shape: Occamy achieves the highest utilisation and improves on
    # Private by >= 1.15x (paper: 1.33x; our DRAM-streaming memory phases
    # depress the co-run average — see EXPERIMENTS.md).
    assert gms["occamy"] == max(gms.values())
    assert gms["occamy"] / gms["private"] > 1.15
