"""Symbiosis-aware allocation: the 16-core pairing win/loss gate.

The blended metric is the per-thread geomean of drain cycles across the
whole machine (the co-scheduling literature's geomean-of-per-thread-
performance, inverted to cycles): lower is better, and packing two
bandwidth-hungry threads into one complex hurts it even when the other
complexes finish early.

The gate pins the win/loss story the allocation subsystem exists for, on
the tiled Fig. 16 blend at 16 cores under occamy sharing:

* ``symbiosis`` (ECM-prior compatibility matrix + max-weight matching)
  must beat the seeded ``random`` baseline by at least ``MIN_MARGIN``;
* ``--calibrate`` (matrix entries measured by short micro co-runs through
  the result cache) must hold the same margin;
* ``oi-pack`` (pack similar OI together) must stay the losing bound —
  at least ``MIN_MARGIN`` *worse* than random.

Placement is a pure pre-simulation decision, so every complex's
simulation is shared across policies via the result cache — the sweep
below simulates each distinct pair once.
"""

from __future__ import annotations

import time

from benchmarks.conftest import banner, record_bench, run_once
from repro.analysis.experiments import alloc_outcome

CORES = 16
SCALE = 0.2
#: The CI-gated relative margin on the blended geomean, both directions.
MIN_MARGIN = 0.03


def test_alloc_policy_winloss(benchmark):
    start = time.perf_counter()
    random_outcome = alloc_outcome(CORES, "random", scale=SCALE)
    random_seconds = time.perf_counter() - start
    random_geo = random_outcome.geomean_cycles()

    def symbiosis():
        return alloc_outcome(CORES, "symbiosis", scale=SCALE)

    start = time.perf_counter()
    symbiosis_outcome = run_once(benchmark, symbiosis)
    symbiosis_seconds = time.perf_counter() - start
    symbiosis_geo = symbiosis_outcome.geomean_cycles()

    pack_geo = alloc_outcome(CORES, "oi-pack", scale=SCALE).geomean_cycles()
    balance_geo = alloc_outcome(CORES, "oi-balance", scale=SCALE).geomean_cycles()
    start = time.perf_counter()
    calibrated = alloc_outcome(CORES, "symbiosis", scale=SCALE, calibrate=True)
    calib_seconds = time.perf_counter() - start
    calib_geo = calibrated.geomean_cycles()

    gain = random_geo / symbiosis_geo

    banner(f"Thread-to-core allocation — {CORES} cores, occamy, scale {SCALE}")
    print(f"{'policy':<22}{'geomean cycles':>16}{'vs random':>12}")
    for label, geo in (
        ("oi-pack (bound)", pack_geo),
        ("random", random_geo),
        ("oi-balance", balance_geo),
        ("symbiosis (prior)", symbiosis_geo),
        ("symbiosis --calibrate", calib_geo),
    ):
        print(f"{label:<22}{geo:>16.1f}{random_geo / geo - 1:>+11.1%}")
    print(f"symbiosis pairing: {' '.join(symbiosis_outcome.pair_labels())}")
    print(f"calibrated pairing: {' '.join(calibrated.pair_labels())}")
    print(
        f"gate: symbiosis >= {MIN_MARGIN:.0%} better than random, "
        f"oi-pack >= {MIN_MARGIN:.0%} worse (calibration {calib_seconds:.1f}s)"
    )

    benchmark.extra_info["random_geomean"] = random_geo
    benchmark.extra_info["symbiosis_geomean"] = symbiosis_geo
    benchmark.extra_info["gain"] = gain
    record_bench(
        "alloc",
        gain,
        random_seconds,
        symbiosis_seconds,
        extra={
            "num_cores": CORES,
            "alloc_scale": SCALE,
            "random_geomean": round(random_geo, 1),
            "round_robin_geomean": round(
                alloc_outcome(CORES, "round-robin", scale=SCALE).geomean_cycles(), 1
            ),
            "oi_balance_geomean": round(balance_geo, 1),
            "oi_pack_geomean": round(pack_geo, 1),
            "symbiosis_geomean": round(symbiosis_geo, 1),
            "symbiosis_calibrated_geomean": round(calib_geo, 1),
            "calibration_seconds": round(calib_seconds, 2),
        },
    )

    assert symbiosis_geo <= random_geo * (1.0 - MIN_MARGIN), (
        f"symbiosis {symbiosis_geo:.1f} must beat random {random_geo:.1f} "
        f"by {MIN_MARGIN:.0%}"
    )
    assert calib_geo <= random_geo * (1.0 - MIN_MARGIN), (
        f"calibrated symbiosis {calib_geo:.1f} must beat random "
        f"{random_geo:.1f} by {MIN_MARGIN:.0%}"
    )
    assert pack_geo >= random_geo * (1.0 + MIN_MARGIN), (
        f"oi-pack {pack_geo:.1f} must stay the losing bound vs random "
        f"{random_geo:.1f}"
    )
