"""Warm-cache reproduction speed: re-rendering a figure from the
persistent result cache must be at least 5x faster than simulating it.

The "figure" here is a representative slice of the evaluation — the Fig. 2
motivating example plus two Table 3 pairs under all four policies (the
inputs of Figs. 10/11/13).  The cold pass simulates and populates a fresh
cache directory; the warm pass starts with the in-process memo cleared (as
a new process would) so every result is served by the on-disk layer.
"""

from __future__ import annotations

import time

from benchmarks.conftest import banner, record_bench, run_once
from repro.analysis import experiments, result_cache
from repro.workloads.pairs import all_pairs

SCALE = 0.15
MIN_SPEEDUP = 5.0


def _figure_slice():
    motivation = experiments.motivation_fig2(scale=SCALE)
    outcomes = experiments.sweep_pairs(all_pairs()[:2], scale=SCALE)
    return motivation, outcomes


def test_warm_cache_speedup(benchmark, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    experiments._sweep_cache.clear()

    start = time.perf_counter()
    cold_motivation, cold_outcomes = _figure_slice()
    cold_seconds = time.perf_counter() - start
    entries = len(result_cache.default_cache())

    def warm():
        # A fresh process starts with an empty memo; only the disk is warm.
        experiments._sweep_cache.clear()
        return _figure_slice()

    start = time.perf_counter()
    warm_motivation, warm_outcomes = run_once(benchmark, warm)
    warm_seconds = time.perf_counter() - start
    speedup = cold_seconds / max(warm_seconds, 1e-9)

    banner("Persistent result cache — cold vs warm figure render")
    print(f"cold: {cold_seconds:.2f}s ({entries} results simulated + cached)")
    print(f"warm: {warm_seconds:.2f}s (served from disk)")
    print(f"speedup: {speedup:.0f}x (required: >= {MIN_SPEEDUP:.0f}x)")
    benchmark.extra_info["cold_seconds"] = cold_seconds
    benchmark.extra_info["warm_seconds"] = warm_seconds
    benchmark.extra_info["speedup"] = speedup
    record_bench(
        "result_cache", speedup, cold_seconds, warm_seconds,
        extra={"entries": entries},
    )

    # The cached results are the simulated results, exactly.
    for key in cold_motivation.results:
        assert (
            warm_motivation.results[key].total_cycles
            == cold_motivation.results[key].total_cycles
        )
    for cold_o, warm_o in zip(cold_outcomes, warm_outcomes):
        for key in cold_o.results:
            assert warm_o.results[key].total_cycles == cold_o.results[key].total_cycles

    assert speedup >= MIN_SPEEDUP
    experiments._sweep_cache.clear()
