"""Related-work baselines: coarse- vs fine-grained temporal sharing.

The paper's FTS/VLS baselines come from Beldianu & Ziavras ([3, 4]), who
compared coarse- and fine-grained temporal sharing and a static spatial
policy, finding fine-grained temporal sharing the most effective of the
three.  This benchmark adds their coarse-grained variant (CTS: exclusive
whole-co-processor ownership per quantum, drain penalty on hand-over, no
shared-VRF renaming pressure) and shows the full ordering against Occamy.
"""

from benchmarks.conftest import banner, run_once
from repro import Job, build_image, compile_kernel
from repro.analysis.reporting import format_table
from repro.common.config import experiment_config
from repro.compiler.pipeline import CompileOptions
from repro.coproc.metrics import StallReason
from repro.core import run_policy
from repro.core.policies import CTS, EXTENDED_POLICIES
from repro.workloads.motivating import motivating_pair


def _run(scale):
    config = experiment_config()
    wl0, wl1 = motivating_pair(scale)
    options = CompileOptions(memory=config.memory)
    p0, p1 = compile_kernel(wl0, options), compile_kernel(wl1, options)
    results = {}
    for policy in EXTENDED_POLICIES:
        jobs = [Job(p0, build_image(wl0, 0)), Job(p1, build_image(wl1, 1))]
        results[policy.key] = run_policy(config, policy, jobs)
    return results


def test_temporal_sharing_baselines(benchmark, bench_scale):
    results = run_once(benchmark, lambda: _run(max(bench_scale, 0.5)))
    base = results["private"]

    rows = []
    for key, result in results.items():
        rename = max(
            result.metrics.stall_fraction(core, StallReason.RENAME)
            for core in (0, 1)
        )
        rows.append(
            [
                key,
                f"{result.speedup_over(base, 0):.2f}",
                f"{result.speedup_over(base, 1):.2f}",
                f"{100 * result.metrics.simd_utilization():.1f}%",
                f"{100 * rename:.0f}%",
            ]
        )
    banner("Temporal-sharing baselines — motivating pair")
    print(format_table(["arch", "sp0", "sp1", "util", "rename stalls"], rows))

    # CTS trades renaming pressure for hand-over drains: no rename stalls.
    cts = results["cts"].metrics
    assert max(cts.stall_fraction(c, StallReason.RENAME) for c in (0, 1)) < 0.02
    fts = results["fts"].metrics
    assert max(fts.stall_fraction(c, StallReason.RENAME) for c in (0, 1)) > 0.3
    # Occamy beats both temporal variants on the compute core.
    assert results["occamy"].speedup_over(base, 1) > max(
        results["cts"].speedup_over(base, 1),
        results["fts"].speedup_over(base, 1),
    )
    benchmark.extra_info["speedups_core1"] = {
        key: result.speedup_over(base, 1) for key, result in results.items()
    }
