"""§7.4 case studies: the four qualitative cases of the evaluation.

* **Case 1** ``<memory, compute>`` (WL20+WL17) — covered in depth by the
  Fig. 14 benchmark;
* **Case 2** ``<compute, compute>`` (WL9+WL13) — paper: both saturate the
  SIMD resources while co-running; after WL9 finishes, FTS/Occamy let
  WL13 use the released lanes (both 1.61x) while VLS cannot (1.0x);
* **Case 3** ``<memory, memory>`` (WL12+WL19) — paper: all four
  architectures perform alike since both workloads are memory-bound;
* **Case 4** WL8+WL17 — the issue-bandwidth trade of Table 5: Occamy
  spends 4 extra lanes on WL8.p1 to preserve its issue rate.
"""

from benchmarks.conftest import banner, run_once
from repro.analysis.experiments import pair_outcome
from repro.analysis.reporting import format_table
from repro.workloads.pairs import CoRunPair


def _table(outcome):
    rows = []
    for key in ("private", "fts", "vls", "occamy"):
        rows.append(
            [
                key,
                f"{outcome.speedup(key, 0):.2f}",
                f"{outcome.speedup(key, 1):.2f}",
                f"{100 * outcome.utilization(key):.1f}%",
            ]
        )
    return format_table(["arch", "sp0", "sp1", "util"], rows)


def test_case2_compute_compute(benchmark, bench_scale):
    pair = CoRunPair("spec", 9, 13)
    outcome = run_once(benchmark, lambda: pair_outcome(pair, scale=bench_scale))
    banner("§7.4 Case 2 — <compute, compute> (WL9 + WL13)")
    print(_table(outcome))
    # Whoever finishes first frees resources the elastic policy reuses:
    # Occamy must be at least as good as VLS on both cores.
    assert outcome.speedup("occamy", 1) >= outcome.speedup("vls", 1) - 0.05
    assert outcome.speedup("occamy", 0) >= outcome.speedup("vls", 0) - 0.05
    benchmark.extra_info["speedups"] = {
        key: (outcome.speedup(key, 0), outcome.speedup(key, 1))
        for key in outcome.results
    }


def test_case3_memory_memory(benchmark, bench_scale):
    pair = CoRunPair("spec", 12, 19)
    outcome = run_once(benchmark, lambda: pair_outcome(pair, scale=bench_scale))
    banner("§7.4 Case 3 — <memory, memory> (WL12 + WL19)")
    print(_table(outcome))
    # All sharing policies perform like Private: both sides are
    # DRAM-bandwidth-bound, so extra lanes cannot help.
    for key in ("fts", "vls", "occamy"):
        for core in (0, 1):
            assert 0.75 < outcome.speedup(key, core) < 1.35
    benchmark.extra_info["speedups"] = {
        key: (outcome.speedup(key, 0), outcome.speedup(key, 1))
        for key in outcome.results
    }


def test_case4_issue_bandwidth_trade(benchmark, bench_scale):
    pair = CoRunPair("spec", 8, 17)
    outcome = run_once(
        benchmark, lambda: pair_outcome(pair, scale=max(bench_scale, 0.6))
    )
    banner("§7.4 Case 4 — WL8 + WL17 (Table 5's issue-bandwidth trade)")
    print(_table(outcome))
    occamy = outcome.results["occamy"]
    # Occamy assigns 12 lanes to WL8.p1 (8 would satisfy memory/compute
    # ceilings alone) to buy issue bandwidth — visible in the lane plan.
    first_grant = next(
        lanes for _, lanes in occamy.metrics.lane_timeline[0].points if lanes
    )
    print(f"WL8.p1 lane grant under Occamy: {int(first_grant)} (paper: 12)")
    assert first_grant == 12
    # And the memory core's performance is preserved while the compute
    # core still gains.
    assert outcome.speedup("occamy", 0) > 0.9
    assert outcome.speedup("occamy", 1) > 1.1
