"""Busy-cycle fast path: cold-run speed on a steady-loop co-run.

The baseline is the seed execution engine — the ``isinstance``-chain
scalar interpreter (``REPRO_NO_PRE_DECODE=1``) with loop replay off
(``fast_path=False``).  The fast run uses the defaults: pre-decoded
dispatch plus steady-state loop replay.  Both must produce bit-identical
results; the fast run must be at least 2x faster.

The workload is an axpy pair whose array length (6144) is a multiple of
the 48-element per-iteration chunk, so every array pass is tail-free and
the co-run locks into a joint steady state the replay engine can hold.
"""

from __future__ import annotations

import time

from benchmarks.conftest import banner, record_bench, run_once
from repro.common.config import experiment_config
from repro.core.machine import Machine
from repro.core.policies import policy
from tests.conftest import compiled_job, make_axpy, run_fingerprint

LENGTH = 6144
REPEATS = 64
MIN_SPEEDUP = 2.0


def _run(fast_path):
    config = experiment_config()
    jobs = [
        compiled_job(make_axpy(LENGTH, REPEATS), 0),
        compiled_job(make_axpy(LENGTH, REPEATS), 1),
    ]
    machine = Machine(config, policy("occamy"), jobs)
    result = machine.run(fast_path=fast_path)
    return result, machine.profile


def test_loop_replay_speedup(benchmark, monkeypatch):
    monkeypatch.setenv("REPRO_NO_PRE_DECODE", "1")
    start = time.perf_counter()
    slow_result, _ = _run(fast_path=False)
    slow_seconds = time.perf_counter() - start
    monkeypatch.delenv("REPRO_NO_PRE_DECODE")

    def fast():
        return _run(fast_path=True)

    start = time.perf_counter()
    fast_result, profile = run_once(benchmark, fast)
    fast_seconds = time.perf_counter() - start
    speedup = slow_seconds / max(fast_seconds, 1e-9)
    replayed_pct = 100.0 * profile.replayed_cycles / max(1, profile.total_cycles)

    banner("Busy-cycle fast path — seed interpreter vs replayed steady loops")
    print(f"workload: axpy{LENGTH} x{REPEATS} pair, occamy policy")
    print(f"seed engine: {slow_seconds:.2f}s (pre-decode off, replay off)")
    print(f"fast path:   {fast_seconds:.2f}s ({replayed_pct:.1f}% of cycles replayed)")
    print(f"speedup: {speedup:.2f}x (required: >= {MIN_SPEEDUP:.1f}x)")
    print()
    print(profile.report())
    benchmark.extra_info["slow_seconds"] = slow_seconds
    benchmark.extra_info["fast_seconds"] = fast_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["replayed_pct"] = replayed_pct
    record_bench(
        "loop_replay", speedup, slow_seconds, fast_seconds,
        extra={"replayed_pct": replayed_pct},
    )

    assert run_fingerprint(fast_result) == run_fingerprint(slow_result)
    assert profile.replayed_cycles > 0
    assert speedup >= MIN_SPEEDUP
