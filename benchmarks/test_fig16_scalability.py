"""Fig. 16: scaling to four cores — four SPEC workload groups with two
memory-intensive workloads on Core0/1 and two compute-intensive ones on
Core2/3 (the last group runs three memory + one compute).

Paper reference: Occamy fares like Private/FTS/VLS on the memory cores
but delivers the best speedups on Core2/Core3, scaling well from 2 to 4
cores; FTS must grow its VRF by 33.5% to even compete (see Fig. 12 bench).
"""

from benchmarks.conftest import banner, run_once
from repro.analysis.experiments import four_core_fig16
from repro.analysis.reporting import format_table, geomean
from repro.workloads.pairs import FOUR_CORE_GROUPS

POLICIES = ("fts", "vls", "occamy")


def test_fig16_four_core_scalability(benchmark, bench_scale):
    results = run_once(benchmark, lambda: four_core_fig16(scale=bench_scale))

    rows = []
    compute_speedups = {key: [] for key in POLICIES}
    for group, per_policy in zip(FOUR_CORE_GROUPS, results):
        private = per_policy["private"]
        for key in POLICIES:
            speedups = [
                per_policy[key].speedup_over(private, core) for core in range(4)
            ]
            compute_speedups[key] += speedups[2:]
            rows.append(
                ["+".join(map(str, group)), key]
                + [f"{s:.2f}" for s in speedups]
            )
    for key in POLICIES:
        rows.append(["GM (core2/3)", key, "", "",
                     f"{geomean(compute_speedups[key]):.2f}", ""])
    banner("Fig. 16 — 4-core speedups over Private")
    print(format_table(["group", "arch", "c0", "c1", "c2", "c3"], rows))

    gm = {key: geomean(compute_speedups[key]) for key in POLICIES}
    benchmark.extra_info["gm_compute_cores"] = gm

    # Shape: Occamy delivers the best compute-core speedups at 4 cores.
    assert gm["occamy"] > 1.1
    assert gm["occamy"] >= max(gm["fts"], gm["vls"]) - 0.02
