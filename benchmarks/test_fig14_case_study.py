"""Fig. 14: Case 1 study — WL20 (sff2+sff5, memory) + WL17 (wsm52, compute).

Paper reference: (a) WL20.p1 stops gaining beyond 8 lanes and WL20.p2
beyond 12, while WL17 keeps gaining; (b) Occamy's lane plan for WL17 steps
through 24/20/32 lanes as WL20's phases come and go; (c) Occamy lifts the
memory phases' SIMD issue rates (0.96 -> 1.88 for p1 on the paper's
numbers) without renaming stalls, unlike FTS.
"""

from benchmarks.conftest import banner, run_once
from repro.analysis.experiments import case_study_fig14
from repro.analysis.reporting import format_table
from repro.coproc.metrics import StallReason


def test_fig14_case_study(benchmark, bench_scale):
    result = run_once(benchmark, lambda: case_study_fig14(scale=bench_scale))

    # (a) normalised execution time vs lane count.
    p1 = result.normalized_times(0)
    p2 = result.normalized_times(1)
    comp = result.normalized_compute_times()
    lanes = sorted(p1)
    rows = [
        [f"{l} lanes", f"{p1[l]:.2f}", f"{p2[l]:.2f}", f"{comp[l]:.2f}"]
        for l in lanes
    ]
    banner("Fig. 14(a) — normalised time vs #lanes (WL20.p1 / WL20.p2 / WL17)")
    print(format_table(["lanes", "WL20.p1", "WL20.p2", "WL17"], rows))

    # (b) lane allocation timeline for WL17 under Occamy.
    banner("Fig. 14(b) — WL17 lane allocation under Occamy")
    print(result.lane_timeline("occamy", 1))

    # (c) per-phase issue rates.
    rows = []
    for key in ("private", "vls", "fts", "occamy"):
        mem_rates = result.issue_rates(key, 0)
        comp_rates = result.issue_rates(key, 1)
        run = result.corun[key]
        rows.append(
            [key]
            + [f"{rate:.2f}" for rate in mem_rates[:2]]
            + [f"{comp_rates[0]:.2f}" if comp_rates else "-"]
            + [f"{100 * run.metrics.stall_fraction(1, StallReason.RENAME):.0f}%"]
        )
    banner("Fig. 14(c) — SIMD issue rates (WL20.p1, WL20.p2, WL17) + FTS stalls")
    print(format_table(["arch", "20.p1", "20.p2", "17", "rename(c1)"], rows))

    benchmark.extra_info["normalized_p1"] = p1
    benchmark.extra_info["normalized_p2"] = p2

    # Shape: the memory phases flatten at few lanes; the compute workload
    # keeps improving through 28 lanes.
    assert p1[8] <= p1[4]
    assert p1[28] > 0.8 * p1[8]  # no performance gain beyond the knee
    assert p2[28] > 0.8 * p2[12]
    assert comp[28] < 0.45 * comp[4]  # WL17 always benefits with more lanes
    # Occamy steps WL17 through more lanes once WL20 finishes.
    timeline = [v for _, v in result.lane_timeline("occamy", 1)]
    assert max(timeline) == 32
    # Occamy keeps the compute core free of renaming stalls, unlike FTS.
    occ = result.corun["occamy"].metrics.stall_fraction(1, StallReason.RENAME)
    fts = result.corun["fts"].metrics.stall_fraction(1, StallReason.RENAME)
    assert occ < 0.05 < fts
