"""Sensitivity study: where does elastic sharing pay off?

Not a paper figure — DESIGN.md's parameter-sensitivity study.  Sweeps one
machine parameter at a time on the motivating pair and reports Occamy's
compute-core speedup over Private:

* more **total lanes** leave more slack for the elastic policy to
  reassign, so the benefit grows with the pool;
* scarcer **DRAM bandwidth** saturates memory phases earlier, freeing
  lanes (benefit grows as bandwidth shrinks);
* the **in-flight window** sets how early a streaming phase becomes
  bandwidth- rather than latency-bound.
"""

from benchmarks.conftest import banner, run_once
from repro.analysis.reporting import format_table
from repro.analysis.sensitivity import SWEEPS, sweep


def test_sensitivity_sweeps(benchmark, bench_scale):
    scale = min(bench_scale, 0.35)

    def run_all():
        return {name: sweep(name, scale=scale) for name in SWEEPS}

    results = run_once(benchmark, run_all)

    for name, points in results.items():
        rows = [
            [
                point.value,
                point.private_cycles,
                point.occamy_cycles,
                f"{point.compute_speedup:.2f}",
                f"{point.memory_speedup:.2f}",
                f"{point.utilization_gain:.2f}",
            ]
            for point in points
        ]
        banner(f"Sensitivity — {name}")
        print(
            format_table(
                [name, "private cyc", "occamy cyc", "sp1", "sp0", "util gain"],
                rows,
            )
        )

    lanes = {p.value: p.compute_speedup for p in results["total_lanes"]}
    # More lanes -> more elastic benefit on the compute core.
    assert lanes[64] > lanes[16]
    # Elastic sharing never devastates either core at any point.
    for points in results.values():
        for point in points:
            assert point.memory_speedup > 0.8
            assert point.compute_speedup > 0.9

    benchmark.extra_info["lanes_speedups"] = lanes
