"""Fig. 2: the motivating example — four architectures co-running
654.rom_s (WL#0, memory-intensive, two phases) and 621.wrf_s (WL#1,
compute-intensive) on two cores.

Paper reference (Fig. 2(f)): with Private as baseline, the WL#1 speedups
are FTS 1.41x, VLS 1.25x, Occamy 1.62x while WL#0 stays at ~1.0x; SIMD
utilisation is 60.6 / 84.7 / 75.6 / 96.7 %.  Occamy's lane plan replays
Fig. 8: 8 -> 12 lanes for WL#0 and 24 -> 20 -> 32 for WL#1.
"""

from benchmarks.conftest import banner, run_once
from repro.analysis.experiments import motivation_fig2
from repro.analysis.reporting import format_series, format_table

PAPER = {
    "private": {"sp1": 1.00, "util": 0.606},
    "fts": {"sp1": 1.41, "util": 0.847},
    "vls": {"sp1": 1.25, "util": 0.756},
    "occamy": {"sp1": 1.62, "util": 0.967},
}


def test_fig02_motivating_example(benchmark, bench_scale):
    result = run_once(benchmark, lambda: motivation_fig2(scale=bench_scale))

    rows = []
    for key in ("private", "fts", "vls", "occamy"):
        run = result.results[key]
        rows.append(
            [
                key,
                run.core_time(0),
                run.core_time(1),
                f"{result.speedup(key, 0):.2f}",
                f"{result.speedup(key, 1):.2f}",
                f"{PAPER[key]['sp1']:.2f}",
                f"{100 * result.utilization(key):.1f}%",
                f"{100 * PAPER[key]['util']:.1f}%",
            ]
        )
    banner("Fig. 2(f) — motivating example (paper values in brackets)")
    print(
        format_table(
            ["arch", "WL#0 cyc", "WL#1 cyc", "sp0", "sp1", "sp1(paper)",
             "util", "util(paper)"],
            rows,
        )
    )
    banner("Fig. 2(b)-(e) — busy lanes per core (1000-cycle buckets)")
    for key in ("private", "occamy"):
        for core in (0, 1):
            print(format_series(f"{key} core{core}", result.lane_series(key, core)))
    plans = result.results["occamy"].lane_manager.plan_history
    print("Occamy lane plans (cycle -> {core: lanes}):", plans[:8])

    benchmark.extra_info["speedups_core1"] = {
        key: result.speedup(key, 1) for key in PAPER
    }
    benchmark.extra_info["utilization"] = {
        key: result.utilization(key) for key in PAPER
    }

    # Shape assertions: who wins and roughly how.
    assert result.speedup("occamy", 1) > result.speedup("vls", 1) > 1.1
    assert result.speedup("fts", 1) > 1.0
    assert 0.85 < result.speedup("occamy", 0) < 1.15  # WL#0 preserved
    utils = {key: result.utilization(key) for key in PAPER}
    assert utils["occamy"] == max(utils.values())
    core0_plans = [plan[0] for _, plan in plans if plan.get(0)]
    assert core0_plans[0] == 8 and 12 in core0_plans  # Fig. 8 schedule
