"""Fig. 10: per-pair speedups of FTS/VLS/Occamy over Private on both cores
across the 25 co-running pairs.

Paper reference: geometric-mean Core1 speedups are FTS 1.20x, VLS 1.11x
and Occamy 1.39x, with Core0 performance preserved (~1.0x) everywhere.
"""

from benchmarks.conftest import banner, run_once
from repro.analysis.experiments import sweep_pairs
from repro.analysis.reporting import format_table, geomean

PAPER_GM_CORE1 = {"fts": 1.20, "vls": 1.11, "occamy": 1.39}


def test_fig10_speedups(benchmark, bench_scale):
    outcomes = run_once(benchmark, lambda: sweep_pairs(scale=bench_scale))

    rows = []
    for outcome in outcomes:
        rows.append(
            [str(outcome.pair)]
            + [f"{outcome.speedup(key, 1):.2f}" for key in ("fts", "vls", "occamy")]
            + [f"{outcome.speedup('occamy', 0):.2f}"]
        )
    gms = {
        key: geomean([o.speedup(key, 1) for o in outcomes])
        for key in ("fts", "vls", "occamy")
    }
    gm0 = {
        key: geomean([o.speedup(key, 0) for o in outcomes])
        for key in ("fts", "vls", "occamy")
    }
    rows.append(["GM", f"{gms['fts']:.2f}", f"{gms['vls']:.2f}",
                 f"{gms['occamy']:.2f}", f"{gm0['occamy']:.2f}"])
    rows.append(["GM(paper)", "1.20", "1.11", "1.39", "~1.00"])
    banner("Fig. 10 — Core1 speedups over Private (last column: Occamy Core0)")
    print(format_table(["pair", "FTS", "VLS", "Occamy", "Occ.c0"], rows))

    benchmark.extra_info["gm_core1"] = gms
    benchmark.extra_info["gm_core0"] = gm0

    # Shape: Occamy has the best geometric mean and preserves Core0.
    assert gms["occamy"] > max(gms["fts"], gms["vls"])
    assert gms["occamy"] > 1.15
    for key in ("fts", "vls", "occamy"):
        assert 0.85 < gm0[key] < 1.2
