"""Batch-execute backend: cold-run speed on a stall-heavy co-run.

The baseline is the reference dispatcher with every other accelerator a
batch run would subsume also disabled (``REPRO_NO_BATCH_EXEC=1`` plus
``REPRO_NO_EVENT_WHEEL=1``): each cycle walks every in-flight window
entry per core, re-deciding budgets, renaming and memory admission one
lane-operation at a time — and re-scanning full stalled windows for
nothing.  The fast run enables only the batch backend: pools keep the
ready-set index hot, each cycle's dispatchable entries are planned with
shadow state and applied as opcode groups (short compute, long compute,
age-ordered memory), commit drains in one prefix scan and metrics land
as bulk aggregates.  Loop replay and the event wheel stay off on *both*
sides so the measurement isolates the batch backend.

The workload is the shape batching exists for: two cores stream
DRAM-resident axpys and one runs a five-point stencil (deep windows
full of same-opcode lane-operations that stall in bulk on memory), while
the fourth turns over a Vec-Cache-resident dot product whose dependency
chain keeps its window full every cycle.  Both runs must be
bit-identical; batch execution must be at least 2x faster.
"""

from __future__ import annotations

import time

from benchmarks.conftest import banner, record_bench, run_once
from repro.common.config import experiment_config
from repro.core.machine import Machine
from repro.core.policies import policy
from tests.conftest import (
    compiled_job,
    make_axpy,
    make_reduction,
    make_stencil,
    run_fingerprint,
)

NUM_CORES = 4
STREAM_LENGTH = 24576  # 2 x 96 KiB arrays: misses the 128 KiB scaled L2
STENCIL_LENGTH = 8192
DOT_LENGTH = 256  # Vec-Cache resident
DOT_REPEATS = 96
MIN_SPEEDUP = 2.0


def _run(monkeypatch, batch_exec):
    monkeypatch.setenv("REPRO_NO_LOOP_REPLAY", "1")
    monkeypatch.setenv("REPRO_NO_EVENT_WHEEL", "1")
    if batch_exec:
        monkeypatch.delenv("REPRO_NO_BATCH_EXEC", raising=False)
    else:
        monkeypatch.setenv("REPRO_NO_BATCH_EXEC", "1")
    config = experiment_config(num_cores=NUM_CORES)
    jobs = [
        compiled_job(make_axpy(STREAM_LENGTH), 0),
        compiled_job(make_axpy(STREAM_LENGTH), 1),
        compiled_job(make_stencil(STENCIL_LENGTH), 2),
        compiled_job(make_reduction(DOT_LENGTH, DOT_REPEATS), 3),
    ]
    machine = Machine(config, policy("occamy"), jobs)
    result = machine.run()
    return result, machine.profile


def test_batch_exec_speedup(benchmark, monkeypatch):
    start = time.perf_counter()
    slow_result, _ = _run(monkeypatch, batch_exec=False)
    slow_seconds = time.perf_counter() - start

    def fast():
        return _run(monkeypatch, batch_exec=True)

    start = time.perf_counter()
    fast_result, profile = run_once(benchmark, fast)
    fast_seconds = time.perf_counter() - start
    speedup = slow_seconds / max(fast_seconds, 1e-9)
    calls = profile.batched_dispatch_calls + profile.scalar_dispatch_calls
    batched_pct = 100.0 * profile.batched_dispatch_calls / max(1, calls)

    banner("Batch-execute backend — per-lane dispatch vs opcode-grouped bulk")
    print(
        f"workload: 2x axpy{STREAM_LENGTH} (DRAM streams) + "
        f"stencil{STENCIL_LENGTH} co-running dot{DOT_LENGTH} x{DOT_REPEATS} "
        f"(resident), occamy policy, {NUM_CORES} cores"
    )
    print(f"per-lane dispatch: {slow_seconds:.2f}s (reference scan, every entry)")
    print(
        f"batch execute:     {fast_seconds:.2f}s "
        f"({profile.batched_dispatch_calls} batched calls, "
        f"{profile.scalar_dispatch_calls} scalar fallbacks, "
        f"{batched_pct:.1f}% batched)"
    )
    print(f"speedup: {speedup:.2f}x (required: >= {MIN_SPEEDUP:.1f}x)")
    print()
    print(profile.report())
    benchmark.extra_info["slow_seconds"] = slow_seconds
    benchmark.extra_info["fast_seconds"] = fast_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["batched_dispatch_calls"] = profile.batched_dispatch_calls
    benchmark.extra_info["scalar_dispatch_calls"] = profile.scalar_dispatch_calls
    record_bench(
        "batch_exec", speedup, slow_seconds, fast_seconds,
        extra={"batched_dispatch_calls": profile.batched_dispatch_calls,
               "scalar_dispatch_calls": profile.scalar_dispatch_calls},
    )

    assert run_fingerprint(fast_result) == run_fingerprint(slow_result)
    assert profile.batched_dispatch_calls > 0
    assert speedup >= MIN_SPEEDUP
