"""Fig. 13: fraction of cycles stalled waiting for free registers on FTS.

Paper reference: renaming stalls occupy over 70% of cycles on FTS
(geometric mean across pairs and cores) and essentially none on the other
three architectures — the cost of keeping every core's full-width context
resident in the shared VRF.
"""

from benchmarks.conftest import banner, run_once
from repro.analysis.experiments import sweep_pairs
from repro.analysis.reporting import format_table, geomean


def test_fig13_rename_stalls(benchmark, bench_scale):
    outcomes = run_once(benchmark, lambda: sweep_pairs(scale=bench_scale))

    rows = []
    for outcome in outcomes:
        rows.append(
            [
                str(outcome.pair),
                f"{100 * outcome.rename_stall_fraction('fts', 0):.0f}%",
                f"{100 * outcome.rename_stall_fraction('fts', 1):.0f}%",
                f"{100 * outcome.rename_stall_fraction('occamy', 0):.0f}%",
                f"{100 * outcome.rename_stall_fraction('occamy', 1):.0f}%",
            ]
        )
    fts_fractions = [
        max(o.rename_stall_fraction("fts", core) for core in (0, 1))
        for o in outcomes
    ]
    others = [
        o.rename_stall_fraction(key, core)
        for o in outcomes
        for key in ("private", "vls", "occamy")
        for core in (0, 1)
    ]
    gm_fts = geomean([f for f in fts_fractions if f > 0])
    rows.append(["GM(FTS, worst core)", f"{100 * gm_fts:.0f}%", "", "", ""])
    rows.append(["paper", ">70%", "", "~0%", ""])
    banner("Fig. 13 — cycles stalled waiting for free registers")
    print(format_table(["pair", "FTS c0", "FTS c1", "Occ c0", "Occ c1"], rows))

    benchmark.extra_info["gm_fts_rename_stall"] = gm_fts

    assert gm_fts > 0.4  # dominant on FTS (paper: > 0.7)
    assert max(others) < 0.05  # hardly any on the other three
