"""Model fidelity: the analytical models vs the cycle-approximate machine.

Not a paper figure — a validation study for DESIGN.md.  Two gates:

* the Eq. 4 roofline the lane manager plans with: its *ordering* (more
  attainable performance -> more achieved throughput) and saturation
  knees must track the simulator for the plans to make sense;
* the ECM cycle predictor (``repro.analysis.ecm``): its *absolute*
  predictions feed the service scheduler's cold-start prior and the
  ``repro perf-report`` error tables, so its geomean relative cycle
  error across the Table 3 workloads under occamy/fts/cts is CI-gated
  at ``ECM_ERROR_GATE``.
"""

from benchmarks.conftest import banner, run_once
from repro.analysis.perf_report import ECM_ERROR_GATE
from repro.analysis.reporting import format_table
from repro.analysis.validation import validate_ecm, validate_phase
from repro.workloads.spec import spec_workload


def test_roofline_tracks_machine(benchmark, bench_scale):
    scale = min(bench_scale, 0.2)

    def run_all():
        return {
            # wsm52: compute-intensive, Vec-Cache resident -> scales to 32.
            "wsm52 (compute)": validate_phase(spec_workload(17, scale=scale)),
            # sff2: streaming, low intensity -> saturates early.
            "sff2 (memory)": validate_phase(spec_workload(20, scale=scale)),
            # rho_eos2: the Case 4 phase with data reuse.
            "rho_eos2 (reuse)": validate_phase(spec_workload(19, scale=scale)),
        }

    results = run_once(benchmark, run_all)

    for label, validation in results.items():
        rows = [
            [p.lanes, f"{p.predicted:.2f}", f"{p.achieved:.2f}", p.phase_cycles]
            for p in validation.points
        ]
        banner(
            f"Model vs machine — {label}  (oi={validation.oi_issue:.2f}/"
            f"{validation.oi_mem:.2f} [{validation.level}])"
        )
        print(format_table(["lanes", "predicted AP", "achieved", "cycles"], rows))
        print(
            f"knees: predicted={validation.predicted_knee} "
            f"measured={validation.measured_knee}; "
            f"ordering agreement={100 * validation.ordering_agreement:.0f}%"
        )

    compute = results["wsm52 (compute)"]
    memory = results["sff2 (memory)"]
    # The compute phase keeps gaining to the last lane in both worlds.
    assert compute.predicted_knee == 32
    assert compute.measured_knee >= 24
    # The memory phase saturates early in both worlds (8 lanes reaches
    # ~87% of peak in the machine; the 90%-threshold knee lands by 16).
    assert memory.predicted_knee <= 8
    assert memory.measured_knee <= 16
    # And the model orders lane choices like the machine does.
    for validation in results.values():
        assert validation.ordering_agreement >= 0.7

    benchmark.extra_info["agreement"] = {
        label: validation.ordering_agreement
        for label, validation in results.items()
    }


def test_ecm_tracks_machine(benchmark, bench_scale):
    """ECM absolute cycle predictions vs full policy runs (CI gate).

    Sweeps every Table 3 workload solo under occamy/fts/cts and requires
    the geomean relative cycle error to stay under the gate the perf
    report publishes (``ECM_ERROR_GATE``).
    """
    scale = min(bench_scale, 0.1)

    validation = run_once(benchmark, lambda: validate_ecm(scale=scale))

    banner(f"ECM vs machine — {len(validation.points)} points @ scale {scale}")
    print(
        format_table(
            [
                "workload",
                "policy",
                "predicted",
                "non-overlap",
                "measured",
                "error",
                "pred IPC",
                "meas IPC",
            ],
            validation.table_rows(),
        )
    )
    by_policy = validation.errors_by_policy()
    print(
        "geomean error: "
        + " ".join(f"{key}={100 * err:.1f}%" for key, err in by_policy.items())
        + f"  overall={100 * validation.geomean_error:.1f}% "
        f"(max {100 * validation.max_error:.1f}%, gate {100 * ECM_ERROR_GATE:.0f}%)"
    )

    assert validation.points, "validation sweep produced no points"
    assert validation.geomean_error <= ECM_ERROR_GATE
    # No single workload/policy should be wildly off even when the
    # geomean looks healthy.
    assert validation.max_error <= 2 * ECM_ERROR_GATE

    benchmark.extra_info["ecm_geomean_error"] = validation.geomean_error
    benchmark.extra_info["ecm_errors_by_policy"] = by_policy
