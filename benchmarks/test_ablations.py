"""Ablations: what each ingredient of Occamy's design buys.

Not a paper figure — DESIGN.md's per-design-choice study.  Four variants
of the elastic policy run the motivating pair (and a resident-compute
pair for the hierarchical-roofline ablation):

* full Occamy (roofline greedy + lazy monitor);
* ``equal-split`` (no phase-behaviour awareness);
* ``flat-memory`` (no hierarchical roofline);
* ``eager-only`` (no lazy monitor — compiled with ``elastic=False``).
"""

from benchmarks.conftest import banner, run_once
from repro import Job, OCCAMY, PRIVATE, build_image, compile_kernel, run_policy
from repro.analysis.reporting import format_table
from repro.common.config import experiment_config
from repro.compiler.pipeline import CompileOptions
from repro.core.ablations import EQUAL_SPLIT, FLAT_MEMORY, NO_ISSUE_CEILING
from repro.workloads.motivating import motivating_pair
from repro.workloads.pairs import CoRunPair, jobs_for_pair


def _run_motivating(scale):
    config = experiment_config()
    wl0, wl1 = motivating_pair(scale)
    elastic = CompileOptions(memory=config.memory)
    eager_only = CompileOptions(memory=config.memory, elastic=False)
    programs = {
        "elastic": (compile_kernel(wl0, elastic), compile_kernel(wl1, elastic)),
        "eager": (compile_kernel(wl0, eager_only), compile_kernel(wl1, eager_only)),
    }

    def jobs(kind):
        p0, p1 = programs[kind]
        return [Job(p0, build_image(wl0, 0)), Job(p1, build_image(wl1, 1))]

    results = {
        "private": run_policy(config, PRIVATE, jobs("elastic")),
        "occamy (full)": run_policy(config, OCCAMY, jobs("elastic")),
        "equal-split": run_policy(config, EQUAL_SPLIT, jobs("elastic")),
        "no-issue-ceiling": run_policy(config, NO_ISSUE_CEILING, jobs("elastic")),
        "eager-only": run_policy(config, OCCAMY, jobs("eager")),
    }
    return results


def test_ablations_motivating_pair(benchmark, bench_scale):
    scale = max(bench_scale, 0.5)
    results = run_once(benchmark, lambda: _run_motivating(scale))

    base = results["private"]
    rows = []
    for key, result in results.items():
        rows.append(
            [
                key,
                f"{result.speedup_over(base, 0):.2f}",
                f"{result.speedup_over(base, 1):.2f}",
                f"{100 * result.metrics.simd_utilization():.1f}%",
            ]
        )
    banner("Ablations — motivating pair (speedups over Private)")
    print(format_table(["variant", "sp0 (memory)", "sp1 (compute)", "util"], rows))

    full = results["occamy (full)"]
    # Equal split ignores phase behaviour: the compute core gets only half
    # the lanes while co-running, losing speedup vs the full design.
    assert full.speedup_over(base, 1) > results["equal-split"].speedup_over(base, 1)
    # Without the lazy monitor a phase can never shrink mid-flight, so a
    # co-runner entering a more demanding phase spins on MSR <VL> until the
    # hog exits — the memory core's performance collapses.  The full design
    # preserves it.
    assert full.speedup_over(base, 0) > 0.95
    assert results["eager-only"].speedup_over(base, 0) < 0.9
    # Dropping the issue ceiling under-allocates memory phases (Case 4):
    # the compute core gains lanes but the memory core pays for them.
    assert results["no-issue-ceiling"].speedup_over(base, 0) < 0.9
    # The full design achieves the best overall SIMD utilisation.
    utils = {k: r.metrics.simd_utilization() for k, r in results.items()}
    assert utils["occamy (full)"] == max(utils.values())

    benchmark.extra_info["speedups_core1"] = {
        key: result.speedup_over(base, 1) for key, result in results.items()
    }


def test_ablation_hierarchical_roofline(benchmark, bench_scale):
    # Pair 1+13: WL13 (set_vbc, oi 0.56) is Vec-Cache resident.  The flat
    # (DRAM-only) roofline caps it at 32*0.56 ~ 18 lanes; the hierarchical
    # roofline lets it take everything once WL1 finishes.
    config = experiment_config()
    pair = CoRunPair("spec", 1, 13)

    def runs():
        return {
            "private": run_policy(config, PRIVATE, jobs_for_pair(pair, bench_scale)),
            "occamy (full)": run_policy(config, OCCAMY, jobs_for_pair(pair, bench_scale)),
            "flat-memory": run_policy(config, FLAT_MEMORY, jobs_for_pair(pair, bench_scale)),
        }

    results = run_once(benchmark, runs)
    base = results["private"]
    rows = [
        [key, f"{r.speedup_over(base, 1):.2f}",
         f"{max(v for _, v in r.metrics.lane_timeline[1].points or [(0, 0)]):.0f}"]
        for key, r in results.items()
    ]
    banner("Ablation — hierarchical roofline (pair spec:1+13, Core1)")
    print(format_table(["variant", "sp1", "peak lanes (c1)"], rows))

    full = results["occamy (full)"]
    flat = results["flat-memory"]
    assert full.speedup_over(base, 1) > flat.speedup_over(base, 1)
    peak_full = max(v for _, v in full.metrics.lane_timeline[1].points)
    peak_flat = max(v for _, v in flat.metrics.lane_timeline[1].points)
    assert peak_full > peak_flat
