"""Compiler-knob study: FMA fusion and the Fig. 9 strip length ``s``.

Not a paper figure — quantifies the compiler optimisations the paper
leaves to "any existing vectorization algorithm" (§6.4/§8).  FMA fusion
halves the multiply-add issue slots: with a deep enough out-of-order
window both the parallel bank and the serial chain speed up (the window
overlaps enough iterations to hide the fused chain's longer per-iteration
dependency path).  Compiling *without* the residency hint shows a subtle
interaction instead: fusion lowers the phase's Eq. 5 intensity, and a
DRAM-level roofline then grants the loop fewer lanes — an example of why
the hierarchical hint matters.
"""

from benchmarks.conftest import banner, run_once
from repro import Job, OCCAMY, build_image, compile_kernel, run_policy
from repro.analysis.reporting import format_table
from repro.common.config import experiment_config
from repro.compiler.ir import Assign, BinOp, Kernel, Load, Loop, Param
from repro.compiler.pipeline import CompileOptions


def parallel_bank(units: int = 6, trip: int = 1024, repeats: int = 60) -> Kernel:
    """Independent mads sharing one stream: out_j = c_j * x + d_j."""
    body = tuple(
        Assign(
            f"out{index}",
            BinOp("add", BinOp("mul", Param(f"c{index}"), Load("x")), Param(f"d{index}")),
        )
        for index in range(units)
    )
    params = {f"c{index}": 1.0 + 0.1 * index for index in range(units)}
    params.update({f"d{index}": 0.5 + 0.01 * index for index in range(units)})
    return Kernel(
        "bank", array_length=trip,
        loops=(Loop("bank", trip_count=trip, repeats=repeats, body=body),),
        params=params,
    )


def serial_chain(terms: int = 6, trip: int = 1024, repeats: int = 60) -> Kernel:
    """A serial accumulation: out = (((c0*x0) + c1*x1) + ...)."""
    expr = BinOp("mul", Param("c0"), Load("in0"))
    for index in range(1, terms):
        expr = BinOp("add", expr, BinOp("mul", Param(f"c{index}"), Load(f"in{index}")))
    return Kernel(
        "chain", array_length=trip,
        loops=(Loop("chain", trip_count=trip, repeats=repeats, body=(Assign("out", expr),)),),
        params={f"c{index}": 1.0 + 0.1 * index for index in range(terms)},
    )


def _run(kernel: Kernel, options: CompileOptions):
    import dataclasses

    config = experiment_config()
    options = dataclasses.replace(options, memory=config.memory)
    program = compile_kernel(kernel, options)
    result = run_policy(config, OCCAMY, [Job(program, build_image(kernel, 0)), None])
    return result.total_cycles, result.metrics.compute_uops[0]


def test_fma_fusion_and_unrolling(benchmark, bench_scale):
    def run_all():
        out = {}
        for shape, kernel_factory in (("parallel", parallel_bank), ("serial", serial_chain)):
            for label, options in (
                ("baseline", CompileOptions()),
                ("fma", CompileOptions(fuse_fma=True)),
                ("unroll4", CompileOptions(unroll=4)),
                ("fma+unroll4", CompileOptions(fuse_fma=True, unroll=4)),
            ):
                out[(shape, label)] = _run(kernel_factory(), options)
        return out

    data = run_once(benchmark, run_all)

    rows = [
        [
            label,
            data[("parallel", label)][0],
            data[("parallel", label)][1],
            data[("serial", label)][0],
        ]
        for label in ("baseline", "fma", "unroll4", "fma+unroll4")
    ]
    banner("Compiler knobs — Occamy (parallel bank cycles/uops; serial cycles)")
    print(format_table(
        ["variant", "bank cycles", "bank compute uops", "chain cycles"], rows
    ))

    # Fusion halves the bank's dynamic compute-uop count and converts the
    # saved issue slots into cycles.
    assert (
        data[("parallel", "fma")][1] < 0.65 * data[("parallel", "baseline")][1]
    )
    assert data[("parallel", "fma")][0] < data[("parallel", "baseline")][0] * 0.85
    # The serial chain also gains: the OoO window overlaps iterations, so
    # throughput (issue slots), not the chain latency, is what binds.
    assert data[("serial", "fma")][0] <= data[("serial", "baseline")][0]
    # Unrolling never hurts the parallel bank.
    assert data[("parallel", "unroll4")][0] <= data[("parallel", "baseline")][0] * 1.05

    benchmark.extra_info["cycles"] = {
        f"{shape}/{label}": values[0] for (shape, label), values in data.items()
    }
