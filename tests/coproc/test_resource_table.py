"""ResourceTbl semantics (§4.2.1/§4.2.2)."""

import pytest

from repro.common.errors import ProtocolError
from repro.coproc.resource_table import ResourceTable
from repro.isa.registers import AL, DECISION, OI, STATUS, VL, OIValue


@pytest.fixture
def table():
    return ResourceTable(num_cores=2, total_lanes=32)


class TestApplyVL:
    def test_grant_from_free_pool(self, table):
        assert table.apply_vl(0, 8)
        assert table.vl(0) == 8
        assert table.free_lanes == 24
        assert table.status(0) == 1

    def test_grow_and_shrink(self, table):
        table.apply_vl(0, 8)
        assert table.apply_vl(0, 12)
        assert table.free_lanes == 20
        assert table.apply_vl(0, 4)
        assert table.free_lanes == 28

    def test_release_all(self, table):
        table.apply_vl(0, 16)
        assert table.apply_vl(0, 0)
        assert table.free_lanes == 32

    def test_infeasible_request_fails_with_status_zero(self, table):
        table.apply_vl(0, 24)
        assert not table.apply_vl(1, 16)
        assert table.status(1) == 0
        assert table.vl(1) == 0
        assert table.free_lanes == 8

    def test_exact_fit_succeeds(self, table):
        table.apply_vl(0, 24)
        assert table.apply_vl(1, 8)

    def test_out_of_range_raises(self, table):
        with pytest.raises(ProtocolError):
            table.apply_vl(0, 33)
        with pytest.raises(ProtocolError):
            table.apply_vl(0, -1)

    def test_invariant_holds(self, table):
        table.apply_vl(0, 8)
        table.apply_vl(1, 20)
        table.check_invariant()

    def test_force_vl_bypasses_accounting(self, table):
        table.force_vl(0, 32)
        table.force_vl(1, 32)
        assert table.vl(0) == table.vl(1) == 32
        assert table.free_lanes == 32  # AL untouched under temporal sharing
        with pytest.raises(ProtocolError):
            table.check_invariant()


class TestReads:
    def test_read_dispatch(self, table):
        table.set_oi(0, OIValue(0.5, 0.25))
        table.set_decision(0, 12)
        table.apply_vl(0, 8)
        assert table.read(0, OI) == OIValue(0.5, 0.25)
        assert table.read(0, DECISION) == 12
        assert table.read(0, VL) == 8
        assert table.read(0, STATUS) == 1
        assert table.read(0, AL) == 24

    def test_running_phases(self, table):
        table.set_oi(0, OIValue(0.5, 0.25))
        table.set_oi(1, OIValue.ZERO)
        assert table.running_phases() == {0: OIValue(0.5, 0.25)}

    def test_unknown_core(self, table):
        with pytest.raises(ProtocolError):
            table.vl(7)

    def test_decision_range_checked(self, table):
        with pytest.raises(ProtocolError):
            table.set_decision(0, 64)
