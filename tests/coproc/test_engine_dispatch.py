"""Co-processor engine dispatch behaviour, probed with crafted programs."""

import numpy as np
import pytest

from repro.common.config import experiment_config
from repro.coproc.coprocessor import CoProcessor, SharingMode
from repro.coproc.metrics import Metrics, StallReason
from repro.core.lane_manager import StaticLaneManager, TemporalLaneManager
from repro.core.scalar_core import ScalarCore
from repro.isa.assembler import assemble
from repro.memory.image import MemoryImage

SETVL = """
setvl:
    msr <VL>, #16
    mrs X3, <status>
    b.ne X3, #1, setvl
"""

INDEPENDENT_COMPUTES = SETVL + """
    mov Xz, #0
    mov Xfull, #64
    whilelt p0, Xz, Xfull
    fdup z0, #1.0, p0
""" + "\n".join(
    f"    fmul z{i}, z0, #1.0{i:02d}, p0" for i in range(1, 9)
) + "\nhalt"

DEPENDENT_CHAIN = SETVL + """
    mov Xz, #0
    mov Xfull, #64
    whilelt p0, Xz, Xfull
    fdup z0, #1.5, p0
""" + "\n".join(
    f"    fmul z{i}, z{i - 1}, #1.01, p0" for i in range(1, 9)
) + "\nhalt"


def run_program(source, mode=SharingMode.SPATIAL, manager=None, cores=(0,)):
    config = experiment_config()
    metrics = Metrics(config.num_cores, config.vector.total_lanes, 2)
    manager = manager or StaticLaneManager({0: 16, 1: 16})
    coproc = CoProcessor(config, mode, metrics, manager)
    scalar_cores = []
    for core_id in cores:
        image = MemoryImage.for_core(core_id)
        image.zeros("a", 256)
        scalar_cores.append(
            ScalarCore(core_id, assemble(source), image, coproc, metrics, config.core)
        )
    cycle = 0
    while not all(c.halted and coproc.drained(c.core_id) for c in scalar_cores):
        for core in scalar_cores:
            core.step(cycle)
        coproc.step(cycle)
        cycle += 1
        assert cycle < 100_000, "did not terminate"
    metrics.close(cycle)
    return metrics, coproc, cycle


class TestDispatchThroughput:
    def test_independent_computes_reach_issue_width(self):
        metrics, _coproc, _cycles = run_program(INDEPENDENT_COMPUTES)
        # Eight independent muls dispatch two per cycle.
        assert metrics.compute_uops[0] >= 8

    def test_dependent_chain_serialised_by_latency(self):
        _m1, _c1, independent = run_program(INDEPENDENT_COMPUTES)
        _m2, _c2, dependent = run_program(DEPENDENT_CHAIN)
        # The chain pays ~compute_latency per link; independents overlap.
        assert dependent > independent + 10

    def test_long_latency_ops_cost_more(self):
        fast = SETVL + """
            mov Xz, #0
            mov Xfull, #64
            whilelt p0, Xz, Xfull
            fdup z0, #2.0, p0
            fmul z1, z0, z0, p0
            faddv Xs, z1
            halt
        """
        slow = fast.replace("fmul z1", "fdiv z1")
        _m1, _c1, mul_cycles = run_program(fast)
        _m2, _c2, div_cycles = run_program(slow)
        assert div_cycles > mul_cycles


class TestTemporalContention:
    def test_global_budget_shared_between_cores(self):
        manager = TemporalLaneManager(32)
        source = INDEPENDENT_COMPUTES.replace("msr <VL>, #16", "msr <VL>, #32")
        solo_metrics, _c, _ = run_program(
            source, mode=SharingMode.TEMPORAL, manager=manager, cores=(0,)
        )
        duo_metrics, _c, _ = run_program(
            source, mode=SharingMode.TEMPORAL, manager=manager, cores=(0, 1)
        )
        # With a co-runner the same program sees issue-budget contention.
        duo_stalls = sum(
            duo_metrics.stalls[core][StallReason.ISSUE_BUDGET] for core in (0, 1)
        )
        solo_stalls = solo_metrics.stalls[0][StallReason.ISSUE_BUDGET]
        assert duo_stalls > solo_stalls

    def test_busy_lanes_counted_full_width(self):
        manager = TemporalLaneManager(32)
        source = INDEPENDENT_COMPUTES.replace("msr <VL>, #16", "msr <VL>, #32")
        metrics, _c, _ = run_program(
            source, mode=SharingMode.TEMPORAL, manager=manager
        )
        # Each uop occupies all 32 lanes under temporal sharing.
        assert metrics.busy_pipe_slots >= 32 * 8


class TestCommitOrdering:
    def test_pool_drains_completely(self):
        _metrics, coproc, _ = run_program(INDEPENDENT_COMPUTES)
        assert coproc.pools[0].empty
        assert coproc.pools[0].transmitted == coproc.pools[0].committed

    def test_renamer_balanced_after_run(self):
        _metrics, coproc, _ = run_program(DEPENDENT_CHAIN)
        assert coproc.renamer.in_flight(0) == 0
