"""Coarse-grained temporal sharing (CTS) arbitration."""

import numpy as np
import pytest

from repro import (
    Job,
    build_image,
    compile_kernel,
    experiment_config,
    reference_execute,
    run_policy,
)
from repro.coproc.coprocessor import SharingMode
from repro.coproc.metrics import StallReason
from repro.core.machine import Machine
from repro.core.policies import CTS, policy
from tests.conftest import compiled_job, make_axpy, make_two_phase


class TestCtsPolicy:
    def test_registered(self):
        assert policy("cts") is CTS
        assert CTS.mode is SharingMode.COARSE_TEMPORAL

    def test_solo_workload_full_width(self, config):
        result = run_policy(config, CTS, [compiled_job(make_axpy()), None])
        lanes = result.metrics.lane_timeline[0]
        assert max(v for _, v in lanes.points) == config.vector.total_lanes

    def test_corun_correctness(self, config):
        kernels = (make_axpy(512), make_two_phase(512))
        jobs = [compiled_job(kernels[0], 0), compiled_job(kernels[1], 1)]
        oracles = [reference_execute(k, j.image) for k, j in zip(kernels, jobs)]
        run_policy(config, CTS, jobs)
        for job, oracle in zip(jobs, oracles):
            for name, array in oracle:
                np.testing.assert_allclose(job.image.array(name), array, rtol=1e-3)

    def test_ownership_rotates(self, config):
        jobs = [
            compiled_job(make_two_phase(512), 0),
            compiled_job(make_two_phase(512), 1),
        ]
        machine = Machine(config, CTS, jobs)
        machine.run()
        assert machine.coproc.cts_switches >= 2

    def test_no_rename_stalls(self, config):
        jobs = [
            compiled_job(make_two_phase(512), 0),
            compiled_job(make_two_phase(512), 1),
        ]
        result = run_policy(config, CTS, jobs)
        for core in (0, 1):
            assert result.metrics.stall_fraction(core, StallReason.RENAME) < 0.02

    def test_non_owner_waits(self, config):
        jobs = [
            compiled_job(make_two_phase(512), 0),
            compiled_job(make_two_phase(512), 1),
        ]
        result = run_policy(config, CTS, jobs)
        # Exclusive ownership shows up as issue-budget stalls on the
        # waiting core.
        waits = sum(
            result.metrics.stalls[core][StallReason.ISSUE_BUDGET]
            for core in (0, 1)
        )
        assert waits > 100

class TestCtsArbitrateEdges:
    """Direct edge-case drives of :meth:`CoProcessor._cts_arbitrate`."""

    @staticmethod
    def _machine(penalty: int, quantum: int) -> Machine:
        import dataclasses

        config = experiment_config()
        vector = dataclasses.replace(
            config.vector, cts_switch_penalty=penalty, cts_quantum=quantum
        )
        config = dataclasses.replace(config, vector=vector)
        jobs = [compiled_job(make_axpy(64), 0), compiled_job(make_axpy(64), 1)]
        return Machine(config, CTS, jobs)

    @staticmethod
    def _fill(coproc, core: int) -> None:
        from repro.coproc.dynamic import DynamicInstruction, EntryKind

        coproc.pools[core].push(
            DynamicInstruction(
                seq=coproc._seq,
                core=core,
                kind=EntryKind.COMPUTE,
                instr=None,
                vl_lanes=4,
                transmit_cycle=0,
            )
        )
        coproc._seq += 1

    def test_penalty_longer_than_quantum_cannot_ping_pong(self):
        machine = self._machine(penalty=100, quantum=10)
        coproc = machine.coproc
        self._fill(coproc, 0)
        self._fill(coproc, 1)
        # Quantum expires at cycle 10 with core 1 waiting: hand over.
        assert coproc._cts_arbitrate(10) is None  # switch + drain starts
        assert coproc._cts_owner == 1
        assert coproc.cts_switches == 1
        # The new quantum starts only after the drain, so ownership cannot
        # bounce back mid-penalty even though quantum < penalty.
        for cycle in range(11, 110):
            assert coproc._cts_arbitrate(cycle) is None
            assert coproc._cts_owner == 1
        assert coproc._cts_arbitrate(110) == 1  # drain over, quantum running
        assert coproc._cts_until == 10 + 100 + 10
        assert coproc.cts_switches == 1

    def test_owner_draining_with_no_waiters_keeps_ownership(self):
        machine = self._machine(penalty=10, quantum=50)
        coproc = machine.coproc
        # Core 0 owns but has nothing in flight and nobody else is waiting:
        # no switch, no penalty — even long past quantum expiry.
        for cycle in (0, 49, 50, 51, 500):
            assert coproc._cts_arbitrate(cycle) == 0
        assert coproc.cts_switches == 0
        # The moment a waiter appears, the idle owner yields immediately.
        self._fill(coproc, 1)
        assert coproc._cts_arbitrate(501) is None  # drain begins
        assert coproc._cts_owner == 1
        assert coproc.cts_switches == 1

    def test_handover_at_exact_quantum_boundary(self):
        machine = self._machine(penalty=0, quantum=64)
        coproc = machine.coproc
        self._fill(coproc, 0)
        self._fill(coproc, 1)
        # One cycle before expiry the busy owner keeps the engine.
        assert coproc._cts_arbitrate(63) == 0
        assert coproc.cts_switches == 0
        # At exactly cts_until the quantum has expired: hand over, and with
        # a zero penalty the new owner dispatches the same cycle.
        assert coproc._cts_arbitrate(64) == 1
        assert coproc.cts_switches == 1
        assert coproc._cts_until == 64 + 64
        assert coproc._cts_blocked_until == 64


class TestCtsPenaltyConfig:
    def test_switch_penalty_configurable(self):
        import dataclasses

        config = experiment_config()
        vector = dataclasses.replace(config.vector, cts_switch_penalty=0, cts_quantum=64)
        fast_config = dataclasses.replace(config, vector=vector)
        jobs = [
            compiled_job(make_two_phase(512), 0),
            compiled_job(make_two_phase(512), 1),
        ]
        fast = run_policy(fast_config, CTS, jobs)
        jobs = [
            compiled_job(make_two_phase(512), 0),
            compiled_job(make_two_phase(512), 1),
        ]
        vector = dataclasses.replace(config.vector, cts_switch_penalty=200, cts_quantum=64)
        slow_config = dataclasses.replace(config, vector=vector)
        slow = run_policy(slow_config, CTS, jobs)
        assert slow.total_cycles > fast.total_cycles
