"""Coarse-grained temporal sharing (CTS) arbitration."""

import numpy as np
import pytest

from repro import (
    Job,
    build_image,
    compile_kernel,
    experiment_config,
    reference_execute,
    run_policy,
)
from repro.coproc.coprocessor import SharingMode
from repro.coproc.metrics import StallReason
from repro.core.machine import Machine
from repro.core.policies import CTS, policy
from tests.conftest import compiled_job, make_axpy, make_two_phase


class TestCtsPolicy:
    def test_registered(self):
        assert policy("cts") is CTS
        assert CTS.mode is SharingMode.COARSE_TEMPORAL

    def test_solo_workload_full_width(self, config):
        result = run_policy(config, CTS, [compiled_job(make_axpy()), None])
        lanes = result.metrics.lane_timeline[0]
        assert max(v for _, v in lanes.points) == config.vector.total_lanes

    def test_corun_correctness(self, config):
        kernels = (make_axpy(512), make_two_phase(512))
        jobs = [compiled_job(kernels[0], 0), compiled_job(kernels[1], 1)]
        oracles = [reference_execute(k, j.image) for k, j in zip(kernels, jobs)]
        run_policy(config, CTS, jobs)
        for job, oracle in zip(jobs, oracles):
            for name, array in oracle:
                np.testing.assert_allclose(job.image.array(name), array, rtol=1e-3)

    def test_ownership_rotates(self, config):
        jobs = [
            compiled_job(make_two_phase(512), 0),
            compiled_job(make_two_phase(512), 1),
        ]
        machine = Machine(config, CTS, jobs)
        machine.run()
        assert machine.coproc.cts_switches >= 2

    def test_no_rename_stalls(self, config):
        jobs = [
            compiled_job(make_two_phase(512), 0),
            compiled_job(make_two_phase(512), 1),
        ]
        result = run_policy(config, CTS, jobs)
        for core in (0, 1):
            assert result.metrics.stall_fraction(core, StallReason.RENAME) < 0.02

    def test_non_owner_waits(self, config):
        jobs = [
            compiled_job(make_two_phase(512), 0),
            compiled_job(make_two_phase(512), 1),
        ]
        result = run_policy(config, CTS, jobs)
        # Exclusive ownership shows up as issue-budget stalls on the
        # waiting core.
        waits = sum(
            result.metrics.stalls[core][StallReason.ISSUE_BUDGET]
            for core in (0, 1)
        )
        assert waits > 100

    def test_switch_penalty_configurable(self):
        import dataclasses

        config = experiment_config()
        vector = dataclasses.replace(config.vector, cts_switch_penalty=0, cts_quantum=64)
        fast_config = dataclasses.replace(config, vector=vector)
        jobs = [
            compiled_job(make_two_phase(512), 0),
            compiled_job(make_two_phase(512), 1),
        ]
        fast = run_policy(fast_config, CTS, jobs)
        jobs = [
            compiled_job(make_two_phase(512), 0),
            compiled_job(make_two_phase(512), 1),
        ]
        vector = dataclasses.replace(config.vector, cts_switch_penalty=200, cts_quantum=64)
        slow_config = dataclasses.replace(config, vector=vector)
        slow = run_policy(slow_config, CTS, jobs)
        assert slow.total_cycles > fast.total_cycles
