"""Sharded lane bookkeeping must equal the scanning reference paths.

The ``REPRO_NO_LANE_SHARDS`` axis covers three incremental structures:
the lane table's per-owner counters, the bulk-round greedy partition and
the co-processor's busy-pool set for CTS arbitration.  Each has a
from-scratch counterpart these tests diff against.
"""

import random

import pytest

from repro.common.config import experiment_config
from repro.common.errors import ConfigurationError
from repro.coproc.lanes import FREE, LaneTable
from repro.core.partition import greedy_partition
from repro.core.roofline import RooflineModel
from repro.isa.registers import OIValue
from tests.conftest import compiled_job, make_axpy, make_reduction, run_fingerprint


class TestOwnerCounters:
    def test_counters_equal_scan_over_random_reconfigures(self):
        for seed in range(10):
            rng = random.Random(seed)
            table = LaneTable(32)
            for _ in range(200):
                core = rng.randrange(8)
                ceiling = table.owned_count(core) + table.free_count
                table.reconfigure(core, rng.randint(0, ceiling))
                assert table.counters() == table.scan_counters()

    def test_full_and_empty_pool_extremes(self):
        table = LaneTable(8)
        assert table.counters() == table.scan_counters() == {FREE: 8}
        table.reconfigure(0, 8)
        assert table.counters() == table.scan_counters() == {FREE: 0, 0: 8}
        table.reconfigure(0, 0)
        assert table.counters() == table.scan_counters() == {FREE: 8}


class TestBulkGreedyPartition:
    def _roofline(self):
        return RooflineModel.from_config(experiment_config())

    def _random_demands(self, rng, num_cores):
        demands = {}
        for core in range(num_cores):
            if rng.random() < 0.25:
                continue  # no running phase on this core
            demands[core] = OIValue(
                issue=rng.uniform(0.05, 8.0),
                mem=rng.uniform(0.05, 8.0),
                level=rng.choice(("dram", "l2", "vec_cache")),
            )
        return demands

    def test_bulk_rounds_match_reference_rounds(self):
        roofline = self._roofline()
        for seed in range(60):
            rng = random.Random(seed)
            demands = self._random_demands(rng, rng.choice((2, 4, 8, 16)))
            if not demands:
                continue
            sharded = greedy_partition(demands, 32, roofline, sharded=True)
            reference = greedy_partition(demands, 32, roofline, sharded=False)
            assert sharded == reference, f"seed {seed}: {demands}"

    def test_oversubscribed_still_rejected(self):
        roofline = self._roofline()
        demands = {
            core: OIValue(issue=1.0, mem=1.0, level="dram") for core in range(3)
        }
        with pytest.raises(ConfigurationError):
            greedy_partition(demands, 2, roofline, sharded=True)


class TestBusyPoolSet:
    def test_set_matches_pool_scan_at_every_arbitration(self, monkeypatch):
        from repro.coproc.coprocessor import CoProcessor
        from repro.core.machine import Machine
        from repro.core.policies import policy

        monkeypatch.delenv("REPRO_NO_LANE_SHARDS", raising=False)
        mismatches = []
        checks = []
        original = CoProcessor._cts_arbitrate

        def audited(self, cycle):
            scanned = {
                core for core, pool in enumerate(self.pools) if not pool.empty
            }
            checks.append(cycle)
            if self._busy_pools != scanned:
                mismatches.append((cycle, self._busy_pools, scanned))
            return original(self, cycle)

        monkeypatch.setattr(CoProcessor, "_cts_arbitrate", audited)
        jobs = [
            compiled_job(make_axpy(2048), 0),
            compiled_job(make_reduction(256, 8), 1),
        ]
        machine = Machine(experiment_config(), policy("cts"), jobs)
        machine.run()
        assert checks, "CTS run never arbitrated ownership"
        assert not mismatches, mismatches[:3]


class TestKillSwitch:
    def test_latches_at_construction(self, monkeypatch):
        from repro.core.lane_manager import ElasticLaneManager
        from repro.core.machine import Machine
        from repro.core.policies import policy

        config = experiment_config()
        jobs = [compiled_job(make_axpy(128), 0), None]
        monkeypatch.setenv("REPRO_NO_LANE_SHARDS", "1")
        machine = Machine(config, policy("occamy"), jobs)
        manager = ElasticLaneManager(RooflineModel.from_config(config), 32)
        assert machine.coproc._lane_shards is False
        assert machine.coproc._busy_pools is None
        assert manager.sharded is False
        monkeypatch.delenv("REPRO_NO_LANE_SHARDS", raising=False)
        assert machine.coproc._lane_shards is False  # latched, not re-read
        assert manager.sharded is False
        machine = Machine(config, policy("occamy"), jobs)
        assert machine.coproc._lane_shards is True
        assert machine.coproc._busy_pools == set()
        assert ElasticLaneManager(RooflineModel.from_config(config), 32).sharded

    def test_fingerprints_identical_with_and_without(self, monkeypatch):
        from repro.core.machine import Machine
        from repro.core.policies import policy

        def run(policy_key):
            jobs = [
                compiled_job(make_axpy(1536), 0),
                compiled_job(make_reduction(256, 6), 1),
            ]
            machine = Machine(experiment_config(), policy(policy_key), jobs)
            return run_fingerprint(machine.run())

        for policy_key in ("occamy", "cts"):
            monkeypatch.delenv("REPRO_NO_LANE_SHARDS", raising=False)
            with_shards = run(policy_key)
            monkeypatch.setenv("REPRO_NO_LANE_SHARDS", "1")
            without = run(policy_key)
            assert with_shards == without, policy_key
