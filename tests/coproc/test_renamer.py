"""Renamer freelist: spatial vs temporal pools (Fig. 13's mechanism)."""

import pytest

from repro.common.config import VectorConfig
from repro.common.errors import ConfigurationError, ProtocolError
from repro.coproc.renamer import SHARED_MIN_RESERVE, Renamer


def vector(vregs=128, arch=32):
    return VectorConfig(vregs_per_block=vregs, arch_vregs=arch)


class TestSpatial:
    def test_private_pools(self):
        renamer = Renamer(vector(), num_cores=2, shared=False)
        assert renamer.capacity(0) == 96
        assert renamer.capacity(1) == 96

    def test_allocation_isolated_per_core(self):
        renamer = Renamer(vector(), num_cores=2, shared=False)
        for _ in range(96):
            assert renamer.try_allocate(0)
        assert not renamer.try_allocate(0)
        assert renamer.try_allocate(1)

    def test_release_returns_register(self):
        renamer = Renamer(vector(), num_cores=2, shared=False)
        renamer.try_allocate(0)
        renamer.release(0)
        assert renamer.available(0) == 96
        assert renamer.in_flight(0) == 0

    def test_double_release_rejected(self):
        renamer = Renamer(vector(), num_cores=2, shared=False)
        with pytest.raises(ProtocolError):
            renamer.release(0)


class TestTemporal:
    def test_shared_pool_keeps_per_core_context(self):
        # Per §7.6: same physical registers per core as the 2-core case.
        renamer = Renamer(vector(), num_cores=2, shared=True)
        assert renamer.capacity(0) == (128 // 2 - 32) * 2

    def test_four_core_pool_scales(self):
        renamer = Renamer(vector(), num_cores=4, shared=True)
        assert renamer.capacity(0) == (128 // 2 - 32) * 4

    def test_contention_visible_across_cores(self):
        renamer = Renamer(vector(), num_cores=2, shared=True)
        while renamer.try_allocate(0):
            pass
        # Core 0 hit its fairness cap; core 1 still has its reserve.
        assert renamer.available(1) >= SHARED_MIN_RESERVE
        assert renamer.failed_allocations >= 1

    def test_fairness_cap(self):
        renamer = Renamer(vector(), num_cores=2, shared=True)
        grabbed = 0
        while renamer.try_allocate(0):
            grabbed += 1
        assert grabbed == renamer.capacity(0) - SHARED_MIN_RESERVE

    def test_insufficient_registers_rejected(self):
        with pytest.raises(ConfigurationError):
            Renamer(vector(vregs=64, arch=32), num_cores=2, shared=True)


class TestCounters:
    def test_allocation_counters(self):
        renamer = Renamer(vector(), num_cores=2, shared=False)
        renamer.try_allocate(0)
        renamer.try_allocate(1)
        assert renamer.allocations == 2
        assert renamer.in_flight(0) == 1
