"""ExeBU ownership tables (Dispatch.Cfg / RegFile.Cfg)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ProtocolError
from repro.coproc.lanes import LaneTable


class TestReconfigure:
    def test_initial_all_free(self):
        table = LaneTable(32)
        assert table.free_count == 32
        assert table.lanes_of(0) == []

    def test_assign_and_count(self):
        table = LaneTable(32)
        table.reconfigure(0, 8)
        assert table.owned_count(0) == 8
        assert table.free_count == 24

    def test_reassign_frees_previous(self):
        table = LaneTable(32)
        table.reconfigure(0, 8)
        table.reconfigure(0, 12)
        assert table.owned_count(0) == 12
        assert table.free_count == 20
        assert table.reconfigurations == 2

    def test_two_cores_disjoint(self):
        table = LaneTable(32)
        table.reconfigure(0, 12)
        table.reconfigure(1, 20)
        owned0 = set(table.lanes_of(0))
        owned1 = set(table.lanes_of(1))
        assert not owned0 & owned1
        assert table.free_count == 0

    def test_release_all(self):
        table = LaneTable(32)
        table.reconfigure(0, 16)
        table.reconfigure(0, 0)
        assert table.free_count == 32

    def test_overflow_rejected(self):
        table = LaneTable(32)
        table.reconfigure(0, 24)
        with pytest.raises(ProtocolError):
            table.reconfigure(1, 16)

    def test_negative_rejected(self):
        with pytest.raises(ProtocolError):
            LaneTable(32).reconfigure(0, -1)

    def test_ownership_vector(self):
        table = LaneTable(4)
        table.reconfigure(1, 2)
        assert table.ownership_vector() == (1, 1, None, None)

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 8)), max_size=40))
    def test_accounting_invariant(self, moves):
        table = LaneTable(32)
        for core, lanes in moves:
            current = table.owned_count(core)
            if lanes <= table.free_count + current:
                table.reconfigure(core, lanes)
        total_owned = sum(table.owned_count(c) for c in range(4))
        assert total_owned + table.free_count == 32


class TestIncrementalIndexes:
    """The O(1) free/owned indexes must always agree with a full scan."""

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 32)), max_size=60))
    def test_indexes_match_scan(self, moves):
        table = LaneTable(32)
        for core, lanes in moves:
            if lanes > table.free_count + table.owned_count(core):
                with pytest.raises(ProtocolError):
                    table.reconfigure(core, lanes)
            else:
                table.reconfigure(core, lanes)
            vector = table.ownership_vector()
            scan_free = [i for i, owner in enumerate(vector) if owner is None]
            assert sorted(table._free) == table._free
            assert table._free == scan_free
            assert table.free_count == len(scan_free)
            for c in range(4):
                scan_owned = [i for i, owner in enumerate(vector) if owner == c]
                assert table.lanes_of(c) == scan_owned
                assert table.owned_count(c) == len(scan_owned)

    def test_failed_reconfigure_still_releases(self):
        """An over-asking core loses its lanes before the request is refused
        (matching the §4.2.2 free-then-claim order)."""
        table = LaneTable(8)
        table.reconfigure(0, 4)
        table.reconfigure(1, 4)
        with pytest.raises(ProtocolError):
            table.reconfigure(0, 6)
        assert table.owned_count(0) == 0
        assert table.free_count == 4
        assert table.lanes_of(1) == [4, 5, 6, 7]

    def test_claims_lowest_indices(self):
        table = LaneTable(8)
        table.reconfigure(0, 3)
        table.reconfigure(1, 3)
        table.reconfigure(0, 0)
        table.reconfigure(2, 2)
        assert table.lanes_of(2) == [0, 1]


class TestUopAccounting:
    def test_record_uops(self):
        table = LaneTable(8)
        table.reconfigure(0, 4)
        table.record_uops(0, 3)
        busy = [bu.uops_executed for bu in table._lanes]
        assert busy.count(3) == 4
