"""Load/store unit and instruction pool behaviour."""

import pytest

from repro.common.config import MemoryConfig
from repro.common.errors import SimulationError
from repro.coproc.dynamic import (
    DynamicInstruction,
    EntryKind,
    EntryState,
    InstructionPool,
)
from repro.coproc.lsu import LoadStoreUnit
from repro.isa.instructions import MSR
from repro.isa.operands import Imm
from repro.isa.registers import SystemRegister
from repro.memory.hierarchy import VectorMemorySystem


def entry(seq, kind=EntryKind.COMPUTE, core=0, **kw):
    instr = MSR(SystemRegister.OI, Imm(0)) if kind is EntryKind.EMSIMD else None
    return DynamicInstruction(
        seq=seq, core=core, kind=kind, instr=instr, vl_lanes=8, transmit_cycle=0,
        sysreg=SystemRegister.OI if kind is EntryKind.EMSIMD else None, **kw
    )


class TestInstructionPool:
    def test_fifo_and_capacity(self):
        pool = InstructionPool(0, capacity=2)
        pool.push(entry(1))
        pool.push(entry(2))
        assert pool.full
        with pytest.raises(SimulationError):
            pool.push(entry(3))

    def test_commit_in_order_only(self):
        pool = InstructionPool(0, capacity=4)
        first, second = entry(1), entry(2)
        pool.push(first)
        pool.push(second)
        second.state = EntryState.ISSUED
        second.complete_cycle = 1
        # The head is still WAITING: nothing commits.
        assert pool.commit_ready(cycle=10, width=4) == []
        first.state = EntryState.ISSUED
        first.complete_cycle = 5
        committed = pool.commit_ready(cycle=10, width=4)
        assert [e.seq for e in committed] == [1, 2]
        assert pool.empty

    def test_commit_width_bound(self):
        pool = InstructionPool(0, capacity=8)
        entries = [entry(i) for i in range(6)]
        for e in entries:
            pool.push(e)
            e.state = EntryState.ISSUED
            e.complete_cycle = 0
        assert len(pool.commit_ready(cycle=1, width=4)) == 4

    def test_dispatchable_stops_at_emsimd_barrier(self):
        pool = InstructionPool(0, capacity=8)
        pool.push(entry(1))
        pool.push(entry(2, kind=EntryKind.EMSIMD))
        pool.push(entry(3))
        eligible = [e.seq for e in pool.dispatchable()]
        assert eligible == [1]

    def test_pending_emsimd(self):
        pool = InstructionPool(0, capacity=8)
        pool.push(entry(1, kind=EntryKind.EMSIMD))
        assert pool.pending_emsimd() == 1

    def test_ready_depends_on_producers(self):
        producer = entry(1)
        consumer = entry(2, deps=(producer,))
        assert not consumer.ready(cycle=0)
        producer.state = EntryState.ISSUED
        producer.complete_cycle = 10
        assert not consumer.ready(cycle=5)
        assert consumer.ready(cycle=10)


class TestLoadStoreUnit:
    def _lsu(self, stq=4):
        return LoadStoreUnit(0, VectorMemorySystem(MemoryConfig()), store_queue_entries=stq)

    def test_issue_counts_traffic(self):
        lsu = self._lsu()
        lsu.issue(0, 128, 0, is_store=False)
        lsu.issue(0, 64, 10, is_store=True)
        assert lsu.stats.loads == 1
        assert lsu.stats.stores == 1
        assert lsu.stats.bytes_loaded == 128
        assert lsu.stats.bytes_stored == 64

    def test_store_queue_fills_and_drains(self):
        lsu = self._lsu(stq=2)
        lsu.issue(0, 64, 0, is_store=True)
        lsu.issue(64, 64, 0, is_store=True)
        assert lsu.store_queue_full(cycle=1)
        completion = max(
            lsu.issue(0, 0, 0, is_store=False).complete_cycle, 400.0
        )
        assert not lsu.store_queue_full(cycle=completion + 1)

    def test_mob_orders_load_after_store(self):
        lsu = self._lsu()
        store = lsu.issue(0, 64, 0, is_store=True)
        load = lsu.issue(0, 64, 1, is_store=False)
        assert load.complete_cycle >= store.complete_cycle

    def test_negative_size_rejected(self):
        with pytest.raises(SimulationError):
            self._lsu().issue(0, -1, 0, is_store=False)
