"""Batch-execute backend: batched kernels vs. the scalar per-entry loops.

Every kernel the batch backend replaces — lane uop attribution, dispatch
metrics aggregation, the commit prefix scan, and the full plan/apply
dispatch pass — is pinned against the reference per-entry implementation
on randomized inputs: random operand sets, opcodes, active-lane masks and
mid-phase lane reclaims.  Equality is exact (``==`` on every counter and
float), not approximate: the backend promises bit-identity.
"""

import random

import pytest

from repro.common.config import experiment_config
from repro.coproc.coprocessor import CoProcessor, SharingMode
from repro.coproc.dynamic import DynamicInstruction, EntryKind, EntryState, InstructionPool
from repro.coproc.lanes import LaneTable
from repro.coproc.metrics import Metrics
from repro.core.lane_manager import StaticLaneManager, TemporalLaneManager


class TestLaneBatchKernel:
    """``record_uops_batched`` == per-lane ``record_uops`` under any mask."""

    def test_random_masks_and_reclaims(self):
        rng = random.Random(1234)
        for _ in range(50):
            total = rng.choice((4, 8, 16, 32))
            scalar_table = LaneTable(total)
            batched_table = LaneTable(total)
            cores = list(range(rng.randint(1, 4)))
            for _ in range(rng.randint(3, 20)):
                action = rng.random()
                if action < 0.5:
                    # Mid-phase reclaim: re-partition ownership, possibly to
                    # zero lanes (the cts hand-over), before recording more.
                    core = rng.choice(cores)
                    free = scalar_table.free_count + scalar_table.owned_count(core)
                    lanes = rng.randint(0, free)
                    scalar_table.reconfigure(core, lanes)
                    batched_table.reconfigure(core, lanes)
                else:
                    core = rng.choice(cores + [99])  # 99: never owns a lane
                    uops = rng.randint(0, 7)
                    scalar_table.record_uops(core, uops)
                    batched_table.record_uops_batched(core, uops)
                assert (
                    scalar_table.ownership_vector()
                    == batched_table.ownership_vector()
                )
                scalar_counts = [
                    scalar_table._lanes[i].uops_executed for i in range(total)
                ]
                batched_counts = [
                    batched_table._lanes[i].uops_executed for i in range(total)
                ]
                assert scalar_counts == batched_counts

    def test_inactive_lanes_untouched_after_reclaim(self):
        table = LaneTable(8)
        table.reconfigure(0, 8)
        table.record_uops_batched(0, 3)
        # Reclaim all of core 0's lanes for core 1 mid-phase.
        table.reconfigure(0, 0)
        table.reconfigure(1, 8)
        table.record_uops_batched(0, 100)  # core 0 owns nothing now
        assert [bu.uops_executed for bu in table._lanes] == [3] * 8
        table.record_uops_batched(1, 2)
        assert [bu.uops_executed for bu in table._lanes] == [5] * 8

    def test_active_mask_matches_ownership(self):
        rng = random.Random(7)
        table = LaneTable(16)
        for _ in range(30):
            core = rng.randint(0, 2)
            table.reconfigure(core, rng.randint(0, table.free_count + table.owned_count(core)))
            for probe in range(3):
                mask = table.active_mask(probe)
                assert mask == [
                    table.owner_of(lane) == probe for lane in range(16)
                ]


class TestMetricsBatchKernel:
    """Aggregated dispatch accounting == per-uop calls, bit for bit."""

    @pytest.mark.parametrize("pipes", [1, 2, 4])
    def test_compute_batch_exact(self, pipes):
        rng = random.Random(99)
        for _ in range(25):
            scalar = Metrics(2, 32, pipes)
            batched = Metrics(2, 32, pipes)
            for cycle in range(0, 4000, 37):
                core = rng.randint(0, 1)
                vls = [rng.randint(0, 32) for _ in range(rng.randint(0, 6))]
                flops = [rng.randint(0, 64) for _ in vls]
                for vl, fl in zip(vls, flops):
                    scalar.on_compute_dispatch(core, vl, fl, cycle)
                batched.on_compute_dispatch_batch(core, vls, sum(flops), cycle)
            assert scalar.compute_uops == batched.compute_uops
            assert scalar.flops == batched.flops
            assert scalar.busy_pipe_slots == batched.busy_pipe_slots
            for s_series, b_series in zip(
                scalar.busy_lanes_series, batched.busy_lanes_series
            ):
                assert s_series._sums == b_series._sums
                assert s_series._counts == b_series._counts

    def test_compute_batch_exact_non_power_of_two_pipes(self):
        # 1/3 is not representable: the batch path must fall back to
        # per-entry series adds to preserve the reference rounding.
        scalar = Metrics(1, 32, 3)
        batched = Metrics(1, 32, 3)
        vls = [1, 7, 13, 32, 5]
        for vl in vls:
            scalar.on_compute_dispatch(0, vl, 2, 10)
        batched.on_compute_dispatch_batch(0, vls, 10, 10)
        assert scalar.busy_lanes_series[0]._sums == batched.busy_lanes_series[0]._sums
        assert scalar.busy_pipe_slots == batched.busy_pipe_slots

    def test_ldst_batch_exact(self):
        scalar = Metrics(2, 32, 2)
        batched = Metrics(2, 32, 2)
        for _ in range(5):
            scalar.on_ldst_dispatch(1, 16, 256, 3)
        batched.on_ldst_dispatch_batch(1, 5)
        assert scalar.ldst_uops == batched.ldst_uops


def _make_entry(seq, core, kind, rng, producers):
    deps = tuple(
        rng.sample(producers, k=min(len(producers), rng.randint(0, 2)))
    )
    vl = rng.choice((0, 1, 4, 8, 16, 32))
    entry = DynamicInstruction(
        seq=seq,
        core=core,
        kind=kind,
        instr=None,
        vl_lanes=vl,
        transmit_cycle=0,
        deps=deps,
    )
    if kind is EntryKind.COMPUTE:
        entry.flops = vl * rng.choice((1, 2))
        entry.long_latency = rng.random() < 0.2
        entry.writes_vreg = rng.random() < 0.8
    else:
        entry.addr = rng.randrange(0, 1 << 14, 16)
        entry.nbytes = vl * 16
    return entry


class TestCommitBatchKernel:
    """``commit_ready_batched`` == ``commit_ready`` on random windows."""

    def test_random_windows(self):
        rng = random.Random(5)
        for _ in range(60):
            width = rng.randint(1, 8)
            cycle = rng.randint(0, 50)
            pools = [InstructionPool(0, 64, indexed=True) for _ in range(2)]
            entries = []
            for seq in range(rng.randint(0, 20)):
                entry = DynamicInstruction(
                    seq=seq,
                    core=0,
                    kind=EntryKind.COMPUTE,
                    instr=None,
                    vl_lanes=8,
                    transmit_cycle=0,
                )
                if rng.random() < 0.7:
                    entry.state = rng.choice((EntryState.ISSUED, EntryState.DONE))
                    entry.complete_cycle = rng.randint(0, 60)
                    entry.holds_phys_reg = rng.random() < 0.5
                entries.append(entry)
            import copy

            sides = [copy.deepcopy(entries), copy.deepcopy(entries)]
            for pool, side in zip(pools, sides):
                for entry in side:
                    pool.push(entry)
                pool.ready_dispatchable(cycle)  # build the index
            reference = pools[0].commit_ready(cycle, width)
            batched = pools[1].commit_ready_batched(cycle, width)
            assert [e.seq for e in reference] == [e.seq for e in batched]
            assert pools[0].committed == pools[1].committed
            assert [e.seq for e in pools[0].entries()] == [
                e.seq for e in pools[1].entries()
            ]
            # The index survives identically: same dispatch candidates after.
            assert [e.seq for e in pools[0].ready_dispatchable(cycle)] == [
                e.seq for e in pools[1].ready_dispatchable(cycle)
            ]
            assert pools[0].pending_emsimd() == pools[1].pending_emsimd()


def _observable_state(coproc):
    state = []
    for core in range(coproc.config.num_cores):
        pool = coproc.pools[core]
        state.append(
            (
                [
                    (e.seq, e.state.name, e.complete_cycle, e.holds_phys_reg)
                    for e in pool.entries()
                ],
                pool.transmitted,
                pool.committed,
                coproc.renamer.in_flight(core),
                repr(coproc.lsus[core].stats),
            )
        )
    metrics = coproc.metrics
    state.append(
        (
            metrics.busy_pipe_slots,
            list(metrics.compute_uops),
            list(metrics.ldst_uops),
            list(metrics.flops),
            [dict(s) for s in metrics.stalls],
            [(s._sums, s._counts) for s in metrics.busy_lanes_series],
            coproc.renamer.allocations,
            coproc.renamer.failed_allocations,
        )
    )
    return state


def _build_pair(mode, num_cores, config):
    coprocs = []
    for batch in (False, True):
        metrics = Metrics(num_cores, config.vector.total_lanes, 2)
        if mode is SharingMode.SPATIAL:
            per_core = config.vector.total_lanes // num_cores
            manager = StaticLaneManager({c: per_core for c in range(num_cores)})
        else:
            manager = TemporalLaneManager(config.vector.total_lanes)
        coprocs.append(
            CoProcessor(
                config, mode, metrics, manager, indexed=True, batch_exec=batch
            )
        )
    return coprocs


class TestBatchedDispatchProperty:
    """Full plan/apply dispatch == the reference per-entry scan, cycle by
    cycle, on randomized instruction streams (random opcodes, operand
    vector lengths including 0, dependence edges, rename/STQ pressure)."""

    @pytest.mark.parametrize(
        "mode",
        [SharingMode.SPATIAL, SharingMode.TEMPORAL, SharingMode.COARSE_TEMPORAL],
    )
    def test_random_streams_bit_identical(self, mode):
        config = experiment_config()
        num_cores = config.num_cores
        for trial in range(6):
            rng = random.Random(1000 * trial + len(mode.value))
            reference, batched = _build_pair(mode, num_cores, config)
            producers = [[[] for _ in range(num_cores)] for _ in range(2)]
            seq = 0
            kinds = (
                EntryKind.COMPUTE,
                EntryKind.COMPUTE,
                EntryKind.LOAD,
                EntryKind.STORE,
            )
            for cycle in range(400):
                if cycle < 250:
                    for _ in range(rng.randint(0, 4)):
                        core = rng.randrange(num_cores)
                        kind = rng.choice(kinds)
                        # Identical rng draws per side: clone the draw by
                        # snapshotting the generator state.
                        state = rng.getstate()
                        for side, coproc in enumerate((reference, batched)):
                            rng.setstate(state)
                            entry = _make_entry(
                                seq, core, kind, rng, producers[side][core][-8:]
                            )
                            if coproc.can_transmit(core):
                                coproc.transmit(entry)
                                producers[side][core].append(entry)
                        seq += 1
                reference.step(cycle)
                batched.step(cycle)
                assert _observable_state(reference) == _observable_state(
                    batched
                ), f"diverged at cycle {cycle} under {mode}"
            assert batched._batch.batched_calls > 0

    def test_zero_byte_access_takes_scalar_fallback(self):
        """A zero-byte memory op (VL 0 after a cts reclaim) completes within
        its own cycle and can wake a younger dependant mid-scan — the one
        dispatch shape the planner must not batch."""
        config = experiment_config()
        num_cores = config.num_cores
        reference, batched = _build_pair(SharingMode.SPATIAL, num_cores, config)
        load = DynamicInstruction(
            seq=1,
            core=0,
            kind=EntryKind.LOAD,
            instr=None,
            vl_lanes=0,
            transmit_cycle=0,
            addr=0,
            nbytes=0,
        )
        fallbacks_before = batched._batch.scalar_calls
        for side_entry, coproc in (
            (load, reference),
            (
                DynamicInstruction(
                    seq=1,
                    core=0,
                    kind=EntryKind.LOAD,
                    instr=None,
                    vl_lanes=0,
                    transmit_cycle=0,
                    addr=0,
                    nbytes=0,
                ),
                batched,
            ),
        ):
            dependant = DynamicInstruction(
                seq=2,
                core=0,
                kind=EntryKind.COMPUTE,
                instr=None,
                vl_lanes=8,
                transmit_cycle=0,
                deps=(side_entry,),
                flops=8,
                writes_vreg=True,
            )
            coproc.transmit(side_entry)
            coproc.transmit(dependant)
            for cycle in range(40):
                coproc.step(cycle)
        assert _observable_state(reference) == _observable_state(batched)
        assert batched._batch.scalar_calls > fallbacks_before
        assert batched._batch.fallback_reasons.get("zero-byte-access", 0) > 0
