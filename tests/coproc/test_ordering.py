"""Instruction-ordering rules of Table 2, observed through whole-machine
behaviour (the co-processor engine is exercised via real programs)."""

import numpy as np
import pytest

from repro import (
    Job,
    OCCAMY,
    PRIVATE,
    build_image,
    compile_kernel,
    experiment_config,
    reference_execute,
    run_policy,
)
from repro.compiler.ir import Assign, BinOp, Kernel, Load, Loop, Reduce
from repro.coproc.coprocessor import CoProcessor, SharingMode
from repro.coproc.metrics import Metrics
from repro.core.lane_manager import StaticLaneManager
from tests.conftest import make_reduction


def fresh_coproc(config, mode=SharingMode.SPATIAL):
    metrics = Metrics(config.num_cores, config.vector.total_lanes, 2)
    manager = StaticLaneManager({c: 16 for c in range(config.num_cores)})
    return CoProcessor(config, mode, metrics, manager)


class TestEngineBasics:
    def test_apply_vl_through_resource_table(self, config):
        coproc = fresh_coproc(config)
        assert coproc.resource_table.apply_vl(0, 8)
        coproc.lane_table.reconfigure(0, 8)
        assert coproc.configured_vl(0) == 8
        assert coproc.lane_table.owned_count(0) == 8

    def test_drained_initially(self, config):
        coproc = fresh_coproc(config)
        assert coproc.drained(0)
        assert coproc.can_transmit(0)

    def test_step_idle_counts_no_events(self, config):
        coproc = fresh_coproc(config)
        coproc.set_core_active(0, False)
        coproc.set_core_active(1, False)
        assert coproc.step(0) == 0


class TestSveScalarOrdering:
    """⟨SVE, Scalar⟩: a scalar read of a vector-produced value stalls
    until the producing instruction completes — verified functionally: the
    reduction result written through the scalar path must be exact."""

    def test_vhreduce_scalar_result_correct(self, config):
        kernel = make_reduction(length=300)
        image = build_image(kernel, 0)
        expected = reference_execute(kernel, image)
        run_policy(config, PRIVATE, [Job(compile_kernel(kernel), image), None])
        np.testing.assert_allclose(
            image.array("acc"), expected.array("acc"), rtol=1e-3
        )


class TestLdStOrdering:
    """⟨SVE ld/st, SVE ld/st⟩ with address overlap: in-place updates."""

    @pytest.mark.parametrize("policy", [PRIVATE, OCCAMY], ids=lambda p: p.key)
    def test_read_modify_write_chain(self, config, policy):
        kernel = Kernel(
            "rmw", array_length=200,
            loops=(
                Loop(
                    "rmw", trip_count=200, repeats=4,
                    body=(
                        Assign("a", BinOp("add", Load("a"), Load("b"))),
                        Reduce("add", "sum_a", Load("a")),
                    ),
                ),
            ),
        )
        image = build_image(kernel, 0)
        expected = reference_execute(kernel, image)
        run_policy(config, policy, [Job(compile_kernel(kernel), image), None])
        np.testing.assert_allclose(image.array("a"), expected.array("a"), rtol=1e-4)
        np.testing.assert_allclose(
            image.array("sum_a"), expected.array("sum_a"), rtol=1e-3
        )


class TestEmSimdOrdering:
    """⟨EM-SIMD, SVE⟩ / ⟨SVE, EM-SIMD⟩: reconfigurations drain the pipe
    and later SVE instructions observe the new vector length."""

    def test_vl_changes_are_serialised(self, config):
        result = run_policy(
            config, OCCAMY,
            [Job(compile_kernel(make_reduction(length=400)), build_image(make_reduction(length=400), 0)), None],
        )
        # Every successful reconfiguration happened on a drained pipeline:
        # the engine only executes MSR <VL> at the pool head, so a success
        # with in-flight instructions would have tripped the renamer
        # invariant; reaching here means ordering held.
        assert result.metrics.reconfig_success[0] >= 1
