"""Property test: the incremental ready-set index never drifts from a scan.

The tickless dispatch path consumes :meth:`InstructionPool.ready_dispatchable`,
an incrementally maintained wake-heap index, instead of re-scanning the whole
window every cycle.  Its contract is a single invariant:

    pool.ready_dispatchable(cycle)
        == [e for e in pool.dispatchable() if e.ready(cycle)]

This suite drives randomized sequences of every operation that can touch the
index — program-order pushes (with random dependence edges), dispatch issues
(including zero-latency completions that wake dependants *within* the same
cycle, the cascade case), EM-SIMD barrier execution, in-order commits,
speculative snapshot/restore, out-of-band ``mark_dirty`` — and checks the
invariant after every single step.
"""

from __future__ import annotations

import random

import pytest

from repro.coproc.dynamic import (
    DynamicInstruction,
    EntryKind,
    EntryState,
    InstructionPool,
)

CAPACITY = 12
STEPS = 250
# Includes 0 (store-forward / L0-hit same-cycle completion: the cascade
# path) and fractional latencies (bandwidth-shaped completions).
LATENCIES = (0, 0, 1, 1, 2, 3.5, 5, 0.25, 12)
KINDS = (
    EntryKind.COMPUTE,
    EntryKind.COMPUTE,
    EntryKind.LOAD,
    EntryKind.STORE,
    EntryKind.EMSIMD,
)


def reference_ready(pool: InstructionPool, cycle: int):
    """The from-scratch truth the index must always reproduce."""
    return [e for e in pool.dispatchable() if e.ready(cycle)]


class Driver:
    """Randomized exerciser mimicking the coprocessor's pool usage."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.pool = InstructionPool(0, CAPACITY, indexed=True)
        self.cycle = 0
        self.next_seq = 0
        self.snap = None
        self.issues = 0
        self.cascades = 0

    def check(self) -> None:
        got = self.pool.ready_dispatchable(self.cycle)
        want = reference_ready(self.pool, self.cycle)
        assert got == want, (
            f"cycle {self.cycle}: index {[e.seq for e in got]} "
            f"!= scan {[e.seq for e in want]}"
        )
        # The zero-dispatch stall path anchors on the oldest dispatchable
        # WAITING entry; the index must name the same one as a full scan.
        dispatchable = self.pool.dispatchable()
        want_oldest = dispatchable[0].seq if dispatchable else None
        assert self.pool.oldest_waiting_seq() == want_oldest

    # -- operations ----------------------------------------------------

    def op_push(self) -> None:
        if self.pool.full:
            return
        kind = self.rng.choice(KINDS)
        deps = ()
        if kind is not EntryKind.EMSIMD:
            producers = [e for e in self.pool.entries() if not e.is_emsimd]
            if producers:
                deps = tuple(
                    self.rng.sample(
                        producers, k=self.rng.randint(0, min(3, len(producers)))
                    )
                )
        entry = DynamicInstruction(
            seq=self.next_seq,
            core=0,
            kind=kind,
            instr=None,
            vl_lanes=8,
            transmit_cycle=self.cycle,
            deps=deps,
        )
        self.next_seq += 1
        self.pool.push(entry)

    def op_issue(self) -> None:
        """Issue like _dispatch_core does: pick from the reference-ready
        set, assign a completion, notify the index."""
        ready = reference_ready(self.pool, self.cycle)
        if not ready:
            return
        entry = self.rng.choice(ready)
        entry.state = EntryState.ISSUED
        entry.complete_cycle = self.cycle + self.rng.choice(LATENCIES)
        self.issues += 1
        if self.pool.on_issue(entry, self.cycle):
            self.cascades += 1

    def op_execute_emsimd(self) -> None:
        """EM-SIMD runs in order from a drained head (§4.2.2)."""
        head = self.pool.head()
        if head is None or not head.is_emsimd:
            return
        if any(e.state is EntryState.ISSUED for e in self.pool.entries()):
            return
        head.state = EntryState.DONE
        head.complete_cycle = self.cycle + 1

    def op_commit(self) -> None:
        self.pool.commit_ready(self.cycle, width=self.rng.randint(1, 4))

    def op_mark_dirty(self) -> None:
        self.pool.mark_dirty()

    def op_snapshot(self) -> None:
        self.snap = self.pool.snapshot()

    def op_restore(self) -> None:
        if self.snap is None:
            return
        # restore rewinds every surviving entry's progress fields and
        # drops entries pushed after the snapshot; it must dirty the index.
        self.pool.restore(self.snap)
        self.snap = None

    def op_advance(self) -> None:
        self.cycle += self.rng.randint(1, 3)

    def run(self) -> None:
        ops = (
            (self.op_push, 30),
            (self.op_issue, 25),
            (self.op_execute_emsimd, 6),
            (self.op_commit, 12),
            (self.op_advance, 18),
            (self.op_mark_dirty, 3),
            (self.op_snapshot, 3),
            (self.op_restore, 3),
        )
        weights = [w for _, w in ops]
        funcs = [f for f, _ in ops]
        for _ in range(STEPS):
            self.rng.choices(funcs, weights)[0]()
            self.check()


@pytest.mark.parametrize("seed", range(25))
def test_index_equals_scan(seed):
    driver = Driver(seed)
    driver.run()
    # The sequence must have actually dispatched work, or the invariant
    # was tested against an empty pool.
    assert driver.issues > 0


def test_cascade_paths_are_exercised():
    """Across the seed set, same-cycle wakes (on_issue -> True) occur —
    the exact case that diverged dispatch order before the mid-scan
    refresh existed."""
    cascades = 0
    for seed in range(25):
        driver = Driver(seed)
        driver.run()
        cascades += driver.cascades
    assert cascades > 0


def test_zero_latency_wake_is_visible_same_cycle():
    """Deterministic miniature of the cascade: B depends on A; A issues
    with a same-cycle completion; B must appear in the index at the same
    cycle without any rebuild."""
    pool = InstructionPool(0, 8, indexed=True)
    a = DynamicInstruction(
        seq=0, core=0, kind=EntryKind.LOAD, instr=None, vl_lanes=8, transmit_cycle=0
    )
    b = DynamicInstruction(
        seq=1,
        core=0,
        kind=EntryKind.COMPUTE,
        instr=None,
        vl_lanes=8,
        transmit_cycle=0,
        deps=(a,),
    )
    pool.push(a)
    pool.push(b)
    assert pool.ready_dispatchable(5) == [a]
    a.state = EntryState.ISSUED
    a.complete_cycle = 5  # store-forwarded: completes the cycle it issues
    assert pool.on_issue(a, 5) is True
    assert pool.ready_dispatchable(5) == [b]
    assert reference_ready(pool, 5) == [b]


def test_future_completion_wakes_later():
    pool = InstructionPool(0, 8, indexed=True)
    a = DynamicInstruction(
        seq=0, core=0, kind=EntryKind.LOAD, instr=None, vl_lanes=8, transmit_cycle=0
    )
    b = DynamicInstruction(
        seq=1,
        core=0,
        kind=EntryKind.COMPUTE,
        instr=None,
        vl_lanes=8,
        transmit_cycle=0,
        deps=(a,),
    )
    pool.push(a)
    pool.push(b)
    pool.ready_dispatchable(0)
    a.state = EntryState.ISSUED
    a.complete_cycle = 7.5
    assert pool.on_issue(a, 0) is False
    assert pool.ready_dispatchable(7) == []
    assert pool.ready_dispatchable(8) == [b]
