"""Shared fixtures and kernel builders for the test suite."""

from __future__ import annotations

import os

import pytest

from repro import (
    Assign,
    BinOp,
    Call,
    Const,
    Job,
    Kernel,
    Load,
    Loop,
    Param,
    Reduce,
    build_image,
    compile_kernel,
    experiment_config,
)
from repro.compiler.pipeline import CompileOptions
from repro.validation.fingerprint import run_fingerprint as validation_run_fingerprint


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_cache(tmp_path_factory):
    """Keep the suite hermetic: never touch the user's ~/.cache/repro."""
    cache_dir = tmp_path_factory.mktemp("result-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture
def config():
    """The scaled two-core evaluation configuration."""
    return experiment_config()


@pytest.fixture
def config4():
    """The scaled four-core evaluation configuration."""
    return experiment_config(num_cores=4)


def make_axpy(length: int = 512, repeats: int = 1) -> Kernel:
    """y = a*x + y — the simplest realistic kernel."""
    return Kernel(
        name="axpy",
        array_length=length,
        loops=(
            Loop(
                "axpy",
                trip_count=length,
                repeats=repeats,
                body=(
                    Assign(
                        "y",
                        BinOp("add", BinOp("mul", Param("a"), Load("x")), Load("y")),
                    ),
                ),
            ),
        ),
        params={"a": 2.0},
    )


def make_stencil(length: int = 512) -> Kernel:
    """out[i] = (w[i-1] + w[i] + w[i+1]) / 3 — exercises shifts/data reuse."""
    return Kernel(
        name="stencil3",
        array_length=length,
        loops=(
            Loop(
                "stencil3",
                trip_count=length - 2,
                body=(
                    Assign(
                        "out",
                        BinOp(
                            "mul",
                            BinOp(
                                "add",
                                BinOp("add", Load("w", -1), Load("w")),
                                Load("w", 1),
                            ),
                            Const(1.0 / 3.0),
                        ),
                    ),
                ),
            ),
        ),
    )


def make_reduction(length: int = 512, repeats: int = 1) -> Kernel:
    """acc += x*y — a dot product (loop-carried reduction)."""
    return Kernel(
        name="dot",
        array_length=length,
        loops=(
            Loop(
                "dot",
                trip_count=length,
                repeats=repeats,
                body=(Reduce("add", "acc", BinOp("mul", Load("x"), Load("y"))),),
            ),
        ),
    )


def make_two_phase(length: int = 512) -> Kernel:
    """A memory-ish phase followed by a compute-ish phase."""
    mem = Loop(
        "mem",
        trip_count=length,
        body=(
            Assign("c", BinOp("add", Load("a"), Load("b"))),
            Assign("d", BinOp("max", Load("e"), Load("f"))),
        ),
    )
    expr = BinOp("mul", Load("x"), Load("y"))
    for i in range(8):
        expr = BinOp("add", BinOp("mul", expr, Const(1.0 + 0.001 * i)), Load("x"))
    comp = Loop("comp", trip_count=length, repeats=4, body=(Assign("z", expr),))
    return Kernel(name="two_phase", array_length=length, loops=(mem, comp))


def compiled_job(kernel: Kernel, core_id: int = 0, **options) -> Job:
    """Compile a kernel and wrap it with a fresh image."""
    program = compile_kernel(kernel, CompileOptions(**options))
    return Job(program=program, image=build_image(kernel, core_id=core_id))


def run_fingerprint(result) -> tuple:
    """Everything observable about a :class:`RunResult`, hashable.

    The determinism suite compares these across execution strategies
    (serial vs process pool, fast-forward on vs off, cold vs cached).
    Delegates to :mod:`repro.validation.fingerprint` — the same sections
    the cross-engine differential fuzzer diffs — so the test layer and the
    fuzzer can never drift apart on what "bit-identical" covers.
    """
    return validation_run_fingerprint(result)
