"""End-to-end behavioural claims of the paper on small co-runs."""

import numpy as np
import pytest

from repro import (
    ALL_POLICIES,
    FTS,
    OCCAMY,
    PRIVATE,
    VLS,
    Job,
    build_image,
    compile_kernel,
    experiment_config,
    reference_execute,
    run_policy,
)
from repro.analysis.reporting import geomean
from repro.compiler.pipeline import CompileOptions
from repro.coproc.metrics import StallReason
from repro.workloads.motivating import motivating_pair

SCALE = 0.45  # WL#1 must outlive WL#0, as in the paper


@pytest.fixture(scope="module")
def motivation_results():
    config = experiment_config()
    wl0, wl1 = motivating_pair(SCALE)
    options = CompileOptions(memory=config.memory)
    p0, p1 = compile_kernel(wl0, options), compile_kernel(wl1, options)
    results = {}
    for policy in ALL_POLICIES:
        jobs = [Job(p0, build_image(wl0, 0)), Job(p1, build_image(wl1, 1))]
        results[policy.key] = run_policy(config, policy, jobs)
    return results


class TestMotivatingExample(object):
    def test_occamy_fastest_on_compute_core(self, motivation_results):
        base = motivation_results["private"].core_time(1)
        times = {k: r.core_time(1) for k, r in motivation_results.items()}
        assert times["occamy"] < times["vls"] < base

    def test_memory_core_performance_preserved(self, motivation_results):
        base = motivation_results["private"].core_time(0)
        for key in ("vls", "occamy"):
            ratio = motivation_results[key].core_time(0) / base
            assert ratio < 1.15  # within ~15% of Private (paper: ~1.0)

    def test_occamy_best_utilization(self, motivation_results):
        utils = {
            k: r.metrics.simd_utilization() for k, r in motivation_results.items()
        }
        assert utils["occamy"] == max(utils.values())
        assert utils["occamy"] > utils["private"] * 1.2

    def test_elastic_plan_replays_fig8(self, motivation_results):
        # 8 -> 12 lanes for WL#0; 24 -> 20 -> 32 for WL#1.
        history = motivation_results["occamy"].lane_manager.plan_history
        core0_plans = [plan[0] for _, plan in history if plan.get(0)]
        core1_plans = [plan[1] for _, plan in history if plan.get(1)]
        assert core0_plans[:2] == [8, 12] or core0_plans[:3] == [8, 8, 12]
        assert 24 in core1_plans and 32 in core1_plans

    def test_fts_renaming_stalls_dominate(self, motivation_results):
        # Fig. 13: FTS stalls waiting for registers; spatial policies don't.
        fts = motivation_results["fts"].metrics
        assert fts.stall_fraction(0, StallReason.RENAME) > 0.3
        for key in ("private", "vls", "occamy"):
            metrics = motivation_results[key].metrics
            assert metrics.stall_fraction(0, StallReason.RENAME) < 0.05

    def test_occamy_overhead_small(self, motivation_results):
        # Fig. 15: EM-SIMD support costs ~0.5% of runtime.
        metrics = motivation_results["occamy"].metrics
        for core in (0, 1):
            overhead = metrics.overhead_fraction(core)
            assert overhead["monitor"] + overhead["reconfig"] < 0.05

    def test_functional_equivalence_across_policies(self):
        config = experiment_config()
        wl0, _ = motivating_pair(0.05)
        program = compile_kernel(wl0, CompileOptions(memory=config.memory))
        expected = reference_execute(wl0, build_image(wl0, 0))
        for policy in ALL_POLICIES:
            image = build_image(wl0, 0)
            run_policy(config, policy, [Job(program, image), None])
            for name, array in expected:
                np.testing.assert_allclose(
                    image.array(name), array, rtol=1e-4,
                    err_msg=f"{name} under {policy.key}",
                )


class TestFourCores:
    def test_occamy_scales_to_four_cores(self, config4):
        from repro.workloads.pairs import jobs_for_group

        group = (1, 20, 16, 17)  # two memory + two compute workloads
        private = run_policy(config4, PRIVATE, jobs_for_group(group, scale=0.08))
        occamy = run_policy(config4, OCCAMY, jobs_for_group(group, scale=0.08))
        # Compute cores (2, 3) should benefit; geometric-mean speedup > 1.
        speedups = [occamy.speedup_over(private, core) for core in (2, 3)]
        assert geomean(speedups) > 1.05
        occamy.metrics  # runs completed with metrics intact
