"""Determinism of the execution strategies (the tentpole's safety net).

The parallel sweep engine, the persistent result cache, the idle-cycle
fast-forward, the pre-decoded scalar dispatch table and the steady-state
loop replay are all pure optimisations: every one of them must produce
results bit-identical to the plain serial, cycle-by-cycle simulation.
This suite pins that down by fingerprinting complete
:class:`~repro.core.machine.RunResult` objects — cycle counts, every
metric counter, phase records, lane timelines, cache statistics and final
memory bytes — across strategies.
"""

from __future__ import annotations

import pytest

from repro.analysis import experiments
from repro.analysis.parallel import SimTask, run_tasks
from repro.core.machine import run_policy
from repro.core.policies import ALL_POLICIES, EXTENDED_POLICIES
from repro.workloads.pairs import all_pairs, jobs_for_pair

from tests.conftest import run_fingerprint

SCALE = 0.1
PAIRS = all_pairs()[:2]


@pytest.fixture(autouse=True)
def _no_persistent_cache(monkeypatch):
    """Force every strategy to really simulate (no disk-cache shortcuts)."""
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    experiments._sweep_cache.clear()
    yield
    experiments._sweep_cache.clear()


def _sweep_fingerprints(jobs):
    experiments._sweep_cache.clear()
    outcomes = experiments.sweep_pairs(PAIRS, scale=SCALE, jobs=jobs)
    return [
        (str(outcome.pair), key, run_fingerprint(outcome.results[key]))
        for outcome in outcomes
        for key in sorted(outcome.results)
    ]


def test_parallel_sweep_matches_serial():
    """2- and 4-worker process pools reproduce the serial sweep exactly."""
    serial = _sweep_fingerprints(jobs=1)
    assert _sweep_fingerprints(jobs=2) == serial
    assert _sweep_fingerprints(jobs=4) == serial


def test_run_tasks_order_is_positional(config):
    """Results come back in task order, not completion order."""
    tasks = [
        SimTask(policy_key=policy.key, scale=SCALE, config=config, pair=pair)
        for pair in PAIRS
        for policy in ALL_POLICIES
    ]
    results = run_tasks(tasks, jobs=2, cache=None)
    for task, result in zip(tasks, results):
        assert result.policy_key == task.policy_key


@pytest.mark.parametrize("policy", EXTENDED_POLICIES, ids=lambda p: p.key)
def test_fast_forward_is_bit_exact(policy, config):
    """Fast-forward on vs off: identical runs under every sharing mode.

    EXTENDED_POLICIES covers all three sharing modes (spatial, temporal
    and CTS's coarse-temporal), so each mode's next-event hooks are
    exercised.
    """
    pair = PAIRS[0]
    slow = run_policy(config, policy, jobs_for_pair(pair, SCALE), fast_forward=False)
    fast = run_policy(config, policy, jobs_for_pair(pair, SCALE), fast_forward=True)
    assert run_fingerprint(fast) == run_fingerprint(slow)


@pytest.mark.parametrize("policy", EXTENDED_POLICIES, ids=lambda p: p.key)
def test_loop_replay_is_bit_exact(policy, config):
    """Loop replay on vs off: identical runs under every sharing mode.

    Together with the spatial/temporal/coarse-temporal spread this pins
    the replay engine's signature, verification and rollback logic
    against the cycle-by-cycle interpreter.
    """
    pair = PAIRS[0]
    slow = run_policy(config, policy, jobs_for_pair(pair, SCALE), fast_path=False)
    fast = run_policy(config, policy, jobs_for_pair(pair, SCALE), fast_path=True)
    assert run_fingerprint(fast) == run_fingerprint(slow)


@pytest.mark.parametrize("policy", EXTENDED_POLICIES, ids=lambda p: p.key)
def test_pre_decode_matches_seed_interpreter(policy, config, monkeypatch):
    """The pre-decoded dispatch table reproduces the seed interpreter."""
    pair = PAIRS[0]
    monkeypatch.setenv("REPRO_NO_PRE_DECODE", "1")
    seed = run_policy(config, policy, jobs_for_pair(pair, SCALE))
    monkeypatch.delenv("REPRO_NO_PRE_DECODE")
    decoded = run_policy(config, policy, jobs_for_pair(pair, SCALE))
    assert run_fingerprint(decoded) == run_fingerprint(seed)


def test_all_fast_paths_off_matches_all_on(config, monkeypatch):
    """The fully pessimised configuration (seed interpreter, no
    fast-forward, no loop replay) and the fully optimised default agree."""
    pair = PAIRS[0]
    policy = EXTENDED_POLICIES[3]  # occamy
    monkeypatch.setenv("REPRO_NO_PRE_DECODE", "1")
    baseline = run_policy(
        config,
        policy,
        jobs_for_pair(pair, SCALE),
        fast_forward=False,
        fast_path=False,
    )
    monkeypatch.delenv("REPRO_NO_PRE_DECODE")
    optimised = run_policy(config, policy, jobs_for_pair(pair, SCALE))
    assert run_fingerprint(optimised) == run_fingerprint(baseline)


@pytest.mark.parametrize("policy", EXTENDED_POLICIES, ids=lambda p: p.key)
def test_event_wheel_is_bit_exact(policy, config, monkeypatch):
    """Tickless event wheel on vs off: identical under every sharing mode.

    The wheel changes *everything* about the run loop — per-component
    sleep/wake, bulk metric settling, ready-set dispatch indexing — so
    this is the broadest single safety net for the tickless engine.
    """
    pair = PAIRS[0]
    monkeypatch.setenv("REPRO_NO_EVENT_WHEEL", "1")
    reference = run_policy(config, policy, jobs_for_pair(pair, SCALE))
    monkeypatch.delenv("REPRO_NO_EVENT_WHEEL")
    tickless = run_policy(config, policy, jobs_for_pair(pair, SCALE))
    assert run_fingerprint(tickless) == run_fingerprint(reference)


def test_event_wheel_env_kill_switch(monkeypatch, config):
    """REPRO_NO_EVENT_WHEEL=1 selects the reference loop — and changes
    nothing observable."""
    from repro.core.machine import default_event_wheel

    monkeypatch.setenv("REPRO_NO_EVENT_WHEEL", "1")
    assert default_event_wheel() is False
    pair = PAIRS[0]
    reference = run_policy(config, ALL_POLICIES[0], jobs_for_pair(pair, SCALE))
    monkeypatch.delenv("REPRO_NO_EVENT_WHEEL")
    assert default_event_wheel() is True
    tickless = run_policy(config, ALL_POLICIES[0], jobs_for_pair(pair, SCALE))
    assert run_fingerprint(reference) == run_fingerprint(tickless)


def test_fast_forward_env_kill_switch(monkeypatch, config):
    """REPRO_NO_FAST_FORWARD=1 selects the slow path — and changes nothing."""
    from repro.core.machine import default_fast_forward

    monkeypatch.setenv("REPRO_NO_FAST_FORWARD", "1")
    assert default_fast_forward() is False
    pair = PAIRS[0]
    defaulted = run_policy(config, ALL_POLICIES[0], jobs_for_pair(pair, SCALE))
    monkeypatch.delenv("REPRO_NO_FAST_FORWARD")
    assert default_fast_forward() is True
    fast = run_policy(config, ALL_POLICIES[0], jobs_for_pair(pair, SCALE))
    assert run_fingerprint(defaulted) == run_fingerprint(fast)


def test_sweep_is_order_independent():
    """Sweeping [A, B] and [B, A] yields the same per-pair results."""
    forward = _sweep_fingerprints(jobs=1)
    experiments._sweep_cache.clear()
    outcomes = experiments.sweep_pairs(list(reversed(PAIRS)), scale=SCALE)
    backward = [
        (str(outcome.pair), key, run_fingerprint(outcome.results[key]))
        for outcome in reversed(outcomes)
        for key in sorted(outcome.results)
    ]
    assert backward == forward
