"""Correctness under forced mid-loop vector-length reconfiguration (§6.4).

These tests drive the machine cycle by cycle and mutate ``<decision>``
directly, forcing the lazy partition monitor to reconfigure many times
inside one vectorized loop — including mid-reduction, where the compiler
must splice partial results across lengths.
"""

import numpy as np
import pytest

from repro import (
    OCCAMY,
    Job,
    Machine,
    build_image,
    compile_kernel,
    experiment_config,
    reference_execute,
)
from repro.common.errors import SimulationError
from tests.conftest import make_axpy, make_reduction, make_stencil, make_two_phase


def run_with_forced_decisions(kernel, schedule, period=150, max_cycles=400_000):
    """Run ``kernel`` solo under Occamy, rotating core0's ``<decision>``
    through ``schedule`` every ``period`` cycles.  Returns the image."""
    config = experiment_config()
    image = build_image(kernel, 0)
    machine = Machine(config, OCCAMY, [Job(compile_kernel(kernel), image), None])
    cycle = 0
    while not machine.finished:
        if cycle >= max_cycles:
            raise SimulationError("forced-reconfiguration run did not converge")
        if cycle % period == 0 and machine.coproc.resource_table.vl(0) > 0:
            lanes = schedule[(cycle // period) % len(schedule)]
            machine.coproc.resource_table.set_decision(0, lanes)
        machine.step(cycle)
        cycle += 1
    machine.metrics.close(cycle)
    return image, machine


SCHEDULES = [
    (4, 8, 16, 32),
    (32, 4),
    (1, 2, 3, 5, 7),
    (16, 16, 8),
]


class TestForcedReconfiguration:
    @pytest.mark.parametrize("schedule", SCHEDULES, ids=str)
    def test_axpy_results_invariant(self, schedule):
        kernel = make_axpy(length=700, repeats=2)
        expected = reference_execute(kernel, build_image(kernel, 0))
        image, machine = run_with_forced_decisions(kernel, schedule)
        np.testing.assert_allclose(
            image.array("y"), expected.array("y"), rtol=1e-5
        )
        assert machine.metrics.reconfig_success[0] >= 2

    @pytest.mark.parametrize("schedule", SCHEDULES, ids=str)
    def test_reduction_spliced_across_lengths(self, schedule):
        # The §6.4 case: partial reduction results must survive VL changes.
        kernel = make_reduction(length=900, repeats=2)
        expected = reference_execute(kernel, build_image(kernel, 0))
        image, machine = run_with_forced_decisions(kernel, schedule, period=120)
        np.testing.assert_allclose(
            image.array("acc"), expected.array("acc"), rtol=1e-3
        )
        assert machine.metrics.reconfig_success[0] >= 3

    def test_stencil_with_reconfigurations(self):
        kernel = make_stencil(length=800)
        expected = reference_execute(kernel, build_image(kernel, 0))
        image, _machine = run_with_forced_decisions(kernel, (4, 12, 28), period=100)
        np.testing.assert_allclose(
            image.array("out"), expected.array("out"), rtol=1e-5
        )

    def test_loop_invariants_reinitialised(self):
        # Params are splatted into vector registers that die on reconfig;
        # the compiler must re-dup them (§6.4).
        kernel = make_axpy(length=600)  # uses Param("a")
        expected = reference_execute(kernel, build_image(kernel, 0))
        image, _machine = run_with_forced_decisions(kernel, (2, 30), period=90)
        np.testing.assert_allclose(
            image.array("y"), expected.array("y"), rtol=1e-5
        )

    def test_multi_phase_with_reconfigurations(self):
        kernel = make_two_phase(length=600)
        expected = reference_execute(kernel, build_image(kernel, 0))
        image, _machine = run_with_forced_decisions(kernel, (6, 24, 12), period=130)
        for name, array in expected:
            np.testing.assert_allclose(image.array(name), array, rtol=1e-4)

    def test_lane_table_consistent_after_forcing(self):
        kernel = make_axpy(length=500)
        _image, machine = run_with_forced_decisions(kernel, (4, 20, 8))
        machine.coproc.resource_table.check_invariant()
        assert machine.coproc.lane_table.free_count == 32
