"""Four-core behaviour (paper §7.6)."""

import numpy as np
import pytest

from repro import (
    ALL_POLICIES,
    OCCAMY,
    PRIVATE,
    Job,
    build_image,
    compile_kernel,
    reference_execute,
    run_policy,
)
from repro.compiler.pipeline import CompileOptions
from repro.common.config import experiment_config
from repro.core.machine import Machine
from repro.workloads.pairs import jobs_for_group

GROUP = (1, 20, 16, 17)  # memory on cores 0/1, compute on cores 2/3
SCALE = 0.08


class TestFourCore:
    def test_all_policies_complete(self, config4):
        for policy in ALL_POLICIES:
            result = run_policy(config4, policy, jobs_for_group(GROUP, scale=SCALE))
            assert all(c > 0 for c in result.core_cycles)

    def test_lane_accounting_on_four_cores(self, config4):
        machine = Machine(config4, OCCAMY, jobs_for_group(GROUP, scale=SCALE))
        machine.run()
        machine.coproc.resource_table.check_invariant()
        assert machine.coproc.lane_table.free_count == 64

    def test_plans_never_oversubscribe(self, config4):
        machine = Machine(config4, OCCAMY, jobs_for_group(GROUP, scale=SCALE))
        machine.run()
        for _cycle, plan in machine.lane_manager.plan_history:
            assert sum(plan.values()) <= 64
            assert all(lanes >= 0 for lanes in plan.values())

    def test_private_splits_evenly(self, config4):
        result = run_policy(config4, PRIVATE, jobs_for_group(GROUP, scale=SCALE))
        for core in range(4):
            values = {v for _, v in result.metrics.lane_timeline[core].points if v}
            assert values == {16}

    def test_memory_cores_preserved_compute_cores_gain(self, config4):
        private = run_policy(config4, PRIVATE, jobs_for_group(GROUP, scale=SCALE))
        occamy = run_policy(config4, OCCAMY, jobs_for_group(GROUP, scale=SCALE))
        for core in (0, 1):
            assert occamy.speedup_over(private, core) > 0.85
        assert max(
            occamy.speedup_over(private, core) for core in (2, 3)
        ) > 1.05

    def test_duplicate_workloads_on_different_cores(self, config4):
        # Fig. 16's groups repeat workload ids (e.g. WL15 twice).
        result = run_policy(
            config4, OCCAMY, jobs_for_group((15, 6, 15, 16), scale=SCALE)
        )
        assert all(c > 0 for c in result.core_cycles)

    def test_functional_correctness_on_core3(self, config4):
        from repro.workloads.spec import spec_workload

        kernel = spec_workload(17, scale=SCALE)
        options = CompileOptions(memory=config4.memory)
        image = build_image(kernel, core_id=3)
        expected = reference_execute(kernel, image)
        jobs = jobs_for_group(GROUP, scale=SCALE)
        jobs[3] = Job(compile_kernel(kernel, options), image)
        run_policy(config4, OCCAMY, jobs)
        for name, array in expected:
            np.testing.assert_allclose(image.array(name), array, rtol=1e-3)
