"""Fuzzing the sharing policies with random workload pairs.

The paper's invariants must hold for workloads nobody hand-picked:
results match the oracle, the lane accounting stays consistent, Occamy
never slows the memory core much, and the compute core never regresses
badly.
"""

import numpy as np
import pytest

from repro import (
    OCCAMY,
    PRIVATE,
    Job,
    build_image,
    compile_kernel,
    experiment_config,
    reference_execute,
    run_policy,
)
from repro.compiler import analyze_kernel
from repro.compiler.pipeline import CompileOptions
from repro.core.machine import Machine
from repro.workloads.generator import random_pair, random_workload

SEEDS = [1, 7, 23]


class TestGenerator:
    def test_deterministic(self):
        a = random_workload(5, streaming=True)
        b = random_workload(5, streaming=True)
        assert [l.body for l in a.loops] == [l.body for l in b.loops]

    def test_memory_workloads_stream(self):
        for seed in range(6):
            kernel = random_workload(seed, streaming=True)
            for info in analyze_kernel(kernel):
                assert info.total_footprint_bytes > 128 * 1024

    def test_compute_workloads_resident(self):
        for seed in range(6):
            kernel = random_workload(seed, streaming=False)
            for info in analyze_kernel(kernel):
                assert info.total_footprint_bytes <= 32 * 1024

    def test_intensity_classes(self):
        mem = random_workload(3, streaming=True)
        comp = random_workload(3, streaming=False)
        assert max(i.oi.mem for i in analyze_kernel(mem)) < 0.45
        assert min(i.oi.mem for i in analyze_kernel(comp)) > 0.35


@pytest.mark.parametrize("seed", SEEDS)
class TestFuzzedPairs:
    def _run(self, seed, policy):
        config = experiment_config()
        mem_k, comp_k = random_pair(seed, scale=0.15)
        options = CompileOptions(memory=config.memory)
        jobs = [
            Job(compile_kernel(mem_k, options), build_image(mem_k, 0)),
            Job(compile_kernel(comp_k, options), build_image(comp_k, 1)),
        ]
        machine = Machine(config, policy, jobs)
        result = machine.run()
        return (mem_k, comp_k), jobs, result, machine

    def test_results_match_oracle(self, seed):
        (mem_k, comp_k), _jobs, _result, _machine = self._run(seed, OCCAMY)
        config = experiment_config()
        options = CompileOptions(memory=config.memory)
        for kernel in (mem_k, comp_k):
            image = build_image(kernel, 0)
            expected = reference_execute(kernel, image)
            run_policy(
                config, OCCAMY, [Job(compile_kernel(kernel, options), image), None]
            )
            for name, array in expected:
                np.testing.assert_allclose(
                    image.array(name), array, rtol=1e-3,
                    err_msg=f"seed {seed}: {kernel.name}/{name}",
                )

    def test_lane_accounting_consistent(self, seed):
        _kernels, _jobs, _result, machine = self._run(seed, OCCAMY)
        machine.coproc.resource_table.check_invariant()
        assert machine.coproc.lane_table.free_count == 32

    def test_memory_core_not_devastated(self, seed):
        _k, _j, private, _m = self._run(seed, PRIVATE)
        _k, _j, occamy, _m = self._run(seed, OCCAMY)
        assert occamy.speedup_over(private, 0) > 0.8

    def test_compute_core_not_regressed(self, seed):
        _k, _j, private, _m = self._run(seed, PRIVATE)
        _k, _j, occamy, _m = self._run(seed, OCCAMY)
        assert occamy.speedup_over(private, 1) > 0.9
