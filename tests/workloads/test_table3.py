"""Table 3 workloads: composition and operational-intensity fidelity."""

import pytest

from repro.compiler import analyze_kernel
from repro.compiler.vectorizer import vectorize_loop
from repro.workloads.opencv import OPENCV_KERNELS, OPENCV_WORKLOADS, opencv_workload
from repro.workloads.pairs import (
    FOUR_CORE_GROUPS,
    OPENCV_PAIRS,
    SPEC_PAIRS,
    all_pairs,
)
from repro.workloads.spec import SPEC_PHASES, SPEC_WORKLOADS, spec_workload

#: Relative tolerance for matching the paper's reported oi_mem.
OI_TOLERANCE = 0.16


class TestComposition:
    def test_22_spec_workloads(self):
        assert len(SPEC_WORKLOADS) == 22

    def test_12_opencv_workloads(self):
        assert len(OPENCV_WORKLOADS) == 12

    def test_25_pairs_total(self):
        assert len(SPEC_PAIRS) == 16
        assert len(OPENCV_PAIRS) == 9
        assert len(all_pairs()) == 25

    def test_four_groups_of_four(self):
        assert len(FOUR_CORE_GROUPS) == 4
        assert all(len(group) == 4 for group in FOUR_CORE_GROUPS)

    def test_pairs_reference_defined_workloads(self):
        for pair in all_pairs():
            table = SPEC_WORKLOADS if pair.suite == "spec" else OPENCV_WORKLOADS
            assert pair.core0 in table
            assert pair.core1 in table


@pytest.mark.parametrize("workload_id", sorted(SPEC_WORKLOADS))
def test_spec_oi_matches_table3(workload_id):
    kernel = spec_workload(workload_id, scale=0.05)
    infos = analyze_kernel(kernel)
    for info, phase_name in zip(infos, SPEC_WORKLOADS[workload_id]):
        target = SPEC_PHASES[phase_name].oi_mem
        assert info.oi.mem == pytest.approx(target, rel=OI_TOLERANCE), phase_name


@pytest.mark.parametrize("workload_id", sorted(OPENCV_WORKLOADS))
def test_opencv_oi_matches_table3(workload_id):
    kernel = opencv_workload(workload_id, scale=0.05)
    infos = analyze_kernel(kernel)
    for info, phase_name in zip(infos, OPENCV_WORKLOADS[workload_id]):
        target = OPENCV_KERNELS[phase_name].oi_mem
        assert info.oi.mem == pytest.approx(target, rel=OI_TOLERANCE), phase_name


class TestSpecialCases:
    def test_rho_eos2_has_case4_data_reuse(self):
        kernel = spec_workload(19, scale=0.05)
        oi = analyze_kernel(kernel)[0].oi
        assert oi.issue == pytest.approx(1 / 6, rel=0.05)
        assert oi.mem == pytest.approx(0.25, rel=0.05)

    def test_wsm5_has_stencil_reuse(self):
        kernel = spec_workload(16, scale=0.05)
        oi = analyze_kernel(kernel)[0].oi
        assert oi.mem == pytest.approx(1.0, rel=0.05)
        assert oi.issue < oi.mem

    def test_every_phase_vectorizes(self):
        for workload_id in SPEC_WORKLOADS:
            for loop in spec_workload(workload_id, scale=0.05).loops:
                vectorize_loop(loop)
        for workload_id in OPENCV_WORKLOADS:
            for loop in opencv_workload(workload_id, scale=0.05).loops:
                vectorize_loop(loop)

    def test_memory_workloads_stream(self):
        # WL1 is a <memory> workload: both phases must exceed the L2.
        kernel = spec_workload(1, scale=0.05)
        for info in analyze_kernel(kernel):
            assert info.total_footprint_bytes > 128 * 1024

    def test_compute_workloads_resident(self):
        # WL16 (wsm51) fits the scaled Vec Cache.
        kernel = spec_workload(16, scale=0.05)
        assert analyze_kernel(kernel)[0].total_footprint_bytes <= 32 * 1024
