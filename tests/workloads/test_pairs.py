"""Symmetric pair deduplication and the co-run candidate sets."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import alloc_group
from repro.workloads.pairs import corun_pair_set, dedup_unordered


def test_symmetric_pairs_collapse():
    """(A,B) and (B,A) are the same complex; only the sorted form survives."""
    pairs = dedup_unordered([16, 15])
    assert pairs == [(15, 16)]
    assert dedup_unordered([15, 16]) == dedup_unordered([16, 15])


def test_self_pair_needs_two_copies():
    assert (15, 15) in dedup_unordered([15, 15, 16])
    assert (15, 15) not in dedup_unordered([15, 16])


def test_output_is_sorted_and_duplicate_free():
    keys = [20, 17, 17, 21]
    pairs = dedup_unordered(keys)
    assert pairs == sorted(pairs)
    assert len(pairs) == len(set(pairs))
    for a, b in pairs:
        assert a <= b


def test_distinct_keys_give_n_choose_2():
    pairs = dedup_unordered(["a", "b", "c", "d"])
    assert len(pairs) == 6  # C(4,2), no self-pairs


@pytest.mark.parametrize(
    "num_cores,expected",
    [
        # Cardinality regression: C(distinct, 2) + duplicated-key self-pairs
        # for the tiled Fig. 16 blend at each machine size.
        (4, 4),  # {6,15,16}: 3 cross + (15,15)
        (8, 17),  # {6,15,16,17,20,21}: 15 cross + (15,15),(17,17)
        (16, 59),  # 11 distinct: 55 cross + self 15,16,17,20
        (32, 66),  # 11 distinct: 55 cross + all 11 self-pairs
    ],
)
def test_blend_pair_set_cardinality(num_cores, expected):
    group = alloc_group(num_cores)
    pair_set = corun_pair_set(group)
    assert len(pair_set) == expected
    assert pair_set == tuple(sorted(set(pair_set)))


def test_pair_set_is_placement_superset():
    """Every complex any placement could form is in the candidate set."""
    group = alloc_group(8)
    pair_set = set(corun_pair_set(group))
    for i in range(len(group)):
        for j in range(i + 1, len(group)):
            pair = tuple(sorted((group[i], group[j])))
            assert pair in pair_set
