"""Synthetic workload generator: OI calibration guarantees."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import CompilationError
from repro.compiler.phase_analysis import analyze_loop
from repro.compiler.vectorizer import vectorize_loop
from repro.workloads.synth import (
    Counts,
    resident_repeats,
    solve_counts,
    synth_loop,
    synth_phase,
)


class TestCounts:
    def test_oi_formulas(self):
        counts = Counts(comp=4, reads=3, extra_loads=2, stores=1)
        assert counts.oi_mem == pytest.approx(0.25)
        assert counts.oi_issue == pytest.approx(1 / 6)

    def test_validation(self):
        with pytest.raises(CompilationError):
            Counts(comp=0, reads=1, extra_loads=0, stores=1)
        with pytest.raises(CompilationError):
            Counts(comp=1, reads=2, extra_loads=3, stores=1)  # extras > reads
        with pytest.raises(CompilationError):
            Counts(comp=1, reads=5, extra_loads=0, stores=1)  # tree too big


class TestSolveCounts:
    @pytest.mark.parametrize(
        "target", [0.06, 0.083, 0.09, 0.11, 0.13, 0.17, 0.25, 0.32, 0.56, 0.75, 1.0, 1.83]
    )
    def test_targets_within_tolerance(self, target):
        counts = solve_counts(target)
        assert abs(counts.oi_mem - target) / target < 0.16

    def test_data_reuse_target(self):
        counts = solve_counts(0.25, oi_issue=1 / 6)
        assert counts.oi_mem == pytest.approx(0.25, rel=0.05)
        assert counts.oi_issue == pytest.approx(1 / 6, rel=0.05)
        assert counts.extra_loads > 0

    def test_min_footprint(self):
        counts = solve_counts(0.25, min_footprint=3)
        assert counts.footprint_arrays >= 3

    def test_bad_target(self):
        with pytest.raises(CompilationError):
            solve_counts(0.0)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(0.06, 1.9))
    def test_solver_always_close(self, target):
        counts = solve_counts(target)
        assert abs(counts.oi_mem - target) / target < 0.25


class TestSynthLoop:
    def test_generated_mix_matches_counts_exactly(self):
        counts = solve_counts(0.25, oi_issue=1 / 6)
        loop = synth_loop("t", counts, trip_count=256)
        info = analyze_loop(loop)
        assert info.comp_insts == counts.comp
        assert info.load_insts == counts.loads
        assert info.store_insts == counts.stores
        assert info.footprint_arrays == counts.footprint_arrays

    def test_generated_loop_vectorizes(self):
        for target in (0.06, 0.25, 1.0, 1.83):
            loop = synth_loop("t", solve_counts(target), trip_count=256)
            vectorize_loop(loop)  # must fit the register budget

    def test_streaming_phase_has_large_footprint(self):
        loop = synth_phase("p", 0.09, scale=0.1)
        info = analyze_loop(loop)
        assert info.total_footprint_bytes > 128 * 1024  # exceeds scaled L2

    def test_resident_phase_fits_vec_cache(self):
        loop = synth_phase("p", 1.0, scale=0.1)
        info = analyze_loop(loop)
        assert info.total_footprint_bytes <= 32 * 1024

    def test_scale_controls_repeats(self):
        small = synth_phase("p", 1.0, scale=0.05)
        large = synth_phase("p", 1.0, scale=1.0)
        assert large.repeats > small.repeats

    def test_resident_repeats_monotone(self):
        assert resident_repeats(4, 1024, 1.0) > resident_repeats(20, 1024, 1.0)
