"""Memory Ordering Buffer: address-overlap hazards (§4.1.2)."""

import pytest

from repro.memory.mob import MemoryOrderingBuffer


class TestOrdering:
    def test_load_after_overlapping_store_waits(self):
        mob = MemoryOrderingBuffer()
        mob.track(0, 64, complete_cycle=50, is_store=True)
        assert mob.earliest_start(32, 16, cycle=10, is_store=False) == 50
        assert mob.conflicts_detected == 1

    def test_load_after_disjoint_store_proceeds(self):
        mob = MemoryOrderingBuffer()
        mob.track(0, 64, complete_cycle=50, is_store=True)
        assert mob.earliest_start(64, 16, cycle=10, is_store=False) == 10

    def test_load_after_load_proceeds(self):
        mob = MemoryOrderingBuffer()
        mob.track(0, 64, complete_cycle=50, is_store=False)
        assert mob.earliest_start(0, 64, cycle=10, is_store=False) == 10

    def test_store_after_overlapping_load_waits(self):
        # Write-after-read.
        mob = MemoryOrderingBuffer()
        mob.track(0, 64, complete_cycle=50, is_store=False)
        assert mob.earliest_start(0, 8, cycle=10, is_store=True) == 50

    def test_completed_entries_ignored(self):
        mob = MemoryOrderingBuffer()
        mob.track(0, 64, complete_cycle=50, is_store=True)
        assert mob.earliest_start(0, 64, cycle=60, is_store=False) == 60

    def test_outstanding_count(self):
        mob = MemoryOrderingBuffer()
        mob.track(0, 64, complete_cycle=50, is_store=True)
        mob.track(64, 64, complete_cycle=70, is_store=False)
        assert mob.outstanding(cycle=10) == 2
        assert mob.outstanding(cycle=60) == 1

    def test_capacity_bound(self):
        mob = MemoryOrderingBuffer(capacity=4)
        for i in range(10):
            mob.track(i * 64, 64, complete_cycle=1000 + i, is_store=True)
        assert mob.outstanding(cycle=0) <= 4

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            MemoryOrderingBuffer(capacity=0)
