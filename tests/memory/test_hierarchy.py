"""The shared Vec Cache -> L2 -> DRAM hierarchy."""

import pytest

from repro.common.config import CacheConfig, MemoryConfig
from repro.memory.hierarchy import VectorMemorySystem


def tiny_memory():
    return MemoryConfig(
        vec_cache=CacheConfig(size_bytes=4096, ways=4, line_bytes=64, latency=5, bytes_per_cycle=1024),
        l2=CacheConfig(size_bytes=16384, ways=4, line_bytes=64, latency=18, bytes_per_cycle=64),
        dram_latency=120,
        dram_bytes_per_cycle=32,
    )


class TestAccessLevels:
    def test_cold_access_reaches_dram(self):
        memory = VectorMemorySystem(tiny_memory())
        result = memory.access(0, 64, 0, is_store=False)
        assert result.dram_accesses == 1
        assert result.deepest_level == "dram"
        assert result.complete_cycle >= 5 + 18 + 120

    def test_second_access_hits_vec_cache(self):
        memory = VectorMemorySystem(tiny_memory())
        memory.access(0, 64, 0, is_store=False)
        result = memory.access(0, 64, 200, is_store=False)
        assert result.vec_cache_hits == 1
        assert result.deepest_level == "vec_cache"
        assert result.complete_cycle <= 200 + 6

    def test_l2_hit_after_vec_cache_eviction(self):
        config = tiny_memory()
        memory = VectorMemorySystem(config)
        # Stream more than the Vec Cache but less than L2.
        for addr in range(0, 8192, 64):
            memory.access(addr, 64, 0, is_store=False)
        result = memory.access(0, 64, 10_000, is_store=False)
        assert result.l2_hits == 1
        assert result.deepest_level == "l2"

    def test_multi_line_access(self):
        memory = VectorMemorySystem(tiny_memory())
        result = memory.access(0, 256, 0, is_store=False)
        assert result.lines == 4

    def test_empty_access(self):
        memory = VectorMemorySystem(tiny_memory())
        result = memory.access(0, 0, 7, is_store=False)
        assert result.complete_cycle == 7
        assert result.lines == 0


class TestBandwidthContention:
    def test_dram_bandwidth_bounds_streaming(self):
        config = tiny_memory()
        memory = VectorMemorySystem(config)
        total_bytes = 64 * 1024
        finish = 0.0
        for addr in range(0, total_bytes, 64):
            finish = memory.access(addr, 64, 0, is_store=False).complete_cycle
        # Streaming must take at least bytes / DRAM bandwidth.
        assert finish >= total_bytes / config.dram_bytes_per_cycle

    def test_two_streams_share_dram(self):
        config = tiny_memory()
        memory = VectorMemorySystem(config)
        solo_finish = 0.0
        for addr in range(0, 16384, 64):
            solo_finish = memory.access(addr, 64, 0, False).complete_cycle
        shared = VectorMemorySystem(config)
        finish = 0.0
        for addr in range(0, 16384, 64):
            shared.access(1 << 20 | addr, 64, 0, False)
            finish = shared.access(addr, 64, 0, False).complete_cycle
        assert finish > solo_finish * 1.5


class TestWritebacks:
    def test_dirty_evictions_consume_l2_bandwidth(self):
        config = tiny_memory()
        memory = VectorMemorySystem(config)
        for addr in range(0, 8192, 64):
            memory.access(addr, 64, 0, is_store=True)
        assert memory.vec_cache.stats.writebacks > 0

    def test_reset_bandwidth(self):
        memory = VectorMemorySystem(tiny_memory())
        memory.access(0, 64, 0, False)
        memory.reset_bandwidth()
        assert memory.dram_bw.bytes_served == 0
