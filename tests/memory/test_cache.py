"""Set-associative LRU cache behaviour."""

from hypothesis import given, strategies as st

from repro.common.config import CacheConfig
from repro.memory.cache import Cache


def small_cache(ways=2, sets=4, line=64):
    return Cache("t", CacheConfig(size_bytes=ways * sets * line, ways=ways, line_bytes=line))


class TestLinesSpanning:
    def test_single_line(self):
        cache = small_cache()
        assert cache.lines_spanning(0, 64) == [0]
        assert cache.lines_spanning(10, 10) == [0]

    def test_straddling(self):
        cache = small_cache()
        assert cache.lines_spanning(60, 8) == [0, 64]

    def test_empty(self):
        assert small_cache().lines_spanning(0, 0) == []

    def test_line_of(self):
        cache = small_cache()
        assert cache.line_of(130) == 128


class TestHitMiss:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0, is_store=False)
        cache.fill(0, is_store=False)
        assert cache.access(0, is_store=False)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = small_cache(ways=2, sets=1)
        line = 64
        cache.fill(0 * line, False)
        cache.fill(1 * line, False)
        cache.access(0, False)  # touch line 0: line 1 becomes LRU
        cache.fill(2 * line, False)  # evicts line 1
        assert cache.probe(0)
        assert not cache.probe(line)
        assert cache.probe(2 * line)

    def test_dirty_eviction_returns_victim(self):
        cache = small_cache(ways=1, sets=1)
        cache.fill(0, is_store=True)
        victim = cache.fill(64, is_store=False)
        assert victim == 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = small_cache(ways=1, sets=1)
        cache.fill(0, is_store=False)
        assert cache.fill(64, is_store=False) is None

    def test_store_marks_dirty(self):
        cache = small_cache(ways=1, sets=1)
        cache.fill(0, is_store=False)
        cache.access(0, is_store=True)  # dirty via hit
        assert cache.fill(64, is_store=False) == 0

    def test_invalidate_all(self):
        cache = small_cache()
        cache.fill(0, False)
        cache.invalidate_all()
        assert cache.resident_lines() == 0


class TestCapacity:
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    def test_never_exceeds_ways(self, lines):
        cache = small_cache(ways=2, sets=4)
        for index in lines:
            addr = index * 64
            if not cache.access(addr, False):
                cache.fill(addr, False)
        assert cache.resident_lines() <= 8

    def test_hit_rate(self):
        cache = small_cache()
        cache.fill(0, False)
        cache.access(0, False)
        cache.access(64, False)
        assert cache.stats.hit_rate == 0.5
