"""Functional memory image: layout and isolation."""

import numpy as np
import pytest

from repro.common.errors import SimulationError
from repro.memory.image import ARRAY_ALIGN, CORE_ADDRESS_STRIDE, MemoryImage


class TestLayout:
    def test_addresses_are_aligned_and_disjoint(self):
        image = MemoryImage()
        image.zeros("a", 100)
        image.zeros("b", 100)
        addr_a = image.address_of("a", 0)
        addr_b = image.address_of("b", 0)
        assert addr_a % ARRAY_ALIGN == 0
        assert addr_b % ARRAY_ALIGN == 0
        assert addr_b >= addr_a + 400

    def test_element_addressing(self):
        image = MemoryImage()
        image.zeros("a", 16)
        assert image.address_of("a", 3) == image.address_of("a", 0) + 12

    def test_core_address_spaces_disjoint(self):
        image0 = MemoryImage.for_core(0)
        image1 = MemoryImage.for_core(1)
        image0.zeros("a", 1 << 20)
        image1.zeros("a", 1 << 20)
        assert image1.address_of("a", 0) - image0.address_of("a", 0) == CORE_ADDRESS_STRIDE

    def test_float32_conversion(self):
        image = MemoryImage()
        stored = image.add_array("a", np.arange(4, dtype=np.float64))
        assert stored.dtype == np.float32


class TestErrors:
    def test_duplicate_rejected(self):
        image = MemoryImage()
        image.zeros("a", 4)
        with pytest.raises(SimulationError):
            image.zeros("a", 4)

    def test_unknown_array(self):
        with pytest.raises(SimulationError):
            MemoryImage().array("missing")


class TestCopy:
    def test_copy_is_deep(self):
        image = MemoryImage()
        image.zeros("a", 4)
        clone = image.copy()
        clone.array("a")[0] = 5.0
        assert image.array("a")[0] == 0.0

    def test_copy_preserves_layout(self):
        image = MemoryImage.for_core(1)
        image.zeros("a", 4)
        clone = image.copy()
        assert clone.address_of("a", 0) == image.address_of("a", 0)

    def test_footprint(self):
        image = MemoryImage()
        image.zeros("a", 100)
        assert image.footprint_bytes() == 400
        assert "a" in image
        assert [name for name, _ in image] == ["a"]
