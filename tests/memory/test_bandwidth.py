"""Bandwidth regulator: serialisation and queuing."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.bandwidth import BandwidthRegulator


class TestServe:
    def test_throughput(self):
        bw = BandwidthRegulator("t", 32)
        assert bw.serve(64, 0) == pytest.approx(2.0)

    def test_back_to_back_requests_queue(self):
        bw = BandwidthRegulator("t", 32)
        first = bw.serve(64, 0)
        second = bw.serve(64, 0)
        assert second == pytest.approx(first + 2.0)

    def test_idle_gap_not_reclaimed(self):
        bw = BandwidthRegulator("t", 32)
        bw.serve(32, 0)
        assert bw.serve(32, 100) == pytest.approx(101.0)

    def test_zero_bytes_free(self):
        bw = BandwidthRegulator("t", 32)
        assert bw.serve(0, 5) == 5

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            BandwidthRegulator("t", 0)

    def test_utilization(self):
        bw = BandwidthRegulator("t", 32)
        bw.serve(160, 0)
        assert bw.utilization(10) == pytest.approx(0.5)

    def test_reset(self):
        bw = BandwidthRegulator("t", 32)
        bw.serve(320, 0)
        bw.reset()
        assert bw.bytes_served == 0
        assert bw.serve(32, 0) == pytest.approx(1.0)

    @given(st.lists(st.integers(1, 512), min_size=1, max_size=50))
    def test_total_time_is_sum_of_bytes(self, sizes):
        bw = BandwidthRegulator("t", 16)
        finish = 0.0
        for size in sizes:
            finish = bw.serve(size, 0)
        assert finish == pytest.approx(sum(sizes) / 16)
