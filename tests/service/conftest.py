"""Service test harness: a daemon in a background thread + sync clients."""

from __future__ import annotations

import threading

import pytest

from repro.service.client import ServiceClient, wait_for_server
from repro.service.server import ServerOptions, SimulationServer


class RunningServer:
    """Handle to one live daemon started by the ``service_server`` factory."""

    def __init__(self, server: SimulationServer, thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread
        self.address = server.address

    def client(self, timeout: float = 60.0) -> ServiceClient:
        return ServiceClient(self.address, timeout=timeout)

    def stop(self, join_timeout: float = 15.0) -> None:
        self.server.stop_threadsafe()
        self.thread.join(timeout=join_timeout)
        # belt-and-braces: never leak worker processes past a test
        self.server.pool.stop()


@pytest.fixture
def service_server(tmp_path, monkeypatch):
    """Factory fixture: ``service_server(**ServerOptions fields)``.

    Each started daemon gets a fresh result-cache directory and a Unix
    socket under ``tmp_path``; every daemon is stopped (and its workers
    killed) at teardown even when the test fails.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    started = []
    counter = [0]

    def start(**options) -> RunningServer:
        counter[0] += 1
        options.setdefault("address", str(tmp_path / f"svc{counter[0]}.sock"))
        options.setdefault("workers", 1)
        options.setdefault("poll_interval", 0.01)
        options.setdefault("retry_backoff", 0.05)
        server = SimulationServer(ServerOptions(**options))
        thread = threading.Thread(target=server.run, daemon=True)
        thread.start()
        wait_for_server(server.address, deadline_s=15.0)
        handle = RunningServer(server, thread)
        started.append(handle)
        return handle

    yield start
    for handle in started:
        handle.stop()
