"""Service test harness: daemons + gateway in background threads."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.client import ServiceClient, wait_for_server
from repro.service.gateway import Gateway, GatewayOptions, serve_in_thread
from repro.service.server import ServerOptions, SimulationServer


class RunningServer:
    """Handle to one live daemon started by the ``service_server`` factory."""

    def __init__(self, server: SimulationServer, thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread
        self.address = server.address

    def client(self, timeout: float = 60.0) -> ServiceClient:
        return ServiceClient(self.address, timeout=timeout)

    def stop(self, join_timeout: float = 15.0) -> None:
        self.server.stop_threadsafe()
        self.thread.join(timeout=join_timeout)
        # belt-and-braces: never leak worker processes past a test
        self.server.pool.stop()


@pytest.fixture
def service_server(tmp_path, monkeypatch):
    """Factory fixture: ``service_server(**ServerOptions fields)``.

    Each started daemon gets a fresh result-cache directory and a Unix
    socket under ``tmp_path``; every daemon is stopped (and its workers
    killed) at teardown even when the test fails.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    started = []
    counter = [0]

    def start(**options) -> RunningServer:
        counter[0] += 1
        options.setdefault("address", str(tmp_path / f"svc{counter[0]}.sock"))
        options.setdefault("workers", 1)
        options.setdefault("poll_interval", 0.01)
        options.setdefault("retry_backoff", 0.05)
        server = SimulationServer(ServerOptions(**options))
        thread = threading.Thread(target=server.run, daemon=True)
        thread.start()
        wait_for_server(server.address, deadline_s=15.0)
        handle = RunningServer(server, thread)
        started.append(handle)
        return handle

    yield start
    for handle in started:
        handle.stop()


class RunningGateway:
    """Handle to one live HTTP gateway started by ``gateway_for``."""

    def __init__(self, gateway: Gateway, thread: threading.Thread) -> None:
        self.gateway = gateway
        self.thread = thread
        self.url = f"http://127.0.0.1:{gateway.bound_port}"

    def request(self, method: str, path: str, body=None, timeout: float = 120.0):
        """One HTTP round-trip; returns ``(status_code, json_payload)``."""
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            self.url + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read().decode("utf-8"))

    def submit(self, spec, client: str = "test", timeout: float = 120.0):
        return self.request(
            "POST", "/submit", {"spec": spec, "client": client}, timeout=timeout
        )

    def stop(self, join_timeout: float = 15.0) -> None:
        self.gateway.stop_threadsafe()
        self.thread.join(timeout=join_timeout)


@pytest.fixture
def gateway_for():
    """Factory fixture: ``gateway_for(addr1, addr2, **GatewayOptions fields)``.

    Starts an HTTP gateway on an ephemeral port fronting the given daemon
    addresses; stopped at teardown even when the test fails.
    """
    started = []

    def start(*addresses, **options) -> RunningGateway:
        options.setdefault("shards", list(addresses))
        options.setdefault("health_interval", 30.0)  # tests probe explicitly
        gateway = Gateway(GatewayOptions(**options))
        thread = serve_in_thread(gateway)
        handle = RunningGateway(gateway, thread)
        started.append(handle)
        return handle

    yield start
    for handle in started:
        handle.stop()
