"""Fleet tests: ring routing, gateway single-flight, failover, shared cache.

The failover and cross-daemon cache tests are the satellite coverage from
ISSUE 7: a daemon dying mid-job must not change the bytes a client sees
(the gateway re-routes and the fingerprint matches a direct run), and a
key executed on one shard must be a cache hit on every other shard.
"""

import json
import threading
import time
from types import SimpleNamespace

import pytest

from repro.common.errors import ConfigurationError
from repro.service.fleet import (
    HashRing,
    aggregate_statuses,
    choose_shard,
)
from repro.service.protocol import summarize_result
from repro.service.specs import build_task, normalize_spec, spec_for_pair, task_signature

from tests.service import runners

PAIR = ("spec", 20, 17)
SCALE = 0.05


def _pair_spec(policy="occamy", scale=SCALE, max_cycles=None):
    return spec_for_pair(*PAIR, policy=policy, scale=scale, max_cycles=max_cycles)


def _spec_homing_on(gateway, shard_name, policy="occamy"):
    """A spec whose consistent-hash home is ``shard_name`` on this ring."""
    for max_cycles in range(3_000_000, 3_000_200):
        spec = _pair_spec(policy=policy, max_cycles=max_cycles)
        signature = task_signature(normalize_spec(spec))
        if gateway.gateway.shard_for_signature(signature) == shard_name:
            return spec
    raise AssertionError(f"no spec homing on {shard_name} in 200 candidates")


# --- hash ring ----------------------------------------------------------------


def test_ring_is_stable_across_instances():
    nodes = ["shard0", "shard1", "shard2"]
    first = HashRing(nodes)
    second = HashRing(list(reversed(nodes)))
    for i in range(200):
        key = f"key-{i}"
        assert first.node_for(key) == second.node_for(key)


def test_ring_balances_keys():
    ring = HashRing([f"shard{i}" for i in range(4)])
    counts = {}
    for i in range(2000):
        home = ring.node_for(f"key-{i}")
        counts[home] = counts.get(home, 0) + 1
    for node, count in counts.items():
        assert count > 2000 * 0.10, f"{node} got only {count}/2000 keys"


def test_ring_removal_only_remaps_lost_node():
    before = HashRing(["shard0", "shard1", "shard2", "shard3"])
    after = HashRing(["shard0", "shard1", "shard3"])  # shard2 died
    moved = 0
    for i in range(1000):
        key = f"key-{i}"
        old = before.node_for(key)
        if old == "shard2":
            moved += 1
            continue
        # Keys on surviving shards must not move.
        assert after.node_for(key) == old, key
    assert 0 < moved < 1000


def test_ring_preference_covers_all_nodes_in_order():
    ring = HashRing(["a", "b", "c"])
    pref = ring.preference("some-key")
    assert sorted(pref) == ["a", "b", "c"]
    assert pref[0] == ring.node_for("some-key")


def test_empty_ring_rejected():
    with pytest.raises(ConfigurationError):
        HashRing([])


# --- routing policies ---------------------------------------------------------


def _shards(**inflight):
    return {
        name: SimpleNamespace(name=name, alive=True, inflight=load)
        for name, load in inflight.items()
    }


def test_hash_routing_follows_ring_preference():
    shards = _shards(a=0, b=0, c=0)
    ring = HashRing(shards)
    pref = ring.preference("sig")
    assert choose_shard("hash", ring, "sig", shards).name == pref[0]
    # Excluding the home (failover) walks to the next shard in ring order.
    assert choose_shard("hash", ring, "sig", shards, exclude={pref[0]}).name == pref[1]


def test_least_loaded_picks_min_inflight_deterministically():
    shards = _shards(a=3, b=1, c=1)
    ring = HashRing(shards)
    assert choose_shard("least-loaded", ring, "sig", shards).name == "b"


def test_steal_keeps_affinity_until_threshold():
    shards = _shards(a=0, b=0, c=0)
    ring = HashRing(shards)
    home = ring.preference("sig")[0]
    shards[home].inflight = 3
    # Gap of 3 <= threshold 4: stay home for cache affinity.
    assert choose_shard("steal", ring, "sig", shards).name == home
    shards[home].inflight = 10
    stolen = choose_shard("steal", ring, "sig", shards)
    assert stolen.name != home and stolen.inflight == 0


def test_dead_shards_are_never_chosen():
    shards = _shards(a=0, b=0)
    for shard in shards.values():
        shard.alive = False
    ring = HashRing(shards)
    assert choose_shard("hash", ring, "sig", shards) is None


def test_unknown_policy_rejected():
    shards = _shards(a=0)
    with pytest.raises(ConfigurationError):
        choose_shard("round-robin", HashRing(shards), "sig", shards)


# --- status aggregation -------------------------------------------------------


def test_aggregate_statuses_sums_and_rates():
    ok = {
        "ok": True,
        "queue": {"depth": 3},
        "workers": {"busy": 1, "size": 2},
        "counters": {"submitted": 10, "cache_hits": 4, "retries": 1},
    }
    other = {
        "ok": True,
        "queue": {"depth": 1},
        "workers": {"busy": 2, "size": 2},
        "counters": {"submitted": 10, "cache_hits": 6},
    }
    totals = aggregate_statuses([ok, other, None, {"ok": False, "error": "x"}])
    assert totals["shards"] == 4
    assert totals["reachable"] == 2
    assert totals["queued"] == 4
    assert totals["busy_workers"] == 3
    assert totals["workers"] == 4
    assert totals["counters"]["submitted"] == 20
    assert totals["counters"]["retries"] == 1
    assert totals["cache_hit_rate"] == pytest.approx(0.5)


def test_aggregate_statuses_empty():
    totals = aggregate_statuses([])
    assert totals["reachable"] == 0
    assert totals["cache_hit_rate"] == 0.0


# --- gateway: routing + warm-shard affinity -----------------------------------


def test_gateway_routes_and_repeats_land_on_same_shard(service_server, gateway_for):
    a = service_server(runner=runners.fast_runner)
    b = service_server(runner=runners.fast_runner)
    gw = gateway_for(a.address, b.address)
    spec = _pair_spec()
    code, first = gw.submit(spec)
    assert code == 200 and first["event"] == "done"
    code, second = gw.submit(spec)
    assert code == 200 and second["event"] == "done"
    # Consistent hashing: the repeat lands on the warm shard.
    assert first["gateway"]["shard"] == second["gateway"]["shard"]
    assert first["gateway"]["failovers"] == 0
    expected = summarize_result(runners.fast_runner(build_task(spec)))
    assert first["result"]["fingerprint"] == expected["fingerprint"]
    assert second["result"]["fingerprint"] == expected["fingerprint"]


def test_gateway_single_flight_coalesces_across_fleet(
    service_server, gateway_for, monkeypatch
):
    monkeypatch.setenv(runners.SLEEP_ENV, "0.5")
    a = service_server(runner=runners.sleep_runner)
    b = service_server(runner=runners.sleep_runner)
    gw = gateway_for(a.address, b.address)
    spec = _pair_spec()
    results = []

    def submit():
        results.append(gw.submit(spec))

    threads = [threading.Thread(target=submit) for _ in range(3)]
    for thread in threads:
        thread.start()
        time.sleep(0.05)  # ensure the first submission is in flight
    for thread in threads:
        thread.join(timeout=30)
    assert len(results) == 3
    events = [payload for code, payload in results]
    assert all(payload["event"] == "done" for payload in events)
    # Exactly one execution across the whole fleet.
    executed = sum(handle.server.counters["executed"] for handle in (a, b))
    submitted = sum(handle.server.counters["submitted"] for handle in (a, b))
    assert submitted == 1
    assert executed == 1
    assert gw.gateway.counters["coalesced"] == 2
    assert sum(1 for payload in events if payload["gateway"]["coalesced"]) == 2
    fingerprints = {
        json.dumps(payload["result"]["fingerprint"], sort_keys=True)
        for payload in events
    }
    assert len(fingerprints) == 1


# --- gateway: health-checked failover -----------------------------------------


def test_gateway_fails_over_when_shard_dies_mid_job(
    service_server, gateway_for, monkeypatch
):
    """Satellite: kill a daemon mid-job; the gateway re-routes and the
    result fingerprint is identical to a direct run."""
    monkeypatch.setenv(runners.SLEEP_ENV, "30.0")
    sleeper = service_server(runner=runners.sleep_runner)
    healthy = service_server(runner=runners.fast_runner)
    gw = gateway_for(sleeper.address, healthy.address)
    spec = _spec_homing_on(gw, "shard0")  # shard0 == sleeper

    outcome = {}

    def submit():
        outcome["response"] = gw.submit(spec, timeout=60)

    thread = threading.Thread(target=submit)
    thread.start()
    # Wait until the job is actually running on the sleeper shard.
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        if sleeper.server.counters.get("submitted", 0) >= 1:
            break
        time.sleep(0.02)
    else:
        raise AssertionError("job never reached the sleeper shard")
    sleeper.stop()  # daemon dies mid-run
    thread.join(timeout=30)
    assert "response" in outcome, "gateway never answered"
    code, payload = outcome["response"]
    assert code == 200 and payload["event"] == "done"
    assert payload["gateway"]["shard"] == "shard1"
    assert payload["gateway"]["failovers"] == 1
    assert gw.gateway.counters["failovers"] == 1
    assert gw.gateway.shards["shard0"].alive is False
    expected = summarize_result(runners.fast_runner(build_task(spec)))
    assert payload["result"]["fingerprint"] == expected["fingerprint"]


# --- shared cache tier --------------------------------------------------------


def test_same_key_on_second_daemon_is_cross_daemon_cache_hit(service_server):
    """Satellite: two daemons share one cache dir; the second daemon serves
    the first daemon's result without executing anything."""
    a = service_server(workers=1)
    b = service_server(workers=1)
    spec = _pair_spec()
    with a.client() as client:
        first = client.submit(spec, timeout=120)
    with b.client() as client:
        second = client.submit(spec, timeout=120)
    assert first["event"] == "done" and not first["cached"]
    assert second["event"] == "done" and second["cached"]
    assert a.server.counters["executed"] == 1
    assert b.server.counters["executed"] == 0  # exactly one execution
    assert b.server.counters["cache_hits"] == 1
    assert second["result"]["fingerprint"] == first["result"]["fingerprint"]


def test_gateway_served_result_bit_identical_to_direct_run(
    service_server, gateway_for
):
    """Tentpole identity: gateway-served == daemon-served == direct."""
    from repro.analysis.parallel import execute_task

    a = service_server(workers=1)
    b = service_server(workers=1)
    gw = gateway_for(a.address, b.address)
    spec = _pair_spec()
    code, served = gw.submit(spec)
    assert code == 200 and served["event"] == "done"
    direct = summarize_result(execute_task(build_task(spec)))
    assert served["result"]["fingerprint"] == direct["fingerprint"]
    assert served["result"]["total_cycles"] == direct["total_cycles"]
    # Hitting the *other* shard directly is a cross-shard cache hit with
    # the same bytes.
    other = a if served["gateway"]["shard"] == "shard1" else b
    with other.client() as client:
        relayed = client.submit(spec, timeout=120)
    assert relayed["cached"]
    assert relayed["result"]["fingerprint"] == direct["fingerprint"]


# --- gateway: admission control + HTTP protocol -------------------------------


def test_gateway_surfaces_admission_rejection_as_429(
    service_server, gateway_for, monkeypatch
):
    monkeypatch.setenv(runners.SLEEP_ENV, "2.0")
    a = service_server(runner=runners.sleep_runner, workers=1, max_per_client=1)
    gw = gateway_for(a.address)
    blocker = _pair_spec(max_cycles=3_000_001)
    other = _pair_spec(max_cycles=3_000_002)
    results = {}

    def submit_blocker():
        results["blocker"] = gw.submit(blocker, client="greedy")

    thread = threading.Thread(target=submit_blocker)
    thread.start()
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        if a.server.counters.get("submitted", 0) >= 1:
            break
        time.sleep(0.02)
    code, payload = gw.submit(other, client="greedy", timeout=30)
    assert code == 429
    assert payload["ok"] is False
    assert payload["error"] == "client-quota"
    assert "retry_after_ms" in payload
    assert gw.gateway.counters["rejected"] == 1
    thread.join(timeout=30)
    assert results["blocker"][0] == 200


def test_gateway_http_error_paths(service_server, gateway_for):
    a = service_server(runner=runners.fast_runner)
    gw = gateway_for(a.address)
    code, payload = gw.request("GET", "/nope")
    assert code == 404 and payload["error"] == "not-found"
    code, payload = gw.request("GET", "/submit")
    assert code == 405
    code, payload = gw.request("POST", "/submit", {"no": "spec"})
    assert code == 400 and payload["error"] == "protocol"
    code, payload = gw.request("POST", "/submit", {"spec": {"kind": "bogus"}})
    assert code == 400
    code, payload = gw.request("POST", "/scale", {"n": 3})
    assert code == 409  # gateway does not own its daemons
    code, payload = gw.request("GET", "/healthz")
    assert code == 200 and payload["ok"] and payload["alive"] == 1


def test_gateway_status_aggregates_and_marks_dead_shards(
    service_server, gateway_for
):
    a = service_server(runner=runners.fast_runner)
    b = service_server(runner=runners.fast_runner)
    gw = gateway_for(a.address, b.address)
    for offset in (1, 2):
        code, payload = gw.submit(_pair_spec(max_cycles=3_000_000 + offset))
        assert code == 200
    code, status = gw.request("GET", "/status")
    assert code == 200 and status["ok"]
    assert status["totals"]["reachable"] == 2
    assert status["totals"]["counters"]["submitted"] == 2
    assert status["gateway"]["counters"]["submitted"] == 2
    assert len(status["shards"]) == 2
    b.stop()
    code, status = gw.request("GET", "/status")
    assert status["totals"]["reachable"] == 1
    dead = [entry for entry in status["shards"] if not entry["alive"]]
    assert len(dead) == 1 and dead[0]["shard"] == "shard1"
    code, payload = gw.request("GET", "/healthz")
    assert code == 200 and payload["alive"] == 1
    a.stop()
    gw.request("GET", "/status")
    code, payload = gw.request("GET", "/healthz")
    assert code == 503 and not payload["ok"]


def test_gateway_drain_fans_out(service_server, gateway_for):
    a = service_server(runner=runners.fast_runner)
    b = service_server(runner=runners.fast_runner)
    gw = gateway_for(a.address, b.address)
    code, payload = gw.request("POST", "/drain")
    assert code == 200 and payload["ok"]
    assert a.server.draining and b.server.draining


# --- svc-status fleet aggregation (CLI satellite) -----------------------------


def test_svc_status_aggregates_multiple_sockets(service_server, capsys):
    from repro import cli

    a = service_server(runner=runners.fast_runner)
    b = service_server(runner=runners.fast_runner)
    with a.client() as client:
        client.submit(_pair_spec(), timeout=60)
    code = cli.main(
        ["svc-status", "--socket", a.address, "--socket", b.address, "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"]
    assert payload["totals"]["reachable"] == 2
    assert payload["totals"]["counters"]["submitted"] == 1
    assert len(payload["shards"]) == 2


def test_svc_status_reports_unreachable_shards(service_server, capsys):
    from repro import cli

    a = service_server(runner=runners.fast_runner)
    code = cli.main(
        [
            "svc-status",
            "--socket",
            a.address,
            "--socket",
            str(a.address) + ".missing",
            "--json",
        ]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["totals"]["reachable"] == 1
    assert payload["totals"]["shards"] == 2
