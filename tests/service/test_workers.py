"""Worker-pool supervision: completion, crash, timeout, recycling."""

import time

import pytest

from repro.common.errors import ConfigurationError
from repro.service.workers import WorkerPool

from tests.service import runners


def _wait_events(pool, want, deadline_s=20.0):
    """Poll until ``want`` events have arrived (or fail the test)."""
    events = []
    deadline = time.monotonic() + deadline_s
    while len(events) < want and time.monotonic() < deadline:
        events.extend(pool.poll())
        time.sleep(0.01)
    assert len(events) >= want, f"only {len(events)} events before deadline"
    return events


@pytest.fixture
def pool_factory():
    pools = []

    def start(**kwargs) -> WorkerPool:
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("runner", runners.fast_runner)
        kwargs.setdefault("job_timeout", 30.0)
        pool = WorkerPool(**kwargs)
        pool.start()
        pools.append(pool)
        return pool

    yield start
    for pool in pools:
        pool.stop()


def test_dispatch_and_done_event(pool_factory):
    pool = pool_factory(workers=2)
    assert pool.idle_count() == 2
    pool.dispatch("job-1", None)
    assert pool.busy_count() == 1
    (event,) = _wait_events(pool, 1)
    assert event.kind == "done"
    assert event.job_id == "job-1"
    assert event.result.total_cycles == 1000
    assert pool.idle_count() == 2


def test_runner_exception_is_error_event(pool_factory):
    pool = pool_factory(runner=runners.fail_runner)
    pool.dispatch("job-1", None)
    (event,) = _wait_events(pool, 1)
    assert event.kind == "error"
    assert "synthetic deterministic failure" in event.error
    # the worker survives a runner exception
    assert pool.idle_count() == 1


def test_crashed_worker_reported_and_respawned(pool_factory):
    pool = pool_factory(runner=runners.crash_runner)
    pid_before = pool.worker_pids()[0]
    pool.dispatch("job-1", None)
    (event,) = _wait_events(pool, 1)
    assert event.kind == "crashed"
    assert "mid-job" in event.error
    # a fresh worker replaced the dead one
    assert pool.idle_count() == 1
    assert pool.worker_pids()[0] != pid_before


def test_externally_killed_worker_is_crash(pool_factory, monkeypatch):
    monkeypatch.setenv(runners.SLEEP_ENV, "30")
    pool = pool_factory(runner=runners.sleep_runner)
    pool.dispatch("job-1", None)
    time.sleep(0.2)
    assert pool.kill_worker(pool.pid_for_job("job-1"))
    (event,) = _wait_events(pool, 1)
    assert event.kind == "crashed"
    assert event.job_id == "job-1"
    assert pool.idle_count() == 1


def test_job_timeout_kills_worker(pool_factory):
    pool = pool_factory(runner=runners.hang_runner, job_timeout=0.3)
    pool.dispatch("job-1", None)
    events = _wait_events(pool, 1)
    assert events[0].kind == "timeout"
    assert "deadline" in events[0].error
    assert pool.idle_count() == 1  # respawned


def test_worker_recycled_after_n_jobs(pool_factory):
    pool = pool_factory(recycle_after=2)
    first_pid = pool.worker_pids()[0]
    for index in range(2):
        pool.dispatch(f"job-{index}", None)
        (event,) = _wait_events(pool, 1)
        assert event.kind == "done"
    # the worker retired itself after its second job; poll respawns it
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        pool.poll()
        if pool.recycled >= 1 and pool.idle_count() == 1:
            break
        time.sleep(0.01)
    assert pool.recycled == 1
    assert pool.worker_pids()[0] != first_pid
    # and the fresh worker still serves jobs
    pool.dispatch("job-after", None)
    (event,) = _wait_events(pool, 1)
    assert event.kind == "done"


def test_completed_job_never_misreported_as_timeout(pool_factory):
    # result drained before deadline check: even with an absurdly small
    # timeout, a finished job must surface as done once its result is in.
    pool = pool_factory(job_timeout=0.001)
    pool.dispatch("job-1", None)
    time.sleep(0.3)  # give the fast runner ample time to finish
    events = pool.poll()
    assert [event.kind for event in events] == ["done"]


def test_pool_rejects_bad_configuration():
    with pytest.raises(ConfigurationError):
        WorkerPool(workers=0)
    with pytest.raises(ConfigurationError):
        WorkerPool(job_timeout=-1.0)
    with pytest.raises(ConfigurationError):
        WorkerPool(recycle_after=0)


def test_stop_leaves_no_processes(pool_factory):
    pool = pool_factory(workers=2)
    pids = pool.worker_pids()
    pool.stop()
    deadline = time.monotonic() + 5.0
    import os

    def alive(pid):
        try:
            os.kill(pid, 0)
            return True
        except ProcessLookupError:
            return False
        except PermissionError:  # pragma: no cover
            return True

    while time.monotonic() < deadline and any(alive(pid) for pid in pids):
        time.sleep(0.05)
    assert not any(alive(pid) for pid in pids)
