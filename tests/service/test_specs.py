"""Spec validation and SimTask materialisation."""

import pytest

from repro.common.errors import ServiceProtocolError
from repro.service.specs import (
    build_task,
    normalize_spec,
    spec_for_motivate,
    spec_for_pair,
    task_signature,
)


def test_pair_spec_roundtrip():
    spec = spec_for_pair("spec", 20, 17, policy="fts", scale=0.25)
    task = build_task(spec)
    assert task.kind == "pair"
    assert task.policy_key == "fts"
    assert task.scale == 0.25
    assert (task.pair.suite, task.pair.core0, task.pair.core1) == ("spec", 20, 17)


def test_motivate_spec_defaults():
    spec = spec_for_motivate()
    assert spec["policy"] == "occamy"
    assert spec["scale"] == 0.5
    task = build_task(spec)
    assert task.kind == "motivate"
    assert task.config.num_cores == 2


def test_group_spec_uses_four_cores():
    spec = normalize_spec({"kind": "group", "group": [0, 1, 2, 3]})
    assert spec["cores"] == 4
    task = build_task(spec)
    assert task.kind == "group"
    assert task.config.num_cores == 4
    assert task.group == (0, 1, 2, 3)


@pytest.mark.parametrize(
    "bad",
    [
        {"kind": "nope"},
        {"kind": "pair", "suite": "spec", "mem": 20},  # missing comp
        {"kind": "pair", "suite": "bogus", "mem": 1, "comp": 2},
        {"kind": "pair", "suite": "spec", "mem": 20, "comp": 17, "policy": "zzz"},
        {"kind": "motivate", "scale": 0.0},
        {"kind": "motivate", "scale": 2.0},
        {"kind": "motivate", "max_cycles": -5},
        {"kind": "motivate", "typo_field": 1},
        {"kind": "group", "group": []},
        {"kind": "group", "group": ["a"]},
        "not-a-dict",
    ],
)
def test_malformed_specs_rejected(bad):
    with pytest.raises(ServiceProtocolError):
        normalize_spec(bad)


def test_signature_is_stable_and_canonical():
    a = task_signature({"kind": "pair", "suite": "spec", "mem": 20, "comp": 17})
    b = task_signature(
        {"comp": 17, "mem": 20, "suite": "spec", "kind": "pair", "scale": 0.35}
    )
    assert a == b
    c = task_signature({"kind": "pair", "suite": "spec", "mem": 20, "comp": 18})
    assert a != c
