"""End-to-end daemon tests: protocol, dedup, failure paths, drain.

The bit-identity tests here are the service analogue of the determinism
suite: a result served through the daemon (worker process, queue, socket)
must carry exactly the fingerprint digests of a direct in-process
``run_policy`` execution.
"""

import json
import os
import time

import pytest

from repro.analysis import result_cache
from repro.analysis.parallel import execute_task
from repro.common.errors import AdmissionError, JobFailedError
from repro.service.protocol import summarize_result
from repro.service.specs import build_task, spec_for_motivate, spec_for_pair

from tests.service import runners

#: Small-but-real workload pair used for bit-identity checks.
PAIR = ("spec", 20, 17)
SCALE = 0.05

#: The paper's three sharing modes.
SHARING_MODES = ("occamy", "fts", "cts")


def _pair_spec(policy="occamy", scale=SCALE):
    return spec_for_pair(*PAIR, policy=policy, scale=scale)


# --- bit-identity with direct execution ---------------------------------------


def test_served_results_bit_identical_across_sharing_modes(service_server):
    """Acceptance: daemon-served == direct Machine.run for all 3 modes."""
    handle = service_server(workers=2, scheduler="spjf")
    for policy in SHARING_MODES:
        spec = _pair_spec(policy=policy)
        with handle.client() as client:
            final = client.submit(spec, timeout=120)
        assert final["event"] == "done"
        direct = summarize_result(execute_task(build_task(spec)))
        assert final["result"]["fingerprint"] == direct["fingerprint"], policy
        assert final["result"]["total_cycles"] == direct["total_cycles"]
        assert final["result"]["core_cycles"] == direct["core_cycles"]


def test_resubmission_is_cache_hit_with_same_fingerprint(service_server):
    handle = service_server()
    spec = _pair_spec()
    with handle.client() as client:
        first = client.submit(spec, timeout=120)
    with handle.client() as client:
        second = client.submit(spec, timeout=120)
    assert not first["cached"]
    assert second["cached"]
    assert second["result"]["fingerprint"] == first["result"]["fingerprint"]
    status = handle.server.status_payload()
    assert status["counters"]["executed"] == 1
    assert status["counters"]["cache_hits"] == 1


# --- dedup / coalescing -------------------------------------------------------


def test_duplicate_concurrent_submission_coalesces(service_server):
    """Acceptance: identical in-flight submissions run exactly once."""
    handle = service_server(workers=1)
    spec = _pair_spec()
    with handle.client() as first, handle.client() as second:
        ack_events = []
        first.send({"op": "submit", "spec": spec, "client": "a", "wait": True})
        ack1 = first.read_message(timeout=30)
        assert ack1["ok"] and not ack1["coalesced"]
        # while job 1 is in flight, an identical spec from another client
        second.send({"op": "submit", "spec": spec, "client": "b", "wait": True})
        ack2 = second.read_message(timeout=30)
        assert ack2["ok"] and ack2["coalesced"]
        assert ack2["job"] == ack1["job"]

        def read_until_done(client):
            event = {}
            while event.get("event") != "done":
                event = client.read_message(timeout=120)
            return event

        done1 = read_until_done(first)
        done2 = read_until_done(second)
    assert done1["result"]["fingerprint"] == done2["result"]["fingerprint"]
    counters = handle.server.status_payload()["counters"]
    assert counters["submitted"] == 2
    assert counters["coalesced"] == 1
    assert counters["executed"] == 1  # provably one execution
    assert counters["completed"] == 1


# --- failure paths ------------------------------------------------------------


def test_worker_killed_mid_job_retries_then_succeeds(service_server, tmp_path, monkeypatch):
    sentinel = tmp_path / "crash-once.sentinel"
    monkeypatch.setenv(runners.SENTINEL_ENV, str(sentinel))
    handle = service_server(runner=runners.crash_once_runner, max_retries=2)
    events = []
    with handle.client() as client:
        final = client.submit(
            spec_for_motivate(scale=0.05), on_event=events.append, timeout=60
        )
    kinds = [event.get("event") for event in events]
    assert "retrying" in kinds
    assert final["event"] == "done"
    assert final["attempts"] == 2
    assert handle.server.counters["retries"] == 1


def test_worker_crash_exhausts_retries_then_reports(service_server):
    handle = service_server(runner=runners.crash_runner, max_retries=1)
    with handle.client() as client:
        with pytest.raises(JobFailedError) as excinfo:
            client.submit(spec_for_motivate(scale=0.05), timeout=60)
    assert "after 2 attempt(s)" in str(excinfo.value)
    assert handle.server.counters["failed"] == 1


def test_job_timeout_retries_then_reports(service_server):
    handle = service_server(
        runner=runners.hang_runner, job_timeout=0.3, max_retries=1
    )
    events = []
    with handle.client() as client:
        with pytest.raises(JobFailedError) as excinfo:
            client.submit(
                spec_for_motivate(scale=0.05), on_event=events.append, timeout=60
            )
    assert "deadline" in str(excinfo.value)
    kinds = [event.get("event") for event in events]
    assert kinds.count("retrying") == 1
    assert kinds.count("started") == 2


def test_deterministic_runner_error_fails_without_retry(service_server):
    handle = service_server(runner=runners.fail_runner, max_retries=3)
    with handle.client() as client:
        with pytest.raises(JobFailedError) as excinfo:
            client.submit(spec_for_motivate(scale=0.05), timeout=60)
    assert "synthetic deterministic failure" in str(excinfo.value)
    # a deterministic failure is never retried
    assert handle.server.counters["retries"] == 0


def test_client_disconnect_mid_stream_job_completes_into_cache(service_server):
    handle = service_server(workers=1)
    spec = _pair_spec()
    client = handle.client()
    client.send({"op": "submit", "spec": spec, "client": "flaky", "wait": True})
    ack = client.read_message(timeout=30)
    assert ack["ok"]
    key = ack["key"]
    client.close()  # walk away mid-stream

    # the job keeps running; its result must land in the persistent cache
    cache = result_cache.default_cache()
    deadline = time.monotonic() + 120.0
    hit = None
    while time.monotonic() < deadline and hit is None:
        hit = cache.get(key)
        time.sleep(0.05)
    assert hit is not None, "result never landed in the cache"
    direct = summarize_result(execute_task(build_task(spec)))
    assert summarize_result(hit)["fingerprint"] == direct["fingerprint"]
    # and the daemon still reports it as completed
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if handle.server.counters["completed"] == 1:
            break
        time.sleep(0.05)
    assert handle.server.counters["completed"] == 1


# --- admission control over the wire -----------------------------------------


def test_queue_full_rejection_is_explicit_backpressure(service_server, monkeypatch):
    monkeypatch.setenv(runners.SLEEP_ENV, "5")
    handle = service_server(
        runner=runners.sleep_runner, workers=1, queue_depth=1, max_per_client=10
    )
    with handle.client() as client:
        # first job occupies the single worker
        first = client.submit(
            spec_for_motivate(policy="occamy", scale=0.05), wait=False, timeout=30
        )
        assert first["ok"]
        _wait_running(handle, jobs=1)
        # second sits in the queue (depth 1)
        second = client.submit(
            spec_for_motivate(policy="fts", scale=0.05), wait=False, timeout=30
        )
        assert second["ok"]
        # third must be rejected loudly, not buffered
        with pytest.raises(AdmissionError) as excinfo:
            client.submit(
                spec_for_motivate(policy="cts", scale=0.05), wait=False, timeout=30
            )
    assert excinfo.value.reason == "queue-full"
    assert handle.server.counters["rejected"] == 1


def test_per_client_quota_rejection(service_server, monkeypatch):
    monkeypatch.setenv(runners.SLEEP_ENV, "5")
    handle = service_server(
        runner=runners.sleep_runner, workers=1, queue_depth=32, max_per_client=2
    )
    policies = ("occamy", "fts", "cts")
    with handle.client() as client:
        for policy in policies[:2]:
            ack = client.submit(
                spec_for_motivate(policy=policy, scale=0.05),
                client="greedy",
                wait=False,
                timeout=30,
            )
            assert ack["ok"]
        with pytest.raises(AdmissionError) as excinfo:
            client.submit(
                spec_for_motivate(policy=policies[2], scale=0.05),
                client="greedy",
                wait=False,
                timeout=30,
            )
        assert excinfo.value.reason == "client-quota"
        # a different client is still admitted
        ack = client.submit(
            spec_for_motivate(policy=policies[2], scale=0.05),
            client="modest",
            wait=False,
            timeout=30,
        )
        assert ack["ok"]


# --- drain & shutdown ---------------------------------------------------------


def test_drain_waits_for_in_flight_jobs_and_rejects_new_work(
    service_server, monkeypatch
):
    monkeypatch.setenv(runners.SLEEP_ENV, "0.5")
    handle = service_server(runner=runners.sleep_runner, workers=1)
    with handle.client() as submitter:
        for policy in ("occamy", "fts"):
            ack = submitter.submit(
                spec_for_motivate(policy=policy, scale=0.05), wait=False, timeout=30
            )
            assert ack["ok"]
        _wait_running(handle, jobs=1)
        with handle.client() as drainer:
            reply = drainer.drain(timeout=60)
        assert reply["ok"]
        assert reply["drained"] >= 1
        # both jobs finished before the drain reply
        assert handle.server.counters["completed"] == 2
        assert handle.server.pool.busy_count() == 0
        # new work is rejected while draining
        with pytest.raises(AdmissionError) as excinfo:
            submitter.submit(
                spec_for_motivate(policy="cts", scale=0.05), wait=False, timeout=30
            )
        assert excinfo.value.reason == "draining"


def test_shutdown_stops_workers(service_server):
    handle = service_server(workers=2)
    pids = handle.server.pool.worker_pids()
    assert len(pids) == 2
    with handle.client() as client:
        client.shutdown()
    handle.thread.join(timeout=15)
    assert not handle.thread.is_alive()
    for pid in pids:
        _wait_dead(pid)


# --- misc endpoints -----------------------------------------------------------


def test_status_watch_result_and_cancel(service_server, monkeypatch):
    monkeypatch.setenv(runners.SLEEP_ENV, "1.0")
    handle = service_server(runner=runners.sleep_runner, workers=1)
    with handle.client() as client:
        running = client.submit(
            spec_for_motivate(policy="occamy", scale=0.05), wait=False, timeout=30
        )
        queued = client.submit(
            spec_for_motivate(policy="fts", scale=0.05), wait=False, timeout=30
        )
        _wait_running(handle, jobs=1)

        status = client.status()
        assert status["ok"]
        assert status["scheduler"] == "fifo"
        assert status["workers"]["size"] == 1
        assert status["counters"]["submitted"] == 2

        # a queued job can be cancelled; events say so
        reply = client.cancel(queued["job"])
        assert reply["ok"] and reply["state"] == "cancelled"

        # the running one cannot
        reply = client.cancel(running["job"])
        assert not reply["ok"] and reply["error"] == "not-cancellable"

        # watch the running job to completion on a second connection
        with handle.client() as watcher:
            final = watcher.watch(running["job"], timeout=60)
        assert final["event"] == "done"

        # result endpoint replays the terminal event
        replay = client.result(running["job"])
        assert replay["ok"] and replay["event"] == "done"
        assert replay["result"]["fingerprint"] == final["result"]["fingerprint"]

        # unknown ops and jobs produce structured errors
        assert client.result("j99999")["error"] == "unknown-job"
        reply = client.request("frobnicate")
        assert not reply["ok"] and reply["error"] == "protocol"


def test_submit_json_protocol_is_line_delimited(service_server):
    """The wire format is plain enough for any client: raw socket + JSON."""
    import socket as socket_module

    handle = service_server(workers=1)
    sock = socket_module.socket(socket_module.AF_UNIX, socket_module.SOCK_STREAM)
    sock.settimeout(30)
    sock.connect(handle.address)
    sock.sendall(json.dumps({"op": "ping"}).encode() + b"\n")
    buffer = b""
    while b"\n" not in buffer:
        buffer += sock.recv(4096)
    reply = json.loads(buffer.split(b"\n", 1)[0])
    assert reply["ok"]
    assert reply["pid"] == os.getpid()  # the daemon thread shares our pid
    sock.close()


# --- helpers ------------------------------------------------------------------


def _wait_running(handle, jobs: int, deadline_s: float = 20.0) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if handle.server.pool.busy_count() >= jobs:
            return
        time.sleep(0.01)
    raise AssertionError(f"never saw {jobs} running job(s)")


def _wait_dead(pid: int, deadline_s: float = 10.0) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return
        time.sleep(0.05)
    raise AssertionError(f"worker {pid} still alive")
