"""Admission control, scheduling policies and the cost model."""

import math

import pytest

from repro.common.errors import AdmissionError, ConfigurationError
from repro.service.queue import CostModel, JobQueue, QueuedJob, make_scheduler
from repro.service.specs import task_signature


def _job(queue, job_id, client="c", signature=None, predicted=None):
    job = QueuedJob(
        job_id=job_id,
        key=f"key-{job_id}",
        signature=signature or f"sig-{job_id}",
        client=client,
        seq=queue.next_seq(),
        predicted_cycles=predicted,
    )
    return job


# --- admission ----------------------------------------------------------------


def test_bounded_depth_rejects_with_queue_full():
    queue = JobQueue(max_depth=2, max_per_client=10)
    queue.submit(_job(queue, "a"))
    queue.submit(_job(queue, "b"))
    with pytest.raises(AdmissionError) as excinfo:
        queue.submit(_job(queue, "c"))
    assert excinfo.value.reason == "queue-full"
    assert queue.stats.rejected_full == 1
    assert len(queue) == 2


def test_per_client_quota_covers_running_jobs():
    queue = JobQueue(max_depth=10, max_per_client=2)
    queue.submit(_job(queue, "a", client="alice"))
    # alice: 1 queued + 1 running == quota -> rejected
    with pytest.raises(AdmissionError) as excinfo:
        queue.submit(_job(queue, "b", client="alice"), running_for_client=1)
    assert excinfo.value.reason == "client-quota"
    # other clients are unaffected
    queue.submit(_job(queue, "c", client="bob"), running_for_client=1)


def test_requeue_bypasses_admission():
    queue = JobQueue(max_depth=1)
    job = _job(queue, "a")
    queue.submit(job)
    popped = queue.pop_next(0.0)
    queue.submit(_job(queue, "b"))  # queue full again
    queue.requeue(popped, not_before=0.0)  # retry path must not raise
    assert len(queue) == 2


def test_retry_fence_defers_eligibility():
    queue = JobQueue()
    job = _job(queue, "a")
    queue.submit(job)
    popped = queue.pop_next(0.0)
    queue.requeue(popped, not_before=100.0)
    assert queue.pop_next(99.0) is None
    assert queue.pop_next(100.0).job_id == "a"


def test_bad_configuration_rejected():
    with pytest.raises(ConfigurationError):
        JobQueue(max_depth=0)
    with pytest.raises(ConfigurationError):
        JobQueue(max_per_client=-1)
    with pytest.raises(ConfigurationError):
        make_scheduler("round-robin-ish")


# --- scheduling policies ------------------------------------------------------


def test_fifo_orders_by_arrival():
    queue = JobQueue(scheduler="fifo")
    for name in ("a", "b", "c"):
        queue.submit(_job(queue, name))
    assert [queue.pop_next(0.0).job_id for _ in range(3)] == ["a", "b", "c"]


def test_spjf_prefers_cheapest_predicted_job():
    cost = CostModel()
    cost.observe("sig-cheap", 100)
    cost.observe("sig-dear", 100_000)
    queue = JobQueue(scheduler="spjf", cost_model=cost)
    queue.submit(_job(queue, "dear", signature="sig-dear"))
    queue.submit(_job(queue, "unknown", signature="sig-new"))
    queue.submit(_job(queue, "cheap", signature="sig-cheap"))
    order = [queue.pop_next(0.0).job_id for _ in range(3)]
    # known costs first (cheapest leading), unknown-cost jobs last in FIFO order
    assert order == ["cheap", "dear", "unknown"]


def test_spjf_uses_ecm_prior_for_never_observed_spec(monkeypatch):
    """A cold-fleet job with a parseable spec signature is ranked by the
    ECM analytical estimate, not pushed to the back as infinite-cost —
    here it overtakes a *longer* job the model has actually observed."""
    cold_sig = task_signature(
        {"kind": "pair", "suite": "spec", "mem": 20, "comp": 17,
         "policy": "occamy", "scale": 0.05}
    )
    cost = CostModel()
    assert cost.observed(cold_sig) is None  # never run anywhere...
    prior = cost.predict(cold_sig)  # ...but ECM-predictable
    assert prior is not None and math.isfinite(prior) and prior > 0
    cost.observe("sig-known-long", 100 * prior)

    queue = JobQueue(scheduler="spjf", cost_model=cost)
    queue.submit(_job(queue, "long", signature="sig-known-long"))
    queue.submit(_job(queue, "cold", signature=cold_sig))
    assert [queue.pop_next(0.0).job_id for _ in range(2)] == ["cold", "long"]


def test_cost_model_prior_can_be_disabled():
    sig = task_signature({"kind": "motivate", "policy": "fts", "scale": 0.05})
    assert CostModel(prior=False).predict(sig) is None
    assert CostModel().predict(sig) is not None


def test_fair_share_round_robins_across_clients():
    queue = JobQueue(scheduler="fair")
    for i in range(3):
        queue.submit(_job(queue, f"a{i}", client="alice"))
    queue.submit(_job(queue, "b0", client="bob"))
    queue.submit(_job(queue, "b1", client="bob"))
    order = [queue.pop_next(0.0).job_id for _ in range(5)]
    # alice went first (earliest seq), then alternation: no client runs
    # twice while the other still has an eligible job and fewer grants.
    assert order == ["a0", "b0", "a1", "b1", "a2"]


def test_fair_share_single_client_degrades_to_fifo():
    queue = JobQueue(scheduler="fair")
    for name in ("x", "y", "z"):
        queue.submit(_job(queue, name))
    assert [queue.pop_next(0.0).job_id for _ in range(3)] == ["x", "y", "z"]


# --- cost model ---------------------------------------------------------------


def test_cost_model_ema_and_persistence(tmp_path):
    path = tmp_path / "costs.json"
    model = CostModel(path)
    model.observe("sig", 100)
    assert model.predict("sig") == 100
    model.observe("sig", 200)
    assert model.predict("sig") == pytest.approx(150.0)
    assert model.save()

    fresh = CostModel(path)
    assert fresh.predict("sig") == pytest.approx(150.0)
    assert fresh.predict("other") is None


def test_cost_model_tolerates_corrupt_file(tmp_path):
    path = tmp_path / "costs.json"
    path.write_text("{not json", encoding="utf-8")
    model = CostModel(path)
    assert model.predict("sig") is None
    model.observe("sig", 10)
    assert model.save()


def test_cost_model_save_is_atomic_under_crash(tmp_path, monkeypatch):
    """A crash between tempfile write and replace never tears the file."""
    import repro.service.queue as queue_module

    path = tmp_path / "costs.json"
    model = CostModel(path)
    model.observe("sig", 100)
    assert model.save()
    before = path.read_bytes()

    def exploding_replace(src, dst):
        raise OSError("simulated crash mid-rename")

    monkeypatch.setattr(queue_module.os, "replace", exploding_replace)
    model.observe("sig", 900)
    assert model.save() is False
    monkeypatch.undo()

    # The on-disk file is byte-identical to the last good save, the
    # tempfile was cleaned up, and a retry round-trips the new state.
    assert path.read_bytes() == before
    assert not list(tmp_path.glob(".costs-*.tmp"))
    assert model.save()
    assert CostModel(path).predict("sig") == pytest.approx(500.0)


def test_cost_model_concurrent_daemons_merge_not_clobber(tmp_path):
    """Two daemons saving to one costs file keep each other's entries."""
    path = tmp_path / "costs.json"
    daemon_a = CostModel(path)
    daemon_b = CostModel(path)
    daemon_a.observe("only-a", 100)
    daemon_b.observe("only-b", 200)
    daemon_a.observe("both", 10)
    daemon_b.observe("both", 90)

    assert daemon_a.save()
    assert daemon_b.save()  # b never saw only-a; merge must preserve it

    fresh = CostModel(path)
    assert fresh.predict("only-a") == pytest.approx(100.0)
    assert fresh.predict("only-b") == pytest.approx(200.0)
    # Conflicting signatures: the last writer's own observation wins.
    assert fresh.predict("both") == pytest.approx(90.0)
    # In-memory state was not polluted by the merge.
    assert daemon_b.predict("only-a") is None


def test_cost_model_drops_invalid_observations():
    """bool/NaN/inf/negative cycle counts never enter the EMA."""
    model = CostModel()
    for bad in (float("nan"), float("inf"), float("-inf"), -1, True, False):
        model.observe("sig", bad)
    assert model.observed("sig") is None
    model.observe("sig", 10)
    model.observe("sig", float("nan"))  # must not disturb the EMA either
    assert model.observed("sig") == pytest.approx(10.0)


def test_cost_model_poisoned_file_round_trip(tmp_path):
    """A corrupted shared costs file is scrubbed, not propagated.

    ``json`` happily parses ``NaN``/``Infinity``/``true``; before the
    ``_valid_cost`` filter those flowed through load -> merge-save and a
    single NaN then poisoned every spjf ``min`` comparison on every
    daemon sharing the file.
    """
    path = tmp_path / "costs.json"
    path.write_text(
        '{"good": 100.0, "nan": NaN, "inf": Infinity, "neg": -5.0, '
        '"bool": true, "text": "fast"}',
        encoding="utf-8",
    )

    daemon_a = CostModel(path)
    assert daemon_a.observed("good") == pytest.approx(100.0)
    for poisoned in ("nan", "inf", "neg", "bool", "text"):
        assert daemon_a.observed(poisoned) is None
        assert daemon_a.predict(poisoned) is None
    daemon_a.observe("mine-a", 50)
    # The merge path re-reads the still-poisoned on-disk file here.
    assert daemon_a.save()

    daemon_b = CostModel(path)
    daemon_b.observe("mine-b", 70)
    assert daemon_b.save()

    text = path.read_text(encoding="utf-8")
    assert "NaN" not in text and "Infinity" not in text and "true" not in text

    fresh = CostModel(path)
    assert fresh.observed("good") == pytest.approx(100.0)
    assert fresh.observed("mine-a") == pytest.approx(50.0)
    assert fresh.observed("mine-b") == pytest.approx(70.0)
    for poisoned in ("nan", "inf", "neg", "bool", "text"):
        assert fresh.observed(poisoned) is None


def test_cost_model_save_without_merge_clobbers(tmp_path):
    path = tmp_path / "costs.json"
    daemon_a = CostModel(path)
    daemon_a.observe("only-a", 100)
    assert daemon_a.save()
    daemon_b = CostModel(path)
    daemon_b._loaded = True  # simulate a daemon that never loaded the file
    daemon_b.observe("only-b", 200)
    assert daemon_b.save(merge=False)
    fresh = CostModel(path)
    assert fresh.predict("only-a") is None
    assert fresh.predict("only-b") == pytest.approx(200.0)
