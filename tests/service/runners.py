"""Injectable worker runners for service failure-path tests.

These run inside forked worker processes, so they must be module-level
(importable) and configured through the environment / filesystem rather
than closures.  ``make_fake_result`` builds the minimal RunResult-shaped
object :func:`repro.service.protocol.summarize_result` accepts, so pure
scheduling tests never pay for a real simulation.
"""

from __future__ import annotations

import os
import time
from types import SimpleNamespace

#: Sleep duration (seconds) used by :func:`sleep_runner`.
SLEEP_ENV = "REPRO_TEST_SLEEP_S"

#: Sentinel file used by :func:`crash_once_runner`.
SENTINEL_ENV = "REPRO_TEST_SENTINEL"


def make_fake_result(policy_key: str = "occamy", total_cycles: int = 1000):
    """A RunResult look-alike that fingerprints deterministically."""
    metrics = SimpleNamespace(
        compute_uops=[0, 0],
        ldst_uops=[0, 0],
        flops=[0, 0],
        busy_pipe_slots=0,
        stalls=[{}, {}],
        monitor_cycles=[0, 0],
        reconfig_cycles=[0, 0],
        reconfig_success=[0, 0],
        reconfig_failed=[0, 0],
        phases=[],
        lane_timeline=[],
        busy_lanes_series=[],
    )
    return SimpleNamespace(
        policy_key=policy_key,
        metrics=metrics,
        total_cycles=total_cycles,
        core_cycles=[total_cycles, total_cycles],
        lsu_stats=[],
        cache_stats={},
        images=[None, None],
    )


def fast_runner(task):
    """Complete instantly with a fake result."""
    return make_fake_result(policy_key=getattr(task, "policy_key", "occamy"))


def sleep_runner(task):
    """Hold the worker busy for ``$REPRO_TEST_SLEEP_S`` seconds."""
    time.sleep(float(os.environ.get(SLEEP_ENV, "0.5")))
    return make_fake_result(policy_key=getattr(task, "policy_key", "occamy"))


def hang_runner(task):
    """Never finish within any sane test deadline (timeout-path tests)."""
    time.sleep(3600.0)
    return make_fake_result()


def fail_runner(task):
    """Deterministic in-worker failure: must not be retried."""
    raise RuntimeError("synthetic deterministic failure")


def crash_runner(task):
    """Die abruptly (no exception, no result) — simulates a killed worker."""
    os._exit(42)


def crash_once_runner(task):
    """Crash on the first attempt, succeed on the retry.

    The first call creates the sentinel file named by
    ``$REPRO_TEST_SENTINEL`` and kills the worker; subsequent attempts
    (fresh worker, sentinel present) succeed with a fake result.
    """
    sentinel = os.environ[SENTINEL_ENV]
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8"):
            pass
        os._exit(42)
    return make_fake_result()
