"""Functional correctness: simulation must match the numpy oracle under
EVERY sharing policy and re-partitioning schedule (paper §6.4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ALL_POLICIES,
    Assign,
    BinOp,
    Call,
    Const,
    Job,
    Kernel,
    Load,
    Loop,
    Param,
    Reduce,
    build_image,
    compile_kernel,
    experiment_config,
    reference_execute,
    run_policy,
)
from tests.conftest import make_axpy, make_reduction, make_stencil, make_two_phase


def assert_matches_reference(kernel, policy, config=None, core=0, rtol=1e-4):
    config = config or experiment_config()
    program = compile_kernel(kernel)
    image = build_image(kernel, core_id=core)
    expected = reference_execute(kernel, image)
    jobs = [None] * config.num_cores
    jobs[core] = Job(program, image)
    run_policy(config, policy, jobs)
    for name, array in expected:
        np.testing.assert_allclose(
            image.array(name), array, rtol=rtol, atol=1e-5,
            err_msg=f"{kernel.name}/{name} diverged under {policy.key}",
        )


class TestAllPolicies:
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.key)
    def test_axpy(self, policy):
        assert_matches_reference(make_axpy(), policy)

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.key)
    def test_stencil(self, policy):
        assert_matches_reference(make_stencil(), policy)

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.key)
    def test_reduction(self, policy):
        assert_matches_reference(make_reduction(), policy, rtol=1e-3)

    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.key)
    def test_two_phase(self, policy):
        assert_matches_reference(make_two_phase(), policy)


class TestTailHandling:
    @pytest.mark.parametrize("length", [1, 3, 63, 64, 65, 127, 129, 200])
    def test_odd_trip_counts(self, length):
        # The predicated tail must handle every remainder.
        kernel = make_axpy(length=length)
        assert_matches_reference(kernel, ALL_POLICIES[3])

    def test_repeats_accumulate_in_place(self):
        kernel = Kernel(
            "inplace", array_length=130,
            loops=(
                Loop(
                    "inc", trip_count=130, repeats=3,
                    body=(Assign("a", BinOp("add", Load("a"), Const(1.0))),),
                ),
            ),
        )
        assert_matches_reference(kernel, ALL_POLICIES[3])


class TestOperatorSemantics:
    @pytest.mark.parametrize(
        "op", ["add", "sub", "mul", "div", "min", "max"]
    )
    def test_binops(self, op):
        kernel = Kernel(
            f"bin_{op}", array_length=100,
            loops=(
                Loop(
                    op, trip_count=100,
                    body=(Assign("c", BinOp(op, Load("a"), Load("b"))),),
                ),
            ),
        )
        assert_matches_reference(kernel, ALL_POLICIES[0])

    @pytest.mark.parametrize("op", ["sqrt", "abs", "neg"])
    def test_calls(self, op):
        kernel = Kernel(
            f"call_{op}", array_length=100,
            loops=(
                Loop(op, trip_count=100, body=(Assign("c", Call(op, Load("a"))),),),
            ),
        )
        assert_matches_reference(kernel, ALL_POLICIES[0])

    @pytest.mark.parametrize("op", ["add", "min", "max"])
    def test_reduction_ops(self, op):
        kernel = Kernel(
            f"red_{op}", array_length=150,
            loops=(
                Loop(op, trip_count=150, body=(Reduce(op, "acc", Load("a")),),),
            ),
        )
        assert_matches_reference(kernel, ALL_POLICIES[3], rtol=1e-3)

    def test_params_broadcast(self):
        kernel = Kernel(
            "paramed", array_length=90,
            loops=(
                Loop(
                    "p", trip_count=90,
                    body=(
                        Assign("c", BinOp("mul", Param("k"), Load("a"))),
                        Assign("d", BinOp("add", Param("k"), Param("j"))),
                    ),
                ),
            ),
            params={"k": 3.5, "j": -1.25},
        )
        assert_matches_reference(kernel, ALL_POLICIES[0])


# Random expression trees for the property test.
def _expr(depth):
    if depth == 0:
        return st.one_of(
            st.sampled_from([Load("a"), Load("b"), Load("a", 1)]),
            st.floats(0.1, 2.0).map(lambda v: Const(round(v, 3))),
        )
    sub = _expr(depth - 1)
    return st.one_of(
        sub,
        st.tuples(st.sampled_from(["add", "sub", "mul", "min", "max"]), sub, sub).map(
            lambda t: BinOp(*t)
        ),
        st.tuples(st.sampled_from(["abs", "neg"]), sub).map(lambda t: Call(*t)),
    )


class TestPropertyBased:
    @settings(max_examples=12, deadline=None)
    @given(expr=_expr(3), trip=st.integers(30, 200))
    def test_random_kernels_match_oracle(self, expr, trip):
        kernel = Kernel(
            "random", array_length=trip + 2,
            loops=(Loop("r", trip_count=trip, body=(Assign("out", expr),)),),
        )
        assert_matches_reference(kernel, ALL_POLICIES[3])
