"""Strip-mining (Fig. 9's ``s``): unrolled bodies under one monitor."""

import numpy as np
import pytest

from repro import (
    ALL_POLICIES,
    OCCAMY,
    CompileOptions,
    Job,
    build_image,
    compile_kernel,
    experiment_config,
    reference_execute,
    run_policy,
)
from repro.isa.instructions import AddVL, WhileLT
from tests.conftest import make_axpy, make_reduction, make_stencil


class TestUnrollCodegen:
    def test_body_replicated(self):
        single = compile_kernel(make_axpy(), CompileOptions(unroll=1))
        quad = compile_kernel(make_axpy(), CompileOptions(unroll=4))
        count = lambda p, cls: sum(isinstance(i, cls) for i in p)
        assert count(quad, WhileLT) == 4 * count(single, WhileLT)
        assert count(quad, AddVL) == 4 * count(single, AddVL)

    def test_monitor_not_replicated(self):
        single = compile_kernel(make_axpy(), CompileOptions(unroll=1))
        quad = compile_kernel(make_axpy(), CompileOptions(unroll=4))
        assert len(quad.meta["monitor"]) == len(single.meta["monitor"])


@pytest.mark.parametrize("unroll", [2, 3, 4])
class TestUnrollCorrectness:
    def _check(self, kernel, unroll, policy=OCCAMY, rtol=1e-4):
        config = experiment_config()
        program = compile_kernel(kernel, CompileOptions(unroll=unroll))
        image = build_image(kernel, 0)
        expected = reference_execute(kernel, image)
        run_policy(config, policy, [Job(program, image), None])
        for name, array in expected:
            np.testing.assert_allclose(image.array(name), array, rtol=rtol)

    def test_axpy_with_awkward_tails(self, unroll):
        # Lengths chosen so the tail lands inside different body copies.
        for length in (63, 130, 257, 300):
            self._check(make_axpy(length=length), unroll)

    def test_stencil(self, unroll):
        self._check(make_stencil(401), unroll)

    def test_reduction_spliced(self, unroll):
        self._check(make_reduction(391, repeats=2), unroll, rtol=1e-3)

    def test_under_every_policy(self, unroll):
        for policy in ALL_POLICIES:
            self._check(make_axpy(217), unroll, policy=policy)
