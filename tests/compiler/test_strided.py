"""Strided (interleaved-layout) loads through the whole stack."""

import numpy as np
import pytest

from repro import (
    ALL_POLICIES,
    OCCAMY,
    Job,
    build_image,
    compile_kernel,
    experiment_config,
    reference_execute,
    run_policy,
)
from repro.common.errors import CompilationError, VectorizationError
from repro.compiler.dag import build_dag
from repro.compiler.ir import Assign, BinOp, Const, Kernel, Load, Loop
from repro.compiler.vectorizer import vectorize_loop

PIXELS = 400


def interleaved_gray(pixels=PIXELS):
    body = (
        Assign(
            "gray",
            BinOp(
                "add",
                BinOp(
                    "add",
                    BinOp("mul", Const(0.299), Load("img", stride=3, offset=0)),
                    BinOp("mul", Const(0.587), Load("img", stride=3, offset=1)),
                ),
                BinOp("mul", Const(0.114), Load("img", stride=3, offset=2)),
            ),
        ),
    )
    return Kernel(
        "interleaved", array_length=3 * pixels,
        loops=(Loop("gray", trip_count=pixels, body=body),),
    )


def single_channel(pixels, stride):
    body = (Assign("out", BinOp("mul", Load("img", stride=stride), Const(2.0))),)
    return Kernel(
        f"chan{stride}", array_length=stride * pixels,
        loops=(Loop("chan", trip_count=pixels, repeats=2, body=body),),
    )


class TestValidation:
    def test_bad_stride_rejected(self):
        with pytest.raises(CompilationError):
            Load("a", stride=0)

    def test_offset_must_fit_stride(self):
        with pytest.raises(CompilationError):
            Load("a", stride=2, offset=2)
        Load("a", stride=2, offset=1)  # fine

    def test_array_length_accounts_for_stride(self):
        loop = Loop("l", trip_count=100, body=(Assign("b", Load("a", stride=4)),))
        with pytest.raises(CompilationError):
            Kernel("k", array_length=200, loops=(loop,))
        Kernel("k", array_length=400, loops=(loop,))

    def test_strided_read_of_written_array_rejected(self):
        loop = Loop(
            "l", trip_count=64,
            body=(Assign("a", BinOp("add", Load("a", stride=2), Const(1.0))),),
        )
        with pytest.raises(VectorizationError):
            build_dag(loop)


class TestAnalysis:
    def test_channels_are_distinct_loads(self):
        dag = build_dag(interleaved_gray().loops[0])
        assert dag.num_loads == 3  # three offsets, no CSE collapse

    def test_index_temps_collected(self):
        vloop = vectorize_loop(interleaved_gray().loops[0])
        assert (0, 3, 0) in vloop.index_temps
        assert (0, 3, 1) in vloop.index_temps
        assert vloop.shifts == ()  # no unit-stride stencil shifts


class TestCorrectness:
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.key)
    def test_interleaved_gray_matches_oracle(self, policy):
        kernel = interleaved_gray()
        config = experiment_config()
        image = build_image(kernel, 0)
        expected = reference_execute(kernel, image)
        run_policy(config, policy, [Job(compile_kernel(kernel), image), None])
        np.testing.assert_allclose(
            image.array("gray")[:PIXELS], expected.array("gray")[:PIXELS], rtol=1e-5
        )

    @pytest.mark.parametrize("stride", [2, 3, 4, 7])
    def test_strides_and_offsets(self, stride):
        kernel = single_channel(200, stride)
        config = experiment_config()
        image = build_image(kernel, 0)
        expected = reference_execute(kernel, image)
        run_policy(config, OCCAMY, [Job(compile_kernel(kernel), image), None])
        np.testing.assert_allclose(
            image.array("out")[:200], expected.array("out")[:200], rtol=1e-5
        )


class TestTimingCost:
    def test_single_channel_extraction_wastes_bandwidth(self):
        # Reading one channel of an interleaved image (stride 4) streams
        # 4x the cache lines of a planar copy of the same channel.
        config = experiment_config()
        pixels = 16384  # large enough to stream from DRAM
        strided = single_channel(pixels, stride=4)
        planar = single_channel(pixels, stride=1)
        runs = {}
        for kernel in (strided, planar):
            image = build_image(kernel, 0)
            result = run_policy(
                config, OCCAMY, [Job(compile_kernel(kernel), image), None]
            )
            runs[kernel.name] = result.total_cycles
        assert runs["chan4"] > 2.5 * runs["chan1"]
