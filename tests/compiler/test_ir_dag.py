"""Kernel IR validation and DAG construction (CSE, dependences)."""

import pytest

from repro.common.errors import CompilationError, VectorizationError
from repro.compiler.dag import build_dag
from repro.compiler.ir import (
    Assign,
    BinOp,
    Call,
    Const,
    Kernel,
    Load,
    Loop,
    Param,
    Reduce,
)


def loop_of(*statements, trip=128, name="l"):
    return Loop(name=name, trip_count=trip, body=tuple(statements))


class TestIRValidation:
    def test_unknown_binop(self):
        with pytest.raises(CompilationError):
            BinOp("pow", Load("a"), Load("b"))

    def test_unknown_call(self):
        with pytest.raises(CompilationError):
            Call("sin", Load("a"))

    def test_unknown_reduction(self):
        with pytest.raises(CompilationError):
            Reduce("mul", "acc", Load("a"))

    def test_empty_loop_rejected(self):
        with pytest.raises(CompilationError):
            Loop("l", trip_count=8, body=())

    def test_zero_trip_rejected(self):
        with pytest.raises(CompilationError):
            loop_of(Assign("b", Load("a")), trip=0)

    def test_kernel_requires_loops(self):
        with pytest.raises(CompilationError):
            Kernel("k", array_length=64, loops=())

    def test_stencil_padding_checked(self):
        loop = Loop(
            "l", trip_count=64,
            body=(Assign("b", BinOp("add", Load("a", -1), Load("a", 1))),),
        )
        with pytest.raises(CompilationError):
            Kernel("k", array_length=64, loops=(loop,))
        Kernel("k", array_length=66, loops=(loop,))  # padded: fine

    def test_shift_helpers(self):
        loop = Loop(
            "l", trip_count=64,
            body=(Assign("b", BinOp("add", Load("a", -2), Load("a", 1))),),
        )
        assert loop.max_negative_shift() == 2
        assert loop.max_positive_shift() == 1

    def test_arrays_read_written(self):
        loop = loop_of(
            Assign("out", BinOp("add", Load("a"), Load("b"))),
            Reduce("add", "acc", Load("a")),
        )
        assert loop.arrays_read() == {"a", "b"}
        assert loop.arrays_written() == {"out"}
        kernel = Kernel("k", array_length=128, loops=(loop,))
        assert kernel.reduction_outputs() == {"acc"}
        assert kernel.arrays() == {"a", "b", "out"}


class TestDag:
    def test_cse_collapses_common_subexpressions(self):
        shared = BinOp("add", Load("v"), Load("v1"))
        loop = loop_of(
            Assign("x", BinOp("mul", shared, shared)),
            Assign("y", BinOp("mul", shared, Const(0.5))),
        )
        dag = build_dag(loop)
        # loads v, v1; computes: add (shared), mul, mul — shared built once.
        assert dag.num_loads == 2
        assert dag.num_computes == 3

    def test_distinct_constants_not_merged(self):
        loop = loop_of(
            Assign("x", BinOp("mul", Load("a"), Const(1.0))),
            Assign("y", BinOp("mul", Load("a"), Const(2.0))),
        )
        assert build_dag(loop).num_computes == 2

    def test_same_constant_merged(self):
        loop = loop_of(
            Assign("x", BinOp("mul", Load("a"), Const(2.0))),
            Assign("y", BinOp("mul", Load("a"), Const(2.0))),
        )
        dag = build_dag(loop)
        assert dag.num_computes == 1
        assert dag.num_stores == 2

    def test_loads_cse_by_array_and_shift(self):
        loop = loop_of(
            Assign("x", BinOp("add", Load("a"), Load("a"))),
            Assign("y", BinOp("add", Load("a", 1), Load("a", 1))),
        )
        assert build_dag(loop).num_loads == 2

    def test_loop_carried_dependence_rejected(self):
        loop = loop_of(Assign("a", BinOp("add", Load("a", -1), Const(1.0))))
        with pytest.raises(VectorizationError):
            build_dag(loop)

    def test_in_place_same_index_allowed(self):
        loop = loop_of(Assign("a", BinOp("add", Load("a"), Const(1.0))))
        dag = build_dag(loop)
        assert dag.num_loads == 1

    def test_reductions_collected(self):
        loop = loop_of(Reduce("add", "acc", BinOp("mul", Load("x"), Load("y"))))
        dag = build_dag(loop)
        assert dag.reductions == [("add", "acc", dag.reductions[0][2])]
        assert dag.num_stores == 0

    def test_params_interned(self):
        loop = loop_of(
            Assign("x", BinOp("mul", Param("a"), Load("v"))),
            Assign("y", BinOp("add", Param("a"), Load("v"))),
        )
        assert len(build_dag(loop).params()) == 1
