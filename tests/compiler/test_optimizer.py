"""Compiler optimisation passes: folding, fusion, dead-code elimination."""

import numpy as np
import pytest

from repro import (
    OCCAMY,
    CompileOptions,
    Job,
    build_image,
    compile_kernel,
    experiment_config,
    reference_execute,
    run_policy,
)
from repro.compiler.dag import build_dag
from repro.compiler.ir import Assign, BinOp, Call, Const, Kernel, Load, Loop, Param, Reduce
from repro.compiler.optimizer import eliminate_dead, fold_constants, fuse_fma, optimize


def loop_of(*statements, trip=128):
    return Loop("l", trip_count=trip, body=tuple(statements))


class TestConstantFolding:
    def test_binop_folds(self):
        dag = fold_constants(
            build_dag(loop_of(Assign("z", BinOp("mul", Const(2.0), Const(3.0)))))
        )
        consts = [n.value for n in dag.nodes if n.kind == "const"]
        assert 6.0 in consts

    def test_nested_folding(self):
        expr = BinOp("add", BinOp("mul", Const(2.0), Const(3.0)), Const(4.0))
        dag = optimize(build_dag(loop_of(Assign("z", expr))), fma=False)
        # One synthetic mov materialises the folded constant; nothing else.
        assert [n.op for n in dag.computes()] == ["mov"]

    def test_unary_folding(self):
        dag = optimize(
            build_dag(loop_of(Assign("z", Call("neg", Const(2.0))))), fma=False
        )
        consts = [n.value for n in dag.nodes if n.kind == "const"]
        assert -2.0 in consts

    def test_division_by_zero_folds_to_zero(self):
        dag = fold_constants(
            build_dag(loop_of(Assign("z", BinOp("div", Const(1.0), Const(0.0)))))
        )
        consts = [n.value for n in dag.nodes if n.kind == "const"]
        assert 0.0 in consts

    def test_non_const_operands_untouched(self):
        dag = fold_constants(
            build_dag(loop_of(Assign("z", BinOp("mul", Load("x"), Const(3.0)))))
        )
        assert [n.op for n in dag.computes()] == ["mul"]


class TestFmaFusion:
    def test_axpy_becomes_single_fma(self):
        expr = BinOp("add", BinOp("mul", Param("a"), Load("x")), Load("y"))
        dag = optimize(build_dag(loop_of(Assign("y", expr))), fold=False)
        assert [n.op for n in dag.computes()] == ["fma"]

    def test_add_first_operand_order(self):
        expr = BinOp("add", Load("y"), BinOp("mul", Load("a"), Load("b")))
        dag = optimize(build_dag(loop_of(Assign("z", expr))), fold=False)
        assert [n.op for n in dag.computes()] == ["fma"]

    def test_shared_mul_not_fused(self):
        mul = BinOp("mul", Load("a"), Load("b"))
        dag = optimize(
            build_dag(
                loop_of(
                    Assign("x", BinOp("add", mul, Load("c"))),
                    Assign("y", mul),  # second use keeps the mul alive
                )
            ),
            fold=False,
        )
        ops = sorted(n.op for n in dag.computes())
        assert ops == ["add", "mul"]

    def test_fusion_reduces_instruction_count(self):
        expr = BinOp(
            "add",
            BinOp("mul", Load("a"), Load("b")),
            BinOp("mul", Load("c"), Load("d")),
        )
        plain = build_dag(loop_of(Assign("z", expr)))
        fused = optimize(plain, fold=False)
        assert fused.num_computes < plain.num_computes

    def test_reduction_expression_fused(self):
        dag = optimize(
            build_dag(
                loop_of(Reduce("add", "acc", BinOp("add", BinOp("mul", Load("x"), Load("y")), Load("z"))))
            ),
            fold=False,
        )
        assert "fma" in [n.op for n in dag.computes()]


class TestDeadCodeElimination:
    def test_orphans_swept(self):
        expr = BinOp("add", BinOp("mul", Param("a"), Load("x")), Load("y"))
        fused = fuse_fma(build_dag(loop_of(Assign("y", expr))))
        assert "mul" in [n.op for n in fused.computes()]  # orphan remains
        swept = eliminate_dead(fused)
        assert [n.op for n in swept.computes()] == ["fma"]

    def test_stores_and_reductions_kept(self):
        dag = optimize(
            build_dag(
                loop_of(
                    Assign("out", Load("a")),
                    Reduce("add", "acc", Load("b")),
                )
            )
        )
        assert dag.num_stores == 1
        assert len(dag.reductions) == 1


class TestEndToEnd:
    @pytest.mark.parametrize("options", [
        CompileOptions(fuse_fma=True),
        CompileOptions(fold_constants=True),
        CompileOptions(fuse_fma=True, fold_constants=True),
    ], ids=["fma", "fold", "both"])
    def test_optimised_code_matches_oracle(self, options):
        expr = BinOp(
            "add",
            BinOp("mul", Param("a"), Load("x")),
            BinOp("mul", Const(2.0), BinOp("add", Load("y"), Const(3.0 * 0.5))),
        )
        kernel = Kernel(
            "opt", array_length=300,
            loops=(Loop("l", trip_count=300, body=(Assign("z", expr),)),),
            params={"a": 1.5},
        )
        config = experiment_config()
        image = build_image(kernel, 0)
        expected = reference_execute(kernel, image)
        run_policy(config, OCCAMY, [Job(compile_kernel(kernel, options), image), None])
        np.testing.assert_allclose(image.array("z"), expected.array("z"), rtol=1e-5)

    def test_fusion_changes_reported_oi(self):
        expr = BinOp("add", BinOp("mul", Param("a"), Load("x")), Load("y"))
        kernel = Kernel(
            "axpy", array_length=300,
            loops=(Loop("l", trip_count=300, body=(Assign("y", expr),)),),
            params={"a": 2.0},
        )
        plain = compile_kernel(kernel)
        fused = compile_kernel(kernel, CompileOptions(fuse_fma=True))
        assert fused.meta["phase_ois"][0].mem < plain.meta["phase_ois"][0].mem
        assert len(fused) < len(plain)
