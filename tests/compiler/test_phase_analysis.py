"""Operational-intensity analysis (§6.3, Eq. 5)."""

import pytest

from repro.common.config import experiment_config
from repro.compiler.ir import Assign, BinOp, Const, Load, Loop, Reduce
from repro.compiler.phase_analysis import analyze_loop
from tests.conftest import make_axpy, make_stencil


class TestEq5:
    def test_axpy(self):
        info = analyze_loop(make_axpy().loops[0])
        # mul + add over loads x, y and store y.
        assert info.comp_insts == 2
        assert info.load_insts == 2
        assert info.store_insts == 1
        assert info.footprint_arrays == 2  # x and y (y read+written)
        assert info.oi.issue == pytest.approx(2 / 12)
        assert info.oi.mem == pytest.approx(2 / 8)

    def test_stencil_data_reuse(self):
        info = analyze_loop(make_stencil().loops[0])
        # 3 issued loads of w, but footprint is only w + out.
        assert info.load_insts == 3
        assert info.footprint_arrays == 2
        assert info.has_data_reuse
        assert info.oi.issue < info.oi.mem

    def test_reduction_folds_counted(self):
        loop = Loop(
            "dot", trip_count=64,
            body=(Reduce("add", "acc", BinOp("mul", Load("x"), Load("y"))),),
        )
        info = analyze_loop(loop)
        assert info.comp_insts == 2  # the mul plus the fold
        assert info.store_insts == 0
        assert info.oi.mem == pytest.approx(0.25)

    def test_no_reuse_means_equal_intensities(self):
        loop = Loop("l", trip_count=64, body=(Assign("b", Load("a")),))
        info = analyze_loop(loop)
        assert info.oi.issue == info.oi.mem
        assert not info.has_data_reuse


class TestResidency:
    def test_levels_by_footprint(self):
        memory = experiment_config().memory
        small = analyze_loop(
            Loop("s", trip_count=256, body=(Assign("b", Load("a")),))
        )
        assert small.residency_level(memory) == "vec_cache"
        medium = analyze_loop(
            Loop("m", trip_count=8192, body=(Assign("b", Load("a")),))
        )
        assert medium.residency_level(memory) == "l2"
        large = analyze_loop(
            Loop(
                "l", trip_count=16384,
                body=(Assign("d", BinOp("add", Load("a"), Load("b"))),),
            )
        )
        assert large.residency_level(memory) == "dram"

    def test_total_footprint_bytes(self):
        info = analyze_loop(
            Loop("l", trip_count=100, body=(Assign("b", Load("a")),))
        )
        assert info.total_footprint_bytes == 2 * 100 * 4

    def test_oi_for_level(self):
        info = analyze_loop(
            Loop("l", trip_count=64, body=(Assign("b", Load("a")),))
        )
        assert info.oi_for_level("l2").level == "l2"
        assert info.oi.level == "dram"
