"""Vectorization and the Fig. 9 EM-SIMD code structure."""

import pytest

from repro.common.errors import VectorizationError
from repro.compiler.ir import Assign, BinOp, Const, Kernel, Load, Loop, Reduce
from repro.compiler.pipeline import CompileOptions, compile_kernel
from repro.compiler.vectorizer import vectorize_loop
from repro.isa.instructions import (
    MRS,
    MSR,
    AddVL,
    VLoad,
    VOp,
    VStore,
    WhileLT,
)
from repro.isa.registers import DECISION, OI, STATUS, VL, SystemRegister
from tests.conftest import make_axpy, make_reduction, make_stencil


class TestVectorizer:
    def test_register_assignment_unique(self):
        vloop = vectorize_loop(make_stencil().loops[0])
        regs = list(vloop.reg_of.values())
        assert len(regs) == len(set(regs))

    def test_reduction_gets_accumulator_and_scratch(self):
        vloop = vectorize_loop(make_reduction().loops[0])
        assert "acc" in vloop.acc_regs
        assert vloop.scratch is not None

    def test_shift_collection(self):
        vloop = vectorize_loop(make_stencil().loops[0])
        assert vloop.shifts == (-1, 1)

    def test_register_overflow_detected(self):
        # A body with far more than 32 distinct values.
        body = tuple(
            Assign(f"out{i}", BinOp("mul", Load("a"), Const(1.0 + i)))
            for i in range(3)
        )
        expr = Load("a")
        for i in range(40):
            expr = BinOp("add", expr, Const(float(i + 2)))
        loop = Loop("big", trip_count=64, body=body + (Assign("z", expr),))
        with pytest.raises(VectorizationError):
            vectorize_loop(loop)


def _instrs(kernel, **options):
    return list(compile_kernel(kernel, CompileOptions(**options)))


class TestFig9Structure:
    def test_prologue_writes_oi_then_vl(self):
        instrs = _instrs(make_axpy())
        msr_targets = [i.sysreg for i in instrs if isinstance(i, MSR)]
        # OI first; VL spin follows; epilogue ends with OI=0 then VL=0.
        assert msr_targets[0] is SystemRegister.OI
        assert SystemRegister.VL in msr_targets

    def test_monitor_reads_decision_per_iteration(self):
        instrs = _instrs(make_axpy())
        decision_reads = [
            i for i in instrs if isinstance(i, MRS) and i.sysreg is DECISION
        ]
        assert decision_reads  # the lazy partition monitor exists

    def test_elastic_false_removes_monitor(self):
        program = compile_kernel(make_axpy(), CompileOptions(elastic=False))
        assert program.meta["monitor"] == frozenset()

    def test_multiversion_threshold_disables_small_loops(self):
        kernel = make_axpy(length=256)
        program = compile_kernel(kernel, CompileOptions(multiversion_threshold=512))
        assert program.meta["monitor"] == frozenset()

    def test_strip_body_predicated(self):
        instrs = _instrs(make_axpy())
        assert any(isinstance(i, WhileLT) for i in instrs)
        loads = [i for i in instrs if isinstance(i, VLoad)]
        assert loads and all(load.pred is not None for load in loads)

    def test_induction_advances_by_vl(self):
        instrs = _instrs(make_axpy())
        assert any(isinstance(i, AddVL) for i in instrs)

    def test_meta_instrumentation_sets(self):
        program = compile_kernel(make_axpy())
        monitor = program.meta["monitor"]
        reconfig = program.meta["reconfig"]
        assert monitor and reconfig
        assert not monitor & reconfig

    def test_phase_ois_in_meta(self):
        program = compile_kernel(make_axpy())
        assert len(program.meta["phase_ois"]) == 1

    def test_stencil_emits_shifted_index_loads(self):
        instrs = _instrs(make_stencil())
        load_indices = {i.index for i in instrs if isinstance(i, VLoad)}
        assert "Xi" in load_indices
        assert any(index.startswith("Xsh_") for index in load_indices)

    def test_reduction_emits_splice_and_store(self):
        instrs = _instrs(make_reduction())
        # The reduction result is materialised via a one-element store.
        stores = [i for i in instrs if isinstance(i, VStore) and i.array == "acc"]
        assert len(stores) == 1

    def test_multi_phase_kernel_has_per_phase_markers(self):
        two = Kernel(
            "two", array_length=128,
            loops=(
                Loop("p1", trip_count=128, body=(Assign("b", Load("a")),)),
                Loop("p2", trip_count=128, body=(Assign("c", Load("b")),)),
            ),
        )
        instrs = _instrs(two)
        oi_writes = [i for i in instrs if isinstance(i, MSR) and i.sysreg is OI]
        assert len(oi_writes) == 4  # prologue + epilogue per phase
