"""PhaseValidation statistics."""

import pytest

from repro.analysis.validation import PhaseValidation, ValidationPoint, validate_phase
from repro.workloads.spec import spec_workload


def points(pairs):
    return [
        ValidationPoint(lanes=l, predicted=p, achieved=a, phase_cycles=100)
        for l, p, a in pairs
    ]


def validation(pairs):
    return PhaseValidation(
        kernel_name="t", phase_index=0, oi_issue=0.5, oi_mem=0.5,
        level="dram", points=points(pairs),
    )


class TestStatistics:
    def test_perfect_agreement(self):
        v = validation([(2, 1, 1), (4, 2, 2), (8, 4, 4)])
        assert v.ordering_agreement == 1.0

    def test_total_disagreement(self):
        v = validation([(2, 1, 4), (4, 2, 2), (8, 4, 1)])
        assert v.ordering_agreement < 0.5

    def test_ties_count_as_agreement(self):
        v = validation([(2, 4, 1.0), (4, 4, 1.2)])
        assert v.ordering_agreement == 1.0

    def test_predicted_knee(self):
        v = validation([(2, 1, 1), (4, 2, 2), (8, 4, 4), (16, 4, 4.1)])
        assert v.predicted_knee == 8

    def test_measured_knee_uses_90_percent(self):
        v = validation([(2, 1, 1), (4, 2, 9.5), (8, 4, 10)])
        assert v.measured_knee == 4


class TestEndToEnd:
    def test_validate_phase_smoke(self):
        v = validate_phase(
            spec_workload(17, scale=0.05), lane_choices=(8, 32)
        )
        assert len(v.points) == 2
        assert v.points[1].achieved > v.points[0].achieved
        assert v.level == "vec_cache"
