"""ASCII reporting helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.reporting import format_series, format_table, geomean


class TestGeomean:
    def test_basic(self):
        assert geomean([2, 8]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_ignores_nonpositive(self):
        assert geomean([2, 8, 0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    @given(st.lists(st.floats(0.1, 10), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        gm = geomean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


class TestFormatting:
    def test_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.5], ["bb", 22.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_series_renders(self):
        text = format_series("lanes", [0, 8, 16, 32])
        assert "lanes" in text
        assert "peak=32" in text

    def test_series_resamples_long_input(self):
        text = format_series("x", list(range(1000)), width=40)
        assert text.count("|") == 2

    def test_empty_series(self):
        assert "(empty)" in format_series("x", [])
