"""ASCII reporting helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.reporting import format_series, format_table, geomean
from repro.common.errors import ConfigurationError


def _bar(text):
    """The glyph run between the two pipes of a format_series line."""
    return text.split("|")[1]


class TestGeomean:
    def test_basic(self):
        assert geomean([2, 8]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_ignores_nonpositive(self):
        assert geomean([2, 8, 0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_ignores_nonfinite(self):
        """NaN/inf entries must not poison the mean: log(inf) and
        log(NaN) would propagate through the sum."""
        assert geomean([2, 8, float("nan"), float("inf")]) == pytest.approx(4.0)

    def test_all_skipped_is_zero_not_crash(self):
        assert geomean([0.0, -3.0, float("nan")]) == 0.0

    def test_named_series_raises_on_bad_values(self):
        """With ``series`` set, a skippable value is treated as corrupt
        input and the error names the series and the offenders."""
        with pytest.raises(ConfigurationError, match=r"utilization.*-2"):
            geomean([1.0, -2.0], series="utilization")
        with pytest.raises(ConfigurationError, match="speedups"):
            geomean([3.0, float("nan")], series="speedups")

    def test_named_series_passes_clean_values(self):
        assert geomean([2, 8], series="clean") == pytest.approx(4.0)

    @given(st.lists(st.floats(0.1, 10), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        gm = geomean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


class TestFormatting:
    def test_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.5], ["bb", 22.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_series_renders(self):
        text = format_series("lanes", [0, 8, 16, 32])
        assert "lanes" in text
        assert "peak=32" in text

    def test_series_resamples_long_input(self):
        text = format_series("x", list(range(1000)), width=40)
        assert text.count("|") == 2

    def test_empty_series(self):
        assert "(empty)" in format_series("x", [])

    def test_negative_value_renders_as_dip_not_spike(self):
        """A negative sample must clamp to the *lowest* glyph; the old
        negative index silently wrapped to the highest one, turning a
        dip into a spike."""
        bar = _bar(format_series("x", [-5.0, 10.0]))
        assert bar[0] == " "  # clamped floor, not '@'
        assert bar[1] == "@"

    def test_all_nonpositive_series_renders_flat(self):
        bar = _bar(format_series("x", [-1.0, -2.0, 0.0]))
        assert set(bar) == {" "}
