"""Trace export: atomicity guarantees and JSON round-trip fidelity."""

import json
import os

import pytest

from repro import experiment_config, run_policy
from repro.analysis import trace as trace_mod
from repro.analysis.trace import export_trace, trace_dict
from repro.core.policies import policy
from tests.conftest import compiled_job, make_axpy, make_two_phase

POLICY_KEYS = ("private", "fts", "vls", "occamy")


@pytest.fixture(scope="module")
def results():
    config = experiment_config()
    out = {}
    for key in POLICY_KEYS:
        jobs = [
            compiled_job(make_two_phase(length=256), core_id=0),
            compiled_job(make_axpy(length=256), core_id=1),
        ]
        out[key] = run_policy(config, policy(key), jobs)
    return out


class TestRoundTrip:
    @pytest.mark.parametrize("key", POLICY_KEYS)
    def test_reloaded_trace_matches_live_metrics(self, results, key, tmp_path):
        result = results[key]
        metrics = result.metrics
        path = tmp_path / f"{key}.json"
        export_trace(result, str(path))
        data = json.loads(path.read_text())

        assert data["policy"] == key
        assert data["total_cycles"] == result.total_cycles
        assert data["core_cycles"] == list(result.core_cycles)

        # Lane timelines survive byte-for-byte (as [cycle, lanes] pairs).
        for core in range(metrics.num_cores):
            live = [[int(c), float(v)] for c, v in metrics.lane_timeline[core].points]
            assert data["lane_timelines"][core] == live

        # Phase records: per-core counts and uop totals reconcile.
        assert len(data["phases"]) == len(metrics.phases)
        for exported, live in zip(data["phases"], metrics.phases):
            assert exported["core"] == live.core
            assert exported["start"] == live.start_cycle
            assert exported["end"] == live.end_cycle
            assert exported["compute_uops"] == live.compute_uops
            assert exported["ldst_uops"] == live.ldst_uops

        # Stall totals: the JSON books sum to the live counters.
        for core in range(metrics.num_cores):
            live_total = sum(metrics.stalls[core].values())
            assert sum(data["stalls"][core].values()) == live_total

        assert data["reconfigurations"]["success"] == list(metrics.reconfig_success)
        assert data["reconfigurations"]["failed"] == list(metrics.reconfig_failed)
        assert data["simd_utilization"] == pytest.approx(metrics.simd_utilization())

    @pytest.mark.parametrize("key", POLICY_KEYS)
    def test_trace_dict_equals_exported_json(self, results, key, tmp_path):
        # json round-trip must be lossless for everything trace_dict emits.
        result = results[key]
        path = tmp_path / "t.json"
        export_trace(result, str(path))
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(trace_dict(result))
        )


class TestAtomicity:
    def test_creates_missing_parent_dirs(self, results, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.json"
        export_trace(results["occamy"], str(path))
        assert json.loads(path.read_text())["policy"] == "occamy"

    def test_crash_mid_dump_preserves_old_file(self, results, tmp_path, monkeypatch):
        path = tmp_path / "trace.json"
        export_trace(results["private"], str(path))
        before = path.read_text()

        def explode(*args, **kwargs):
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(trace_mod.json, "dump", explode)
        with pytest.raises(RuntimeError):
            export_trace(results["occamy"], str(path))
        # The old complete trace is untouched; no temp litter remains.
        assert path.read_text() == before
        assert os.listdir(tmp_path) == ["trace.json"]

    def test_no_temp_files_after_success(self, results, tmp_path):
        path = tmp_path / "trace.json"
        export_trace(results["occamy"], str(path))
        assert os.listdir(tmp_path) == ["trace.json"]
