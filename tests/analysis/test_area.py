"""The Fig. 12 analytical area model."""

import pytest

from repro.analysis.area import AreaBreakdown, area_model
from repro.common.config import experiment_config, table4_config


class TestTwoCoreBreakdown:
    def test_total_close_to_paper(self):
        # Paper: 1.263 mm² for Private/FTS/VLS, 1.265 mm² for Occamy.
        for key in ("private", "fts", "vls"):
            assert area_model(table4_config(), key).total == pytest.approx(1.263, abs=0.02)
        assert area_model(table4_config(), "occamy").total == pytest.approx(1.265, abs=0.02)

    def test_component_shares(self):
        breakdown = area_model(table4_config(), "occamy")
        assert breakdown.fraction("simd_exe_units") == pytest.approx(0.46, abs=0.02)
        assert breakdown.fraction("lsu") == pytest.approx(0.23, abs=0.02)
        assert breakdown.fraction("register_file") == pytest.approx(0.15, abs=0.02)

    def test_manager_below_one_percent(self):
        breakdown = area_model(table4_config(), "occamy")
        assert 0 < breakdown.fraction("manager") < 0.01

    def test_manager_absent_in_private_and_fts(self):
        assert "manager" not in area_model(table4_config(), "private").components
        assert "manager" not in area_model(table4_config(), "fts").components


class TestScaling:
    def test_four_core_fts_costs_33_percent_more(self):
        config = table4_config(num_cores=4)
        fts = area_model(config, "fts").total
        others = area_model(config, "private").total
        assert fts / others - 1 == pytest.approx(0.335, abs=0.04)

    def test_control_logic_scales_modestly(self):
        # §4.2.1: tables/pipelines add ~3% when going from 2 to 4 cores.
        two = area_model(table4_config(2), "occamy")
        four = area_model(table4_config(4), "occamy")
        control = ("inst_pool", "decode", "rename", "dispatch", "rob")
        two_control = sum(two.components[c] for c in control)
        four_control = sum(four.components[c] for c in control)
        assert four_control / (2 * two_control) == pytest.approx(1.03, abs=0.01)

    def test_lanes_drive_exe_area(self):
        two = area_model(table4_config(2), "private")
        four = area_model(table4_config(4), "private")
        ratio = four.components["simd_exe_units"] / two.components["simd_exe_units"]
        assert ratio == pytest.approx(2.0)

    def test_rows_sorted_descending(self):
        rows = area_model(table4_config(), "occamy").rows()
        values = list(rows.values())
        assert values == sorted(values, reverse=True)
