"""The experiment drivers (tiny scales; the benchmarks run them fully)."""

import pytest

from repro.analysis.experiments import (
    clear_sweep_cache,
    motivation_fig2,
    pair_outcome,
    run_with_fixed_lanes,
    table5_rows,
)
from repro.analysis.sensitivity import SWEEPS, sweep
from repro.common.config import experiment_config
from repro.workloads.pairs import CoRunPair
from repro.workloads.spec import spec_workload


class TestPairOutcome:
    def test_memoised_across_calls(self):
        clear_sweep_cache()
        pair = CoRunPair("spec", 20, 17)
        first = pair_outcome(pair, scale=0.05)
        second = pair_outcome(pair, scale=0.05)
        for key in first.results:
            assert first.results[key] is second.results[key]
        clear_sweep_cache()
        third = pair_outcome(pair, scale=0.05)
        assert third.results["private"] is not first.results["private"]

    def test_outcome_accessors(self):
        pair = CoRunPair("spec", 20, 17)
        outcome = pair_outcome(pair, scale=0.05)
        assert outcome.speedup("private", 0) == 1.0
        assert 0 <= outcome.utilization("occamy") <= 1
        assert 0 <= outcome.rename_stall_fraction("fts", 1) <= 1
        overhead = outcome.overhead(0)
        assert set(overhead) == {"monitor", "reconfig"}


class TestFixedLanes:
    @pytest.mark.parametrize("lanes", [4, 16, 32])
    def test_allocation_pinned(self, lanes):
        kernel = spec_workload(17, scale=0.05)
        result = run_with_fixed_lanes(kernel, lanes)
        values = {v for _, v in result.metrics.lane_timeline[0].points if v}
        assert values == {lanes}

    def test_more_lanes_never_slower_for_compute(self):
        kernel = spec_workload(17, scale=0.05)
        few = run_with_fixed_lanes(kernel, 4).core_time(0)
        many = run_with_fixed_lanes(kernel, 32).core_time(0)
        assert many < few


class TestMotivationDriver:
    def test_four_policies_present(self):
        result = motivation_fig2(scale=0.05)
        assert set(result.results) == {"private", "fts", "vls", "occamy"}
        assert result.speedup("private", 1) == 1.0
        assert len(result.lane_series("occamy", 0)) > 0
        assert result.issue_rates("occamy", 0)


class TestTable5Driver:
    def test_row_structure(self):
        rows = table5_rows(experiment_config(), lane_choices=(4, 12))
        assert [row["vl"] for row in rows] == [4, 12]
        assert rows[1]["performance"] == pytest.approx(16.0, abs=0.1)


class TestSensitivity:
    def test_single_point_sweep(self):
        points = sweep("total_lanes", values=(32,), scale=0.05)
        assert len(points) == 1
        point = points[0]
        assert point.parameter == "total_lanes"
        assert point.compute_speedup > 0
        assert point.private_cycles > 0

    def test_known_parameters(self):
        assert set(SWEEPS) == {
            "total_lanes",
            "dram_bytes_per_cycle",
            "instruction_pool_entries",
        }

    def test_unknown_parameter(self):
        with pytest.raises(KeyError):
            sweep("nonsense")
