"""The ``repro cache`` subcommand and the prune/stats cache API."""

import os
import time

import pytest

from repro.analysis.result_cache import ResultCache
from repro.cli import main


def _fill(cache: ResultCache, count: int, size: int = 100):
    """Write ``count`` raw entries with strictly increasing mtimes."""
    cache.directory.mkdir(parents=True, exist_ok=True)
    keys = []
    base = time.time() - count * 10
    for index in range(count):
        key = f"{index:02d}" + "ab" * 10
        path = cache.path_for(key)
        path.write_bytes(b"x" * size)
        stamp = base + index * 10
        os.utime(path, (stamp, stamp))
        keys.append(key)
    return keys


# --- API ----------------------------------------------------------------------


def test_stats_counts_entries_and_bytes(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    _fill(cache, 3, size=50)
    stats = cache.stats()
    assert stats.entries == 3
    assert stats.total_bytes == 150
    assert stats.directory == cache.directory


def test_entries_sorted_oldest_first(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    keys = _fill(cache, 4)
    assert [entry.key for entry in cache.entries()] == keys


def test_prune_by_entries_keeps_newest(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    keys = _fill(cache, 5)
    removed = cache.prune(max_entries=2)
    assert removed == 3
    survivors = sorted(entry.key for entry in cache.entries())
    assert survivors == sorted(keys[-2:])  # the two newest


def test_prune_by_size_keeps_newest(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    keys = _fill(cache, 4, size=100)
    removed = cache.prune(max_bytes=250)
    assert removed == 2
    survivors = {entry.key for entry in cache.entries()}
    assert survivors == set(keys[-2:])
    assert cache.stats().total_bytes == 200


def test_prune_without_bounds_is_noop(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    _fill(cache, 3)
    assert cache.prune() == 0
    assert cache.stats().entries == 3


def test_prune_missing_directory_is_safe(tmp_path):
    cache = ResultCache(tmp_path / "never-created")
    assert cache.prune(max_entries=1) == 0
    assert cache.stats().entries == 0


# --- CLI ----------------------------------------------------------------------


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    directory = tmp_path / "cli-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(directory))
    return directory


def test_cli_cache_stats(cache_dir, capsys):
    _fill(ResultCache(cache_dir), 2, size=80)
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "entries         : 2" in out
    assert "total bytes     : 160" in out


def test_cli_cache_prune(cache_dir, capsys):
    cache = ResultCache(cache_dir)
    keys = _fill(cache, 4)
    assert main(["cache", "prune", "--max-entries", "1"]) == 0
    out = capsys.readouterr().out
    assert "pruned 3 entries" in out
    assert [entry.key for entry in cache.entries()] == [keys[-1]]


def test_cli_cache_prune_requires_a_bound(cache_dir, capsys):
    assert main(["cache", "prune"]) == 2
    assert "max-bytes" in capsys.readouterr().err


def test_cli_cache_clear(cache_dir, capsys):
    _fill(ResultCache(cache_dir), 3)
    assert main(["cache", "clear"]) == 0
    assert "cleared 3 entries" in capsys.readouterr().out
    assert ResultCache(cache_dir).stats().entries == 0


def test_cli_cache_explicit_dir_flag(tmp_path, capsys):
    directory = tmp_path / "explicit"
    _fill(ResultCache(directory), 1)
    assert main(["cache", "--cache-dir", str(directory), "stats"]) == 0
    assert "entries         : 1" in capsys.readouterr().out
