"""ECM cycle predictor: decomposition invariants and the service prior."""

import math

import pytest

from repro.analysis.ecm import (
    TEMPORAL_POLICIES,
    EcmModel,
    lane_sweep,
    predict_spec_cycles,
    predict_workload,
)
from repro.common.config import experiment_config
from repro.common.errors import ConfigurationError
from repro.compiler.phase_analysis import analyze_kernel
from repro.service.specs import task_signature
from repro.workloads.spec import spec_workload

LANES = (1, 2, 4, 8, 16, 32)


@pytest.fixture(scope="module")
def compute_kernel():
    # wsm52: compute-intensive, Vec-Cache resident.
    return spec_workload(17, scale=0.05)


@pytest.fixture(scope="module")
def memory_kernel():
    # sff2: streaming, DRAM-bound at scale.
    return spec_workload(20, scale=0.05)


@pytest.fixture(scope="module")
def reuse_kernel():
    # rho_eos2: enough arithmetic per element that the core binds at one
    # lane, with a DRAM-resident footprint that binds once lanes widen.
    return spec_workload(19, scale=0.05)


@pytest.fixture(scope="module")
def model():
    return EcmModel(experiment_config())


# --- decomposition invariants -------------------------------------------------


class TestConventions:
    def test_overlap_never_exceeds_nonoverlap(self, compute_kernel, memory_kernel):
        """The optimistic convention must lower-bound the pessimistic one,
        per phase and per workload, under every policy."""
        for kernel in (compute_kernel, memory_kernel):
            for policy in ("private", "fts", "vls", "occamy", "cts"):
                prediction = predict_workload(kernel, policy)
                assert prediction.cycles <= prediction.cycles_nonoverlap
                for phase in prediction.phases:
                    assert phase.chunk_cycles <= phase.chunk_cycles_nonoverlap
                    # overlap = max of the terms it composes
                    assert phase.chunk_cycles == pytest.approx(
                        max(phase.t_core, phase.t_l1, phase.t_l2, phase.t_mem)
                    )
                    # non-overlap = their sum
                    assert phase.chunk_cycles_nonoverlap == pytest.approx(
                        phase.t_core + phase.t_data
                    )

    def test_bottleneck_names_the_max_term(self, memory_kernel, model):
        info = analyze_kernel(memory_kernel)[0]
        phase = model.phase_prediction(info, lanes=32)
        terms = {
            "core": phase.t_core,
            "l1": phase.t_l1,
            "l2": phase.t_l2,
            "mem": phase.t_mem,
        }
        assert terms[phase.bottleneck] == max(terms.values())

    def test_ipc_cpi_are_reciprocal(self, compute_kernel):
        prediction = predict_workload(compute_kernel, "occamy")
        assert prediction.ipc * prediction.cpi == pytest.approx(1.0)
        assert prediction.uops > 0


class TestLaneScaling:
    def test_ceiling_crossover(self, reuse_kernel):
        """A DRAM-resident phase with real arithmetic is core-bound at 1
        lane and bandwidth-bound once lanes widen (transfer terms grow
        with the chunk, in-core time does not): the binding ECM term must
        cross from in-core to a transfer ceiling."""
        sweep = lane_sweep(reuse_kernel, LANES)
        assert sweep[0].bottleneck == "core"
        assert sweep[-1].bottleneck in ("l2", "mem")
        # And the crossover is monotone: once a transfer link binds,
        # adding lanes never hands the bottleneck back to the core.
        crossed = False
        for point in sweep:
            if point.bottleneck != "core":
                crossed = True
            elif crossed:
                pytest.fail("bottleneck reverted to core after crossover")

    def test_lane_monotonicity(self, compute_kernel, memory_kernel):
        """More lanes never predict more cycles (strip-mining rounding
        aside): transfers scale with elements, not lanes, and in-core
        time is per-chunk."""
        for kernel in (compute_kernel, memory_kernel):
            sweep = lane_sweep(kernel, LANES)
            cycles = [point.cycles for point in sweep]
            for narrow, wide in zip(cycles, cycles[1:]):
                assert wide <= narrow * 1.01

    def test_compute_phase_keeps_scaling(self, compute_kernel, memory_kernel):
        """The Vec-Cache-resident phase gains from 16 -> 32 lanes; the
        DRAM-bound one has flattened into its bandwidth ceiling."""
        compute = {p.lanes: p.cycles for p in lane_sweep(compute_kernel, (16, 32))}
        memory = {p.lanes: p.cycles for p in lane_sweep(memory_kernel, (16, 32))}
        assert compute[32] < 0.75 * compute[16]
        assert memory[32] > 0.9 * memory[16]


class TestLaneAllocation:
    def test_temporal_policies_get_the_full_pool(self, compute_kernel, model):
        info = analyze_kernel(compute_kernel)[0]
        total = model.config.vector.total_lanes
        for policy in TEMPORAL_POLICIES:
            assert model.lanes_for(policy, info) == total

    def test_private_keeps_its_static_share(self, compute_kernel, model):
        info = analyze_kernel(compute_kernel)[0]
        assert model.lanes_for("private", info) == model.config.lanes_per_core_private

    def test_elastic_policies_stop_at_saturation(self, memory_kernel, model):
        """occamy grants a streaming phase only up to its roofline knee —
        strictly fewer lanes than the pool."""
        info = analyze_kernel(memory_kernel)[0]
        lanes = model.lanes_for("occamy", info)
        assert 1 <= lanes < model.config.vector.total_lanes

    def test_max_lanes_caps_spatial_grants(self, compute_kernel, model):
        info = analyze_kernel(compute_kernel)[0]
        assert model.lanes_for("occamy", info, max_lanes=4) <= 4

    def test_zero_lanes_rejected(self, compute_kernel, model):
        info = analyze_kernel(compute_kernel)[0]
        with pytest.raises(ConfigurationError):
            model.phase_prediction(info, lanes=0)


class TestBandwidthShare:
    def test_share_scales_the_deep_links_only(self, memory_kernel):
        solo = EcmModel(bandwidth_share=1.0)
        shared = EcmModel(bandwidth_share=0.5)
        info = analyze_kernel(memory_kernel)[0]
        a = solo.phase_prediction(info, lanes=8)
        b = shared.phase_prediction(info, lanes=8)
        assert b.t_mem == pytest.approx(2 * a.t_mem)
        assert b.t_l2 == pytest.approx(2 * a.t_l2)
        # The Vec-Cache port is per-RegBlk: never shared.
        assert b.t_l1 == pytest.approx(a.t_l1)
        assert b.t_core == pytest.approx(a.t_core)

    @pytest.mark.parametrize("share", [0.0, -0.5, 1.5])
    def test_invalid_share_rejected(self, share):
        with pytest.raises(ConfigurationError):
            EcmModel(bandwidth_share=share)


# --- the spjf cold-start prior ------------------------------------------------


class TestSpecPrior:
    def test_opaque_signature_has_no_prior(self):
        assert predict_spec_cycles("sig-not-a-spec") is None
        assert predict_spec_cycles('{"kind": "nope"}') is None

    def test_pair_spec_gets_a_finite_estimate(self):
        signature = task_signature(
            {"kind": "pair", "suite": "spec", "mem": 20, "comp": 17,
             "policy": "occamy", "scale": 0.05}
        )
        estimate = predict_spec_cycles(signature)
        assert estimate is not None
        assert math.isfinite(estimate) and estimate > 0
        # Deterministic (and cached): same signature, same number.
        assert predict_spec_cycles(signature) == estimate

    def test_estimates_order_by_scale(self):
        """A 4x-larger job must be predicted costlier — the ordering is
        what spjf consumes, not the absolute number.  (Compute-resident
        workloads scale via ``repeats``; streaming phases quantise their
        repeat count away below scale ~0.5, so WL17 is the probe.)"""
        small, large = (
            predict_spec_cycles(
                task_signature(
                    {"kind": "group", "group": [17],
                     "policy": "occamy", "scale": scale}
                )
            )
            for scale in (0.05, 0.2)
        )
        assert small < large

    def test_motivate_and_group_kinds_covered(self):
        for spec in (
            {"kind": "motivate", "policy": "fts", "scale": 0.05},
            {"kind": "group", "group": [17, 20], "policy": "cts", "scale": 0.05},
        ):
            estimate = predict_spec_cycles(task_signature(spec))
            assert estimate is not None and estimate > 0
