"""Trace export, Gantt rendering and the CLI."""

import json

import pytest

from repro import OCCAMY, run_policy
from repro.analysis.trace import export_trace, phase_gantt, trace_dict
from repro.cli import build_parser, main
from tests.conftest import compiled_job, make_two_phase


@pytest.fixture(scope="module")
def sample_result():
    from repro import experiment_config

    kernel = make_two_phase()
    return run_policy(experiment_config(), OCCAMY, [compiled_job(kernel), None])


class TestTrace:
    def test_trace_dict_structure(self, sample_result):
        data = trace_dict(sample_result)
        assert data["policy"] == "occamy"
        assert data["total_cycles"] > 0
        assert len(data["lane_timelines"]) == 2
        assert len(data["phases"]) == 2
        for phase in data["phases"]:
            assert {"core", "oi_issue", "oi_mem", "start", "end"} <= set(phase)

    def test_trace_is_json_serialisable(self, sample_result, tmp_path):
        path = tmp_path / "trace.json"
        export_trace(sample_result, str(path))
        data = json.loads(path.read_text())
        assert data["total_cycles"] == sample_result.total_cycles

    def test_gantt_renders_each_phase(self, sample_result):
        chart = phase_gantt(sample_result)
        assert chart.count("core0") == 2
        assert "#" in chart
        assert "lanes@start=" in chart

    def test_gantt_reports_nonzero_lane_grants(self, sample_result):
        chart = phase_gantt(sample_result)
        assert "lanes@start=0 " not in chart


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["pair", "spec", "20", "17", "--scale", "0.1"])
        assert args.suite == "spec"
        assert args.mem == 20

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_table5_command(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "IssueBound" in out
        assert "42.7" in out

    def test_area_command(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "occamy" in out

    def test_roofline_command(self, capsys):
        assert main(["roofline", "0.1667", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "saturation: 12 lanes" in out

    def test_trace_command(self, capsys, tmp_path):
        path = tmp_path / "t.json"
        assert main(["trace", "spec", "20", "17", str(path), "--scale", "0.05"]) == 0
        assert path.exists()
        assert "policy=occamy" in capsys.readouterr().out
