"""The allocation sweep: placement invariance, outcomes, win/loss."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    alloc_group,
    alloc_outcome,
    alloc_sweep,
    alloc_winloss,
    ncore_group,
)
from repro.common.errors import ConfigurationError

SCALE = 0.05


def test_alloc_group_matches_ncore_group():
    for count in (4, 8, 16):
        assert alloc_group(count) == ncore_group(count)


def test_placement_is_simulation_invariant():
    """The tentpole invariant: a pair's simulation depends only on who
    shares the complex, never on which policy placed them — identical
    labels must mean identical cycles (served from one cache entry)."""
    outcomes = {
        key: alloc_outcome(4, key, scale=SCALE)
        for key in ("random", "round-robin", "oi-balance", "oi-pack")
    }
    by_label = {}
    for outcome in outcomes.values():
        for index, result in enumerate(outcome.results):
            label = outcome.pair_label(index)
            cycles = by_label.setdefault(label, result.total_cycles)
            assert cycles == result.total_cycles
    # The 4-core blend (15,6,15,16) has exactly these formable pairs, and
    # the four policies above cover more than one distinct pairing.
    assert len(by_label) > 2


def test_same_pair_set_means_same_outcome():
    """Two policies choosing the same unordered pair-set are bit-equal in
    everything downstream (geomean, per-pair cycles)."""
    a = alloc_outcome(4, "round-robin", scale=SCALE)
    b = alloc_outcome(4, "oi-balance", scale=SCALE)
    if sorted(a.pair_labels()) == sorted(b.pair_labels()):
        assert a.geomean_cycles() == pytest.approx(b.geomean_cycles())
        assert sorted(a.pair_cycles()) == sorted(b.pair_cycles())


def test_outcome_shape_and_metrics():
    outcome = alloc_outcome(4, "oi-pack", scale=SCALE)
    assert outcome.num_cores == 4
    assert outcome.alloc_key == "oi-pack"
    assert outcome.sharing_key == "occamy"
    assert len(outcome.placement) == 2
    assert len(outcome.results) == 2
    assert len(outcome.thread_cycles()) == 4
    assert all(cycles > 0 for cycles in outcome.thread_cycles())
    assert outcome.geomean_cycles() > 0
    assert outcome.makespan() == max(outcome.pair_cycles())
    labels = outcome.pair_labels()
    assert len(labels) == 2 and all("+" in label for label in labels)


def test_alloc_outcome_validates_inputs():
    with pytest.raises(ConfigurationError, match="positive"):
        alloc_outcome(0, "random", scale=SCALE)
    with pytest.raises(ConfigurationError, match="allocation"):
        alloc_outcome(4, "best-effort", scale=SCALE)
    with pytest.raises(ConfigurationError, match="sharing"):
        alloc_outcome(4, "random", sharing_key="nope", scale=SCALE)
    with pytest.raises(ConfigurationError, match="evenly"):
        alloc_outcome(5, "random", scale=SCALE)


def test_alloc_sweep_covers_the_grid():
    outcomes = alloc_sweep(
        (4,), alloc_keys=("random", "oi-pack"), sharing_keys=("occamy",),
        scale=SCALE,
    )
    assert [(o.num_cores, o.sharing_key, o.alloc_key) for o in outcomes] == [
        (4, "occamy", "random"),
        (4, "occamy", "oi-pack"),
    ]


def test_winloss_rows_cover_every_complex():
    rows = alloc_winloss(4, alloc_key="oi-balance", scale=SCALE)
    assert len(rows) == 2
    for row in rows:
        assert set(row.cycles) == {"private", "occamy", "fts", "cts"}
        assert row.winner in row.cycles
        assert row.cycles[row.winner] == min(row.cycles.values())
