"""Event-based energy accounting."""

import pytest

from repro import OCCAMY, PRIVATE, run_policy
from repro.analysis.energy import EnergyCoefficients, compare_energy, energy_report
from tests.conftest import compiled_job, make_axpy, make_two_phase


@pytest.fixture(scope="module")
def result(request):
    from repro import experiment_config

    return run_policy(
        experiment_config(), OCCAMY, [compiled_job(make_two_phase()), None]
    )


class TestEnergyReport:
    def test_components_present(self, result):
        report = energy_report(result)
        assert set(report.components_uj) == {
            "simd_exe_units",
            "register_file",
            "vec_cache",
            "l2",
            "dram",
            "leakage",
        }
        assert report.total_uj > 0

    def test_runtime_and_edp(self, result):
        report = energy_report(result)
        assert report.runtime_us == pytest.approx(
            result.total_cycles / 2000.0, rel=1e-6
        )
        assert report.edp == pytest.approx(report.total_uj * report.runtime_us)

    def test_coefficients_scale_linearly(self, result):
        base = energy_report(result)
        doubled = energy_report(
            result, EnergyCoefficients(compute_per_lane_op=4.0)
        )
        assert doubled.components_uj["simd_exe_units"] == pytest.approx(
            2 * base.components_uj["simd_exe_units"]
        )
        assert doubled.components_uj["dram"] == pytest.approx(
            base.components_uj["dram"]
        )

    def test_rows_sorted(self, result):
        rows = energy_report(result).rows()
        values = [float(value) for _name, value in rows]
        assert values == sorted(values, reverse=True)

    def test_more_cycles_more_leakage(self):
        from repro import experiment_config

        config = experiment_config()
        short = run_policy(config, OCCAMY, [compiled_job(make_axpy(256)), None])
        long = run_policy(
            config, OCCAMY, [compiled_job(make_axpy(256, repeats=8)), None]
        )
        assert (
            energy_report(long).components_uj["leakage"]
            > energy_report(short).components_uj["leakage"]
        )

    def test_compare_energy(self, result):
        reports = compare_energy({"occamy": result})
        assert reports["occamy"].policy_key == "occamy"
