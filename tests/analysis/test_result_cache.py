"""The persistent result cache: keys, round-trips, corruption tolerance."""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.analysis import experiments, result_cache
from repro.analysis.result_cache import ResultCache, simulation_key
from repro.common.config import experiment_config
from repro.core.machine import run_policy
from repro.core.policies import ALL_POLICIES, PRIVATE
from repro.workloads.pairs import all_pairs

from tests.conftest import compiled_job, make_axpy, run_fingerprint

SCALE = 0.1


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


@pytest.fixture
def small_run(config):
    jobs = [compiled_job(make_axpy(length=64)), None]
    return jobs, run_policy(config, PRIVATE, jobs)


def test_round_trip_preserves_everything(cache, config, small_run):
    jobs, result = small_run
    key = simulation_key(config, PRIVATE.key, jobs)
    assert cache.get(key) is None  # cold
    assert cache.put(key, result)
    loaded = cache.get(key)
    assert loaded is not None and loaded is not result
    assert run_fingerprint(loaded) == run_fingerprint(result)
    assert cache.hits == 1 and cache.misses == 1
    assert len(cache) == 1


def test_key_covers_every_simulation_input(config):
    jobs = [compiled_job(make_axpy(length=64)), None]
    base = simulation_key(config, PRIVATE.key, jobs)
    # Same inputs -> same key (stable across calls).
    assert simulation_key(config, PRIVATE.key, jobs) == base
    # Policy, budget, config and workload changes all produce new keys.
    assert simulation_key(config, "occamy", jobs) != base
    assert simulation_key(config, PRIVATE.key, jobs, max_cycles=10) != base
    assert simulation_key(experiment_config(num_cores=4), PRIVATE.key,
                          [*jobs, None, None]) != base
    wider = dataclasses.replace(
        config,
        vector=dataclasses.replace(config.vector, total_lanes=config.vector.total_lanes * 2),
    )
    assert simulation_key(wider, PRIVATE.key, jobs) != base
    other_program = [compiled_job(make_axpy(length=128)), None]
    assert simulation_key(config, PRIVATE.key, other_program) != base
    moved_image = [compiled_job(make_axpy(length=64), core_id=1), None]
    assert simulation_key(config, PRIVATE.key, moved_image) != base
    # The allocation ingredient namespaces calibration micro co-runs away
    # from ordinary complex runs; the default "" must be the identity.
    assert simulation_key(config, PRIVATE.key, jobs, alloc="") == base
    assert simulation_key(
        config, PRIVATE.key, jobs, alloc="symbiosis-calib:occamy"
    ) != base


def test_key_covers_engine_kill_switches(config, monkeypatch):
    """Flipping any engine kill switch changes the key: a result computed
    with the tickless wheel (or pre-decode, fast-forward, loop replay,
    batch execute) disabled must never satisfy a lookup made with it
    enabled, even though the runs are promised bit-identical — a cache hit
    would mask exactly the divergence the diff-fuzzer exists to catch.

    Driven by the ``ENGINE_SWITCHES`` registry, so a newly registered
    engine is covered automatically."""
    jobs = [compiled_job(make_axpy(length=64)), None]
    switches = [flag for flag, _ in result_cache.ENGINE_SWITCHES]
    for flag in switches:
        monkeypatch.delenv(flag, raising=False)
    base = simulation_key(config, PRIVATE.key, jobs)
    seen = {base}
    for flag in switches:
        monkeypatch.setenv(flag, "1")
        key = simulation_key(config, PRIVATE.key, jobs)
        assert key not in seen, f"{flag} did not change the cache key"
        seen.add(key)
        monkeypatch.delenv(flag)
    assert simulation_key(config, PRIVATE.key, jobs) == base


def test_engine_switch_registry_is_complete():
    """Every engine axis the diff-fuzzer exercises must have its kill
    switch folded into the cache key.  A new ``EngineSpec`` field that is
    missing from either registry fails here loudly instead of silently
    serving stale cross-engine cache hits."""
    from repro.validation.difftest import ENGINE_KILL_SWITCH_ENV, EngineSpec

    registered = {flag for flag, _ in result_cache.ENGINE_SWITCHES}
    assert registered == set(ENGINE_KILL_SWITCH_ENV.values())
    axes = {field.name for field in dataclasses.fields(EngineSpec)}
    assert set(ENGINE_KILL_SWITCH_ENV.keys()) == axes
    # The registered defaults must be the very callables the engines
    # consult, not stale copies.
    for flag, default in result_cache.ENGINE_SWITCHES:
        assert callable(default), flag


def test_version_bump_invalidates_entries(cache, config, small_run, monkeypatch):
    jobs, result = small_run
    key = simulation_key(config, PRIVATE.key, jobs)
    cache.put(key, result)
    monkeypatch.setattr(result_cache, "CACHE_VERSION", result_cache.CACHE_VERSION + 1)
    assert cache.get(key) is None  # payload written by an older version


def test_corrupt_entries_are_silent_misses(cache, config, small_run):
    jobs, result = small_run
    key = simulation_key(config, PRIVATE.key, jobs)
    cache.put(key, result)
    path = cache.path_for(key)
    # Truncation.
    path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
    assert cache.get(key) is None
    # Garbage bytes.
    path.write_bytes(b"not a pickle at all")
    assert cache.get(key) is None
    # A pickle of the wrong shape.
    path.write_bytes(pickle.dumps({"surprise": True}))
    assert cache.get(key) is None
    # Empty file.
    path.write_bytes(b"")
    assert cache.get(key) is None


def test_unwritable_directory_degrades_gracefully(config, small_run):
    jobs, result = small_run
    broken = ResultCache("/proc/no-such-dir/repro-cache")
    key = simulation_key(config, PRIVATE.key, jobs)
    assert broken.put(key, result) is False
    assert broken.get(key) is None
    assert len(broken) == 0
    assert broken.clear() == 0


def test_default_cache_controls(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    assert result_cache.default_cache() is None
    monkeypatch.delenv("REPRO_NO_CACHE")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "via-env"))
    active = result_cache.default_cache()
    assert active is not None and active.directory == tmp_path / "via-env"
    # configure() pins a directory against later env changes (--cache-dir).
    result_cache.configure(cache_dir=tmp_path / "pinned")
    try:
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "other"))
        assert result_cache.default_cache().directory == tmp_path / "pinned"
        result_cache.configure(disabled=True)
        assert result_cache.default_cache() is None
    finally:
        result_cache.configure()  # back to env-driven defaults


def test_clear_sweep_cache_clears_disk_layer(tmp_path, monkeypatch):
    """Satellite 4: clear_sweep_cache drops the on-disk layer too."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "sweep"))
    experiments._sweep_cache.clear()
    pair = all_pairs()[0]
    experiments.pair_outcome(pair, scale=SCALE)
    disk = result_cache.default_cache()
    assert len(disk) == len(ALL_POLICIES)
    assert experiments._sweep_cache
    experiments.clear_sweep_cache()
    assert len(disk) == 0
    assert not experiments._sweep_cache


def test_warm_cache_skips_simulation(tmp_path, monkeypatch, config):
    """A second process (simulated by clearing the memo) loads from disk."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "warm"))
    experiments._sweep_cache.clear()
    pair = all_pairs()[0]
    cold = experiments.pair_outcome(pair, scale=SCALE)
    experiments._sweep_cache.clear()  # forget the in-process layer only
    disk = result_cache.default_cache()
    hits_before = disk.hits
    warm = experiments.pair_outcome(pair, scale=SCALE)
    assert disk.hits == hits_before + len(ALL_POLICIES)
    for key in cold.results:
        assert run_fingerprint(warm.results[key]) == run_fingerprint(cold.results[key])
    experiments._sweep_cache.clear()
