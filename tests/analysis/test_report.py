"""The one-shot Markdown reproduction report."""

import pytest

from repro.analysis.report import generate_report, write_report
from repro.cli import main


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(scale=0.05, pairs_limit=1)

    def test_sections_present(self, report):
        for heading in (
            "# Occamy reproduction report",
            "## Motivating example",
            "## Co-running pairs",
            "## Table 5",
            "## Area",
            "## Energy",
        ):
            assert heading in report

    def test_table5_exact_values_included(self, report):
        assert "| 12 | 16.0 | 16.0 | 24.0 | 16.0 |" in report

    def test_paper_references_included(self, report):
        assert "1.20 / 1.11 / 1.39" in report
        assert "+33.5%" in report

    def test_markdown_tables_well_formed(self, report):
        for line in report.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_write_report(self, tmp_path):
        path = tmp_path / "r.md"
        write_report(str(path), scale=0.05, pairs_limit=1)
        assert path.read_text().startswith("# Occamy reproduction report")

    def test_cli_report(self, tmp_path, capsys):
        path = tmp_path / "cli.md"
        assert main(["report", str(path), "--scale", "0.05", "--pairs", "1"]) == 0
        assert "report written" in capsys.readouterr().out


class TestDegenerateSeries:
    """Zero/negative measurement series must not crash report sections
    (a zero-utilization outcome used to hit ``math.log(0)``)."""

    class _ZeroOutcome:
        def speedup(self, key, core):
            return 0.0

        def utilization(self, key):
            return 0.0

        def rename_stall_fraction(self, key, core):
            return -0.0

    def test_pairs_section_survives_all_zero_outcomes(self):
        from repro.analysis.report import _pairs_section

        text = _pairs_section([self._ZeroOutcome()])
        assert "Co-running pairs" in text
        # Every geomean degraded to its no-information value, not a crash.
        assert "0.00" in text
