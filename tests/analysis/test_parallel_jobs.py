"""Strict worker-count validation in ``analysis.parallel.resolve_jobs``."""

import pytest

from repro.analysis.parallel import JOBS_ENV, resolve_jobs
from repro.common.errors import ConfigurationError


# --- argument (--jobs) path ---------------------------------------------------


def test_explicit_positive_integer():
    assert resolve_jobs(3) == 3
    assert resolve_jobs(1) == 1


def test_numeric_strings_accepted():
    # the CLI hands --jobs through as a string
    assert resolve_jobs("4") == 4
    assert resolve_jobs(" 2 ") == 2


def test_auto_means_all_cpus():
    import os

    assert resolve_jobs("auto") == (os.cpu_count() or 1)
    assert resolve_jobs("AUTO") == (os.cpu_count() or 1)


@pytest.mark.parametrize("bad", [0, -1, -100, "0", "-3"])
def test_non_positive_flag_rejected(bad):
    with pytest.raises(ConfigurationError, match="not positive"):
        resolve_jobs(bad)


@pytest.mark.parametrize("bad", ["abc", "2.5", "", " ", "1e3"])
def test_non_integer_flag_string_rejected(bad):
    with pytest.raises(ConfigurationError, match="neither a positive integer"):
        resolve_jobs(bad)


@pytest.mark.parametrize("bad", [2.5, True, [4]])
def test_non_integer_flag_object_rejected(bad):
    with pytest.raises(ConfigurationError, match="expected a positive integer"):
        resolve_jobs(bad)


def test_flag_error_names_the_flag():
    with pytest.raises(ConfigurationError, match="--jobs"):
        resolve_jobs(-1)


# --- environment (REPRO_JOBS) path --------------------------------------------


def test_env_default_is_serial(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    assert resolve_jobs() == 1


def test_env_positive_integer(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "5")
    assert resolve_jobs() == 5


def test_env_auto(monkeypatch):
    import os

    monkeypatch.setenv(JOBS_ENV, "auto")
    assert resolve_jobs() == (os.cpu_count() or 1)


@pytest.mark.parametrize("bad", ["0", "-2", "abc", "2.5"])
def test_env_garbage_rejected_and_named(monkeypatch, bad):
    monkeypatch.setenv(JOBS_ENV, bad)
    with pytest.raises(ConfigurationError, match=JOBS_ENV):
        resolve_jobs()


def test_explicit_argument_wins_over_bad_env(monkeypatch):
    # an explicit good argument must not even look at a bad environment
    monkeypatch.setenv(JOBS_ENV, "garbage")
    assert resolve_jobs(2) == 2


def test_cli_surfaces_configuration_error(capsys, monkeypatch):
    """End to end: a bad --jobs exits 2 with a clear message, no traceback."""
    monkeypatch.delenv(JOBS_ENV, raising=False)
    from repro.cli import main

    code = main(["motivate", "--scale", "0.05", "--jobs", "-1"])
    captured = capsys.readouterr()
    assert code == 2
    assert "not positive" in captured.err
