"""The ``repro alloc-sweep`` subcommand and --cores validation."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

SCALE = "0.05"


def test_alloc_sweep_report_fingerprints_are_placement_invariant(tmp_path, capsys):
    """The CI smoke's identity assertion: the same pair label carries the
    same run-fingerprint digest no matter which policy placed it."""
    report = tmp_path / "alloc.json"
    code = main(
        [
            "alloc-sweep",
            "--cores", "4",
            "--alloc", "random,round-robin,oi-balance,oi-pack",
            "--scale", SCALE,
            "--report", str(report),
        ]
    )
    assert code == 0
    payload = json.loads(report.read_text())
    by_label = {}
    for entry in payload["sweep"]:
        assert entry["num_cores"] == 4
        assert entry["geomean_cycles"] > 0
        for pair in entry["pairs"]:
            seen = by_label.setdefault(pair["label"], pair["fingerprint"])
            assert seen == pair["fingerprint"], (
                f"pair {pair['label']} diverged across placements"
            )
    assert len(by_label) > 2
    out = capsys.readouterr().out
    assert "alloc=oi-pack" in out
    assert "per-thread geomean" in out


def test_alloc_sweep_rejects_unknown_policy(capsys):
    assert main(["alloc-sweep", "--cores", "4", "--alloc", "nope",
                 "--scale", SCALE]) == 2
    assert "nope" in capsys.readouterr().err


@pytest.mark.parametrize(
    "argv",
    [
        ["alloc-sweep", "--cores", "4x"],
        ["alloc-sweep", "--cores", "4", "4"],
        ["alloc-sweep", "--cores", "-4"],
        ["motivate", "--cores", "0"],
        ["motivate", "--cores", "two"],
        ["perf-report", "--skip-validation", "--cores", "4x"],
        ["perf-report", "--skip-validation", "--alloc-cores", "0"],
        ["diff-fuzz", "--seeds", "1", "--cores", "junk"],
    ],
)
def test_bad_cores_values_exit_2_naming_the_value(argv, capsys):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    bad = argv[-1] if argv[-1] != "4" else argv[-2]
    assert bad.lstrip("-") in err or "duplicate" in err or "positive" in err


def test_motivate_alloc_requires_cores(capsys):
    assert main(["motivate", "--alloc", "symbiosis"]) == 2
    assert "--cores" in capsys.readouterr().err
