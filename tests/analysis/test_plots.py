"""SVG plot generation (structure validated with ElementTree)."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.plots import (
    PALETTE,
    SvgCanvas,
    bar_chart_svg,
    lane_timeline_svg,
    series_svg,
    write_svg,
)

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestCanvas:
    def test_valid_xml(self):
        canvas = SvgCanvas(100, 50, title="t")
        canvas.line(0, 0, 10, 10)
        canvas.rect(1, 1, 5, 5, "#fff")
        canvas.text(2, 2, "<escaped & safe>")
        root = parse(canvas.render())
        assert root.tag == f"{SVG_NS}svg"
        assert root.get("width") == "100"

    def test_text_is_escaped(self):
        canvas = SvgCanvas(100, 50)
        canvas.text(0, 0, "<script>")
        assert "<script>" not in canvas.render()


class TestCharts:
    def test_lane_timeline(self):
        svg = lane_timeline_svg(
            {"occamy": [(0, 24), (500, 32)], "private": [(0, 16)]},
            total_cycles=1000,
        )
        root = parse(svg)
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == 2
        texts = [t.text for t in root.findall(f"{SVG_NS}text")]
        assert "occamy" in texts and "private" in texts

    def test_series(self):
        svg = series_svg({"core0": [1, 4, 9, 16], "core1": [16, 9, 4, 1]})
        root = parse(svg)
        assert len(root.findall(f"{SVG_NS}polyline")) == 2

    def test_bar_chart(self):
        svg = bar_chart_svg(
            ["1+13", "2+14"],
            {"fts": [1.2, 1.1], "occamy": [1.5, 1.4]},
        )
        root = parse(svg)
        rects = root.findall(f"{SVG_NS}rect")
        # background + 4 bars + 2 legend swatches
        assert len(rects) >= 7

    def test_empty_series_tolerated(self):
        parse(series_svg({"empty": []}))
        parse(lane_timeline_svg({"none": []}, total_cycles=0))

    def test_write_svg(self, tmp_path):
        path = tmp_path / "plot.svg"
        write_svg(series_svg({"x": [1, 2]}), str(path))
        parse(path.read_text())

    def test_palette_cycles(self):
        many = {f"s{i}": [1.0] for i in range(len(PALETTE) + 2)}
        parse(series_svg(many))


class TestEndToEnd:
    def test_plot_from_run(self, tmp_path, config):
        from repro import OCCAMY, run_policy
        from tests.conftest import compiled_job, make_two_phase

        result = run_policy(config, OCCAMY, [compiled_job(make_two_phase()), None])
        svg = lane_timeline_svg(
            {"core0": result.metrics.lane_timeline[0].points},
            total_cycles=result.total_cycles,
        )
        parse(svg)
        write_svg(svg, str(tmp_path / "lanes.svg"))
