"""The auto-generated perf report (``repro perf-report``)."""

import json

import pytest

from repro.analysis.perf_report import (
    ECM_ERROR_GATE,
    generate_perf_report,
    load_bench_records,
    render_report,
)
from repro.analysis.validation import validate_ecm
from repro.cli import main
from repro.common.errors import ConfigurationError


def _record(name, speedup=2.0):
    return {
        "schema": "repro-bench/1",
        "bench": name,
        "speedup": speedup,
        "slow_seconds": 1.0,
        "fast_seconds": 1.0 / speedup,
        "bench_scale": 0.1,
        "python": "3.11.0",
        "recorded_at": "2026-08-08T00:00:00Z",
    }


@pytest.fixture()
def bench_dir(tmp_path):
    (tmp_path / "BENCH_zeta.json").write_text(json.dumps(_record("zeta", 3.5)))
    nested = tmp_path / "artifacts" / "deep"
    nested.mkdir(parents=True)
    (nested / "BENCH_alpha.json").write_text(json.dumps(_record("alpha", 1.8)))
    # Decoys: malformed JSON, a record with no bench name, a non-BENCH file.
    (tmp_path / "BENCH_broken.json").write_text("{not json")
    (tmp_path / "BENCH_anon.json").write_text(json.dumps({"speedup": 9.0}))
    (tmp_path / "other.json").write_text(json.dumps(_record("ignored")))
    return tmp_path


class TestBenchRecords:
    def test_recursive_load_filters_and_sorts(self, bench_dir):
        records = load_bench_records(bench_dir)
        assert [r["bench"] for r in records] == ["alpha", "zeta"]

    def test_empty_directory(self, tmp_path):
        assert load_bench_records(tmp_path) == []


class TestRender:
    def test_trajectory_rows_present(self, bench_dir):
        text = render_report(load_bench_records(bench_dir))
        assert text.startswith("# Performance report")
        assert "`zeta`" in text and "3.50x" in text
        assert "`alpha`" in text and "1.80x" in text
        assert "docs/perf-model.md" in text

    def test_no_records_yields_placeholder(self):
        text = render_report([])
        assert "No `BENCH_*.json` records found" in text

    def test_skipped_validation_is_announced(self):
        text = render_report([], validation=None)
        assert "Validation skipped" in text

    def test_markdown_tables_well_formed(self, bench_dir):
        for line in render_report(load_bench_records(bench_dir)).splitlines():
            if line.startswith("|"):
                assert line.endswith("|")


class TestValidationSection:
    @pytest.fixture(scope="class")
    def validation(self):
        # One workload, one policy: a single short simulation.
        return validate_ecm(workload_ids=[17], policies=("occamy",), scale=0.05)

    def test_per_workload_error_table(self, validation):
        text = render_report([], validation)
        assert "## ECM model vs simulator" in text
        assert "| WL17 | occamy |" in text
        assert "Geomean relative cycle error" in text
        assert f"{100 * ECM_ERROR_GATE:.0f}%" in text

    def test_gate_verdict_rendered(self, validation):
        text = render_report([], validation)
        verdict = "PASS" if validation.geomean_error <= ECM_ERROR_GATE else "FAIL"
        assert verdict in text

    def test_per_policy_geomean_table(self, validation):
        text = render_report([], validation)
        assert "| policy | geomean error |" in text


class TestGenerate:
    def test_rejects_nonpositive_scale(self, tmp_path):
        with pytest.raises(ConfigurationError):
            generate_perf_report(bench_dir=tmp_path, scale=0.0)

    def test_writes_report_creating_parents(self, bench_dir):
        out = bench_dir / "reports" / "nested" / "perf.md"
        text = generate_perf_report(bench_dir=bench_dir, out=out, validate=False)
        assert out.read_text() == text
        assert text.startswith("# Performance report")


class TestCli:
    def test_perf_report_to_file(self, bench_dir, capsys):
        out = bench_dir / "perf.md"
        code = main(
            ["perf-report", "--bench-dir", str(bench_dir),
             "--skip-validation", "--out", str(out)]
        )
        assert code == 0
        assert "perf report written" in capsys.readouterr().out
        assert out.read_text().startswith("# Performance report")

    def test_perf_report_to_stdout(self, bench_dir, capsys):
        code = main(
            ["perf-report", "--bench-dir", str(bench_dir), "--skip-validation"]
        )
        assert code == 0
        assert "# Performance report" in capsys.readouterr().out
