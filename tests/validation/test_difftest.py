"""Cross-engine differential fuzzer: generation, checking, bug detection."""

import pytest

from repro.coproc.metrics import Metrics
from repro.validation.difftest import (
    BASELINE_ENGINE,
    DEFAULT_POLICIES,
    FAST_ENGINES,
    CaseSpec,
    CompiledCase,
    EngineSpec,
    PhaseSpec,
    check_case,
    fuzz_seeds,
    generate_case,
)
from repro.validation.fingerprint import fingerprint_sections


class TestGeneration:
    def test_deterministic(self):
        assert generate_case(42) == generate_case(42)

    def test_distinct_seeds_distinct_cases(self):
        specs = {generate_case(seed) for seed in range(20)}
        assert len(specs) > 1

    def test_cases_compile(self):
        for seed in range(5):
            compiled = CompiledCase(generate_case(seed))
            assert any(program is not None for program in compiled.programs)

    def test_engine_matrix_is_complete(self):
        # 2^7 combinations minus the 32 hier-without-wheel duplicates and
        # the baseline: ninety-five fast variants, no dupes.
        assert len(FAST_ENGINES) == 95
        assert BASELINE_ENGINE not in FAST_ENGINES
        assert len(set(FAST_ENGINES)) == 95
        assert sum(1 for engine in FAST_ENGINES if engine.event_wheel) == 64
        assert sum(1 for engine in FAST_ENGINES if engine.batch_exec) == 48
        assert sum(1 for engine in FAST_ENGINES if engine.hier_wheel) == 32
        assert sum(1 for engine in FAST_ENGINES if engine.lane_shards) == 48
        # The hierarchical wheel only exists on top of the event wheel.
        assert all(
            engine.event_wheel for engine in FAST_ENGINES if engine.hier_wheel
        )

    def test_key_engines_are_valid_matrix_members(self):
        from repro.validation.difftest import KEY_ENGINES

        assert len(set(KEY_ENGINES)) == len(KEY_ENGINES)
        for engine in KEY_ENGINES:
            assert engine in FAST_ENGINES

    def test_default_policies_cover_every_sharing_mode(self):
        from repro.core.policies import POLICIES_BY_KEY

        modes = {POLICIES_BY_KEY[key].mode for key in DEFAULT_POLICIES}
        assert len(modes) == 3


class TestCleanEngines:
    def test_fuzz_seeds_clean(self):
        # A small always-on slice of the CI sweep: every engine must be
        # bit-identical to the interpreter on these cases.
        report = fuzz_seeds(range(3))
        assert report.clean, "\n".join(str(d) for d in report.divergences)
        assert report.cases == 3
        assert report.runs == 3 * len(DEFAULT_POLICIES) * (len(FAST_ENGINES) + 1)

    def test_audited_run_matches_unaudited(self):
        compiled = CompiledCase(generate_case(11))
        plain = fingerprint_sections(compiled.run("occamy", BASELINE_ENGINE))
        audited = fingerprint_sections(
            compiled.run("occamy", BASELINE_ENGINE, audit=True)
        )
        assert plain == audited


#: Shrunk regression case: under CTS, the quantum switch lands on a cycle
#: the event wheel had skipped — one component is asleep when
#: ``_cts_arbitrate`` rotates ownership, forcing the mid-cycle wake-all
#: path.  An early wheel engine dropped the re-slept component's
#: switch-cycle overhead from its frozen journal, shorting ``overhead`` by
#: one entry per re-sleep; this spec reproduced it in all eight wheel
#: engines.
CTS_SWITCH_DURING_SKIP = CaseSpec(
    seed=0,
    cores=(
        (PhaseSpec(comp=17, reads=1, extra_loads=0, stores=3, trip=96, repeats=2),),
        (PhaseSpec(comp=14, reads=1, extra_loads=0, stores=1, trip=96, repeats=2),),
    ),
)

WHEEL_ENGINES = tuple(engine for engine in FAST_ENGINES if engine.event_wheel)


class TestCtsSwitchDuringSkip:
    def test_spec_exercises_a_mid_skip_switch(self, monkeypatch):
        """The pinned case really does switch quantum while a component
        sleeps — otherwise it regresses nothing."""
        import os

        from repro.core.machine import Machine
        from repro.core.policies import policy

        sleeper_counts = []
        original = Machine._wake_all_mid_cycle

        def spy(self, cycle):
            sleeper_counts.append(sum(1 for a in self._awake if not a))
            return original(self, cycle)

        monkeypatch.setattr(Machine, "_wake_all_mid_cycle", spy)
        monkeypatch.setenv("REPRO_NO_PRE_DECODE", "1")
        monkeypatch.delenv("REPRO_NO_EVENT_WHEEL", raising=False)
        compiled = CompiledCase(CTS_SWITCH_DURING_SKIP)
        machine = Machine(compiled.config, policy("cts"), compiled.jobs())
        machine.run()
        assert machine.coproc.cts_switches > 0
        assert any(count > 0 for count in sleeper_counts)

    def test_wheel_engines_stay_bit_exact(self):
        divergences = check_case(
            CTS_SWITCH_DURING_SKIP, policies=("cts",), engines=WHEEL_ENGINES
        )
        assert not divergences, "\n".join(str(d) for d in divergences)


#: Pinned hard case for the batch-execute backend.  The 30-seed sweep came
#: up clean, so this spec was crafted rather than shrunk: under FTS the
#: rename-hungry core and the store-flooding core together drive the batch
#: planner through every mid-scan abort it models with shadow state —
#: shared-pool RENAME exhaustion, STORE_QUEUE saturation, ISSUE_BUDGET
#: splits and DEPENDENCY head-blocks — the paths where a planner that
#: peeked at live state (or replayed the scan out of order) would diverge.
BATCH_PLANNER_PRESSURE = CaseSpec(
    seed=0,
    cores=(
        (PhaseSpec(comp=12, reads=6, extra_loads=6, stores=8, trip=512, repeats=1),),
        (PhaseSpec(comp=1, reads=1, extra_loads=0, stores=14, trip=512, repeats=1),),
    ),
)

BATCH_ENGINES = tuple(engine for engine in FAST_ENGINES if engine.batch_exec)


class TestBatchPlannerPressure:
    def test_spec_exercises_the_planner_abort_paths(self, monkeypatch):
        """The pinned case really does hit rename and store-queue walls
        while dispatching in batches — otherwise it regresses nothing."""
        from repro.coproc.metrics import StallReason
        from repro.core.machine import Machine
        from repro.core.policies import policy

        monkeypatch.setenv("REPRO_NO_EVENT_WHEEL", "1")
        monkeypatch.delenv("REPRO_NO_BATCH_EXEC", raising=False)
        compiled = CompiledCase(BATCH_PLANNER_PRESSURE)
        machine = Machine(compiled.config, policy("fts"), compiled.jobs())
        machine.run(fast_forward=True, fast_path=True)

        stalls = {}
        for core in range(machine.config.num_cores):
            for reason, count in machine.metrics.stalls[core].items():
                stalls[reason] = stalls.get(reason, 0) + count
        assert stalls.get(StallReason.RENAME, 0) > 0
        assert stalls.get(StallReason.STORE_QUEUE, 0) > 0
        assert machine.profile.batched_dispatch_calls > 0
        # Nothing in this spec is irregular: the backend must never have
        # had to fall back to per-lane dispatch.
        assert machine.profile.scalar_dispatch_calls == 0

    def test_batch_engines_stay_bit_exact(self):
        divergences = check_case(
            BATCH_PLANNER_PRESSURE, policies=("fts",), engines=BATCH_ENGINES
        )
        assert not divergences, "\n".join(str(d) for d in divergences)

    def test_audited_batch_run_matches_unaudited(self):
        # The invariant auditor walks renamer/scoreboard state after every
        # batched commit and allocation; it must observe nothing the scalar
        # path would not have produced.
        all_on = EngineSpec(
            pre_decode=True,
            fast_forward=True,
            fast_path=True,
            event_wheel=True,
            batch_exec=True,
        )
        compiled = CompiledCase(BATCH_PLANNER_PRESSURE)
        plain = fingerprint_sections(compiled.run("fts", all_on))
        audited = fingerprint_sections(compiled.run("fts", all_on, audit=True))
        assert plain == audited


class TestBugDetection:
    @pytest.fixture()
    def lossy_fast_forward(self, monkeypatch):
        """Inject a bug: the idle fast-forward forgets the elided cycles'
        metric increments, so every fast-forwarding engine diverges from
        the interpreter in the stall/overhead accounting."""
        monkeypatch.setattr(
            Metrics, "replay_idle_cycles", lambda self, times: None
        )

    def test_fuzzer_catches_injected_bug(self, lossy_fast_forward):
        spec = generate_case(0)
        divergences = check_case(spec, policies=("occamy",))
        assert divergences, "injected metrics bug went undetected"
        labels = {d.engine for d in divergences}
        # Every engine that fast-forwards must trip; the pure pre-decode
        # engine does not fast-forward and must stay bit-identical.
        assert any("ff" in label for label in labels)
        assert "decode" not in labels
        for divergence in divergences:
            assert divergence.sections, str(divergence)
            assert divergence.detail

    def test_divergence_names_the_broken_section(self, lossy_fast_forward):
        divergences = check_case(
            generate_case(0),
            policies=("occamy",),
            engines=(EngineSpec(pre_decode=False, fast_forward=True, fast_path=False),),
        )
        assert divergences
        sections = set(divergences[0].sections)
        # Lost idle increments corrupt the stall/overhead books but not the
        # architectural results: cycles and memory images must still agree.
        assert sections & {"stalls", "overhead"}
        assert "total_cycles" not in sections
        assert "memory_images" not in sections

    def test_divergence_report_is_json_ready(self, lossy_fast_forward):
        report = fuzz_seeds([0], policies=("occamy",))
        assert not report.clean
        import json

        payload = json.dumps(report.to_json())
        assert "stalls" in payload


class TestCli:
    def test_diff_fuzz_clean_exit_and_report(self, tmp_path):
        from repro.cli import main

        report_path = tmp_path / "report.json"
        code = main(
            [
                "diff-fuzz",
                "--seeds",
                "1",
                "--policies",
                "occamy",
                "--report",
                str(report_path),
            ]
        )
        assert code == 0
        import json

        report = json.loads(report_path.read_text())
        assert report["clean"] is True
        assert report["runs"] == len(FAST_ENGINES) + 1

    def test_diff_fuzz_rejects_unknown_policy(self):
        from repro.cli import main

        assert main(["diff-fuzz", "--seeds", "1", "--policies", "bogus"]) == 2

    def test_audit_flag_sets_env(self, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        main(["diff-fuzz", "--seeds", "1", "--policies", "occamy", "--audit"])
        import os

        assert os.environ.get("REPRO_AUDIT") == "1"


class TestCaseSpecEvalRoundTrip:
    def test_repr_reconstructs_spec(self):
        spec = generate_case(3)
        clone = eval(  # noqa: S307 - controlled input, repr round-trip
            repr(spec),
            {"CaseSpec": CaseSpec, "PhaseSpec": PhaseSpec},
        )
        assert clone == spec
