"""Runtime invariant auditor: clean runs pass, corrupted state is caught."""

import pytest

from repro.common.errors import InvariantViolation
from repro.core.machine import Machine, run_policy
from repro.core.policies import policy
from repro.validation.fingerprint import run_fingerprint
from repro.validation.invariants import InvariantAuditor, audit_enabled
from tests.conftest import compiled_job, make_axpy, make_two_phase


def _machine(config, key="occamy", audit=True):
    jobs = [
        compiled_job(make_two_phase(length=256), core_id=0),
        compiled_job(make_axpy(length=256), core_id=1),
    ]
    return Machine(config, policy(key), jobs, audit=audit)


def _run_some(machine, cycles=400):
    for cycle in range(cycles):
        machine.step(cycle)
        if machine.finished:
            break
    return machine


class TestEnablement:
    def test_off_by_default(self, config, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        assert not audit_enabled()
        assert _machine(config, audit=None).auditor is None

    def test_env_knob(self, config, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        assert audit_enabled()
        machine = _machine(config, audit=None)
        assert isinstance(machine.auditor, InvariantAuditor)

    def test_explicit_arg_overrides_env(self, config, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        assert _machine(config, audit=False).auditor is None

    def test_auditor_installed_on_components(self, config):
        machine = _machine(config)
        coproc = machine.coproc
        assert coproc.lane_table.auditor is machine.auditor
        assert coproc.renamer.auditor is machine.auditor
        assert all(lsu.auditor is machine.auditor for lsu in coproc.lsus)
        assert coproc.memory.dram_bw.auditor is machine.auditor


class TestCleanRuns:
    @pytest.mark.parametrize("key", ["private", "fts", "vls", "occamy", "cts"])
    def test_every_policy_passes_the_audit(self, config, key):
        jobs = [
            compiled_job(make_two_phase(length=256), core_id=0),
            compiled_job(make_axpy(length=256), core_id=1),
        ]
        result = run_policy(config, policy(key), jobs, audit=True)
        assert result.total_cycles > 0

    def test_audit_actually_checked_something(self, config):
        machine = _machine(config)
        _run_some(machine)
        assert machine.auditor.checks > 0

    def test_audited_run_is_bit_identical(self, config):
        jobs = lambda: [  # noqa: E731 - fresh images per run
            compiled_job(make_two_phase(length=256), core_id=0),
            compiled_job(make_axpy(length=256), core_id=1),
        ]
        plain = run_policy(config, policy("occamy"), jobs(), audit=False)
        audited = run_policy(config, policy("occamy"), jobs(), audit=True)
        assert run_fingerprint(plain) == run_fingerprint(audited)

    def test_audit_survives_fast_paths(self, config):
        jobs = [
            compiled_job(make_two_phase(length=256), core_id=0),
            compiled_job(make_axpy(length=256), core_id=1),
        ]
        result = run_policy(
            config,
            policy("occamy"),
            jobs,
            fast_forward=True,
            fast_path=True,
            audit=True,
        )
        assert result.total_cycles > 0


class TestCorruptionCaught:
    def test_lane_ownership_mismatch(self, config):
        machine = _run_some(_machine(config))
        table = machine.coproc.lane_table
        owned = next(iter(table._owned.values()))
        table._lanes[owned[0]].owner = 99  # ground truth vs index disagree
        with pytest.raises(InvariantViolation, match="owner"):
            machine.auditor.check_machine(10_000)

    def test_lane_leak(self, config):
        machine = _run_some(_machine(config))
        table = machine.coproc.lane_table
        lost = table._free.pop()  # lane vanishes from both books
        table._lanes[lost].owner = None
        with pytest.raises(InvariantViolation, match="conservation|free list"):
            machine.auditor.check_machine(10_000)

    def test_physical_register_leak(self, config):
        machine = _run_some(_machine(config))
        machine.coproc.renamer._held[0] += 1  # phantom hold: leaked register
        with pytest.raises(InvariantViolation, match="leak|held|holds"):
            machine.auditor.check_machine(10_000)

    def test_renamer_freelist_overflow(self, config):
        machine = _run_some(_machine(config))
        renamer = machine.coproc.renamer
        renamer._free[0] = renamer._capacity[0] + 5  # double release
        with pytest.raises(InvariantViolation):
            machine.auditor.check_machine(10_000)

    def test_rob_retire_order(self, config):
        machine = _machine(config)
        for cycle in range(3_000):
            machine.step(cycle)
            pool = machine.coproc.pools[0]
            if len(pool._entries) >= 2:
                break
        else:
            pytest.skip("pool never filled")
        pool._entries[0], pool._entries[-1] = pool._entries[-1], pool._entries[0]
        with pytest.raises(InvariantViolation, match="order"):
            machine.auditor.check_machine(10_000)

    def test_bandwidth_queue_corruption(self, config):
        machine = _run_some(_machine(config))
        machine.coproc.memory.dram_bw._next_free = -3.0
        with pytest.raises(InvariantViolation, match="negative"):
            machine.auditor.check_machine(10_000)

    def test_bandwidth_serve_hook_rejects_time_travel(self, config):
        # The per-serve hook is a self-consistency check on the channel's
        # own arithmetic; feed it an impossible schedule directly.
        machine = _machine(config)
        regulator = machine.coproc.memory.dram_bw
        with pytest.raises(InvariantViolation, match="before its arrival"):
            machine.auditor.on_bandwidth_serve(regulator, 64, 10.0, 5.0, 6.0)
