"""The case shrinker and its regression-test emitter."""

import subprocess
import sys

import pytest

from repro.coproc.metrics import Metrics
from repro.validation.difftest import (
    CaseSpec,
    EngineSpec,
    PhaseSpec,
    check_case,
    generate_case,
)
from repro.validation.shrink import (
    _candidates,
    _phase_reductions,
    emit_regression_test,
    shrink_case,
    write_regression_test,
)

FF_ENGINE = EngineSpec(pre_decode=False, fast_forward=True, fast_path=False)


def _weight(spec: CaseSpec) -> int:
    """A size measure that every reduction pass strictly decreases."""
    total = spec.unroll + int(spec.fold_constants) + int(spec.fuse_fma)
    for phases in spec.cores:
        for phase in phases or ():
            total += (
                phase.comp
                + phase.reads
                + phase.extra_loads
                + phase.stores
                + phase.trip
                + phase.repeats
            )
    return total


class TestReductionPasses:
    def test_phase_reductions_stay_valid(self):
        phase = PhaseSpec(comp=8, reads=3, extra_loads=1, stores=2, trip=256, repeats=2)
        reductions = list(_phase_reductions(phase))
        assert reductions
        for reduced in reductions:
            reduced.counts()  # must not raise
            assert _weight(CaseSpec(0, ((reduced,),))) < _weight(
                CaseSpec(0, ((phase,),))
            )

    def test_candidates_shrink_every_dimension(self):
        spec = generate_case(5)
        candidates = list(_candidates(spec))
        assert candidates
        for candidate in candidates:
            assert _weight(candidate) < _weight(spec)
            assert candidate.seed == spec.seed

    def test_candidate_can_drop_a_core(self):
        spec = generate_case(5)
        assert any(
            sum(1 for phases in c.cores if phases) == 1 for c in _candidates(spec)
        )


class TestShrinkOnInjectedBug:
    @pytest.fixture()
    def lossy_fast_forward(self, monkeypatch):
        monkeypatch.setattr(
            Metrics, "replay_idle_cycles", lambda self, times: None
        )

    def test_minimized_case_still_diverges_and_is_smaller(self, lossy_fast_forward):
        spec = generate_case(0)
        assert check_case(spec, policies=("occamy",), engines=(FF_ENGINE,))
        minimal = shrink_case(spec, "occamy", FF_ENGINE, max_evals=40)
        assert _weight(minimal) < _weight(spec)
        assert check_case(minimal, policies=("occamy",), engines=(FF_ENGINE,))

    def test_shrink_is_noop_on_clean_case(self):
        spec = generate_case(1)
        assert shrink_case(spec, "occamy", FF_ENGINE, max_evals=8) == spec


class TestEmission:
    def test_emitted_source_round_trips(self):
        spec = generate_case(2)
        filename, source = emit_regression_test(spec, "fts", FF_ENGINE)
        assert filename == "test_fuzz_seed2_fts_ff.py"
        namespace = {}
        exec(compile(source, filename, "exec"), namespace)  # noqa: S102
        tests = [v for k, v in namespace.items() if k.startswith("test_")]
        assert len(tests) == 1
        tests[0]()  # the clean case passes its own emitted regression test

    def test_emitted_file_is_collectable_by_pytest(self, tmp_path):
        spec = generate_case(2)
        path = write_regression_test(spec, "occamy", FF_ENGINE, str(tmp_path))
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "--collect-only", "-q", path],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "test_seed2_occamy_ff" in proc.stdout

    def test_emitted_test_fails_while_bug_present(self, monkeypatch):
        monkeypatch.setattr(
            Metrics, "replay_idle_cycles", lambda self, times: None
        )
        spec = generate_case(0)
        _, source = emit_regression_test(spec, "occamy", FF_ENGINE)
        namespace = {}
        exec(compile(source, "<emitted>", "exec"), namespace)  # noqa: S102
        test = [v for k, v in namespace.items() if k.startswith("test_")][0]
        with pytest.raises(AssertionError, match="diverged"):
            test()
