"""Greedy lane partitioning (§5.2) and its fairness properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import table4_config
from repro.common.errors import ConfigurationError
from repro.core.partition import greedy_partition, static_partition
from repro.core.roofline import RooflineModel
from repro.isa.registers import OIValue

ROOFLINE = RooflineModel.from_config(table4_config())


class TestPaperScenarios:
    def test_motivating_phase1_plan(self):
        # Fig. 8: WL#0.p1 (oi ~0.083) gets 8 lanes, WL#1 (wsm5) gets 24.
        plan = greedy_partition(
            {0: OIValue.uniform(0.083), 1: OIValue(0.6, 1.0, level="vec_cache")},
            32,
            ROOFLINE,
        )
        assert plan == {0: 8, 1: 24}

    def test_motivating_phase2_plan(self):
        # Fig. 8: WL#0.p2 (oi 0.375) gets 12 lanes, WL#1 gets 20.
        plan = greedy_partition(
            {0: OIValue.uniform(0.375), 1: OIValue(0.6, 1.0, level="vec_cache")},
            32,
            ROOFLINE,
        )
        assert plan == {0: 12, 1: 20}

    def test_solo_workload_gets_everything_it_can_use(self):
        plan = greedy_partition({1: OIValue(0.6, 1.0, level="vec_cache")}, 32, ROOFLINE)
        assert plan == {1: 32}

    def test_case4_issue_bandwidth_trade(self):
        # Table 5: WL8.p1 receives 12 lanes, not the 8 that memory and
        # computation ceilings alone would suggest.
        plan = greedy_partition(
            {0: OIValue(1.0 / 6.0, 0.25), 1: OIValue(0.6, 1.0, level="vec_cache")},
            32,
            ROOFLINE,
        )
        assert plan[0] == 12


class TestFairness:
    def test_compute_pair_splits_equally(self):
        # §5.2: co-running compute-intensive workloads divide lanes equally.
        oi = OIValue(1.0, 1.5, level="vec_cache")
        plan = greedy_partition({0: oi, 1: oi}, 32, ROOFLINE)
        assert plan == {0: 16, 1: 16}

    def test_every_running_phase_gets_a_lane(self):
        demands = {core: OIValue.uniform(0.05) for core in range(4)}
        plan = greedy_partition(demands, 32, ROOFLINE)
        assert all(lanes >= 1 for lanes in plan.values())

    def test_ended_phases_excluded(self):
        plan = greedy_partition(
            {0: OIValue.ZERO, 1: OIValue.uniform(1.0)}, 32, ROOFLINE
        )
        assert 0 not in plan

    def test_empty_demands(self):
        assert greedy_partition({}, 32, ROOFLINE) == {}

    def test_more_phases_than_lanes_rejected(self):
        demands = {core: OIValue.uniform(1.0) for core in range(4)}
        with pytest.raises(ConfigurationError):
            greedy_partition(demands, 2, ROOFLINE)

    @settings(max_examples=60, deadline=None)
    @given(
        st.dictionaries(
            st.integers(0, 3),
            st.builds(
                OIValue,
                st.floats(0.02, 3.0),
                st.floats(0.02, 3.0),
                st.sampled_from(["dram", "l2", "vec_cache"]),
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_plan_respects_eq1(self, demands):
        plan = greedy_partition(demands, 32, ROOFLINE)
        assert set(plan) == set(demands)
        assert all(lanes >= 1 for lanes in plan.values())
        assert sum(plan.values()) <= 32

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.02, 3.0), st.floats(0.02, 3.0))
    def test_deterministic(self, a, b):
        demands = {0: OIValue.uniform(a), 1: OIValue.uniform(b)}
        assert greedy_partition(demands, 32, ROOFLINE) == greedy_partition(
            demands, 32, ROOFLINE
        )


class TestTotalAllocationOptimality:
    """The greedy plan wastes no lane: pinned against brute force.

    The round-based algorithm is deliberately *fair* rather than
    throughput-optimal (equal-slope workloads split lanes instead of one
    hogging them), but it must still be optimal in *total allocation*:
    beyond the one-lane fairness minimum, every granted lane has a
    positive marginal gain (Eq. 3), and the number of such useful lanes
    matches the best any allocation could achieve.  This is exactly the
    property the grant-time gain recheck protects — a stale pre-round
    gain must never park a lane past a core's saturation point.
    """

    @staticmethod
    def _useful_lanes(plan, demands):
        # Lanes granted beyond the first whose marginal gain was positive.
        return sum(
            sum(
                1
                for lane in range(1, lanes)
                if ROOFLINE.net_gain(lane, demands[core]) > 1e-9
            )
            for core, lanes in plan.items()
        )

    @staticmethod
    def _brute_force_best(demands, total_lanes):
        import itertools

        cores = sorted(demands)
        best = -1
        for alloc in itertools.product(
            range(1, total_lanes + 1), repeat=len(cores)
        ):
            if sum(alloc) > total_lanes:
                continue
            useful = TestTotalAllocationOptimality._useful_lanes(
                dict(zip(cores, alloc)), demands
            )
            best = max(best, useful)
        return best

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(2, 8),
        st.lists(
            st.builds(
                OIValue,
                st.floats(0.02, 3.0),
                st.floats(0.02, 3.0),
                st.sampled_from(["dram", "l2", "vec_cache"]),
            ),
            min_size=1,
            max_size=3,
        ),
    )
    def test_no_lane_is_wasted(self, total_lanes, ois):
        assume_ok = len(ois) <= total_lanes
        if not assume_ok:
            total_lanes = len(ois)
        demands = dict(enumerate(ois))
        plan = greedy_partition(demands, total_lanes, ROOFLINE)

        # 1. Every lane past the fairness minimum earned its grant.
        for core, lanes in plan.items():
            if lanes > 1:
                assert ROOFLINE.net_gain(lanes - 1, demands[core]) > 1e-9, (
                    f"core {core} was granted lane {lanes} with no gain"
                )

        # 2. The total number of useful lanes matches brute force.
        achieved = self._useful_lanes(plan, demands)
        best = self._brute_force_best(demands, total_lanes)
        assert achieved == best, (plan, achieved, best)

    def test_motivating_plans_survive_the_recheck(self):
        # The grant-time recheck must not disturb the paper's plans.
        plan = greedy_partition(
            {0: OIValue.uniform(0.083), 1: OIValue(0.6, 1.0, level="vec_cache")},
            32,
            ROOFLINE,
        )
        assert plan == {0: 8, 1: 24}


class TestStaticPartition:
    def test_uses_most_demanding_phase(self):
        # VLS for the motivating pair: 12/20 (driven by WL#0.p2).
        plan = static_partition(
            {
                0: [OIValue.uniform(0.083), OIValue.uniform(0.375)],
                1: [OIValue(0.6, 1.0, level="vec_cache")],
            },
            32,
            ROOFLINE,
        )
        assert plan == {0: 12, 1: 20}

    def test_idle_core_excluded(self):
        plan = static_partition({0: [OIValue.uniform(0.25)], 1: []}, 32, ROOFLINE)
        assert 1 not in plan
