"""Scalar-core interpreter semantics, driven by hand-assembled programs."""

import numpy as np
import pytest

from repro.common.config import experiment_config
from repro.common.errors import SimulationError
from repro.coproc.coprocessor import CoProcessor, SharingMode
from repro.coproc.metrics import Metrics
from repro.core.lane_manager import StaticLaneManager
from repro.core.scalar_core import ScalarCore
from repro.isa.assembler import assemble
from repro.memory.image import MemoryImage

SETVL = """
setvl:
    msr <VL>, #8
    mrs X3, <status>
    b.ne X3, #1, setvl
"""


def machine_for(source, arrays=None, core_id=0, lanes_plan=None):
    config = experiment_config()
    metrics = Metrics(config.num_cores, config.vector.total_lanes, 2)
    manager = StaticLaneManager(lanes_plan or {0: 16, 1: 16})
    coproc = CoProcessor(config, SharingMode.SPATIAL, metrics, manager)
    image = MemoryImage.for_core(core_id)
    for name, data in (arrays or {}).items():
        image.add_array(name, np.asarray(data, dtype=np.float32))
    program = assemble(source)
    core = ScalarCore(core_id, program, image, coproc, metrics, config.core)
    return core, coproc, image


def run(core, coproc, max_cycles=50_000):
    cycle = 0
    while not (core.halted and coproc.drained(core.core_id)):
        core.step(cycle)
        coproc.step(cycle)
        cycle += 1
        if cycle > max_cycles:
            raise AssertionError("program did not terminate")
    return cycle


class TestScalarSemantics:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 7, 5, 12),
            ("sub", 7, 5, 2),
            ("mul", 7, 5, 35),
            ("div", 7, 5, 1.4),
            ("rem", 7, 5, 2),
            ("min", 7, 5, 5),
            ("max", 7, 5, 7),
            ("and", 6, 3, 2),
            ("or", 6, 3, 7),
            ("lsl", 3, 2, 12),
            ("lsr", 12, 2, 3),
        ],
    )
    def test_alu(self, op, a, b, expected):
        core, coproc, _ = machine_for(
            f"mov Xa, #{a}\nmov Xb, #{b}\n{op} Xc, Xa, Xb\nhalt"
        )
        run(core, coproc)
        assert core.regs["Xc"] == pytest.approx(expected)

    def test_division_by_zero_yields_zero(self):
        core, coproc, _ = machine_for("mov Xa, #3\ndiv Xc, Xa, #0\nhalt")
        run(core, coproc)
        assert core.regs["Xc"] == 0

    def test_branch_loop(self):
        source = """
            mov Xi, #0
        top:
            add Xi, Xi, #1
            b.lt Xi, #5, top
            halt
        """
        core, coproc, _ = machine_for(source)
        run(core, coproc)
        assert core.regs["Xi"] == 5

    def test_addvl_uses_configured_length(self):
        core, coproc, _ = machine_for(SETVL + "mov Xi, #0\naddvl Xi, Xi\nhalt")
        run(core, coproc)
        assert core.regs["Xi"] == 8 * 4  # 8 lanes * 4 fp32 elements


class TestBranchRetirement:
    """Regression: a retired taken branch reports its *own* index.

    The Fig. 15 overhead attribution and the loop-replay template both
    key off the per-cycle retirement list; a branch must contribute the
    index it retired at, with its target carried separately (execution
    resumes at the target, but the target did not retire this cycle).
    """

    SOURCE = """
        mov Xi, #0
    top:
        add Xi, Xi, #1
        b.lt Xi, #5, top
        halt
    """

    class _Recorder:
        def __init__(self):
            self.execs = []

        def on_exec(self, core, pc, outcome, target):
            self.execs.append((core, pc, outcome, target))

    @pytest.mark.parametrize("pre_decode", [True, False])
    def test_taken_branch_retires_its_own_pc(self, pre_decode, monkeypatch):
        if not pre_decode:
            monkeypatch.setenv("REPRO_NO_PRE_DECODE", "1")
        core, coproc, _ = machine_for(self.SOURCE)
        assert core.pre_decode is pre_decode
        recorder = self._Recorder()
        core.recorder = recorder
        backedges = []
        core.on_backedge = lambda c, frm, tgt, cycle: backedges.append((c, frm, tgt))
        run(core, coproc)
        assert core.regs["Xi"] == 5
        branch_pc = next(
            i for i, d in enumerate(core.decoded) if d is not None and d.is_branch
        )
        loop_head = core.program.target("top")
        taken = [e for e in recorder.execs if e[2] == "branch"]
        assert len(taken) == 4  # Xi = 1..4 branch back; Xi = 5 falls through
        assert all(e[1] == branch_pc for e in taken)
        assert all(e[3] == loop_head for e in taken)
        fallthrough = [
            e for e in recorder.execs if e[1] == branch_pc and e[2] != "branch"
        ]
        assert len(fallthrough) == 1 and fallthrough[0][3] == 0
        assert backedges == [(0, branch_pc, loop_head)] * 4


class TestVectorSemantics:
    def test_predicated_tail(self):
        source = SETVL + """
            mov Xi, #0
            mov Xn, #10
            whilelt p0, Xi, Xn
            ld1w z0, [a, Xi], p0
            fadd z1, z0, #1.0, p0
            st1w z1, [b, Xi], p0
            halt
        """
        core, coproc, image = machine_for(
            source, arrays={"a": np.ones(40), "b": np.zeros(40)}
        )
        run(core, coproc)
        np.testing.assert_allclose(image.array("b")[:10], 2.0)
        np.testing.assert_allclose(image.array("b")[10:], 0.0)

    def test_merging_predication_preserves_inactive_lanes(self):
        source = SETVL + """
            mov Xz, #0
            mov Xfull, #32
            whilelt p0, Xz, Xfull
            fdup z0, #5.0, p0
            mov Xtwo, #2
            whilelt p1, Xz, Xtwo
            fdup z0, #9.0, p1
            halt
        """
        core, coproc, _ = machine_for(source)
        run(core, coproc)
        values = core.vregs["z0"]
        assert values[0] == 9.0 and values[1] == 9.0
        assert values[2] == 5.0  # inactive lanes merged, not zeroed

    def test_hreduce_blocks_scalar_reader(self):
        source = SETVL + """
            mov Xi, #0
            mov Xn, #32
            whilelt p0, Xi, Xn
            ld1w z0, [a, Xi], p0
            faddv Xs, z0
            add Xt, Xs, #1
            halt
        """
        core, coproc, _ = machine_for(source, arrays={"a": np.full(40, 2.0)})
        run(core, coproc)
        assert core.regs["Xt"] == pytest.approx(65.0)

    def test_out_of_bounds_load_raises(self):
        source = SETVL + """
            mov Xi, #0
            mov Xn, #64
            whilelt p0, Xi, Xn
            ld1w z0, [a, Xi], p0
            halt
        """
        core, coproc, _ = machine_for(source, arrays={"a": np.zeros(8)})
        with pytest.raises(SimulationError):
            run(core, coproc)

    def test_sve_scalar_broadcast(self):
        source = SETVL + """
            mov Xk, #3.0
            mov Xz, #0
            mov Xfull, #32
            whilelt p0, Xz, Xfull
            fdup z0, #2.0, p0
            fmul z1, z0, Xk, p0
            faddv Xs, z1
            halt
        """
        core, coproc, _ = machine_for(source)
        run(core, coproc)
        assert core.regs["Xs"] == pytest.approx(2.0 * 3.0 * 32)


class TestEmSimdInteraction:
    def test_vl_request_grants_lanes(self):
        core, coproc, _ = machine_for(SETVL + "halt")
        run(core, coproc)
        assert coproc.configured_vl(0) == 8
        assert coproc.lane_table.owned_count(0) == 8

    def test_out_of_range_request_trips_protocol_check(self):
        # Requesting more lanes than physically exist is a protocol error
        # surfaced when the co-processor executes the MSR.
        core, coproc, _ = machine_for("msr <VL>, #33\nhalt")
        with pytest.raises(SimulationError):
            run(core, coproc)

    def test_mrs_decision_is_speculative(self):
        # Before any phase event no plan exists (decision 0); after an
        # MSR <OI> the plan is published and the speculative read sees it.
        source = """
            mrs Xbefore, <decision>
            msr <OI>, #(0.5, 0.5)
            mrs X3, <status>
            mrs Xafter, <decision>
            halt
        """
        core, coproc, _ = machine_for(source)
        run(core, coproc)
        assert core.regs["Xbefore"] == 0
        assert core.regs["Xafter"] == 16  # the static plan

    def test_mrs_status_synchronises_with_msr(self):
        core, coproc, _ = machine_for(SETVL + "mrs Xa, <AL>\nhalt")
        run(core, coproc)
        assert core.regs["Xa"] == 24  # 32 total - 8 granted

    def test_msr_oi_marks_phase(self):
        source = """
            mov Xoi, #(0.5, 0.25)
            msr <OI>, Xoi
            mrs X3, <status>
            mov Xz, #0
            msr <OI>, #(0, 0)
            mrs X3, <status>
            halt
        """
        core, coproc, _ = machine_for(source)
        run(core, coproc)
        phases = core.metrics.phases_of(0)
        assert len(phases) == 1
        assert phases[0].oi.issue == 0.5
