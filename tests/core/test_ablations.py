"""Ablation lane-manager variants."""

import pytest

from repro.common.config import experiment_config
from repro.common.errors import ConfigurationError
from repro.coproc.resource_table import ResourceTable
from repro.core.ablations import (
    ABLATION_POLICIES,
    EQUAL_SPLIT,
    FLAT_MEMORY,
    NO_ISSUE_CEILING,
    EqualSplitLaneManager,
    ablation_policy,
)
from repro.isa.registers import OIValue


def table_with(**ois):
    table = ResourceTable(num_cores=2, total_lanes=32)
    for name, oi in ois.items():
        table.set_oi(int(name[-1]), oi)
    return table


class TestEqualSplit:
    def test_even_division(self):
        manager = EqualSplitLaneManager(32)
        table = table_with(core0=OIValue.uniform(0.1), core1=OIValue.uniform(1.0))
        assert manager.on_phase_change(table, 0) == {0: 16, 1: 16}

    def test_remainder_spread(self):
        manager = EqualSplitLaneManager(32)
        table = ResourceTable(num_cores=3, total_lanes=32)
        for core in range(3):
            table.set_oi(core, OIValue.uniform(0.5))
        decisions = manager.on_phase_change(table, 0)
        assert sorted(decisions.values(), reverse=True) == [11, 11, 10]
        assert sum(decisions.values()) == 32

    def test_solo_gets_everything(self):
        manager = EqualSplitLaneManager(32)
        table = table_with(core1=OIValue.uniform(0.1))
        assert manager.on_phase_change(table, 0) == {0: 0, 1: 32}


class TestRooflineVariants:
    def test_flat_memory_ignores_residency(self):
        config = experiment_config()
        manager = FLAT_MEMORY.build_lane_manager(config, {})
        resident = OIValue(0.56, 0.56, level="vec_cache")
        # Under the flat roofline, a 0.56-intensity phase saturates at
        # 32 * 0.56 ~ 18 lanes even though it is cache-resident.
        assert manager.roofline.saturation_lanes(resident) < 24

    def test_no_issue_ceiling_under_allocates_memory_phases(self):
        config = experiment_config()
        full = ablation_policy("no-issue-ceiling").build_lane_manager(config, {})
        streaming = OIValue.uniform(0.083)
        # Without Eq. 2 the memory phase saturates where FP peak meets the
        # memory ceiling: ~3 lanes instead of 8.
        assert full.roofline.saturation_lanes(streaming) < 5

    def test_registry(self):
        assert ablation_policy("equal-split") is EQUAL_SPLIT
        assert ablation_policy("no-issue-ceiling") is NO_ISSUE_CEILING
        with pytest.raises(ConfigurationError):
            ablation_policy("nope")
        assert len(ABLATION_POLICIES) == 3
