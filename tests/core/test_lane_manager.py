"""The three lane-manager variants behind the four policies."""

from repro.common.config import table4_config
from repro.coproc.resource_table import ResourceTable
from repro.core.lane_manager import (
    ElasticLaneManager,
    StaticLaneManager,
    TemporalLaneManager,
)
from repro.core.roofline import RooflineModel
from repro.isa.registers import OIValue


def table_with_phases(**ois):
    table = ResourceTable(num_cores=2, total_lanes=32)
    for core, oi in ois.items():
        table.set_oi(int(core[-1]), oi)
    return table


class TestElastic:
    def manager(self):
        return ElasticLaneManager(RooflineModel.from_config(table4_config()), 32)

    def test_plans_follow_running_phases(self):
        manager = self.manager()
        table = table_with_phases(
            core0=OIValue.uniform(0.083), core1=OIValue(0.6, 1.0, level="vec_cache")
        )
        decisions = manager.on_phase_change(table, cycle=100)
        assert decisions == {0: 8, 1: 24}

    def test_idle_core_decided_to_zero(self):
        manager = self.manager()
        table = table_with_phases(core1=OIValue(0.6, 1.0, level="vec_cache"))
        decisions = manager.on_phase_change(table, cycle=0)
        assert decisions == {0: 0, 1: 32}

    def test_history_recorded(self):
        manager = self.manager()
        table = table_with_phases(core0=OIValue.uniform(0.25))
        manager.on_phase_change(table, cycle=5)
        manager.on_phase_change(table, cycle=9)
        assert manager.plans_generated == 2
        assert manager.plan_history[0][0] == 5


class TestStatic:
    def test_constant_decisions(self):
        manager = StaticLaneManager({0: 12, 1: 20})
        table = table_with_phases(core0=OIValue.uniform(0.25))
        assert manager.on_phase_change(table, 0) == {0: 12, 1: 20}
        table.set_oi(0, OIValue.ZERO)
        assert manager.on_phase_change(table, 9) == {0: 12, 1: 20}

    def test_missing_core_defaults_to_zero(self):
        manager = StaticLaneManager({0: 16})
        table = table_with_phases()
        assert manager.on_phase_change(table, 0) == {0: 16, 1: 0}


class TestTemporal:
    def test_full_width_for_everyone(self):
        manager = TemporalLaneManager(32)
        table = table_with_phases(core0=OIValue.uniform(0.25))
        assert manager.on_phase_change(table, 0) == {0: 32, 1: 32}
