"""Failure guards of :meth:`Machine.run` under every execution mode.

The deadlock detector and the ``max_cycles`` budget must fire at exactly
the same cycle whether idle-cycle fast-forward is on or off and whether
the tickless event wheel is on or off.  A fast-forward jump to a real
future event can overshoot neither guard (events keep the machine live);
a jump with *no* future event is capped at the deadlock horizon and at
``max_cycles`` so a skipped stretch can never leap over a failure.
"""

from __future__ import annotations

import pytest

import repro.core.machine as machine_mod
from repro.common.errors import DeadlockError, SimulationError
from repro.coproc.dynamic import DynamicInstruction, EntryKind
from repro.core.machine import Machine
from repro.core.policies import PRIVATE

from tests.conftest import compiled_job, make_axpy

WINDOW = 5_000


def _wedged_machine(config, event_wheel=None) -> Machine:
    """A machine guaranteed to stop making progress.

    A poison entry sits at core 0's pool head, depending on a "ghost"
    instruction that is in no pool and never completes: the poison entry
    never becomes ready, so nothing behind it can commit, the pool never
    drains, and core 0 can never finish.
    """
    machine = Machine(
        config,
        PRIVATE,
        [compiled_job(make_axpy(length=64)), None],
        event_wheel=event_wheel,
    )
    ghost = DynamicInstruction(
        seq=-1, core=0, kind=EntryKind.COMPUTE, instr=None, vl_lanes=1,
        transmit_cycle=0,
    )
    poison = DynamicInstruction(
        seq=-2, core=0, kind=EntryKind.COMPUTE, instr=None, vl_lanes=1,
        transmit_cycle=0, deps=(ghost,),
    )
    machine.coproc.pools[0].push(poison)
    return machine


def _counting(machine: Machine):
    """Wrap ``machine.step`` with a call counter."""
    calls = {"n": 0}
    original = machine.step

    def counted(cycle):
        calls["n"] += 1
        return original(cycle)

    machine.step = counted  # type: ignore[method-assign]
    return calls


@pytest.mark.parametrize("event_wheel", [False, True], ids=["ref", "wheel"])
@pytest.mark.parametrize("fast_forward", [False, True], ids=["slow", "ff"])
def test_deadlock_detected(config, monkeypatch, fast_forward, event_wheel):
    monkeypatch.setattr(machine_mod, "DEADLOCK_WINDOW", WINDOW)
    with pytest.raises(DeadlockError):
        _wedged_machine(config, event_wheel).run(fast_forward=fast_forward)


def test_deadlock_fires_at_identical_cycle(config, monkeypatch):
    """The error message embeds the last-progress cycle: must match."""
    monkeypatch.setattr(machine_mod, "DEADLOCK_WINDOW", WINDOW)
    messages = []
    for event_wheel in (False, True):
        for fast_forward in (False, True):
            with pytest.raises(DeadlockError) as excinfo:
                _wedged_machine(config, event_wheel).run(fast_forward=fast_forward)
            messages.append(str(excinfo.value))
    assert len(set(messages)) == 1


def test_fast_forward_actually_skips(config, monkeypatch):
    """The ff deadlock path steps far fewer times than the window.

    Pinned to the reference loop: the step counter wraps ``Machine.step``,
    which only the reference engine drives (the event wheel steps
    components through its own masked loop).
    """
    monkeypatch.setattr(machine_mod, "DEADLOCK_WINDOW", WINDOW)
    machine = _wedged_machine(config, event_wheel=False)
    calls = _counting(machine)
    with pytest.raises(DeadlockError):
        machine.run(fast_forward=True)
    assert calls["n"] < WINDOW / 10

    slow = _wedged_machine(config, event_wheel=False)
    slow_calls = _counting(slow)
    with pytest.raises(DeadlockError):
        slow.run(fast_forward=False)
    assert slow_calls["n"] > WINDOW  # the cycle-by-cycle loop really loops


@pytest.mark.parametrize("event_wheel", [False, True], ids=["ref", "wheel"])
@pytest.mark.parametrize("fast_forward", [False, True], ids=["slow", "ff"])
def test_max_cycles_budget(config, fast_forward, event_wheel):
    machine = Machine(
        config,
        PRIVATE,
        [compiled_job(make_axpy(length=64)), None],
        event_wheel=event_wheel,
    )
    with pytest.raises(SimulationError, match="exceeded 50 cycles"):
        machine.run(max_cycles=50, fast_forward=fast_forward)


def test_max_cycles_metrics_identical(config):
    """Every mode stops at the same point with the same counters."""
    counters = []
    for event_wheel in (False, True):
        for fast_forward in (False, True):
            machine = Machine(
                config,
                PRIVATE,
                [compiled_job(make_axpy(length=256)), None],
                event_wheel=event_wheel,
            )
            with pytest.raises(SimulationError):
                machine.run(max_cycles=200, fast_forward=fast_forward)
            m = machine.metrics
            counters.append(
                (
                    tuple(m.compute_uops),
                    tuple(m.ldst_uops),
                    tuple(
                        tuple(sorted((r.name, n) for r, n in per_core.items()))
                        for per_core in m.stalls
                    ),
                )
            )
    assert len(set(counters)) == 1
