"""Policy registry and the metrics layer."""

import pytest

from repro import ALL_POLICIES, FTS, OCCAMY, PRIVATE, VLS, policy
from repro.common.config import experiment_config
from repro.coproc.coprocessor import SharingMode
from repro.coproc.metrics import Metrics, PhaseRecord, StallReason
from repro.core.lane_manager import (
    ElasticLaneManager,
    StaticLaneManager,
    TemporalLaneManager,
)
from repro.isa.registers import OIValue


class TestPolicyRegistry:
    def test_four_policies_in_paper_order(self):
        assert [p.key for p in ALL_POLICIES] == ["private", "fts", "vls", "occamy"]

    def test_lookup(self):
        assert policy("occamy") is OCCAMY
        with pytest.raises(KeyError):
            policy("bogus")

    def test_modes(self):
        assert FTS.mode is SharingMode.TEMPORAL
        for p in (PRIVATE, VLS, OCCAMY):
            assert p.mode is SharingMode.SPATIAL

    def test_manager_types(self):
        config = experiment_config()
        ois = {0: [OIValue.uniform(0.25)], 1: [OIValue.uniform(1.0)]}
        assert isinstance(PRIVATE.build_lane_manager(config, ois), StaticLaneManager)
        assert isinstance(FTS.build_lane_manager(config, ois), TemporalLaneManager)
        assert isinstance(VLS.build_lane_manager(config, ois), StaticLaneManager)
        assert isinstance(OCCAMY.build_lane_manager(config, ois), ElasticLaneManager)

    def test_private_manager_splits_evenly(self):
        config = experiment_config()
        manager = PRIVATE.build_lane_manager(config, {})
        assert manager.plan == {0: 16, 1: 16}

    def test_vls_manager_uses_static_plan(self):
        config = experiment_config()
        ois = {
            0: [OIValue.uniform(0.083), OIValue.uniform(0.375)],
            1: [OIValue(0.6, 1.0, level="vec_cache")],
        }
        manager = VLS.build_lane_manager(config, ois)
        assert manager.plan == {0: 12, 1: 20}


class TestMetrics:
    def metrics(self):
        return Metrics(num_cores=2, total_lanes=32, pipes_per_lane=2)

    def test_utilization_formula(self):
        m = self.metrics()
        # 2 uops/cycle at 16 lanes for 100 cycles on one core.
        for cycle in range(100):
            m.on_compute_dispatch(0, 16, flops=16, cycle=cycle)
            m.on_compute_dispatch(0, 16, flops=16, cycle=cycle)
        m.close(100)
        assert m.simd_utilization() == pytest.approx(0.5)

    def test_utilization_capped_at_one(self):
        m = self.metrics()
        for _ in range(10):
            m.on_compute_dispatch(0, 32, 0, 0)
        m.close(1)
        assert m.simd_utilization() <= 1.0

    def test_phase_tracking(self):
        m = self.metrics()
        oi = OIValue.uniform(0.25)
        m.on_phase_marker(0, oi, cycle=10, vl=8)
        m.on_compute_dispatch(0, 8, 8, 20)
        m.on_phase_marker(0, OIValue.ZERO, cycle=110, vl=8)
        phase = m.phases_of(0)[0]
        assert phase.duration == 100
        assert phase.compute_uops == 1
        assert phase.issue_rate == pytest.approx(0.01)

    def test_unclosed_phase_closed_at_end(self):
        m = self.metrics()
        m.on_phase_marker(1, OIValue.uniform(1.0), cycle=0, vl=16)
        m.close(500)
        assert m.phases_of(1)[0].end_cycle == 500

    def test_stall_fractions(self):
        m = self.metrics()
        for cycle in range(50):
            m.on_stall(0, StallReason.RENAME, cycle)
        m.on_core_done(0, 100)
        m.close(200)
        assert m.stall_fraction(0, StallReason.RENAME) == pytest.approx(0.5)

    def test_core_done_freezes_time_and_lanes(self):
        m = self.metrics()
        m.on_lane_change(0, 16, 0)
        m.on_core_done(0, 42)
        m.close(100)
        assert m.core_cycles(0) == 42
        assert m.lane_timeline[0].value_at(50) == 0

    def test_overhead_fractions(self):
        m = self.metrics()
        for _ in range(3):
            m.on_overhead_cycle(0, "monitor")
        m.on_overhead_cycle(0, "reconfig")
        m.on_core_done(0, 100)
        m.close(100)
        overhead = m.overhead_fraction(0)
        assert overhead["monitor"] == pytest.approx(0.03)
        assert overhead["reconfig"] == pytest.approx(0.01)

    def test_reconfig_counters(self):
        m = self.metrics()
        m.on_reconfig(0, success=True)
        m.on_reconfig(0, success=False)
        assert m.reconfig_success[0] == 1
        assert m.reconfig_failed[0] == 1
