"""The tickless event wheel: bucket index, kill switch, deadlock windows.

Unit-level coverage for :class:`repro.core.scheduling.EventWheel` plus the
two run-loop properties the tickless engine adds: the construction-time
``REPRO_NO_EVENT_WHEEL`` kill switch, and the satellite fix that a
*legitimate* long skip — a memory-bound stretch far wider than
``DEADLOCK_WINDOW`` — is never misreported as a hang (the detector now
requires the machine to have no future event at all, under every engine).
"""

from __future__ import annotations

import pytest

import repro.core.machine as machine_mod
from repro.common.errors import ConfigurationError
from repro.core.machine import Machine, default_event_wheel
from repro.core.policies import PRIVATE, policy
from repro.core.scheduling import EventWheel

from tests.conftest import compiled_job, make_axpy, make_two_phase, run_fingerprint


class TestEventWheel:
    def test_schedule_and_due(self):
        wheel = EventWheel()
        wheel.schedule(0, 10)
        wheel.schedule(1, 12)
        assert len(wheel) == 2
        assert wheel.wake_of(0) == 10
        assert wheel.next_wake() == 10
        assert wheel.due(9) == []
        assert wheel.due(10) == [0]
        assert len(wheel) == 1
        assert wheel.next_wake() == 12

    def test_due_recovers_overshot_wakes(self):
        """Wakes the clock jumped past are still returned (and popped)."""
        wheel = EventWheel()
        wheel.schedule(0, 5)
        wheel.schedule(1, 7)
        wheel.schedule(2, 40)
        assert wheel.due(20) == [0, 1]
        assert wheel.due(20) == []
        assert wheel.next_wake() == 40

    def test_reschedule_moves_the_wake(self):
        wheel = EventWheel()
        wheel.schedule(0, 10)
        wheel.schedule(0, 300)  # different bucket (slots=256)
        assert wheel.due(10) == []
        assert wheel.wake_of(0) == 300
        assert wheel.due(300) == [0]

    def test_cancel_is_idempotent(self):
        wheel = EventWheel()
        wheel.schedule(3, 9)
        wheel.cancel(3)
        wheel.cancel(3)
        assert len(wheel) == 0
        assert wheel.next_wake() is None

    def test_bucket_collisions(self):
        """Components hashing to the same slot stay distinct."""
        wheel = EventWheel(slots=4)
        wheel.schedule(0, 8)
        wheel.schedule(1, 12)  # 12 % 4 == 8 % 4
        assert wheel.due(8) == [0]
        assert wheel.due(12) == [1]

    def test_rejects_zero_slots(self):
        with pytest.raises(ConfigurationError):
            EventWheel(slots=0)


class TestKillSwitch:
    def test_env_variable(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_EVENT_WHEEL", raising=False)
        assert default_event_wheel() is True
        monkeypatch.setenv("REPRO_NO_EVENT_WHEEL", "1")
        assert default_event_wheel() is False

    def test_explicit_argument_wins(self, config, monkeypatch):
        monkeypatch.setenv("REPRO_NO_EVENT_WHEEL", "1")
        machine = Machine(
            config,
            PRIVATE,
            [compiled_job(make_axpy(length=64)), None],
            event_wheel=True,
        )
        assert machine._event_wheel is True

    def test_wheel_runs_sleep_components(self, config):
        """A memory-bound co-run actually exercises sleep (the engine's
        point); the sleep series records the spans."""
        jobs = [
            compiled_job(make_two_phase(length=512), 0),
            compiled_job(make_two_phase(length=512), 1),
        ]
        machine = Machine(config, policy("occamy"), jobs, event_wheel=True)
        machine.run()
        slept = sum(
            sum(series._sums) for series in machine.metrics.sleep_series
        )
        assert slept > 0


WINDOW = 8


class TestLegitimateLongSkip:
    """Satellite fix: a skip/stall wider than DEADLOCK_WINDOW is not a hang.

    With an (artificially tiny) 8-cycle window, every memory round-trip of
    an ordinary workload out-waits the window.  The detector must see the
    pending completion (``next_event_cycle``) and keep going — under the
    reference loop, the fast-forward, and the event wheel alike.
    """

    @pytest.mark.parametrize("event_wheel", [False, True], ids=["ref", "wheel"])
    @pytest.mark.parametrize("fast_forward", [False, True], ids=["slow", "ff"])
    def test_run_completes(self, config, monkeypatch, fast_forward, event_wheel):
        monkeypatch.setattr(machine_mod, "DEADLOCK_WINDOW", WINDOW)
        jobs = [compiled_job(make_axpy(length=256)), None]
        machine = Machine(config, PRIVATE, jobs, event_wheel=event_wheel)
        result = machine.run(fast_forward=fast_forward)  # must not raise
        assert result.total_cycles > WINDOW

    def test_tiny_window_changes_nothing(self, config, monkeypatch):
        """Shrinking the window must not perturb a healthy run at all."""
        jobs = lambda: [compiled_job(make_axpy(length=256)), None]  # noqa: E731
        wide = Machine(config, PRIVATE, jobs(), event_wheel=True)
        wide_result = wide.run(fast_forward=True)
        monkeypatch.setattr(machine_mod, "DEADLOCK_WINDOW", WINDOW)
        narrow = Machine(config, PRIVATE, jobs(), event_wheel=True)
        narrow_result = narrow.run(fast_forward=True)
        assert run_fingerprint(narrow_result) == run_fingerprint(wide_result)
