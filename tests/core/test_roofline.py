"""Vector-length-aware roofline model (§5.1, Eq. 2-4, Table 5)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.config import experiment_config, table4_config
from repro.common.errors import ConfigurationError
from repro.core.roofline import RooflineModel
from repro.isa.registers import OIValue

#: The paper's Table 5 (WL8.p1: oi_issue = 1/6, oi_mem = 0.25), GFLOP/s.
TABLE5 = {
    4: (5.3, 16.0, 8.0, 5.3),
    8: (10.7, 16.0, 16.0, 10.7),
    12: (16.0, 16.0, 24.0, 16.0),
    16: (21.3, 16.0, 32.0, 16.0),
    20: (26.7, 16.0, 40.0, 16.0),
    24: (32.0, 16.0, 48.0, 16.0),
    28: (37.3, 16.0, 56.0, 16.0),
    32: (42.7, 16.0, 64.0, 16.0),
}

WL8_P1 = OIValue(issue=1.0 / 6.0, mem=0.25)


class TestTable5:
    def test_exact_reproduction(self):
        roofline = RooflineModel.from_config(table4_config())
        rows = roofline.table_rows(WL8_P1, sorted(TABLE5), frequency_ghz=2.0)
        for row in rows:
            issue, mem, comp, perf = TABLE5[row["vl"]]
            assert row["simd_issue_bound"] == pytest.approx(issue, abs=0.05)
            assert row["mem_bound"] == pytest.approx(mem, abs=0.05)
            assert row["comp_bound"] == pytest.approx(comp, abs=0.05)
            assert row["performance"] == pytest.approx(perf, abs=0.05)

    def test_issue_bound_below_12_lanes(self):
        # The paper: "bounded by instruction issue when VL < 12 lanes".
        roofline = RooflineModel.from_config(table4_config())
        for lanes in (4, 8):
            assert roofline.issue_bound(lanes, WL8_P1) < roofline.mem_bound(WL8_P1)
        assert roofline.issue_bound(12, WL8_P1) == pytest.approx(
            roofline.mem_bound(WL8_P1)
        )

    def test_saturation_at_12_lanes(self):
        # Case 4: Occamy assigns 12 lanes to WL8.p1.
        roofline = RooflineModel.from_config(table4_config())
        assert roofline.saturation_lanes(WL8_P1) == 12


class TestCeilings:
    def test_fp_peak_linear(self):
        roofline = RooflineModel()
        assert roofline.fp_peak(8) == 2 * roofline.fp_peak(4)

    def test_mem_bound_lane_independent(self):
        roofline = RooflineModel()
        oi = OIValue.uniform(0.25)
        assert roofline.mem_bound(oi) == roofline.mem_bound(oi)

    def test_hierarchical_levels(self):
        roofline = RooflineModel.from_config(experiment_config())
        streaming = OIValue(0.5, 0.5, level="dram")
        resident = OIValue(0.5, 0.5, level="vec_cache")
        assert roofline.mem_bound(resident) > roofline.mem_bound(streaming)

    def test_resident_compute_phase_saturates_all_lanes(self):
        roofline = RooflineModel.from_config(experiment_config())
        oi = OIValue(0.6, 1.0, level="vec_cache")
        assert roofline.saturation_lanes(oi) == roofline.max_lanes

    def test_attainable_zero_for_ended_phase(self):
        roofline = RooflineModel()
        assert roofline.attainable(8, OIValue.ZERO) == 0.0
        assert roofline.attainable(0, OIValue.uniform(1.0)) == 0.0

    def test_net_gain_eq3(self):
        roofline = RooflineModel()
        oi = OIValue.uniform(1.0)
        gain = roofline.net_gain(4, oi)
        assert gain == pytest.approx(
            roofline.attainable(5, oi) - roofline.attainable(4, oi)
        )

    def test_low_oi_saturates_at_8_lanes(self):
        # Pure streaming with no reuse: issue meets memory at 8 lanes.
        roofline = RooflineModel.from_config(table4_config())
        for oi_value in (0.06, 0.09, 0.13, 0.22):
            assert roofline.saturation_lanes(OIValue.uniform(oi_value)) == 8


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            RooflineModel(peak_flops_per_lane=0)
        with pytest.raises(ConfigurationError):
            RooflineModel(max_lanes=0)
        with pytest.raises(ConfigurationError):
            RooflineModel(mem_bandwidths=(("l2", 64.0),))  # no dram

    def test_unknown_level_raises_not_dram_fallback(self):
        # A typo'd residency level must fail loudly: the old silent DRAM
        # fallback handed it a plausible but wrong memory ceiling.
        roofline = RooflineModel()
        with pytest.raises(ConfigurationError, match="unknown residency level"):
            roofline.bandwidth_for("l3")

    def test_known_levels_still_served(self):
        roofline = RooflineModel()
        for level in ("vec_cache", "l2", "dram"):
            assert roofline.bandwidth_for(level) > 0

    @given(st.integers(1, 32), st.floats(0.01, 4.0))
    def test_attainable_monotone_in_lanes(self, lanes, oi_value):
        roofline = RooflineModel()
        oi = OIValue.uniform(oi_value)
        assert roofline.attainable(lanes + 1, oi) >= roofline.attainable(lanes, oi)
