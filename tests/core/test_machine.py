"""The multi-core machine: end-to-end runs and policy behaviour."""

import pytest

from repro import (
    ALL_POLICIES,
    FTS,
    OCCAMY,
    PRIVATE,
    VLS,
    Job,
    Machine,
    experiment_config,
    run_policy,
)
from repro.common.errors import SimulationError
from repro.core.machine import run_policy as run_policy_fn
from tests.conftest import compiled_job, make_axpy, make_two_phase


class TestSingleCore:
    def test_solo_run_completes(self, config):
        result = run_policy(config, OCCAMY, [compiled_job(make_axpy()), None])
        assert result.total_cycles > 0
        assert result.core_cycles[1] == 0  # idle core

    def test_private_uses_half_the_lanes(self, config):
        result = run_policy(config, PRIVATE, [compiled_job(make_axpy()), None])
        lanes = result.metrics.lane_timeline[0]
        assert max(v for _, v in lanes.points) == config.lanes_per_core_private

    def test_occamy_solo_gets_all_lanes(self, config):
        kernel = make_two_phase()
        result = run_policy(config, OCCAMY, [compiled_job(kernel), None])
        lanes = result.metrics.lane_timeline[0]
        assert max(v for _, v in lanes.points) == config.vector.total_lanes

    def test_fts_runs_full_width(self, config):
        result = run_policy(config, FTS, [compiled_job(make_axpy()), None])
        lanes = result.metrics.lane_timeline[0]
        assert max(v for _, v in lanes.points) == config.vector.total_lanes


class TestTwoCores:
    def test_co_run_all_policies(self, config):
        for policy in ALL_POLICIES:
            jobs = [
                compiled_job(make_axpy(), core_id=0),
                compiled_job(make_two_phase(), core_id=1),
            ]
            result = run_policy(config, policy, jobs)
            assert all(cycles > 0 for cycles in result.core_cycles)

    def test_speedup_over(self, config):
        jobs = lambda: [
            compiled_job(make_axpy(), core_id=0),
            compiled_job(make_two_phase(), core_id=1),
        ]
        base = run_policy(config, PRIVATE, jobs())
        other = run_policy(config, OCCAMY, jobs())
        speedup = other.speedup_over(base, 1)
        assert speedup > 0

    def test_vls_partition_is_static(self, config):
        jobs = [
            compiled_job(make_axpy(), core_id=0),
            compiled_job(make_two_phase(), core_id=1),
        ]
        result = run_policy(config, VLS, jobs)
        # Each core's lane allocation takes exactly one nonzero value.
        for core in range(2):
            values = {v for _, v in result.metrics.lane_timeline[core].points if v}
            assert len(values) == 1


class TestGuards:
    def test_job_count_must_match_cores(self, config):
        with pytest.raises(SimulationError):
            Machine(config, PRIVATE, [compiled_job(make_axpy())])

    def test_max_cycles_enforced(self, config):
        with pytest.raises(SimulationError):
            run_policy_fn(config, PRIVATE, [compiled_job(make_axpy()), None], max_cycles=10)

    def test_lane_accounting_invariant_after_run(self, config):
        machine = Machine(config, OCCAMY, [compiled_job(make_axpy()), None])
        machine.run()
        machine.coproc.resource_table.check_invariant()

    def test_deterministic(self, config):
        results = []
        for _ in range(2):
            jobs = [
                compiled_job(make_axpy(), core_id=0),
                compiled_job(make_two_phase(), core_id=1),
            ]
            results.append(run_policy(config, OCCAMY, jobs).core_cycles)
        assert results[0] == results[1]
