"""OS time-slice scheduling over the elastic co-processor (§5)."""

import numpy as np
import pytest

from repro import (
    FTS,
    OCCAMY,
    PRIVATE,
    build_image,
    compile_kernel,
    reference_execute,
)
from repro.common.errors import ConfigurationError
from repro.core.machine import Job
from repro.core.scheduling import TimeSliceScheduler
from tests.conftest import make_axpy, make_reduction, make_two_phase


def jobs_for(kernels):
    return [
        Job(compile_kernel(kernel), build_image(kernel, core_id=index % 2))
        for index, kernel in enumerate(kernels)
    ]


class TestScheduling:
    def test_more_jobs_than_cores_all_finish(self, config):
        kernels = [make_axpy(400), make_two_phase(400), make_reduction(400), make_axpy(300)]
        scheduler = TimeSliceScheduler(config, OCCAMY, jobs_for(kernels), quantum=800)
        result = scheduler.run()
        assert all(cycles is not None for cycles in result.finish_cycles)
        assert result.context_switches > 0

    def test_results_correct_across_context_switches(self, config):
        kernels = [make_axpy(512, repeats=3), make_reduction(512, repeats=3),
                   make_two_phase(512)]
        jobs = jobs_for(kernels)
        expected = [
            reference_execute(kernel, job.image)
            for kernel, job in zip(kernels, jobs)
        ]
        scheduler = TimeSliceScheduler(config, OCCAMY, jobs, quantum=600)
        scheduler.run()
        for kernel, job, oracle in zip(kernels, jobs, expected):
            for name, array in oracle:
                np.testing.assert_allclose(
                    job.image.array(name), array, rtol=1e-3,
                    err_msg=f"{kernel.name}/{name} corrupted by scheduling",
                )

    def test_lane_accounting_survives_switches(self, config):
        kernels = [make_axpy(400), make_axpy(400), make_two_phase(400)]
        scheduler = TimeSliceScheduler(config, OCCAMY, jobs_for(kernels), quantum=500)
        scheduler.run()
        scheduler.coproc.resource_table.check_invariant()
        assert scheduler.coproc.lane_table.free_count == 32

    def test_exact_core_count_needs_no_switches(self, config):
        kernels = [make_axpy(300), make_axpy(300)]
        scheduler = TimeSliceScheduler(
            config, PRIVATE, jobs_for(kernels), quantum=10_000_000
        )
        result = scheduler.run()
        assert result.context_switches == 0

    def test_scheduled_cycles_accounted(self, config):
        kernels = [make_axpy(400), make_axpy(400), make_axpy(400)]
        scheduler = TimeSliceScheduler(config, PRIVATE, jobs_for(kernels), quantum=500)
        result = scheduler.run()
        assert all(cycles > 0 for cycles in result.scheduled_cycles)
        assert result.turnaround(2) >= result.scheduled_cycles[2]

    def test_temporal_policy_rejected(self, config):
        with pytest.raises(ConfigurationError):
            TimeSliceScheduler(config, FTS, jobs_for([make_axpy(200)]))

    def test_bad_quantum_rejected(self, config):
        with pytest.raises(ConfigurationError):
            TimeSliceScheduler(config, OCCAMY, jobs_for([make_axpy(200)]), quantum=10)

    def test_no_jobs_rejected(self, config):
        with pytest.raises(ConfigurationError):
            TimeSliceScheduler(config, OCCAMY, [])
