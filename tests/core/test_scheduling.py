"""OS time-slice scheduling over the elastic co-processor (§5)."""

import numpy as np
import pytest

from repro import (
    FTS,
    OCCAMY,
    PRIVATE,
    build_image,
    compile_kernel,
    reference_execute,
)
from repro.common.errors import ConfigurationError
from repro.core.machine import Job
from repro.core.scheduling import TimeSliceScheduler
from tests.conftest import make_axpy, make_reduction, make_two_phase


def jobs_for(kernels):
    return [
        Job(compile_kernel(kernel), build_image(kernel, core_id=index % 2))
        for index, kernel in enumerate(kernels)
    ]


class TestScheduling:
    def test_more_jobs_than_cores_all_finish(self, config):
        kernels = [make_axpy(400), make_two_phase(400), make_reduction(400), make_axpy(300)]
        scheduler = TimeSliceScheduler(config, OCCAMY, jobs_for(kernels), quantum=800)
        result = scheduler.run()
        assert all(cycles is not None for cycles in result.finish_cycles)
        assert result.context_switches > 0

    def test_results_correct_across_context_switches(self, config):
        kernels = [make_axpy(512, repeats=3), make_reduction(512, repeats=3),
                   make_two_phase(512)]
        jobs = jobs_for(kernels)
        expected = [
            reference_execute(kernel, job.image)
            for kernel, job in zip(kernels, jobs)
        ]
        scheduler = TimeSliceScheduler(config, OCCAMY, jobs, quantum=600)
        scheduler.run()
        for kernel, job, oracle in zip(kernels, jobs, expected):
            for name, array in oracle:
                np.testing.assert_allclose(
                    job.image.array(name), array, rtol=1e-3,
                    err_msg=f"{kernel.name}/{name} corrupted by scheduling",
                )

    def test_lane_accounting_survives_switches(self, config):
        kernels = [make_axpy(400), make_axpy(400), make_two_phase(400)]
        scheduler = TimeSliceScheduler(config, OCCAMY, jobs_for(kernels), quantum=500)
        scheduler.run()
        scheduler.coproc.resource_table.check_invariant()
        assert scheduler.coproc.lane_table.free_count == 32

    def test_exact_core_count_needs_no_switches(self, config):
        kernels = [make_axpy(300), make_axpy(300)]
        scheduler = TimeSliceScheduler(
            config, PRIVATE, jobs_for(kernels), quantum=10_000_000
        )
        result = scheduler.run()
        assert result.context_switches == 0

    def test_scheduled_cycles_accounted(self, config):
        kernels = [make_axpy(400), make_axpy(400), make_axpy(400)]
        scheduler = TimeSliceScheduler(config, PRIVATE, jobs_for(kernels), quantum=500)
        result = scheduler.run()
        assert all(cycles > 0 for cycles in result.scheduled_cycles)
        assert result.turnaround(2) >= result.scheduled_cycles[2]

    def test_temporal_policy_rejected(self, config):
        with pytest.raises(ConfigurationError):
            TimeSliceScheduler(config, FTS, jobs_for([make_axpy(200)]))

    def test_bad_quantum_rejected(self, config):
        with pytest.raises(ConfigurationError):
            TimeSliceScheduler(config, OCCAMY, jobs_for([make_axpy(200)]), quantum=10)

    def test_no_jobs_rejected(self, config):
        with pytest.raises(ConfigurationError):
            TimeSliceScheduler(config, OCCAMY, [])


class TestHierarchicalWheel:
    """The two-level wake index is a drop-in for the flat wheel."""

    def test_matches_flat_wheel_on_randomized_schedules(self):
        import random

        from repro.core.scheduling import EventWheel, HierarchicalEventWheel

        for seed in range(20):
            rng = random.Random(seed)
            flat = EventWheel()
            hier = HierarchicalEventWheel(group_size=rng.choice((1, 2, 4, 7)))
            clock = 0
            for _ in range(300):
                action = rng.random()
                component = rng.randrange(64)
                if action < 0.55:
                    cycle = clock + rng.randrange(1, 400)
                    flat.schedule(component, cycle)
                    hier.schedule(component, cycle)
                elif action < 0.75:
                    flat.cancel(component)
                    hier.cancel(component)
                else:
                    # Advance to (or past) the next wake and pop, the way
                    # the tickless run loop drives the wheel.
                    target = flat.next_wake()
                    assert hier.next_wake() == target
                    if target is None:
                        continue
                    clock = target + rng.choice((0, 0, 0, 3, 17))
                    assert hier.due(clock) == flat.due(clock)
                assert len(hier) == len(flat)
                assert hier.wake_of(component) == flat.wake_of(component)
                assert hier.next_wake() == flat.next_wake()
            # Drain both: the full remaining wake sequence must agree.
            while flat.next_wake() is not None:
                target = flat.next_wake()
                assert hier.next_wake() == target
                assert hier.due(target) == flat.due(target)
            assert hier.next_wake() is None
            assert len(hier) == 0

    def test_reschedule_overrides_stale_heap_entries(self):
        from repro.core.scheduling import HierarchicalEventWheel

        wheel = HierarchicalEventWheel(group_size=4)
        wheel.schedule(5, 100)
        wheel.schedule(5, 40)  # moves earlier: old entry is stale
        assert wheel.next_wake() == 40
        assert wheel.due(40) == [5]
        wheel.schedule(6, 10)
        wheel.schedule(6, 500)  # moves later: earlier entry is stale
        assert wheel.next_wake() == 500
        assert wheel.due(10) == []
        assert wheel.due(500) == [6]

    def test_bad_group_size_rejected(self):
        from repro.core.scheduling import HierarchicalEventWheel

        with pytest.raises(ConfigurationError):
            HierarchicalEventWheel(group_size=0)

    def test_machine_fingerprint_identical_with_and_without(
        self, config, monkeypatch
    ):
        from repro.core.machine import Machine
        from repro.core.policies import policy
        from tests.conftest import compiled_job, run_fingerprint

        def run():
            jobs = [
                compiled_job(make_axpy(2048), 0),
                compiled_job(make_reduction(256, 8), 1),
            ]
            machine = Machine(config, policy("occamy"), jobs)
            return run_fingerprint(machine.run())

        monkeypatch.delenv("REPRO_NO_HIER_WHEEL", raising=False)
        with_hier = run()
        monkeypatch.setenv("REPRO_NO_HIER_WHEEL", "1")
        without = run()
        assert with_hier == without

    def test_kill_switch_latches_at_construction(self, config, monkeypatch):
        from repro.core.machine import Machine
        from repro.core.policies import policy
        from tests.conftest import compiled_job

        jobs = [compiled_job(make_axpy(128), 0), None]
        monkeypatch.setenv("REPRO_NO_HIER_WHEEL", "1")
        machine = Machine(config, policy("occamy"), jobs)
        assert machine._hier_wheel is False
        monkeypatch.delenv("REPRO_NO_HIER_WHEEL", raising=False)
        assert machine._hier_wheel is False  # latched, not re-read
        machine = Machine(config, policy("occamy"), jobs)
        assert machine._hier_wheel is True

    def test_hier_wheel_requires_event_wheel(self, config, monkeypatch):
        from repro.core.machine import Machine
        from repro.core.policies import policy
        from tests.conftest import compiled_job

        monkeypatch.setenv("REPRO_NO_EVENT_WHEEL", "1")
        monkeypatch.delenv("REPRO_NO_HIER_WHEEL", raising=False)
        jobs = [compiled_job(make_axpy(128), 0), None]
        machine = Machine(config, policy("occamy"), jobs)
        assert machine._hier_wheel is False
