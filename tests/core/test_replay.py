"""The steady-state loop-replay engine (busy-cycle fast path, level 2)."""

import pytest

from repro.core.machine import Machine, run_policy
from repro.core.policies import OCCAMY
from repro.core.replay import (
    FUTILE_PROBE_LIMIT,
    MAX_PROBE_STRIDE,
    ReplayController,
    ReplayProfile,
    default_loop_replay,
)
from tests.conftest import compiled_job, make_axpy, run_fingerprint

#: A solo steady loop the engine reliably locks onto: the length divides
#: the 48-element per-iteration chunk (12 lanes * 4 fp32), so array
#: passes contain no narrower tail load to break the timing period.
STEADY_LENGTH = 6144
STEADY_REPEATS = 8


def _steady_jobs():
    return [compiled_job(make_axpy(STEADY_LENGTH, STEADY_REPEATS), 0), None]


class TestEngagement:
    def test_steady_loop_replays(self, config):
        machine = Machine(config, OCCAMY, _steady_jobs())
        machine.run()
        profile = machine.profile
        assert profile.templates_built > 0
        assert profile.replayed_periods > 0
        assert profile.replayed_cycles > 0

    def test_profile_attribution_sums_to_total(self, config):
        machine = Machine(config, OCCAMY, _steady_jobs())
        machine.run()
        profile = machine.profile
        assert (
            profile.interpreted_cycles
            + profile.fastforward_cycles
            + profile.replayed_cycles
            == profile.total_cycles
        )
        assert "loop-replayed" in profile.report()

    def test_profile_merge_accumulates(self):
        total = ReplayProfile()
        part = ReplayProfile(
            total_cycles=10, replayed_cycles=4, replayed_periods=2
        )
        total.merge(part)
        total.merge(part)
        assert total.total_cycles == 20
        assert total.replayed_cycles == 8
        assert total.replayed_periods == 4


class TestBitExactness:
    def test_replay_matches_slow_path(self, config):
        slow = run_policy(config, OCCAMY, _steady_jobs(), fast_path=False)
        fast = run_policy(config, OCCAMY, _steady_jobs(), fast_path=True)
        assert run_fingerprint(fast) == run_fingerprint(slow)

    def test_aperiodic_tail_still_exact(self, config):
        # 4000 is not divisible by the 48-element iteration chunk: every
        # array pass ends in a narrower tail load the template cannot
        # script.  Replay must abort at the tail and fall back bit-exactly.
        def jobs():
            return [compiled_job(make_axpy(4000, 4), 0), None]

        slow = run_policy(config, OCCAMY, jobs(), fast_path=False)
        fast = run_policy(config, OCCAMY, jobs(), fast_path=True)
        assert run_fingerprint(fast) == run_fingerprint(slow)

    def test_env_kill_switch(self, monkeypatch, config):
        monkeypatch.setenv("REPRO_NO_LOOP_REPLAY", "1")
        assert default_loop_replay() is False
        machine = Machine(config, OCCAMY, _steady_jobs())
        disabled = machine.run()
        assert machine.profile.replayed_cycles == 0
        monkeypatch.delenv("REPRO_NO_LOOP_REPLAY")
        assert default_loop_replay() is True
        enabled = run_policy(config, OCCAMY, _steady_jobs())
        assert run_fingerprint(enabled) == run_fingerprint(disabled)


class TestFutilityBackoff:
    """Workloads whose state never recurs must stop paying for probes."""

    def test_stride_doubles_at_limit_and_caps(self, config):
        controller = ReplayController(Machine(config, OCCAMY, _steady_jobs()))
        for _ in range(FUTILE_PROBE_LIMIT):
            controller._note_futile(1)
        assert controller._probe_stride == 2
        for _ in range(64):
            controller._note_futile(FUTILE_PROBE_LIMIT)
        assert controller._probe_stride == MAX_PROBE_STRIDE

    def test_stride_gates_backedge_probes(self, config):
        controller = ReplayController(Machine(config, OCCAMY, _steady_jobs()))
        controller._probe_stride = 4
        armed = 0
        for cycle in range(16):
            controller.on_backedge(0, 10, 2, cycle)
            if controller._probe_at >= 0:
                armed += 1
                controller._probe_at = -1
        assert armed == 4
