"""The pairing-policy family: determinism, partitions, OI shaping."""

from __future__ import annotations

import pytest

from repro.alloc import ALLOC_POLICIES_BY_KEY, ALLOC_POLICY_KEYS
from repro.alloc.placement import ThreadSpec
from repro.alloc.policies import (
    AllocContext,
    OiBalanceAllocation,
    OiPackAllocation,
    RandomAllocation,
    RoundRobinAllocation,
    thread_demand,
)
from repro.common.errors import ConfigurationError

from tests.conftest import make_axpy, make_two_phase


def _threads(count=4, kernel=None):
    kernel = kernel or make_axpy(length=64)
    return [ThreadSpec(key=f"t:{i:02d}", kernel=kernel) for i in range(count)]


def _mixed_threads():
    """Two bandwidth-hungry streaming threads + two compute-dense ones."""
    streaming = make_axpy(length=4096)
    compute = make_two_phase(length=256)
    return [
        ThreadSpec(key="mem:00", kernel=streaming),
        ThreadSpec(key="mem:01", kernel=streaming),
        ThreadSpec(key="cmp:02", kernel=compute),
        ThreadSpec(key="cmp:03", kernel=compute),
    ]


def test_registry_is_complete_and_consistent():
    assert ALLOC_POLICY_KEYS == (
        "random",
        "round-robin",
        "oi-balance",
        "oi-pack",
        "symbiosis",
    )
    for key, policy in ALLOC_POLICIES_BY_KEY.items():
        assert policy.key == key
        assert policy.label


@pytest.mark.parametrize("key", [k for k in ALLOC_POLICY_KEYS if k != "symbiosis"])
def test_every_policy_returns_a_canonical_partition(key):
    threads = _threads(6)
    placement = ALLOC_POLICIES_BY_KEY[key](threads)
    assert len(placement) == 3
    flat = sorted(index for group in placement for index in group)
    assert flat == list(range(6))
    for group in placement:
        assert list(group) == sorted(group)  # keys equal-width, so index order


def test_random_is_seed_deterministic():
    threads = _threads(8)
    policy = RandomAllocation()
    a = policy(threads, AllocContext(seed=7))
    b = policy(threads, AllocContext(seed=7))
    assert a == b
    different = {policy(threads, AllocContext(seed=s)) for s in range(6)}
    assert len(different) > 1  # the seed actually matters


def test_round_robin_deals_in_arrival_order():
    threads = _threads(6)
    placement = RoundRobinAllocation()(threads)
    assert placement == ((0, 3), (1, 4), (2, 5))


def test_oi_balance_mixes_and_oi_pack_separates():
    threads = _mixed_threads()
    context = AllocContext()
    config = context.complex_config()
    demands = {t.key: thread_demand(t, config) for t in threads}
    assert demands["mem:00"] != demands["cmp:02"]  # the axis is real

    kinds = lambda group: {threads[i].key.split(":")[0] for i in group}
    balanced = OiBalanceAllocation()(threads, context)
    for group in balanced:
        assert kinds(group) == {"mem", "cmp"}  # one of each per complex
    packed = OiPackAllocation()(threads, context)
    for group in packed:
        assert len(kinds(group)) == 1  # likes packed with likes


def test_policies_reject_uneven_thread_counts():
    with pytest.raises(ConfigurationError, match="evenly"):
        RoundRobinAllocation()(_threads(5))
