"""Placement primitives: canonical form, validation, labels."""

from __future__ import annotations

import pytest

from repro.alloc.placement import (
    ThreadSpec,
    canonical_placement,
    num_complexes,
    placement_labels,
    thread_order,
    validate_placement,
)
from repro.common.errors import ConfigurationError

from tests.conftest import make_axpy


def _threads(*keys):
    kernel = make_axpy(length=64)
    return [ThreadSpec(key=key, kernel=kernel) for key in keys]


def test_thread_order_sorts_by_key_then_index():
    threads = _threads("b", "a", "a")
    assert thread_order(threads) == (1, 2, 0)


def test_canonical_placement_is_order_irrelevant():
    threads = _threads("a", "b", "c", "d")
    forward = canonical_placement(threads, [(0, 1), (2, 3)])
    shuffled = canonical_placement(threads, [(3, 2), (1, 0)])
    assert forward == shuffled == ((0, 1), (2, 3))


def test_canonical_placement_orders_complexes_by_member_keys():
    threads = _threads("d", "c", "b", "a")
    placement = canonical_placement(threads, [(0, 1), (2, 3)])
    # complex holding "a"/"b" (indices 3/2) sorts first
    assert placement == ((3, 2), (1, 0))


def test_num_complexes_validates():
    threads = _threads("a", "b", "c")
    with pytest.raises(ConfigurationError, match="evenly"):
        num_complexes(threads, 2)
    with pytest.raises(ConfigurationError, match="positive"):
        num_complexes(threads, 0)
    with pytest.raises(ConfigurationError, match="at least one"):
        num_complexes([], 2)
    assert num_complexes(_threads("a", "b", "c", "d"), 2) == 2


def test_validate_placement_names_the_violation():
    threads = _threads("a", "b", "c", "d")
    good = ((0, 1), (2, 3))
    assert validate_placement(threads, good) is good
    with pytest.raises(ConfigurationError, match="expected 2"):
        validate_placement(threads, ((0, 1, 2, 3),))
    with pytest.raises(ConfigurationError, match="member"):
        validate_placement(threads, ((0, 1, 2), (3,)))
    with pytest.raises(ConfigurationError, match="more than once"):
        validate_placement(threads, ((0, 1), (1, 2)))
    with pytest.raises(ConfigurationError, match="outside"):
        validate_placement(threads, ((0, 1), (2, 9)))


def test_placement_labels():
    threads = _threads("spec:06", "spec:15", "spec:15", "spec:16")
    placement = canonical_placement(threads, [(0, 3), (1, 2)])
    assert placement_labels(threads, placement) == (
        "spec:06+spec:16",
        "spec:15+spec:15",
    )
