"""Symbiosis matrix + matching solver: bounds, determinism, calibration."""

from __future__ import annotations

import random

import pytest

from repro.alloc.placement import ThreadSpec
from repro.alloc.policies import AllocContext
from repro.alloc.symbiosis import (
    MatrixEntry,
    SymbiosisAllocation,
    build_matrix,
    calibrate_matrix,
    expected_random_matching_weight,
    matching_weight,
    matrix_key,
    solve_pairing,
)
from repro.analysis import result_cache
from repro.common.errors import ConfigurationError

from tests.conftest import make_axpy, make_reduction, make_stencil


def _threads():
    return [
        ThreadSpec(key="axpy:00", kernel=make_axpy(length=256)),
        ThreadSpec(key="axpy:01", kernel=make_axpy(length=256)),
        ThreadSpec(key="red:02", kernel=make_reduction(length=256, repeats=4)),
        ThreadSpec(key="sten:03", kernel=make_stencil(length=256)),
    ]


def _random_weights(rng, n):
    weights = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            weights[i][j] = weights[j][i] = rng.uniform(-5.0, 5.0)
    return weights


# --- the solver --------------------------------------------------------------


@pytest.mark.parametrize("seed", range(20))
@pytest.mark.parametrize("n", (4, 8, 12))
def test_matching_never_below_random_expectation(seed, n):
    """The 2-opt fixed point's guarantee: W >= S/(n-1), the expected
    weight of a uniform random perfect matching (property test)."""
    weights = _random_weights(random.Random(seed), n)
    pairs = solve_pairing(weights)
    assert len(pairs) == n // 2
    matched = sorted(v for pair in pairs for v in pair)
    assert matched == list(range(n))
    assert matching_weight(weights, pairs) >= (
        expected_random_matching_weight(weights) - 1e-9
    )


def test_solver_is_deterministic_and_finds_the_obvious_matching():
    # One dominant matching: (0,1) and (2,3) weigh far more than any cross.
    weights = [
        [0.0, 10.0, 1.0, 1.0],
        [10.0, 0.0, 1.0, 1.0],
        [1.0, 1.0, 0.0, 10.0],
        [1.0, 1.0, 10.0, 0.0],
    ]
    assert solve_pairing(weights) == ((0, 1), (2, 3))
    assert solve_pairing(weights) == solve_pairing([row[:] for row in weights])


def test_solver_escapes_a_bad_greedy_seed():
    # Greedy grabs (1,2) (weight 10) then is stuck with (0,3) (0) = 10;
    # the 2-opt swap to (0,1),(2,3) scores 9+9=18.
    weights = [
        [0.0, 9.0, 0.0, 0.0],
        [9.0, 0.0, 10.0, 0.0],
        [0.0, 10.0, 0.0, 9.0],
        [0.0, 0.0, 9.0, 0.0],
    ]
    pairs = solve_pairing(weights)
    assert matching_weight(weights, pairs) == 18.0


def test_solver_input_validation():
    with pytest.raises(ConfigurationError, match="even"):
        solve_pairing([[0.0] * 3 for _ in range(3)])
    with pytest.raises(ConfigurationError, match="square"):
        solve_pairing([[0.0, 1.0], [0.0]])
    assert solve_pairing([]) == ()


def test_expected_random_matching_weight():
    weights = [
        [0.0, 1.0, 2.0, 3.0],
        [1.0, 0.0, 4.0, 5.0],
        [2.0, 4.0, 0.0, 6.0],
        [3.0, 5.0, 6.0, 0.0],
    ]
    # S = 21 over n-1 = 3
    assert expected_random_matching_weight(weights) == pytest.approx(7.0)
    assert expected_random_matching_weight([[0.0]]) == 0.0


# --- the matrix --------------------------------------------------------------


def test_matrix_entry_weight_and_cost():
    entry = MatrixEntry(drains=(100.0, 200.0), source="ecm")
    assert entry.cost == 200.0
    import math

    assert entry.weight == pytest.approx(-(math.log(100.0) + math.log(200.0)))
    assert matrix_key("b", "a") == ("a", "b")


def test_matrix_is_deterministic_under_identical_priors():
    threads = _threads()
    context = AllocContext()
    first = build_matrix(threads, context)
    second = build_matrix(threads, context)
    assert first == second
    # Symmetric lookup, and dedup: the two axpy threads share one entry.
    assert first.entry("red:02", "axpy:00") is not None
    assert first.weight("axpy:00", "red:02") == first.weight("red:02", "axpy:00")
    keys = [key for key, _ in first.entries]
    assert len(keys) == len(set(keys))
    with pytest.raises(ConfigurationError, match="no entry"):
        first.cost("axpy:00", "nope:99")


def test_symbiosis_placement_is_valid_and_deterministic():
    threads = _threads()
    policy = SymbiosisAllocation()
    placement = policy(threads)
    assert placement == policy(threads)
    flat = sorted(index for group in placement for index in group)
    assert flat == list(range(4))
    with pytest.raises(ConfigurationError, match="even"):
        policy(threads[:3])
    with pytest.raises(ConfigurationError, match="complex"):
        policy.place(threads, AllocContext(complex_size=4))


# --- calibration -------------------------------------------------------------


def test_calibrated_entries_round_trip_through_the_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "calib"))
    threads = [
        ThreadSpec(key="axpy:00", kernel=make_axpy(length=64)),
        ThreadSpec(key="red:01", kernel=make_reduction(length=64)),
    ]
    context = AllocContext(calibrate=True)
    cold = calibrate_matrix(threads, context)
    assert all(entry.source == "measured" for _, entry in cold.entries)
    disk = result_cache.default_cache()
    assert len(disk) == len(cold.entries)  # one entry per candidate pair
    hits_before = disk.hits
    warm = calibrate_matrix(threads, context)
    assert warm == cold  # bit-identical drains from the cached runs
    assert disk.hits == hits_before + len(cold.entries)


def test_calibration_keys_are_namespaced_away_from_ordinary_runs(config):
    """The alloc ingredient keeps micro co-runs from colliding with (or
    serving) ordinary complex simulations of the same jobs."""
    from tests.conftest import compiled_job

    jobs = [compiled_job(make_axpy(length=64)), None]
    plain = result_cache.simulation_key(config, "occamy", jobs)
    calib = result_cache.simulation_key(
        config, "occamy", jobs, alloc="symbiosis-calib:occamy"
    )
    assert plain != calib
