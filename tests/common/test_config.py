"""Configuration (Table 4) validation and scaling."""

import pytest

from repro.common.config import (
    CacheConfig,
    CoreConfig,
    MachineConfig,
    MemoryConfig,
    VectorConfig,
    describe,
    experiment_config,
    table4_config,
)
from repro.common.errors import ConfigurationError


class TestTable4Defaults:
    def test_two_cores_32_lanes(self):
        config = table4_config()
        assert config.num_cores == 2
        assert config.vector.total_lanes == 32
        assert config.lanes_per_core_private == 16

    def test_vector_issue_width_is_four(self):
        config = table4_config()
        assert config.vector.issue_width == 4
        assert config.vector.compute_issue_width == 2
        assert config.vector.ldst_issue_width == 2

    def test_memory_hierarchy_latencies(self):
        memory = table4_config().memory
        assert memory.vec_cache.latency == 5
        assert memory.l2.latency == 18
        assert memory.vec_cache.size_bytes == 128 * 1024
        assert memory.l2.size_bytes == 8 * 1024 * 1024

    def test_dram_is_32_bytes_per_cycle(self):
        # 64 GB/s at 2 GHz.
        assert table4_config().memory.dram_bytes_per_cycle == 32

    def test_line_size_uniform(self):
        assert table4_config().memory.line_bytes == 64

    def test_describe_rows(self):
        rows = describe(table4_config())
        assert rows["lanes"][0] == 32
        assert rows["cores"][0] == 2


class TestScaling:
    def test_scale_to_four_cores_keeps_lanes_per_core(self):
        config = table4_config(num_cores=4)
        assert config.num_cores == 4
        assert config.vector.total_lanes == 64
        assert config.lanes_per_core_private == 16

    def test_experiment_config_smaller_caches_same_timing(self):
        config = experiment_config()
        table4 = table4_config()
        assert config.memory.vec_cache.size_bytes < table4.memory.vec_cache.size_bytes
        assert config.memory.l2.size_bytes < table4.memory.l2.size_bytes
        assert config.memory.vec_cache.latency == table4.memory.vec_cache.latency
        assert config.memory.l2.latency == table4.memory.l2.latency
        assert config.memory.dram_bytes_per_cycle == table4.memory.dram_bytes_per_cycle

    def test_replace(self):
        config = table4_config().replace(frequency_ghz=3.0)
        assert config.frequency_ghz == 3.0
        assert config.num_cores == 2

    def test_scale_to_larger_sweep_sizes(self):
        for num_cores in (8, 16, 32):
            config = table4_config().scaled_to_cores(num_cores)
            assert config.num_cores == num_cores
            assert config.lanes_per_core_private == 16

    def test_indivisible_lane_pool_rejected_with_both_values(self):
        # __post_init__ already rejects indivisible configs, so forge one
        # (as a corrupted/monkeypatched config would) to prove the scaling
        # path refuses to truncate rather than silently shrinking the
        # per-core lane budget.
        config = table4_config()
        object.__setattr__(config, "num_cores", 3)
        with pytest.raises(ConfigurationError) as excinfo:
            config.scaled_to_cores(8)
        assert "32" in str(excinfo.value)
        assert "3" in str(excinfo.value)


class TestValidation:
    def test_cache_size_must_divide(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1000, ways=8, line_bytes=64)

    def test_cache_positive_dimensions(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=0, ways=8)

    def test_num_sets(self):
        cache = CacheConfig(size_bytes=8192, ways=8, line_bytes=64)
        assert cache.num_sets == 16

    def test_lanes_must_divide_cores(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(num_cores=3, vector=VectorConfig(total_lanes=32))

    def test_vregs_must_exceed_arch(self):
        with pytest.raises(ConfigurationError):
            VectorConfig(vregs_per_block=16, arch_vregs=32)

    def test_core_parameters_positive(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(scalar_ipc=0)

    def test_dram_latency_positive(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(dram_latency=0)

    def test_line_size_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(
                vec_cache=CacheConfig(size_bytes=8192, ways=8, line_bytes=32),
                l2=CacheConfig(size_bytes=65536, ways=16, line_bytes=64),
            )


class TestVectorConfigCeilings:
    def test_fp_peak_scales_with_lanes(self):
        vector = VectorConfig()
        assert vector.fp_peak(8) == 2 * vector.fp_peak(4)

    def test_issue_bandwidth_eq2(self):
        # Eq. 2: width * vl * 16 bytes.
        vector = VectorConfig()
        assert vector.simd_issue_bandwidth(4) == 2 * 4 * 16


class TestValidateCoreCounts:
    """Satellite: --cores values are validated everywhere they appear."""

    def test_accepts_ints_and_numeric_strings(self):
        from repro.common.config import validate_core_count, validate_core_counts

        assert validate_core_count(4) == 4
        assert validate_core_count("16") == 16
        assert validate_core_counts(["2", 4, "8"]) == (2, 4, 8)

    def test_rejects_non_integers_naming_the_value(self):
        from repro.common.config import validate_core_count

        with pytest.raises(ConfigurationError, match="'4x'"):
            validate_core_count("4x")
        with pytest.raises(ConfigurationError, match="2.5"):
            validate_core_count(2.5)
        with pytest.raises(ConfigurationError, match="True"):
            validate_core_count(True)

    def test_rejects_non_positive(self):
        from repro.common.config import validate_core_count

        with pytest.raises(ConfigurationError, match="got 0"):
            validate_core_count(0)
        with pytest.raises(ConfigurationError, match="got -2"):
            validate_core_count(-2)

    def test_rejects_duplicates_and_empty(self):
        from repro.common.config import validate_core_counts

        with pytest.raises(ConfigurationError, match="duplicate core count 8"):
            validate_core_counts([4, 8, "8"])
        with pytest.raises(ConfigurationError, match="at least one"):
            validate_core_counts([])

    def test_names_the_source_flag(self):
        from repro.common.config import validate_core_counts

        with pytest.raises(ConfigurationError, match="--alloc-cores"):
            validate_core_counts(["x"], source="--alloc-cores")
