"""The exception hierarchy: every library error is a ReproError."""

import pytest

from repro.common.errors import (
    AssemblyError,
    CompilationError,
    ConfigurationError,
    DeadlockError,
    ProtocolError,
    ReproError,
    SimulationError,
    VectorizationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            AssemblyError,
            CompilationError,
            ConfigurationError,
            DeadlockError,
            ProtocolError,
            SimulationError,
            VectorizationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_vectorization_is_compilation(self):
        # Callers catching compiler failures get vectorizer failures too.
        assert issubclass(VectorizationError, CompilationError)

    def test_deadlock_and_protocol_are_simulation(self):
        assert issubclass(DeadlockError, SimulationError)
        assert issubclass(ProtocolError, SimulationError)

    def test_one_except_clause_catches_everything(self):
        for exc in (AssemblyError, ProtocolError, VectorizationError):
            with pytest.raises(ReproError):
                raise exc("boom")

    def test_layers_distinguishable(self):
        # A simulation error must not be swallowed by compiler handlers.
        assert not issubclass(SimulationError, CompilationError)
        assert not issubclass(CompilationError, SimulationError)
