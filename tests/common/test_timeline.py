"""BucketSeries and Timeline behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.common.timeline import BucketSeries, Timeline


class TestBucketSeries:
    def test_bucket_assignment(self):
        series = BucketSeries(bucket_cycles=10)
        series.add(0, 1.0)
        series.add(9, 3.0)
        series.add(10, 5.0)
        assert series.averages() == [2.0, 5.0]
        assert series.totals() == [4.0, 5.0]

    def test_empty_buckets_average_zero(self):
        series = BucketSeries(bucket_cycles=10)
        series.add(25, 4.0)
        assert series.averages() == [0.0, 0.0, 4.0]

    def test_iteration_yields_bucket_starts(self):
        series = BucketSeries(bucket_cycles=100)
        series.add(150, 2.0)
        assert list(series) == [(0, 0.0), (100, 2.0)]

    def test_rejects_nonpositive_bucket(self):
        with pytest.raises(ValueError):
            BucketSeries(bucket_cycles=0)

    @given(st.lists(st.tuples(st.integers(0, 10_000), st.floats(0, 100)), max_size=50))
    def test_total_mass_preserved(self, samples):
        series = BucketSeries(bucket_cycles=128)
        for cycle, value in samples:
            series.add(cycle, value)
        assert sum(series.totals()) == pytest.approx(sum(v for _, v in samples))


class TestTimeline:
    def test_value_at(self):
        timeline = Timeline()
        timeline.record(10, 8)
        timeline.record(20, 12)
        assert timeline.value_at(5) == 0
        assert timeline.value_at(10) == 8
        assert timeline.value_at(19) == 8
        assert timeline.value_at(25) == 12

    def test_same_cycle_overwrites(self):
        timeline = Timeline()
        timeline.record(10, 8)
        timeline.record(10, 16)
        assert timeline.points == ((10, 16),)

    def test_duplicate_value_coalesced(self):
        timeline = Timeline()
        timeline.record(10, 8)
        timeline.record(20, 8)
        assert len(timeline) == 1

    def test_rejects_time_travel(self):
        timeline = Timeline()
        timeline.record(10, 8)
        with pytest.raises(ValueError):
            timeline.record(5, 4)

    def test_integrate(self):
        timeline = Timeline()
        timeline.record(0, 2)
        timeline.record(10, 4)
        # 10 cycles at 2 plus 10 cycles at 4.
        assert timeline.integrate(0, 20) == 60

    def test_integrate_partial_window(self):
        timeline = Timeline()
        timeline.record(0, 2)
        timeline.record(10, 4)
        assert timeline.integrate(5, 15) == 5 * 2 + 5 * 4

    def test_integrate_empty(self):
        assert Timeline().integrate(0, 100) == 0
        timeline = Timeline()
        timeline.record(0, 3)
        assert timeline.integrate(10, 10) == 0
