"""Instruction validation, classification and disassembly."""

import pytest

from repro.isa.instructions import (
    MRS,
    MSR,
    AddVL,
    Branch,
    Halt,
    InstructionClass,
    Label,
    ScalarOp,
    VHReduce,
    VLoad,
    VOp,
    VStore,
    WhileLT,
)
from repro.isa.operands import Imm, PReg, ScalarRef, VReg
from repro.isa.registers import DECISION, VL


class TestClassification:
    def test_scalar_family(self):
        assert ScalarOp("mov", "X0", (Imm(1),)).iclass is InstructionClass.SCALAR
        assert Branch("al", "top").iclass is InstructionClass.SCALAR
        assert AddVL("Xi", "Xi").iclass is InstructionClass.SCALAR
        assert Halt().iclass is InstructionClass.SCALAR

    def test_sve_families(self):
        load = VLoad(VReg("z0"), "a", "Xi")
        store = VStore(VReg("z0"), "a", "Xi")
        compute = VOp("add", VReg("z2"), (VReg("z0"), VReg("z1")))
        assert load.iclass is InstructionClass.SVE_LDST
        assert store.iclass is InstructionClass.SVE_LDST
        assert compute.iclass is InstructionClass.SVE_COMPUTE
        assert load.is_load and not store.is_load

    def test_emsimd_family(self):
        assert MSR(VL, Imm(4)).iclass is InstructionClass.EM_SIMD
        assert MRS("X0", DECISION).iclass is InstructionClass.EM_SIMD

    def test_is_vector(self):
        assert MSR(VL, Imm(4)).is_vector
        assert VLoad(VReg("z0"), "a", "Xi").is_vector
        assert not ScalarOp("mov", "X0", (Imm(1),)).is_vector


class TestValidation:
    def test_scalar_op_arity(self):
        with pytest.raises(ValueError):
            ScalarOp("add", "X0", (Imm(1),))
        with pytest.raises(ValueError):
            ScalarOp("mov", "X0", (Imm(1), Imm(2)))

    def test_unknown_scalar_op(self):
        with pytest.raises(ValueError):
            ScalarOp("xor", "X0", (Imm(1), Imm(2)))

    def test_branch_needs_comparands(self):
        with pytest.raises(ValueError):
            Branch("eq", "top")

    def test_unknown_branch_cond(self):
        with pytest.raises(ValueError):
            Branch("??", "top", "X0", "X1")

    def test_vop_arity(self):
        with pytest.raises(ValueError):
            VOp("fma", VReg("z0"), (VReg("z1"), VReg("z2")))
        with pytest.raises(ValueError):
            VOp("neg", VReg("z0"), (VReg("z1"), VReg("z2")))

    def test_unknown_vop(self):
        with pytest.raises(ValueError):
            VOp("bogus", VReg("z0"), (VReg("z1"), VReg("z2")))

    def test_reduction_ops(self):
        with pytest.raises(ValueError):
            VHReduce("mul", "X0", VReg("z0"))

    def test_operand_name_conventions(self):
        with pytest.raises(ValueError):
            VReg("x0")
        with pytest.raises(ValueError):
            PReg("z0")


class TestProperties:
    def test_flops_per_element(self):
        assert VOp("fma", VReg("z0"), (VReg("z1"), VReg("z2"), VReg("z3"))).flops_per_element == 2
        assert VOp("add", VReg("z0"), (VReg("z1"), VReg("z2"))).flops_per_element == 1
        assert VOp("dup", VReg("z0"), (Imm(0.0),)).flops_per_element == 0

    def test_long_latency_ops(self):
        assert VOp("div", VReg("z0"), (VReg("z1"), VReg("z2"))).is_long_latency
        assert VOp("sqrt", VReg("z0"), (VReg("z1"),)).is_long_latency
        assert not VOp("mul", VReg("z0"), (VReg("z1"), VReg("z2"))).is_long_latency


class TestDisassembly:
    def test_texts(self):
        assert "msr <VL>" in MSR(VL, "X2").text()
        assert "mrs X4, <decision>" == MRS("X4", DECISION).text()
        assert "whilelt" in WhileLT(PReg("p0"), "Xi", "Xn").text()
        assert "ld1w" in VLoad(VReg("z1"), "a", "Xi").text()
        assert "st1w" in VStore(VReg("z1"), "a", "Xi").text()
        assert "(p0)" in VOp("add", VReg("z0"), (VReg("z1"), VReg("z2")), pred=PReg("p0")).text()
        assert Label("top").text() == "top:"
