"""The textual assembler (round trips, errors, Fig. 9 snippets)."""

import pytest

from repro.common.errors import AssemblyError
from repro.isa.assembler import assemble, parse_line
from repro.isa.instructions import (
    MRS,
    MSR,
    AddVL,
    Branch,
    Halt,
    ScalarOp,
    VHReduce,
    VLoad,
    VOp,
    VStore,
    WhileLT,
)
from repro.isa.operands import Imm, PReg, ScalarRef, VReg
from repro.isa.registers import OIValue, SystemRegister

FIG9_RETRY_LOOP = """
// Fig. 9: Vector Length Reconfiguration
L3: msr <VL>, X2
    mrs X3, <status>
    b.ne X3, #1, L3
    halt
"""


class TestParseLine:
    def test_scalar_ops(self):
        instr = parse_line("add Xi, Xi, #4")
        assert isinstance(instr, ScalarOp)
        assert instr.srcs == ("Xi", Imm(4))

    def test_mov_immediate_float(self):
        instr = parse_line("mov Xa, #0.5")
        assert instr.srcs == (Imm(0.5),)

    def test_msr_oi_pair(self):
        instr = parse_line("msr <OI>, #(0.5, 0.25)")
        assert isinstance(instr, MSR)
        assert instr.src == Imm(OIValue(0.5, 0.25))

    def test_mrs(self):
        instr = parse_line("mrs X4, <decision>")
        assert isinstance(instr, MRS)
        assert instr.sysreg is SystemRegister.DECISION

    def test_branches(self):
        assert parse_line("b top") == Branch("al", "top")
        cond = parse_line("b.ge Xi, Xn, exit")
        assert cond == Branch("ge", "exit", "Xi", "Xn")

    def test_whilelt(self):
        instr = parse_line("whilelt p0, Xi, Xn")
        assert isinstance(instr, WhileLT)
        assert instr.pdst == PReg("p0")

    def test_load_store_with_predicate(self):
        load = parse_line("ld1w z1, [a, Xi], p0")
        assert load == VLoad(VReg("z1"), "a", "Xi", pred=PReg("p0"))
        store = parse_line("st1w z2, [out, Xi]")
        assert store == VStore(VReg("z2"), "out", "Xi", pred=None)

    def test_vector_compute(self):
        instr = parse_line("fadd z3, z1, z2, p0")
        assert instr == VOp("add", VReg("z3"), (VReg("z1"), VReg("z2")), pred=PReg("p0"))

    def test_fma_three_sources(self):
        instr = parse_line("ffma z4, z1, z2, z3")
        assert isinstance(instr, VOp)
        assert instr.op == "fma"
        assert len(instr.srcs) == 3

    def test_broadcast_and_immediate_sources(self):
        instr = parse_line("fmul z1, z0, Xa")
        assert instr.srcs == (VReg("z0"), ScalarRef("Xa"))
        instr = parse_line("fdup z1, #0.0")
        assert instr.srcs == (Imm(0.0),)

    def test_reduction(self):
        instr = parse_line("faddv Xr, z7")
        assert instr == VHReduce("add", "Xr", VReg("z7"), pred=None)

    def test_addvl_and_halt(self):
        assert isinstance(parse_line("addvl Xi, Xi"), AddVL)
        assert isinstance(parse_line("halt"), Halt)

    def test_comments_and_blank(self):
        assert parse_line("  // nothing") is None
        assert parse_line("; nothing") is None

    @pytest.mark.parametrize(
        "bad",
        [
            "frobnicate z1, z2",
            "msr <nope>, X1",
            "b.?? X1, X2, top",
            "ld1w z1, a, Xi",
            "add Xi",
            "mov Xa, #zz",
        ],
    )
    def test_errors(self, bad):
        with pytest.raises(AssemblyError):
            parse_line(bad)


class TestAssemble:
    def test_fig9_retry_loop(self):
        program = assemble(FIG9_RETRY_LOOP)
        assert program.target("L3") == 0
        kinds = [type(i).__name__ for i in program]
        assert kinds == ["Label", "MSR", "MRS", "Branch", "Halt"]

    def test_label_on_own_line(self):
        program = assemble("top:\n  b top\n  halt")
        assert program.target("top") == 0

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError, match=":3:"):
            assemble("mov X0, #1\nmov X1, #2\nbogus X2")

    def test_disassemble_reassembles(self):
        program = assemble(FIG9_RETRY_LOOP, name="fig9")
        text = program.disassemble()
        assert "msr <VL>, X2" in text

    def test_executes_on_machine(self, config):
        # A hand-written vector program must actually run.
        from repro import Job, PRIVATE, run_policy
        from repro.memory.image import MemoryImage

        source = """
        setvl:                      // configure the vector length first
            msr <VL>, #16
            mrs X3, <status>
            b.ne X3, #1, setvl
            mov Xi, #0
            mov Xn, #100
        loop:
            b.ge Xi, Xn, done
            whilelt p0, Xi, Xn
            ld1w z0, [a, Xi], p0
            fmul z1, z0, #2.0, p0
            st1w z1, [b, Xi], p0
            addvl Xi, Xi
            b loop
        done:
            faddv Xs, z1
            halt
        """
        program = assemble(source, name="hand")
        image = MemoryImage.for_core(0)
        import numpy as np

        image.add_array("a", np.ones(128, dtype=np.float32))
        image.zeros("b", 128)
        run_policy(config, PRIVATE, [Job(program, image), None])
        np.testing.assert_allclose(image.array("b")[:100], 2.0)
        np.testing.assert_allclose(image.array("b")[100:], 0.0)
