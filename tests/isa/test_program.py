"""Program container and builder."""

import pytest

from repro.common.errors import AssemblyError
from repro.isa.instructions import Branch, Halt, InstructionClass, ScalarOp
from repro.isa.operands import Imm
from repro.isa.program import Program, ProgramBuilder


def _simple_builder():
    builder = ProgramBuilder("demo")
    builder.label("top")
    builder.emit(ScalarOp("mov", "X0", (Imm(1),)))
    builder.emit(Branch("ne", "top", "X0", Imm(1)))
    builder.emit(Halt())
    return builder


class TestBuilder:
    def test_build_and_target(self):
        program = _simple_builder().build()
        assert program.target("top") == 0
        assert len(program) == 4

    def test_duplicate_label_rejected(self):
        builder = _simple_builder()
        with pytest.raises(AssemblyError):
            builder.label("top")

    def test_fresh_labels_unique(self):
        builder = ProgramBuilder()
        names = {builder.fresh_label("L") for _ in range(100)}
        assert len(names) == 100

    def test_meta_propagates(self):
        builder = _simple_builder()
        builder.meta["monitor"] = frozenset({1})
        program = builder.build()
        assert program.meta["monitor"] == frozenset({1})

    def test_position_tracks_labels(self):
        builder = ProgramBuilder()
        assert builder.position == 0
        builder.label("a")
        assert builder.position == 1


class TestProgram:
    def test_undefined_branch_target_rejected(self):
        builder = ProgramBuilder()
        builder.emit(Branch("al", "nowhere"))
        builder.emit(Halt())
        with pytest.raises(AssemblyError):
            builder.build()

    def test_halt_required(self):
        builder = ProgramBuilder()
        builder.emit(ScalarOp("mov", "X0", (Imm(1),)))
        with pytest.raises(AssemblyError):
            builder.build()

    def test_counts_by_class_excludes_labels(self):
        program = _simple_builder().build()
        counts = program.counts_by_class()
        assert counts[InstructionClass.SCALAR] == 3  # mov, branch, halt

    def test_unknown_label_lookup(self):
        program = _simple_builder().build()
        with pytest.raises(AssemblyError):
            program.target("nope")

    def test_disassemble_contains_labels_and_instrs(self):
        text = _simple_builder().build().disassemble()
        assert "top:" in text
        assert "halt" in text
