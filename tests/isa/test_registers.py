"""EM-SIMD dedicated registers and OI values (Table 1)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.isa.registers import (
    AL,
    DECISION,
    MEMORY_LEVELS,
    OI,
    STATUS,
    VL,
    OIValue,
    SystemRegister,
)


class TestSystemRegisters:
    def test_five_dedicated_registers(self):
        assert len(SystemRegister) == 5

    def test_aliases(self):
        assert OI is SystemRegister.OI
        assert DECISION is SystemRegister.DECISION
        assert VL is SystemRegister.VL
        assert STATUS is SystemRegister.STATUS
        assert AL is SystemRegister.AL

    def test_str_matches_paper_notation(self):
        assert str(SystemRegister.VL) == "<VL>"
        assert str(SystemRegister.DECISION) == "<decision>"


class TestOIValue:
    def test_phase_end_sentinel(self):
        assert OIValue.ZERO.is_phase_end
        assert not OIValue(0.5, 0.25).is_phase_end

    def test_uniform_no_reuse(self):
        oi = OIValue.uniform(0.25)
        assert oi.issue == oi.mem == 0.25

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OIValue(-0.1, 0.2)

    def test_default_level_is_dram(self):
        assert OIValue(0.5, 0.25).level == "dram"

    def test_bad_level_rejected(self):
        with pytest.raises(ConfigurationError):
            OIValue(0.5, 0.25, level="l3")

    def test_every_documented_level_accepted(self):
        for level in MEMORY_LEVELS:
            assert OIValue(0.5, 0.25, level=level).level == level

    def test_str(self):
        assert str(OIValue(0.5, 0.25)) == "(0.5,0.25)"

    def test_immutability(self):
        oi = OIValue(0.5, 0.25)
        with pytest.raises(AttributeError):
            oi.issue = 1.0
