"""Sensitivity of the elastic-sharing benefit to machine parameters.

Sweeps one machine parameter at a time and reports Occamy's compute-core
speedup over Private on the motivating pair — quantifying where elastic
sharing pays off: more total lanes (more slack to reassign), scarcer DRAM
bandwidth (memory phases saturate earlier, freeing more lanes), deeper
windows.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.common.config import MachineConfig, experiment_config
from repro.compiler.pipeline import CompileOptions, build_image, compile_kernel
from repro.core.machine import Job, run_policy
from repro.core.policies import OCCAMY, PRIVATE
from repro.workloads.motivating import motivating_pair


@dataclass(frozen=True)
class SensitivityPoint:
    """One sweep point's outcome."""

    parameter: str
    value: object
    private_cycles: int
    occamy_cycles: int
    compute_speedup: float
    memory_speedup: float
    utilization_gain: float


def _with_total_lanes(config: MachineConfig, lanes: int) -> MachineConfig:
    vector = dataclasses.replace(config.vector, total_lanes=lanes)
    return dataclasses.replace(config, vector=vector)


def _with_dram_bw(config: MachineConfig, bytes_per_cycle: int) -> MachineConfig:
    memory = dataclasses.replace(config.memory, dram_bytes_per_cycle=bytes_per_cycle)
    return dataclasses.replace(config, memory=memory)


def _with_pool(config: MachineConfig, entries: int) -> MachineConfig:
    core = dataclasses.replace(config.core, instruction_pool_entries=entries)
    return dataclasses.replace(config, core=core)


#: parameter name -> (values to sweep, config transformer).
SWEEPS: Dict[str, tuple] = {
    "total_lanes": ((16, 32, 64), _with_total_lanes),
    "dram_bytes_per_cycle": ((16, 32, 64), _with_dram_bw),
    "instruction_pool_entries": ((48, 96, 192), _with_pool),
}


def sweep(
    parameter: str,
    values: Sequence[object] = None,
    scale: float = 0.35,
    base_config: MachineConfig = None,
) -> List[SensitivityPoint]:
    """Sweep ``parameter`` over ``values`` on the motivating pair."""
    defaults, transform = SWEEPS[parameter]
    values = values if values is not None else defaults
    base_config = base_config or experiment_config()
    wl0, wl1 = motivating_pair(scale)
    points = []
    for value in values:
        config = transform(base_config, value)
        options = CompileOptions(memory=config.memory)
        p0, p1 = compile_kernel(wl0, options), compile_kernel(wl1, options)

        def jobs():
            return [Job(p0, build_image(wl0, 0)), Job(p1, build_image(wl1, 1))]

        private = run_policy(config, PRIVATE, jobs())
        occamy = run_policy(config, OCCAMY, jobs())
        points.append(
            SensitivityPoint(
                parameter=parameter,
                value=value,
                private_cycles=private.total_cycles,
                occamy_cycles=occamy.total_cycles,
                compute_speedup=occamy.speedup_over(private, 1),
                memory_speedup=occamy.speedup_over(private, 0),
                utilization_gain=(
                    occamy.metrics.simd_utilization()
                    / max(private.metrics.simd_utilization(), 1e-9)
                ),
            )
        )
    return points
