"""Model validation: do the analytical models track the simulator?

Two predictors are cross-validated against ``Machine.run``:

* the **roofline** (Eq. 4) the lane manager plans with — its *ordering*
  must track the machine (more predicted attainable performance means
  more achieved throughput) and its saturation knee must match where
  measured speedup flattens; ``validate_phase`` quantifies both.
  Achieved performance is measured in the roofline's own units (the
  paper's per-32-bit-lane flop accounting): compute-uops x lanes per
  cycle.

* the **ECM cycle predictor** (:mod:`repro.analysis.ecm`) — its
  *absolute* cycle predictions must land near the machine's measured
  totals; ``validate_ecm`` sweeps the Table 3 workloads under the
  sharing policies and reports per-point relative errors plus their
  geometric mean (the CI-gated number, see
  ``benchmarks/test_model_validation.py`` and ``repro perf-report``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.ecm import EcmModel
from repro.analysis.experiments import run_with_fixed_lanes
from repro.analysis.reporting import geomean
from repro.common.config import MachineConfig, experiment_config
from repro.compiler.ir import Kernel
from repro.compiler.phase_analysis import analyze_kernel
from repro.core.roofline import RooflineModel


@dataclass(frozen=True)
class ValidationPoint:
    """Model-vs-machine at one lane count."""

    lanes: int
    predicted: float  # Eq. 4 attainable (flops/cycle, paper units)
    achieved: float  # measured busy pipe slots per phase cycle
    phase_cycles: int


@dataclass(frozen=True)
class PhaseValidation:
    """A full lane sweep for one phase."""

    kernel_name: str
    phase_index: int
    oi_issue: float
    oi_mem: float
    level: str
    points: List[ValidationPoint]

    @property
    def predicted_knee(self) -> int:
        """First lane count after which the prediction stops growing."""
        best = self.points[-1].predicted
        for point in self.points:
            if point.predicted >= best * 0.999:
                return point.lanes
        return self.points[-1].lanes  # pragma: no cover

    @property
    def measured_knee(self) -> int:
        """First lane count achieving >= 90% of the best throughput."""
        best = max(point.achieved for point in self.points)
        for point in self.points:
            if point.achieved >= 0.9 * best:
                return point.lanes
        return self.points[-1].lanes  # pragma: no cover

    @property
    def ordering_agreement(self) -> float:
        """Fraction of lane-count pairs the model orders like the machine.

        1.0 = the model's ranking matches the machine exactly; ties in
        either ranking count as agreement when the other side is close.
        """
        agree = 0
        total = 0
        for i, a in enumerate(self.points):
            for b in self.points[i + 1 :]:
                total += 1
                predicted = a.predicted - b.predicted
                achieved = a.achieved - b.achieved
                if predicted == 0 or achieved == 0:
                    agree += 1
                elif (predicted > 0) == (achieved > 0):
                    agree += 1
        return agree / total if total else 1.0


def validate_phase(
    kernel: Kernel,
    phase_index: int = 0,
    lane_choices: Sequence[int] = (2, 4, 8, 16, 24, 32),
    config: Optional[MachineConfig] = None,
) -> PhaseValidation:
    """Sweep ``kernel``'s phase over fixed lane counts and compare."""
    config = config or experiment_config()
    info = analyze_kernel(kernel)[phase_index]
    level = info.residency_level(config.memory)
    oi = info.oi_for_level(level)
    roofline = RooflineModel.from_config(config)

    points = []
    for lanes in lane_choices:
        result = run_with_fixed_lanes(kernel, lanes, config)
        phase = result.metrics.phases_of(0)[phase_index]
        cycles = max(1, phase.duration)
        achieved = phase.compute_uops * lanes / cycles
        points.append(
            ValidationPoint(
                lanes=lanes,
                predicted=roofline.attainable(lanes, oi),
                achieved=achieved,
                phase_cycles=cycles,
            )
        )
    return PhaseValidation(
        kernel_name=kernel.name,
        phase_index=phase_index,
        oi_issue=oi.issue,
        oi_mem=oi.mem,
        level=level,
        points=points,
    )


# --- ECM cycle-prediction cross-validation -----------------------------------

#: The sharing policies the ECM error gate covers (ISSUE 8 acceptance).
ECM_VALIDATION_POLICIES: Tuple[str, ...] = ("occamy", "fts", "cts")


@dataclass(frozen=True)
class EcmValidationPoint:
    """ECM-vs-machine for one (workload, policy) combination."""

    workload: str  # e.g. "WL17"
    policy_key: str
    predicted_cycles: float  # overlapping-convention prediction
    predicted_nonoverlap: float  # non-overlapping-convention prediction
    measured_cycles: int
    predicted_ipc: float
    measured_ipc: float

    @property
    def rel_error(self) -> float:
        """|predicted - measured| / measured (overlapping convention)."""
        if self.measured_cycles <= 0:
            return 0.0
        return abs(self.predicted_cycles - self.measured_cycles) / self.measured_cycles

    @property
    def brackets(self) -> bool:
        """Did the two ECM conventions bracket the measurement from at
        least one side correctly (overlap <= measured or measured <=
        non-overlap)?  Both failing means the decomposition itself — not
        just the overlap assumption — missed the machine."""
        return (
            self.predicted_cycles <= self.measured_cycles
            or self.measured_cycles <= self.predicted_nonoverlap
        )


@dataclass(frozen=True)
class EcmValidation:
    """A full ECM cross-validation sweep."""

    points: List[EcmValidationPoint]
    scale: float

    @property
    def geomean_error(self) -> float:
        """Geometric-mean relative cycle error across all points.

        Exact predictions (error 0) are floored at 0.1% so one perfect
        point cannot drag the geometric mean to zero.
        """
        return geomean([max(point.rel_error, 1e-3) for point in self.points])

    @property
    def max_error(self) -> float:
        return max((point.rel_error for point in self.points), default=0.0)

    def errors_by_policy(self) -> Dict[str, float]:
        """Per-policy geomean relative error."""
        by_policy: Dict[str, List[float]] = {}
        for point in self.points:
            by_policy.setdefault(point.policy_key, []).append(
                max(point.rel_error, 1e-3)
            )
        return {key: geomean(errors) for key, errors in sorted(by_policy.items())}

    def table_rows(self) -> List[List[object]]:
        """Rows for the perf report's per-workload error table."""
        return [
            [
                point.workload,
                point.policy_key,
                f"{point.predicted_cycles:.0f}",
                f"{point.predicted_nonoverlap:.0f}",
                point.measured_cycles,
                f"{100 * point.rel_error:.1f}%",
                f"{point.predicted_ipc:.2f}",
                f"{point.measured_ipc:.2f}",
            ]
            for point in self.points
        ]


def validate_ecm(
    workload_ids: Optional[Sequence[int]] = None,
    policies: Sequence[str] = ECM_VALIDATION_POLICIES,
    scale: float = 0.1,
    config: Optional[MachineConfig] = None,
) -> EcmValidation:
    """Run Table 3 workloads solo under each policy and diff vs the ECM.

    Each workload occupies core 0 alone (the other cores idle), matching
    the lane-allocation semantics :meth:`EcmModel.lanes_for` models; the
    measured side is a full ``Machine.run``.  Measured IPC counts vector
    uops (compute + ld/st) per total cycle, the same accounting the
    predictor uses.
    """
    from repro.core.machine import run_policy
    from repro.core.policies import POLICIES_BY_KEY
    from repro.workloads.pairs import workload_job
    from repro.workloads.spec import SPEC_WORKLOADS, spec_workload

    config = config or experiment_config()
    model = EcmModel(config)
    ids = sorted(workload_ids) if workload_ids is not None else sorted(SPEC_WORKLOADS)
    points = []
    for workload_id in ids:
        kernel = spec_workload(workload_id, scale=scale)
        for policy_key in policies:
            jobs: List[object] = [
                workload_job("spec", workload_id, core_id=0, scale=scale)
            ] + [None] * (config.num_cores - 1)
            result = run_policy(config, POLICIES_BY_KEY[policy_key], jobs)
            prediction = model.predict_kernel(kernel, policy_key)
            measured_uops = result.metrics.compute_uops[0] + result.metrics.ldst_uops[0]
            measured_ipc = (
                measured_uops / result.total_cycles if result.total_cycles else 0.0
            )
            points.append(
                EcmValidationPoint(
                    workload=f"WL{workload_id}",
                    policy_key=policy_key,
                    predicted_cycles=prediction.cycles,
                    predicted_nonoverlap=prediction.cycles_nonoverlap,
                    measured_cycles=result.total_cycles,
                    predicted_ipc=prediction.ipc,
                    measured_ipc=measured_ipc,
                )
            )
    return EcmValidation(points=points, scale=scale)
