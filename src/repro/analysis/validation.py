"""Model validation: does the LaneMgr's roofline track the simulator?

The lane manager allocates lanes using the analytical Eq. 4 model; the
simulator executes with explicit queues, caches and bandwidth.  For the
plans to be good, the model's *ordering* must track the machine: more
predicted attainable performance should mean more achieved throughput,
and the predicted saturation knee should match where measured speedup
flattens.  ``validate_phase`` quantifies both for one phase.

Achieved performance is measured in the roofline's own units (the paper's
per-32-bit-lane flop accounting): compute-uops x lanes per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.experiments import run_with_fixed_lanes
from repro.common.config import MachineConfig, experiment_config
from repro.compiler.ir import Kernel
from repro.compiler.phase_analysis import analyze_kernel
from repro.core.roofline import RooflineModel


@dataclass(frozen=True)
class ValidationPoint:
    """Model-vs-machine at one lane count."""

    lanes: int
    predicted: float  # Eq. 4 attainable (flops/cycle, paper units)
    achieved: float  # measured busy pipe slots per phase cycle
    phase_cycles: int


@dataclass(frozen=True)
class PhaseValidation:
    """A full lane sweep for one phase."""

    kernel_name: str
    phase_index: int
    oi_issue: float
    oi_mem: float
    level: str
    points: List[ValidationPoint]

    @property
    def predicted_knee(self) -> int:
        """First lane count after which the prediction stops growing."""
        best = self.points[-1].predicted
        for point in self.points:
            if point.predicted >= best * 0.999:
                return point.lanes
        return self.points[-1].lanes  # pragma: no cover

    @property
    def measured_knee(self) -> int:
        """First lane count achieving >= 90% of the best throughput."""
        best = max(point.achieved for point in self.points)
        for point in self.points:
            if point.achieved >= 0.9 * best:
                return point.lanes
        return self.points[-1].lanes  # pragma: no cover

    @property
    def ordering_agreement(self) -> float:
        """Fraction of lane-count pairs the model orders like the machine.

        1.0 = the model's ranking matches the machine exactly; ties in
        either ranking count as agreement when the other side is close.
        """
        agree = 0
        total = 0
        for i, a in enumerate(self.points):
            for b in self.points[i + 1 :]:
                total += 1
                predicted = a.predicted - b.predicted
                achieved = a.achieved - b.achieved
                if predicted == 0 or achieved == 0:
                    agree += 1
                elif (predicted > 0) == (achieved > 0):
                    agree += 1
        return agree / total if total else 1.0


def validate_phase(
    kernel: Kernel,
    phase_index: int = 0,
    lane_choices: Sequence[int] = (2, 4, 8, 16, 24, 32),
    config: Optional[MachineConfig] = None,
) -> PhaseValidation:
    """Sweep ``kernel``'s phase over fixed lane counts and compare."""
    config = config or experiment_config()
    info = analyze_kernel(kernel)[phase_index]
    level = info.residency_level(config.memory)
    oi = info.oi_for_level(level)
    roofline = RooflineModel.from_config(config)

    points = []
    for lanes in lane_choices:
        result = run_with_fixed_lanes(kernel, lanes, config)
        phase = result.metrics.phases_of(0)[phase_index]
        cycles = max(1, phase.duration)
        achieved = phase.compute_uops * lanes / cycles
        points.append(
            ValidationPoint(
                lanes=lanes,
                predicted=roofline.attainable(lanes, oi),
                achieved=achieved,
                phase_cycles=cycles,
            )
        )
    return PhaseValidation(
        kernel_name=kernel.name,
        phase_index=phase_index,
        oi_issue=oi.issue,
        oi_mem=oi.mem,
        level=level,
        points=points,
    )
