"""Auto-generated markdown perf report (``repro perf-report``).

Folds two data sources into one reader-facing document, in the spirit of
a tracked ``ipc_report`` doc:

* the ``BENCH_*.json`` perf-trajectory records every CI-gated speedup
  benchmark emits (:func:`benchmarks.conftest.record_bench`) — the
  engineering trajectory: how much faster each subsystem is than its
  reference path, per run, in a stable schema;
* the ECM-vs-simulator cross-validation of
  :func:`repro.analysis.validation.validate_ecm` — the modelling
  trajectory: per-workload/policy predicted vs measured cycles, IPC,
  relative errors and their geometric mean against the CI gate.

The report is deterministic given its inputs (records are sorted by
bench name, validation rows by workload id), so two runs over the same
artifacts diff clean.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.validation import (
    ECM_VALIDATION_POLICIES,
    EcmValidation,
    validate_ecm,
)
from repro.common.config import MachineConfig, describe, experiment_config
from repro.common.errors import ConfigurationError

#: The CI-gated ceiling on the ECM geomean relative cycle error.
ECM_ERROR_GATE = 0.35

#: Default workload scale for the report's validation sweep (small: the
#: report is generated in CI after the benchmark jobs; accuracy holds
#: across scales — see the validation suite).
DEFAULT_REPORT_SCALE = 0.05


def load_bench_records(bench_dir: Path) -> List[Dict[str, object]]:
    """Read every ``BENCH_*.json`` record under ``bench_dir`` (recursive).

    Records missing the shared schema tag or a bench name are skipped —
    artifact directories accumulate unrelated JSON; a malformed record
    (unreadable, non-object) is skipped too rather than failing the
    whole report.
    """
    records = []
    for path in sorted(bench_dir.rglob("BENCH_*.json")):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            continue
        if isinstance(record, dict) and record.get("bench"):
            records.append(record)
    records.sort(key=lambda r: str(r.get("bench")))
    return records


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _trajectory_section(records: List[Dict[str, object]]) -> List[str]:
    lines = ["## Perf trajectory (CI-gated speedup benchmarks)", ""]
    if not records:
        lines += [
            "_No `BENCH_*.json` records found — run the benchmark suite "
            "(or point `--bench-dir` at the CI artifacts) to populate "
            "this section._",
        ]
        return lines
    rows = []
    for record in records:
        rows.append(
            [
                f"`{record.get('bench')}`",
                f"{record.get('speedup', 0):.2f}x",
                f"{record.get('slow_seconds', 0):.2f}s",
                f"{record.get('fast_seconds', 0):.2f}s",
                record.get("bench_scale", "?"),
                record.get("python", "?"),
                record.get("recorded_at", "?"),
            ]
        )
    lines += [
        _md_table(
            ["bench", "speedup", "reference", "optimised", "scale", "python", "recorded"],
            rows,
        ),
        "",
        "Each row is one optimisation's reference-vs-optimised wall time "
        "at the recorded workload scale; the CI gates in "
        "`.github/workflows/ci.yml` fail the build if a speedup regresses "
        "below its floor.",
    ]
    return lines


def _validation_section(validation: EcmValidation) -> List[str]:
    gate = ECM_ERROR_GATE
    geo = validation.geomean_error
    verdict = "PASS" if geo <= gate else "FAIL"
    lines = [
        "## ECM model vs simulator (cycle-prediction error)",
        "",
        f"Workload scale {validation.scale}; policies "
        f"{', '.join(sorted({p.policy_key for p in validation.points}))}; "
        f"predictions use the overlapping ECM convention "
        f"(`non-overlap` column shows the pessimistic bracket).",
        "",
        _md_table(
            [
                "workload",
                "policy",
                "predicted",
                "non-overlap",
                "measured",
                "error",
                "pred IPC",
                "meas IPC",
            ],
            validation.table_rows(),
        ),
        "",
    ]
    policy_rows = [
        [key, f"{100 * err:.1f}%"]
        for key, err in validation.errors_by_policy().items()
    ]
    lines += [
        _md_table(["policy", "geomean error"], policy_rows),
        "",
        f"**Geomean relative cycle error: {100 * geo:.1f}% "
        f"(max {100 * validation.max_error:.1f}%) — gate ≤ {100 * gate:.0f}%: "
        f"{verdict}.**",
    ]
    bracket_misses = [p for p in validation.points if not p.brackets]
    if bracket_misses:
        labels = ", ".join(f"{p.workload}/{p.policy_key}" for p in bracket_misses)
        lines += [
            "",
            f"Convention brackets missed for: {labels} — the measurement "
            "fell outside [overlap, non-overlap], i.e. the decomposition "
            "itself (not just the overlap assumption) diverged there.",
        ]
    return lines


def _ncore_section(outcomes: Sequence[object]) -> List[str]:
    """Per-core-count geomean rows from an :func:`ncore_sweep` run."""
    from repro.analysis.experiments import NCORE_POLICY_KEYS

    policy_keys = [key for key in NCORE_POLICY_KEYS if key != "private"]
    rows = []
    for outcome in outcomes:
        row: List[object] = [
            outcome.num_cores,
            ",".join(str(workload) for workload in outcome.group),
        ]
        row += [
            f"{outcome.geomean_speedup(key):.2f}x" for key in policy_keys
        ]
        row.append(f"{100 * outcome.utilization('occamy'):.1f}%")
        rows.append(row)
    headers = ["cores", "workloads"] + [
        f"{key} geomean" for key in policy_keys
    ] + ["occamy util"]
    return [
        "## N-core scaling (geomean speedup over Private)",
        "",
        _md_table(headers, rows),
        "",
        "Each row co-runs the Fig. 16 workload blend tiled across the "
        "machine (`repro motivate --cores`); geomeans are per-core "
        "speedups over the Private baseline at the same size.",
    ]


def _alloc_section(
    outcomes: Sequence[object], winloss: Sequence[object]
) -> List[str]:
    """Allocation geomean table plus the per-pair sharing win/loss table."""
    rows = []
    baselines: Dict[int, float] = {}
    for outcome in outcomes:
        if outcome.alloc_key == "random":
            baselines[outcome.num_cores] = outcome.geomean_cycles()
    for outcome in outcomes:
        geo = outcome.geomean_cycles()
        base = baselines.get(outcome.num_cores)
        delta = "—" if not base else f"{100 * (geo - base) / base:+.1f}%"
        rows.append(
            [
                outcome.num_cores,
                outcome.alloc_key,
                outcome.sharing_key,
                f"{geo:.1f}",
                delta,
                " ".join(outcome.pair_labels()),
            ]
        )
    lines = [
        "## Thread-to-core allocation (per-thread geomean cycles)",
        "",
        _md_table(
            ["cores", "allocation", "sharing", "geomean", "Δ vs random", "pairing"],
            rows,
        ),
        "",
        "Placement is decided before simulation (`repro alloc-sweep`); "
        "each two-core complex then runs independently under the sharing "
        "policy, so the same pair costs the same cycles under every "
        "allocation policy.  Lower geomean is better; `oi-pack` is the "
        "adversarial losing bound.",
    ]
    if winloss:
        sharing_keys = sorted(winloss[0].cycles)
        wl_rows: List[List[object]] = []
        wins = {key: 0 for key in sharing_keys}
        for row in winloss:
            wins[row.winner] += 1
            wl_rows.append(
                [row.label]
                + [row.cycles[key] for key in sharing_keys]
                + [row.winner]
            )
        wl_rows.append(
            ["**wins**"] + [wins[key] for key in sharing_keys] + ["—"]
        )
        lines += [
            "",
            "### Per-pair sharing-policy win/loss (symbiosis placement)",
            "",
            _md_table(["pair"] + sharing_keys + ["winner"], wl_rows),
            "",
            "Each row is one co-scheduled pair's total cycles under every "
            "sharing policy; the winner column names the cheapest policy "
            "for that pair.",
        ]
    return lines


def _config_section(config: MachineConfig) -> List[str]:
    rows = [
        [key, value, unit] for key, (value, unit) in describe(config).items()
    ]
    return [
        "## Machine configuration",
        "",
        _md_table(["knob", "value", "unit"], rows),
    ]


def render_report(
    records: List[Dict[str, object]],
    validation: Optional[EcmValidation] = None,
    config: Optional[MachineConfig] = None,
    ncore_outcomes: Optional[Sequence[object]] = None,
    alloc_outcomes: Optional[Sequence[object]] = None,
    alloc_winloss: Optional[Sequence[object]] = None,
) -> str:
    """Render the markdown report from already-gathered inputs."""
    config = config or experiment_config()
    lines = [
        "# Performance report",
        "",
        "Auto-generated by `repro perf-report` — do not edit by hand. "
        "See `docs/perf-model.md` for how to read this report.",
        "",
    ]
    lines += _config_section(config)
    lines += [""]
    lines += _trajectory_section(records)
    lines += [""]
    if ncore_outcomes:
        lines += _ncore_section(ncore_outcomes)
        lines += [""]
    if alloc_outcomes:
        lines += _alloc_section(alloc_outcomes, alloc_winloss or ())
        lines += [""]
    if validation is not None:
        lines += _validation_section(validation)
    else:
        lines += [
            "## ECM model vs simulator",
            "",
            "_Validation skipped (`--skip-validation`)._",
        ]
    return "\n".join(lines) + "\n"


def generate_perf_report(
    bench_dir: Path = Path("."),
    out: Optional[Path] = None,
    scale: float = DEFAULT_REPORT_SCALE,
    workload_ids: Optional[Sequence[int]] = None,
    policies: Sequence[str] = ECM_VALIDATION_POLICIES,
    validate: bool = True,
    config: Optional[MachineConfig] = None,
    ncore_counts: Optional[Sequence[int]] = None,
    alloc_counts: Optional[Sequence[int]] = None,
) -> str:
    """Gather inputs, render the report, optionally write it to ``out``.

    ``ncore_counts`` adds the N-core scaling section: the Fig. 16 blend
    co-run at each machine size (results come from the shared two-level
    simulation cache, so a CI re-render after the sweep is warm).
    ``alloc_counts`` adds the allocation section: every pairing policy
    swept at each size, plus the per-pair sharing win/loss table under
    the symbiosis placement at the largest size.
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    records = load_bench_records(Path(bench_dir))
    ncore_outcomes = None
    if ncore_counts:
        from repro.analysis.experiments import ncore_sweep

        ncore_outcomes = ncore_sweep(tuple(ncore_counts), scale=scale)
    alloc_outcomes = None
    winloss = None
    if alloc_counts:
        from repro.analysis.experiments import alloc_sweep, alloc_winloss

        alloc_outcomes = alloc_sweep(tuple(alloc_counts), scale=scale)
        winloss = alloc_winloss(max(alloc_counts), scale=scale)
    validation = (
        validate_ecm(
            workload_ids=workload_ids, policies=policies, scale=scale, config=config
        )
        if validate
        else None
    )
    text = render_report(
        records,
        validation,
        config=config,
        ncore_outcomes=ncore_outcomes,
        alloc_outcomes=alloc_outcomes,
        alloc_winloss=winloss,
    )
    if out is not None:
        out = Path(out)
        out.parent.mkdir(parents=True, exist_ok=True)
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text
