"""Parallel sweep engine: fan simulations across worker processes.

Every evaluation driver is a bag of independent, deterministic
simulations — one per (policy × workload set) point.  This module turns
such a bag into picklable :class:`SimTask` specs, resolves each against
the persistent :mod:`~repro.analysis.result_cache`, and fans the misses
out over a :class:`concurrent.futures.ProcessPoolExecutor`.

Determinism guarantees (asserted by ``tests/integration/test_determinism``):

* a worker runs exactly the same ``run_policy`` call the serial path
  would, so results are bit-identical regardless of worker count;
* task order is preserved — results come back positionally, so sweep
  output never depends on completion order.

Worker count resolution: an explicit ``jobs`` argument wins, then the
``REPRO_JOBS`` environment variable, then 1 (serial).  The literal string
``"auto"`` means "all CPUs"; anything that is not ``auto`` or a positive
integer raises :class:`~repro.common.errors.ConfigurationError` — bad
values are rejected at the edge, never forwarded to
:class:`~concurrent.futures.ProcessPoolExecutor`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.common.config import MachineConfig, experiment_config
from repro.common.errors import ConfigurationError
from repro.compiler.pipeline import CompileOptions, build_image, compile_kernel
from repro.core.machine import Job, RunResult, run_policy
from repro.core.policies import ALL_POLICIES, POLICIES_BY_KEY
from repro.workloads.motivating import motivating_pair
from repro.workloads.pairs import (
    FOUR_CORE_GROUPS,
    CoRunPair,
    all_pairs,
    jobs_for_group,
    jobs_for_pair,
)

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: Spelling for "one worker per CPU" (``--jobs auto`` / ``REPRO_JOBS=auto``).
JOBS_AUTO = "auto"


def _parse_jobs(value: Union[int, str], source: str) -> int:
    """Validate one worker-count value; raise :class:`ConfigurationError`.

    Accepts a positive integer or the string ``"auto"`` (all CPUs).
    Everything else — zero, negatives, floats, arbitrary strings — is a
    configuration mistake that used to slip through silently (or reach
    ``ProcessPoolExecutor`` as a bad ``max_workers``), so it is rejected
    here with a message naming the offending source.
    """
    if isinstance(value, str):
        text = value.strip()
        if text.lower() == JOBS_AUTO:
            return os.cpu_count() or 1
        try:
            value = int(text)
        except ValueError:
            raise ConfigurationError(
                f"invalid worker count from {source}: {text!r} is neither a "
                f"positive integer nor {JOBS_AUTO!r}"
            ) from None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"invalid worker count from {source}: expected a positive "
            f"integer or {JOBS_AUTO!r}, got {value!r}"
        )
    if value <= 0:
        raise ConfigurationError(
            f"invalid worker count from {source}: {value} is not positive "
            f"(use {JOBS_AUTO!r} for one worker per CPU)"
        )
    return value


def resolve_jobs(jobs: Optional[Union[int, str]] = None) -> int:
    """Effective worker count: argument, else ``$REPRO_JOBS``, else 1.

    ``jobs`` may be a positive integer or ``"auto"`` (all CPUs); any other
    value — including ``0`` and negatives — raises
    :class:`~repro.common.errors.ConfigurationError` naming whether the
    bad value came from the argument or the environment.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        return _parse_jobs(raw, source=f"{JOBS_ENV}={raw!r}")
    return _parse_jobs(jobs, source=f"--jobs {jobs!r}")


# --- task specs --------------------------------------------------------------


@dataclass(frozen=True)
class SimTask:
    """One simulation: a workload set under one policy.

    ``kind`` selects how the jobs are materialised (workloads compile
    deterministically in whichever process runs the task):

    * ``"pair"`` — the Table 3 co-run ``pair`` (Figs. 10/11/13/15);
    * ``"motivate"`` — the §2 motivating pair (Fig. 2);
    * ``"group"`` — a four-core Fig. 16 group, ids in ``group``.
    """

    policy_key: str
    scale: float
    config: MachineConfig
    kind: str = "pair"
    pair: Optional[CoRunPair] = None
    group: Optional[Sequence[int]] = None
    max_cycles: int = 3_000_000

    def build_jobs(self) -> List[Optional[Job]]:
        """Compile the task's workloads into per-core jobs."""
        if self.kind == "pair":
            return jobs_for_pair(self.pair, self.scale)
        if self.kind == "group":
            return jobs_for_group(self.group, scale=self.scale)
        if self.kind == "motivate":
            wl0, wl1 = motivating_pair(self.scale)
            options = CompileOptions(memory=self.config.memory)
            return [
                Job(compile_kernel(wl0, options), build_image(wl0, 0)),
                Job(compile_kernel(wl1, options), build_image(wl1, 1)),
            ]
        raise ValueError(f"unknown task kind {self.kind!r}")


def execute_task(task: SimTask) -> RunResult:
    """Run one task to completion (the worker entry point)."""
    policy = POLICIES_BY_KEY[task.policy_key]
    return run_policy(
        task.config, policy, task.build_jobs(), max_cycles=task.max_cycles
    )


def task_key(task: SimTask) -> str:
    """Persistent-cache key for ``task`` (hashes programs + images)."""
    from repro.analysis.result_cache import simulation_key

    return simulation_key(
        task.config, task.policy_key, task.build_jobs(), task.max_cycles
    )


# --- the engine --------------------------------------------------------------


def run_tasks(
    tasks: Sequence[SimTask],
    jobs: Optional[Union[int, str]] = None,
    cache: object = "default",
) -> List[RunResult]:
    """Run ``tasks``, returning results in task order.

    Each task is first resolved against the persistent cache (pass
    ``cache=None`` to bypass, or a :class:`ResultCache` to use a specific
    directory); misses run serially or on a process pool, then populate
    the cache for the next invocation.
    """
    from repro.analysis import result_cache

    if cache == "default":
        cache = result_cache.default_cache()
    jobs = resolve_jobs(jobs)

    results: List[Optional[RunResult]] = [None] * len(tasks)
    keys: List[Optional[str]] = [None] * len(tasks)
    pending: List[int] = []
    for index, task in enumerate(tasks):
        if cache is not None:
            keys[index] = task_key(task)
            hit = cache.get(keys[index])
            if hit is not None:
                results[index] = hit
                continue
        pending.append(index)

    if pending:
        if jobs > 1 and len(pending) > 1:
            workers = min(jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                computed = list(
                    pool.map(execute_task, [tasks[i] for i in pending])
                )
        else:
            computed = [execute_task(tasks[i]) for i in pending]
        for index, result in zip(pending, computed):
            results[index] = result
            if cache is not None:
                cache.put(keys[index], result)
    return results  # type: ignore[return-value]


# --- figure-level drivers ----------------------------------------------------


def sweep_pairs_parallel(
    pairs: Optional[Sequence[CoRunPair]] = None,
    scale: float = 0.35,
    config: Optional[MachineConfig] = None,
    jobs: Optional[int] = None,
    cache: object = "default",
) -> List["PairOutcome"]:
    """The Fig. 10/11/13/15 sweep, fanned out over worker processes.

    Produces exactly the outcomes of
    :func:`repro.analysis.experiments.sweep_pairs` (the determinism suite
    asserts bit-equality) and seeds its in-memory memo so subsequent
    serial drivers reuse these results.
    """
    from repro.analysis import experiments

    config = config or experiment_config()
    pairs = list(pairs) if pairs is not None else all_pairs()
    points = [(pair, policy) for pair in pairs for policy in ALL_POLICIES]
    # Honour the in-process memo first so repeated sweeps return the same
    # objects the serial path would (pair_outcome's memoisation contract).
    memo_hits: Dict[int, RunResult] = {}
    tasks: List[SimTask] = []
    task_index: List[int] = []
    for index, (pair, policy) in enumerate(points):
        hit = experiments.lookup_sweep_memo(pair, policy.key, scale, config)
        if hit is not None:
            memo_hits[index] = hit
        else:
            tasks.append(
                SimTask(policy_key=policy.key, scale=scale, config=config, pair=pair)
            )
            task_index.append(index)
    computed = run_tasks(tasks, jobs=jobs, cache=cache)
    results: List[RunResult] = [None] * len(points)  # type: ignore[list-item]
    for index, hit in memo_hits.items():
        results[index] = hit
    for index, result in zip(task_index, computed):
        results[index] = result
    outcomes: List[experiments.PairOutcome] = []
    cursor = 0
    for pair in pairs:
        per_policy: Dict[str, RunResult] = {}
        for policy in ALL_POLICIES:
            result = results[cursor]
            per_policy[policy.key] = result
            experiments.seed_sweep_memo(pair, policy.key, scale, config, result)
            cursor += 1
        outcomes.append(experiments.PairOutcome(pair=pair, results=per_policy))
    return outcomes


def motivation_runs(
    scale: float = 0.5,
    config: Optional[MachineConfig] = None,
    jobs: Optional[int] = None,
    cache: object = "default",
) -> Dict[str, RunResult]:
    """The §2 motivating example under all four policies (Fig. 2)."""
    config = config or experiment_config()
    tasks = [
        SimTask(policy_key=policy.key, scale=scale, config=config, kind="motivate")
        for policy in ALL_POLICIES
    ]
    results = run_tasks(tasks, jobs=jobs, cache=cache)
    return {policy.key: result for policy, result in zip(ALL_POLICIES, results)}


def four_core_runs(
    scale: float = 0.35,
    config: Optional[MachineConfig] = None,
    groups: Sequence[Sequence[int]] = FOUR_CORE_GROUPS,
    jobs: Optional[int] = None,
    cache: object = "default",
) -> List[Dict[str, RunResult]]:
    """The Fig. 16 four-core groups under every policy."""
    config = config or experiment_config(num_cores=4)
    tasks = [
        SimTask(
            policy_key=policy.key,
            scale=scale,
            config=config,
            kind="group",
            group=tuple(group),
        )
        for group in groups
        for policy in ALL_POLICIES
    ]
    results = run_tasks(tasks, jobs=jobs, cache=cache)
    out: List[Dict[str, RunResult]] = []
    cursor = 0
    for _group in groups:
        per_policy: Dict[str, RunResult] = {}
        for policy in ALL_POLICIES:
            per_policy[policy.key] = results[cursor]
            cursor += 1
        out.append(per_policy)
    return out
