"""Evaluation drivers: one entry point per paper figure/table.

``experiments`` runs the simulations (with memoisation so Fig. 10/11/13/15
share one pair sweep), ``area`` provides the Fig. 12 analytical area model,
and ``reporting`` renders ASCII tables/series like the paper's plots.
"""

from repro.analysis.area import AreaBreakdown, area_model
from repro.analysis.energy import (
    EnergyCoefficients,
    EnergyReport,
    compare_energy,
    energy_report,
)
from repro.analysis.experiments import (
    CaseStudyResult,
    MotivationResult,
    PairOutcome,
    case_study_fig14,
    clear_sweep_cache,
    four_core_fig16,
    motivation_fig2,
    overhead_fig15,
    pair_outcome,
    run_with_fixed_lanes,
    sweep_pairs,
    table5_rows,
)
from repro.analysis.plots import (
    bar_chart_svg,
    lane_timeline_svg,
    series_svg,
    write_svg,
)
from repro.analysis.reporting import format_series, format_table, geomean
from repro.analysis.sensitivity import SensitivityPoint, sweep
from repro.analysis.trace import export_trace, phase_gantt, trace_dict
from repro.analysis.validation import PhaseValidation, validate_phase

__all__ = [
    "AreaBreakdown",
    "EnergyCoefficients",
    "EnergyReport",
    "PhaseValidation",
    "SensitivityPoint",
    "bar_chart_svg",
    "compare_energy",
    "energy_report",
    "export_trace",
    "lane_timeline_svg",
    "phase_gantt",
    "series_svg",
    "sweep",
    "trace_dict",
    "validate_phase",
    "write_svg",
    "CaseStudyResult",
    "MotivationResult",
    "PairOutcome",
    "area_model",
    "case_study_fig14",
    "clear_sweep_cache",
    "format_series",
    "format_table",
    "four_core_fig16",
    "geomean",
    "motivation_fig2",
    "overhead_fig15",
    "pair_outcome",
    "run_with_fixed_lanes",
    "sweep_pairs",
    "table5_rows",
]
