"""ASCII rendering of the paper's tables and series plots."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's averaging throughout §7)."""
    items = [v for v in values if v > 0]
    if not items:
        return 0.0
    return math.exp(sum(math.log(v) for v in items) / len(items))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with a header rule."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_series(
    label: str, values: Sequence[float], width: int = 60, unit: str = ""
) -> str:
    """A one-line sparkline-ish rendering of a numeric series."""
    if not values:
        return f"{label}: (empty)"
    peak = max(values) or 1.0
    glyphs = " .:-=+*#%@"
    bar = "".join(
        glyphs[min(len(glyphs) - 1, int(v / peak * (len(glyphs) - 1)))]
        for v in _resample(values, width)
    )
    return f"{label:>18} |{bar}| peak={peak:.3g}{unit}"


def _resample(values: Sequence[float], width: int) -> List[float]:
    if len(values) <= width:
        return list(values)
    out = []
    for i in range(width):
        lo = i * len(values) // width
        hi = max(lo + 1, (i + 1) * len(values) // width)
        out.append(sum(values[lo:hi]) / (hi - lo))
    return out


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:.0f}"
    return str(value)
