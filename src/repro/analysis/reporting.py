"""ASCII rendering of the paper's tables and series plots."""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

from repro.common.errors import ConfigurationError


def geomean(values: Iterable[float], series: Optional[str] = None) -> float:
    """Geometric mean (the paper's averaging throughout §7).

    ``math.log`` is undefined for zero/negative entries and propagates
    ``inf``/``NaN``, so non-positive and non-finite values are excluded:
    a zero-utilization phase or an unmeasured (NaN) point should not
    crash report generation or poison every other entry's average — the
    mean is taken over the points that carry information.  Pass
    ``series`` to instead fail loudly: a :class:`ConfigurationError`
    naming the offending series is raised when any value would have been
    skipped (for callers where a non-positive entry means the input data
    is corrupt rather than merely sparse).
    """
    values = list(values)
    items = [v for v in values if v > 0 and math.isfinite(v)]
    if series is not None and len(items) != len(values):
        bad = [v for v in values if not (v > 0 and math.isfinite(v))]
        raise ConfigurationError(
            f"geomean of series {series!r} requires positive finite values; "
            f"got {bad}"
        )
    if not items:
        return 0.0
    return math.exp(sum(math.log(v) for v in items) / len(items))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with a header rule."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_series(
    label: str, values: Sequence[float], width: int = 60, unit: str = ""
) -> str:
    """A one-line sparkline-ish rendering of a numeric series."""
    if not values:
        return f"{label}: (empty)"
    peak = max(values)
    # An all-non-positive series has no meaningful peak to normalise by;
    # render it flat rather than dividing by a negative/zero peak.
    scale_by = peak if peak > 0 else 1.0
    glyphs = " .:-=+*#%@"
    # Clamp below as well as above: a negative value would otherwise
    # produce a negative glyph index, which Python silently wraps to the
    # *highest* glyph — a dip would render as a spike.
    bar = "".join(
        glyphs[max(0, min(len(glyphs) - 1, int(v / scale_by * (len(glyphs) - 1))))]
        for v in _resample(values, width)
    )
    return f"{label:>18} |{bar}| peak={peak:.3g}{unit}"


def _resample(values: Sequence[float], width: int) -> List[float]:
    if len(values) <= width:
        return list(values)
    out = []
    for i in range(width):
        lo = i * len(values) // width
        hi = max(lo + 1, (i + 1) * len(values) // width)
        out.append(sum(values[lo:hi]) / (hi - lo))
    return out


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:.0f}"
    return str(value)
