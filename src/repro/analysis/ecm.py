"""ECM-style analytical cycle prediction (PAPERS.md: arXiv 1509.03118).

The roofline of :mod:`repro.core.roofline` bounds *throughput* (Eq. 4,
flops/cycle); it says nothing about how many cycles a phase actually
takes.  This module adds an Execution-Cache-Memory-style predictor: each
phase is decomposed into

* **in-core execution time** ``T_core`` — the issue-width-bound uop
  cycles of one strip-mined chunk (the ``max`` of the compute-pipe and
  ld/st-pipe occupancy, Eq. 2's two slots per core per cycle) plus the
  amortised dependency-chain latency the issue bound cannot hide;
* **data-transfer times** ``T_L1``/``T_L2``/``T_mem`` — the cycles the
  chunk's bytes occupy each memory-hierarchy link, using the same
  per-level bandwidth ceilings (``MachineConfig`` / Table 4) the
  roofline's hierarchical memory bound uses.  Issue traffic (every ld/st
  instruction re-fetches) loads the Vec-Cache port; only the reuse-
  filtered footprint — with write-allocate doubling store lines — misses
  down to L2/DRAM, mirroring the paper's ``<OI>.issue`` / ``<OI>.mem``
  split.

The single-chunk terms compose under the two classic ECM conventions:

* **overlapping** (``cycles``): in-core work and every transfer link
  proceed concurrently, so the slowest link alone bounds the chunk —
  the optimistic bracket, and the one that tracks this simulator best
  (its LSU pipelines misses behind execution);
* **non-overlapping** (``cycles_nonoverlap``): the chunk serialises
  through in-core execution and every link — the pessimistic bracket.
  ``overlap <= measured <= non-overlap`` should hold for every phase;
  the validation suite checks the ordering.

Calibration (see :class:`EcmCalibration`) is deliberately thin — three
constants measured once against the simulator, all with a mechanical
story, none fitted per workload.  Cross-validation against ``Machine.run``
over the Table 3 workloads under occamy/fts/cts lands at a geometric-mean
relative cycle error well inside the CI gate (see
``benchmarks/test_model_validation.py`` and ``repro perf-report``).

The model is what the spjf service scheduler uses as a *prior*: a job
whose signature has never been observed gets an ECM estimate instead of
an infinite cost, so a cold fleet still runs shortest-job-first
(:func:`predict_spec_cycles`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import LANE_BYTES, MachineConfig, experiment_config
from repro.common.errors import ConfigurationError
from repro.compiler.ir import Kernel
from repro.compiler.phase_analysis import ELEM_BYTES, PhaseInfo, analyze_kernel
from repro.core.roofline import RooflineModel

#: float32 elements held by one 128-bit lane.
ELEMS_PER_LANE = LANE_BYTES // ELEM_BYTES

#: Policies whose lane managers time-share the full lane pool.
TEMPORAL_POLICIES = ("fts", "cts")


@dataclass(frozen=True)
class EcmCalibration:
    """The model's three measured constants (fixed, not per-workload).

    ``extra_compute_uops``
        Strip-mining bookkeeping the vectorizer emits per chunk beyond
        the body's compute nodes (loop-count/predicate upkeep); measured
        as exactly one compute uop per chunk across every Table 3 phase.
    ``store_line_factor``
        Write-allocate: a stored line is first fetched, then written
        back, so store footprint moves twice through L2/DRAM while load
        footprint moves once.
    ``temporal_issue_factor``
        Fine-grained temporal sharing (FTS) couples every core through
        one shared issue stage and renamer; its in-core time runs this
        factor slower than a spatially-partitioned core even solo.
        Measured against the simulator's TEMPORAL mode.
    """

    extra_compute_uops: int = 1
    store_line_factor: int = 2
    temporal_issue_factor: float = 1.2


@dataclass(frozen=True)
class EcmPhasePrediction:
    """The ECM decomposition of one phase at one lane allocation."""

    phase_name: str
    lanes: int
    level: str  # residency level bounding the deepest transfer link
    chunks: int  # strip-mined vector iterations across all repeats
    #: Per-chunk time components (cycles).
    t_core: float
    t_l1: float
    t_l2: float
    t_mem: float
    #: Total uops per chunk (compute + ld/st), for IPC/CPI accounting.
    uops_per_chunk: int

    @property
    def t_data(self) -> float:
        """Total per-chunk transfer time (the non-overlap data term)."""
        return self.t_l1 + self.t_l2 + self.t_mem

    @property
    def chunk_cycles(self) -> float:
        """Per-chunk cycles under the overlapping convention."""
        return max(self.t_core, self.t_l1, self.t_l2, self.t_mem)

    @property
    def chunk_cycles_nonoverlap(self) -> float:
        """Per-chunk cycles under the non-overlapping convention."""
        return self.t_core + self.t_data

    @property
    def cycles(self) -> float:
        """Predicted phase cycles (overlapping convention)."""
        return self.chunks * self.chunk_cycles

    @property
    def cycles_nonoverlap(self) -> float:
        """Predicted phase cycles (non-overlapping convention)."""
        return self.chunks * self.chunk_cycles_nonoverlap

    @property
    def uops(self) -> int:
        """Total vector uops the phase dispatches."""
        return self.chunks * self.uops_per_chunk

    @property
    def ipc(self) -> float:
        """Predicted vector uops per cycle (overlapping convention)."""
        return self.uops / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        """Predicted cycles per vector uop (overlapping convention)."""
        return self.cycles / self.uops if self.uops else 0.0

    @property
    def bottleneck(self) -> str:
        """Which ECM term bounds the phase under overlap."""
        terms = {
            "core": self.t_core,
            "l1": self.t_l1,
            "l2": self.t_l2,
            "mem": self.t_mem,
        }
        return max(terms, key=lambda k: terms[k])


@dataclass(frozen=True)
class EcmPrediction:
    """Whole-workload prediction: the per-phase decompositions summed."""

    kernel_name: str
    policy_key: str
    phases: Tuple[EcmPhasePrediction, ...]

    @property
    def cycles(self) -> float:
        """Predicted workload cycles (overlapping convention)."""
        return sum(phase.cycles for phase in self.phases)

    @property
    def cycles_nonoverlap(self) -> float:
        """Predicted workload cycles (non-overlapping convention)."""
        return sum(phase.cycles_nonoverlap for phase in self.phases)

    @property
    def uops(self) -> int:
        return sum(phase.uops for phase in self.phases)

    @property
    def ipc(self) -> float:
        return self.uops / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.uops if self.uops else 0.0


class EcmModel:
    """ECM predictor for one machine configuration.

    ``bandwidth_share`` scales the shared L2/DRAM ceilings down for
    co-run estimates (two streaming co-runners each see roughly half the
    channel); the Vec-Cache port is per-RegBlk and never shared.
    """

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        calibration: EcmCalibration = EcmCalibration(),
        bandwidth_share: float = 1.0,
    ) -> None:
        if not 0.0 < bandwidth_share <= 1.0:
            raise ConfigurationError(
                f"bandwidth_share must be in (0, 1], got {bandwidth_share}"
            )
        self.config = config or experiment_config()
        self.calibration = calibration
        self.bandwidth_share = bandwidth_share
        self.roofline = RooflineModel.from_config(self.config)

    # --- lane allocation per policy -----------------------------------------

    def lanes_for(self, policy_key: str, info: PhaseInfo, max_lanes: Optional[int] = None) -> int:
        """The lane count ``policy_key``'s manager would grant this phase.

        Solo semantics: the elastic (occamy) and static-plan (vls)
        managers stop at the roofline saturation knee, the private
        baseline keeps its fixed share, and temporal policies offer the
        full pool.  ``max_lanes`` caps spatial grants for co-run
        estimates (the pool is split across runners).
        """
        total = self.config.vector.total_lanes
        if policy_key in TEMPORAL_POLICIES:
            return total
        if policy_key == "private":
            lanes = self.config.lanes_per_core_private
        else:  # occamy / vls: roofline-guided spatial allocation
            level = info.residency_level(self.config.memory)
            lanes = self.roofline.saturation_lanes(info.oi_for_level(level))
        if max_lanes is not None:
            lanes = min(lanes, max_lanes)
        return max(1, min(lanes, total))

    # --- the per-phase decomposition ----------------------------------------

    def phase_prediction(
        self,
        info: PhaseInfo,
        lanes: int,
        level: Optional[str] = None,
        temporal: bool = False,
    ) -> EcmPhasePrediction:
        """Decompose one phase at ``lanes`` lanes into the ECM terms."""
        if lanes < 1:
            raise ConfigurationError(f"lanes must be positive, got {lanes}")
        vector = self.config.vector
        core = self.config.core
        cal = self.calibration
        if level is None:
            level = info.residency_level(self.config.memory)

        elems_per_chunk = ELEMS_PER_LANE * lanes
        chunks = math.ceil(info.trip_count / elems_per_chunk) * max(1, info.repeats)

        comp_uops = info.comp_insts + cal.extra_compute_uops
        mem_uops = info.load_insts + info.store_insts

        # In-core: the wider of the two issue pipes, plus the dependency-
        # chain latency left over after overlapping chains across the
        # chunks the instruction pool keeps in flight.  The synthesized
        # bodies chain `comp - (loads-1)` ops per store behind a
        # `log2(loads)`-deep combine tree (see workloads.synth).
        t_issue = max(
            comp_uops / vector.compute_issue_width,
            mem_uops / vector.ldst_issue_width,
        )
        chain_links = max(0, info.comp_insts - max(info.load_insts - 1, 0))
        tree_depth = (
            math.ceil(math.log2(info.load_insts)) if info.load_insts > 1 else 0
        )
        critical_path = (
            chain_links / max(1, info.store_insts) + tree_depth
        ) * vector.compute_latency
        inflight_chunks = max(
            1.0, core.instruction_pool_entries / (comp_uops + mem_uops)
        )
        t_core = t_issue + critical_path / inflight_chunks
        if temporal:
            t_core *= cal.temporal_issue_factor

        # Transfers: issue traffic hits the Vec-Cache port; the reuse-
        # filtered footprint (stores doubled by write-allocate) walks the
        # deeper links its residency level implies.
        memory = self.config.memory
        issue_bytes = mem_uops * lanes * LANE_BYTES
        t_l1 = issue_bytes / memory.vec_cache.bytes_per_cycle
        load_arrays = max(0, info.footprint_arrays - info.store_insts)
        deep_bytes = (
            (load_arrays + cal.store_line_factor * info.store_insts)
            * ELEM_BYTES
            * elems_per_chunk
        )
        share = self.bandwidth_share
        t_l2 = (
            deep_bytes / (memory.l2.bytes_per_cycle * share)
            if level in ("l2", "dram")
            else 0.0
        )
        t_mem = (
            deep_bytes / (memory.dram_bytes_per_cycle * share)
            if level == "dram"
            else 0.0
        )

        return EcmPhasePrediction(
            phase_name=info.loop_name,
            lanes=lanes,
            level=level,
            chunks=chunks,
            t_core=t_core,
            t_l1=t_l1,
            t_l2=t_l2,
            t_mem=t_mem,
            uops_per_chunk=comp_uops + mem_uops,
        )

    # --- whole workloads -----------------------------------------------------

    def predict_kernel(
        self,
        kernel: Kernel,
        policy_key: str = "occamy",
        max_lanes: Optional[int] = None,
    ) -> EcmPrediction:
        """Predict ``kernel``'s cycles under ``policy_key``'s lane grants."""
        temporal = policy_key == "fts"
        phases = []
        for info in analyze_kernel(kernel):
            lanes = self.lanes_for(policy_key, info, max_lanes=max_lanes)
            level = info.residency_level(self.config.memory)
            phases.append(
                self.phase_prediction(info, lanes, level=level, temporal=temporal)
            )
        return EcmPrediction(
            kernel_name=kernel.name,
            policy_key=policy_key,
            phases=tuple(phases),
        )


# --- service prior ------------------------------------------------------------


def _kernels_for_spec(spec: Dict[str, object]) -> List[Kernel]:
    """The kernels a (normalized) job spec would run, one per core."""
    from repro.workloads.motivating import motivating_pair
    from repro.workloads.opencv import opencv_workload
    from repro.workloads.spec import spec_workload

    scale = float(spec["scale"])
    kind = spec["kind"]
    if kind == "motivate":
        return list(motivating_pair(scale))
    if kind == "pair":
        build = spec_workload if spec["suite"] == "spec" else opencv_workload
        return [build(spec["mem"], scale=scale), build(spec["comp"], scale=scale)]
    if kind == "group":
        return [spec_workload(wid, scale=scale) for wid in spec["group"]]
    raise ConfigurationError(f"unknown spec kind {kind!r}")


@lru_cache(maxsize=512)
def _predict_signature(signature: str) -> Optional[float]:
    import json

    from repro.service.specs import normalize_spec

    try:
        spec = normalize_spec(json.loads(signature))
        kernels = _kernels_for_spec(spec)
        config = experiment_config(num_cores=int(spec["cores"]))
    except Exception:  # not a spec signature / unknown workload id
        return None
    runners = max(1, len(kernels))
    model = EcmModel(config, bandwidth_share=1.0 / runners)
    policy = str(spec["policy"])
    spatial_share = (
        None
        if policy in TEMPORAL_POLICIES
        else max(1, config.vector.total_lanes // runners)
    )
    try:
        predictions = [
            model.predict_kernel(kernel, policy, max_lanes=spatial_share)
            for kernel in kernels
        ]
    except Exception:  # analysis failure on an exotic kernel: no prior
        return None
    # The co-run finishes when its slowest workload drains.
    return max(prediction.cycles for prediction in predictions)


def predict_spec_cycles(signature: str) -> Optional[float]:
    """ECM cycle estimate for a job-spec *signature* (cost-model prior).

    ``signature`` is the canonical JSON produced by
    :func:`repro.service.specs.task_signature`.  Returns ``None`` for
    anything that is not a parseable spec — the caller falls back to the
    infinite-cost FIFO behaviour, so opaque signatures keep their old
    semantics.  Estimates are co-run aware: the shared L2/DRAM ceilings
    and (for spatial policies) the lane pool are split across the spec's
    workloads, and the prediction is the slowest workload's drain time.
    """
    return _predict_signature(signature)


# --- convenience --------------------------------------------------------------


def predict_workload(
    kernel: Kernel,
    policy_key: str = "occamy",
    config: Optional[MachineConfig] = None,
) -> EcmPrediction:
    """One-shot solo-workload prediction (the validation harness's view)."""
    return EcmModel(config).predict_kernel(kernel, policy_key)


def lane_sweep(
    kernel: Kernel,
    lane_choices: Sequence[int],
    config: Optional[MachineConfig] = None,
    phase_index: int = 0,
) -> List[EcmPhasePrediction]:
    """The ECM decomposition of one phase across fixed lane counts."""
    model = EcmModel(config)
    info = analyze_kernel(kernel)[phase_index]
    return [model.phase_prediction(info, lanes) for lanes in lane_choices]
