"""Run-trace export and ASCII visualisation.

``export_trace`` serialises a :class:`RunResult` — lane timelines, phase
records, stall breakdowns, cache/bandwidth statistics — into plain JSON
for external tooling; ``phase_gantt`` renders a terminal Gantt chart of
the phases with their lane allocations, the picture Figs. 2/8/14(b) tell.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional

from repro.core.machine import RunResult


def trace_dict(result: RunResult) -> Dict[str, object]:
    """A JSON-serialisable description of one run."""
    metrics = result.metrics
    return {
        "policy": result.policy_key,
        "total_cycles": result.total_cycles,
        "core_cycles": list(result.core_cycles),
        "simd_utilization": metrics.simd_utilization(),
        "lane_timelines": [
            [[int(c), float(v)] for c, v in metrics.lane_timeline[core].points]
            for core in range(metrics.num_cores)
        ],
        "phases": [
            {
                "core": phase.core,
                "oi_issue": phase.oi.issue,
                "oi_mem": phase.oi.mem,
                "level": phase.oi.level,
                "start": phase.start_cycle,
                "end": phase.end_cycle,
                "compute_uops": phase.compute_uops,
                "ldst_uops": phase.ldst_uops,
                "issue_rate": phase.issue_rate,
            }
            for phase in metrics.phases
        ],
        "stalls": [
            {reason.value: count for reason, count in metrics.stalls[core].items()}
            for core in range(metrics.num_cores)
        ],
        "reconfigurations": {
            "success": list(metrics.reconfig_success),
            "failed": list(metrics.reconfig_failed),
        },
        "overhead": [
            metrics.overhead_fraction(core) for core in range(metrics.num_cores)
        ],
    }


def export_trace(result: RunResult, path: str) -> None:
    """Write :func:`trace_dict` to ``path`` as indented JSON, atomically.

    The JSON is staged in a temporary file in the destination directory
    (created if missing) and moved into place with :func:`os.replace`, so
    a crash mid-serialisation can never leave a truncated trace behind —
    readers see either the previous complete file or the new one.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(trace_dict(result), handle, indent=2)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def phase_gantt(result: RunResult, width: int = 64) -> str:
    """An ASCII Gantt chart: one row per phase, bar over its life span,
    annotated with the lane allocation at phase start."""
    metrics = result.metrics
    total = max(1, result.total_cycles)
    lines: List[str] = [
        f"policy={result.policy_key}  total={result.total_cycles} cycles  "
        f"util={100 * metrics.simd_utilization():.1f}%"
    ]
    for phase in metrics.phases:
        end = phase.end_cycle if phase.end_cycle is not None else total
        start_col = int(phase.start_cycle / total * width)
        end_col = max(start_col + 1, int(end / total * width))
        bar = " " * start_col + "#" * (end_col - start_col)
        bar = bar.ljust(width)
        # The lane grant lands a few cycles after the phase marker (the
        # prologue's MSR <VL> spin); report the first allocation in-phase.
        lanes = next(
            (
                value
                for cycle, value in metrics.lane_timeline[phase.core].points
                if phase.start_cycle <= cycle <= end and value > 0
            ),
            metrics.lane_timeline[phase.core].value_at(phase.start_cycle),
        )
        lines.append(
            f"core{phase.core} |{bar}| oi={phase.oi} "
            f"lanes@start={int(lanes)} issue={phase.issue_rate:.2f}"
        )
    return "\n".join(lines)
