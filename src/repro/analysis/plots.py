"""Dependency-free SVG renderings of the paper's plots.

Three chart types cover the evaluation's figures:

* :func:`lane_timeline_svg` — the lane-allocation step functions of
  Fig. 2(e)/Fig. 8/Fig. 14(b);
* :func:`series_svg` — per-bucket busy-lane curves (Fig. 2(b)-(e));
* :func:`bar_chart_svg` — grouped per-pair bars (Fig. 10/11/13).

Everything is plain SVG 1.1 text: no matplotlib, renders in any browser.
"""

from __future__ import annotations

import html
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Qualitative palette (colour-blind safe-ish).
PALETTE = ("#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377")

_MARGIN = 46


class SvgCanvas:
    """A tiny SVG document builder."""

    def __init__(self, width: int, height: int, title: str = "") -> None:
        self.width = width
        self.height = height
        self._parts: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}" '
            f'font-family="sans-serif" font-size="11">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
        ]
        if title:
            self.text(width / 2, 16, title, anchor="middle", size=13)

    def line(self, x1, y1, x2, y2, color="#333", width=1.0, dash="") -> None:
        extra = f' stroke-dasharray="{dash}"' if dash else ""
        self._parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{color}" stroke-width="{width}"{extra}/>'
        )

    def polyline(self, points: Sequence[Tuple[float, float]], color: str, width=1.6) -> None:
        path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self._parts.append(
            f'<polyline points="{path}" fill="none" stroke="{color}" '
            f'stroke-width="{width}"/>'
        )

    def rect(self, x, y, w, h, color: str, opacity=1.0) -> None:
        self._parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{color}" opacity="{opacity}"/>'
        )

    def text(self, x, y, content, anchor="start", size=11, color="#222") -> None:
        self._parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" text-anchor="{anchor}" '
            f'font-size="{size}" fill="{color}">{html.escape(str(content))}</text>'
        )

    def render(self) -> str:
        return "\n".join(self._parts + ["</svg>"])


def _axes(canvas: SvgCanvas, x_label: str, y_label: str, y_max: float) -> None:
    left, top = _MARGIN, 28
    right, bottom = canvas.width - 12, canvas.height - _MARGIN
    canvas.line(left, bottom, right, bottom)
    canvas.line(left, top, left, bottom)
    canvas.text((left + right) / 2, canvas.height - 10, x_label, anchor="middle")
    canvas.text(14, top - 8, y_label)
    for tick in range(5):
        frac = tick / 4
        y = bottom - frac * (bottom - top)
        canvas.line(left - 3, y, left, y)
        canvas.text(left - 6, y + 4, f"{y_max * frac:g}", anchor="end", size=9)


def _scale(canvas: SvgCanvas):
    left, top = _MARGIN, 28
    right, bottom = canvas.width - 12, canvas.height - _MARGIN

    def to_xy(fx: float, fy: float) -> Tuple[float, float]:
        return left + fx * (right - left), bottom - fy * (bottom - top)

    return to_xy


def lane_timeline_svg(
    timelines: Mapping[str, Sequence[Tuple[int, float]]],
    total_cycles: int,
    total_lanes: int = 32,
    title: str = "Lane allocation over time",
    width: int = 640,
    height: int = 300,
) -> str:
    """Step plot of lanes-allocated per labelled timeline (Fig. 14(b))."""
    canvas = SvgCanvas(width, height, title)
    _axes(canvas, "cycles", "#lanes", total_lanes)
    to_xy = _scale(canvas)
    total = max(1, total_cycles)
    for index, (label, points) in enumerate(timelines.items()):
        color = PALETTE[index % len(PALETTE)]
        path: List[Tuple[float, float]] = []
        level = 0.0
        for cycle, value in points:
            fx = min(1.0, cycle / total)
            path.append(to_xy(fx, level / total_lanes))
            path.append(to_xy(fx, value / total_lanes))
            level = value
        path.append(to_xy(1.0, level / total_lanes))
        if path:
            canvas.polyline(path, color)
        canvas.rect(width - 150, 30 + 16 * index, 10, 10, color)
        canvas.text(width - 136, 39 + 16 * index, label, size=10)
    return canvas.render()


def series_svg(
    series: Mapping[str, Sequence[float]],
    bucket_cycles: int = 1000,
    y_max: Optional[float] = None,
    title: str = "Busy lanes per 1000-cycle bucket",
    width: int = 640,
    height: int = 300,
) -> str:
    """Line plot of bucketed per-cycle averages (Fig. 2(b)-(e))."""
    canvas = SvgCanvas(width, height, title)
    peak = y_max or max(
        (max(values) for values in series.values() if values), default=1.0
    ) or 1.0
    _axes(canvas, f"time (x{bucket_cycles} cycles)", "lanes busy", peak)
    to_xy = _scale(canvas)
    longest = max((len(v) for v in series.values()), default=1)
    for index, (label, values) in enumerate(series.items()):
        color = PALETTE[index % len(PALETTE)]
        points = [
            to_xy(i / max(1, longest - 1), min(1.0, v / peak))
            for i, v in enumerate(values)
        ]
        if points:
            canvas.polyline(points, color)
        canvas.rect(width - 150, 30 + 16 * index, 10, 10, color)
        canvas.text(width - 136, 39 + 16 * index, label, size=10)
    return canvas.render()


def bar_chart_svg(
    groups: Sequence[str],
    series: Mapping[str, Sequence[float]],
    y_label: str = "speedup",
    baseline: Optional[float] = 1.0,
    title: str = "",
    width: int = 900,
    height: int = 320,
) -> str:
    """Grouped bars: one cluster per group, one bar per series (Fig. 10)."""
    canvas = SvgCanvas(width, height, title)
    peak = max(
        (max(values) for values in series.values() if values), default=1.0
    ) * 1.1
    _axes(canvas, "", y_label, peak)
    to_xy = _scale(canvas)
    n_groups = max(1, len(groups))
    n_series = max(1, len(series))
    cluster = 1.0 / n_groups
    bar = cluster * 0.8 / n_series
    for series_index, (label, values) in enumerate(series.items()):
        color = PALETTE[series_index % len(PALETTE)]
        for group_index, value in enumerate(values):
            fx = group_index * cluster + cluster * 0.1 + series_index * bar
            x0, y0 = to_xy(fx, 0.0)
            x1, y1 = to_xy(fx, min(1.0, value / peak))
            canvas.rect(x0, y1, max(1.0, bar * (width - _MARGIN - 12)), y0 - y1, color)
        canvas.rect(width - 150, 30 + 16 * series_index, 10, 10, color)
        canvas.text(width - 136, 39 + 16 * series_index, label, size=10)
    if baseline is not None and peak > 0:
        _x0, y = to_xy(0, baseline / peak)
        canvas.line(_MARGIN, y, width - 12, y, color="#999", dash="4,3")
    for group_index, group in enumerate(groups):
        fx = (group_index + 0.5) * cluster
        x, _y = to_xy(fx, 0)
        canvas.text(x, height - _MARGIN + 14, group, anchor="middle", size=8)
    return canvas.render()


def write_svg(svg: str, path: str) -> None:
    """Write an SVG document to ``path``."""
    with open(path, "w") as handle:
        handle.write(svg)
