"""Energy accounting for the SIMD co-processor.

The paper's baselines come from Beldianu & Ziavras's *performance-energy*
work on shared vector co-processors, so an energy model belongs in a full
reproduction even though the paper itself only reports area.  The model is
event-based with 7 nm-class coefficients:

* dynamic compute energy per 128-bit lane-operation;
* register-file energy per lane-operation (reads + write);
* memory energy per byte, by the level that served it;
* static (leakage) energy proportional to the Fig. 12 area model and the
  run's duration.

Coefficients live in :class:`EnergyCoefficients` — they set the *scale*;
cross-policy comparisons (the interesting part) depend only on relative
event counts and runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.area import area_model
from repro.core.machine import RunResult


@dataclass(frozen=True)
class EnergyCoefficients:
    """Per-event energies (picojoules), 7 nm-class ballpark."""

    compute_per_lane_op: float = 2.0  # one 128-bit FP op in one ExeBU
    regfile_per_lane_op: float = 1.2  # operand reads + result write
    vec_cache_per_byte: float = 0.6
    l2_per_byte: float = 2.4
    dram_per_byte: float = 18.0
    #: Leakage power density (watts per mm²) applied to the area model.
    leakage_w_per_mm2: float = 0.05


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown for one run, in microjoules."""

    policy_key: str
    components_uj: Dict[str, float]
    total_cycles: int
    frequency_ghz: float

    @property
    def total_uj(self) -> float:
        return sum(self.components_uj.values())

    @property
    def runtime_us(self) -> float:
        return self.total_cycles / (self.frequency_ghz * 1000.0)

    @property
    def edp(self) -> float:
        """Energy-delay product (uJ x us)."""
        return self.total_uj * self.runtime_us

    def rows(self) -> List[List[object]]:
        ordered = sorted(self.components_uj.items(), key=lambda kv: -kv[1])
        return [[name, f"{value:.2f}"] for name, value in ordered]


def energy_report(
    result: RunResult,
    coefficients: EnergyCoefficients = EnergyCoefficients(),
) -> EnergyReport:
    """Event-based energy accounting over a finished run."""
    metrics = result.metrics
    config = result.config
    pj: Dict[str, float] = {}

    # Dynamic compute + register file: busy pipe slots = uops x lanes.
    lane_ops = metrics.busy_pipe_slots
    pj["simd_exe_units"] = lane_ops * coefficients.compute_per_lane_op
    pj["register_file"] = lane_ops * coefficients.regfile_per_lane_op

    # Memory: per-line traffic at the level that served each access.
    line = config.memory.line_bytes
    vec_bytes = l2_bytes = dram_bytes = 0
    for stats in result.lsu_stats:
        vec_bytes += stats.vec_cache_hits * line
        l2_bytes += stats.l2_hits * line
        dram_bytes += stats.dram_accesses * line
    pj["vec_cache"] = vec_bytes * coefficients.vec_cache_per_byte
    pj["l2"] = l2_bytes * coefficients.l2_per_byte
    pj["dram"] = dram_bytes * coefficients.dram_per_byte

    # Static leakage over the run: area x power density x time.
    area_mm2 = area_model(config, result.policy_key).total
    seconds = result.total_cycles / (config.frequency_ghz * 1e9)
    pj["leakage"] = area_mm2 * coefficients.leakage_w_per_mm2 * seconds * 1e12

    return EnergyReport(
        policy_key=result.policy_key,
        components_uj={name: value / 1e6 for name, value in pj.items()},
        total_cycles=result.total_cycles,
        frequency_ghz=config.frequency_ghz,
    )


def compare_energy(
    results: Dict[str, RunResult],
    coefficients: EnergyCoefficients = EnergyCoefficients(),
) -> Dict[str, EnergyReport]:
    """Energy reports for a set of policy runs of the same workloads."""
    return {key: energy_report(run, coefficients) for key, run in results.items()}
