"""Persistent on-disk cache of simulation results.

Every paper figure boils down to a set of ``(MachineConfig, policy,
program, memory image)`` simulations.  Those are deterministic, so their
:class:`~repro.core.machine.RunResult` can be reused across *processes* —
a warm re-run of a figure costs only compilation plus deserialisation.

Keys are content hashes: the full configuration fingerprint, the policy
key, each core's program text (including instrumentation metadata) and the
initial bytes of each memory image.  Changing any input — a cache size, a
compiler optimisation, a workload scale — changes the key, so stale
entries are never returned; bump :data:`CACHE_VERSION` when the
*simulator's timing semantics* change instead.

Loads are corruption-tolerant: a truncated, unreadable or
version-mismatched file is treated as a miss (the caller re-simulates),
never an error.  Writes are atomic (temp file + rename) so a crashed or
parallel writer cannot leave a half-written entry behind.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.common.config import MachineConfig, config_fingerprint, default_batch_exec
from repro.core.machine import (
    Job,
    RunResult,
    default_event_wheel,
    default_fast_forward,
    default_hier_wheel,
)
from repro.core.partition import default_lane_shards
from repro.core.replay import default_loop_replay
from repro.core.scalar_core import default_pre_decode

#: Bump when simulation *semantics* change so old entries stop matching.
#: v2: tickless event-wheel engine added; engine kill switches join the key.
#: v3: batch-execute dispatch backend added; its kill switch joins the key.
#: v4: hierarchical wake index + sharded lane bookkeeping added; both kill
#:     switches join the key.
#: v5: allocation subsystem added; the ``alloc`` ingredient (placement/
#:     calibration namespace) joins the key.
CACHE_VERSION = 5

#: Every engine kill switch, as ``(env_var, default_fn)`` pairs — the single
#: source of truth :func:`simulation_key` folds into its digest.  A new
#: engine axis must be registered here (and in
#: ``difftest.ENGINE_KILL_SWITCH_ENV``); the key-coverage test fails loudly
#: when either registry misses one.
ENGINE_SWITCHES = (
    ("REPRO_NO_PRE_DECODE", default_pre_decode),
    ("REPRO_NO_FAST_FORWARD", default_fast_forward),
    ("REPRO_NO_LOOP_REPLAY", default_loop_replay),
    ("REPRO_NO_EVENT_WHEEL", default_event_wheel),
    ("REPRO_NO_BATCH_EXEC", default_batch_exec),
    ("REPRO_NO_HIER_WHEEL", default_hier_wheel),
    ("REPRO_NO_LANE_SHARDS", default_lane_shards),
)

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Set (to any non-empty value) to disable the persistent layer entirely.
NO_CACHE_ENV = "REPRO_NO_CACHE"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


# --- content hashing ---------------------------------------------------------


def _hash_meta_value(value: object) -> str:
    """Canonical text for one program-metadata value.

    Sets (the ``monitor``/``reconfig`` instruction-index sets) are sorted
    so the hash does not depend on iteration order.
    """
    if isinstance(value, (set, frozenset)):
        return repr(sorted(value))
    if isinstance(value, (list, tuple)):
        return repr([repr(item) for item in value])
    return repr(value)


def _feed_job(digest: "hashlib._Hash", job: Optional[Job]) -> None:
    if job is None:
        digest.update(b"\x00<idle core>\x00")
        return
    program = job.program
    digest.update(program.name.encode("utf-8"))
    digest.update(program.disassemble().encode("utf-8"))
    for key in sorted(program.meta):
        digest.update(key.encode("utf-8"))
        digest.update(_hash_meta_value(program.meta[key]).encode("utf-8"))
    image = job.image
    digest.update(str(image.base_address).encode("utf-8"))
    for name, array in image:
        digest.update(name.encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())


def simulation_key(
    config: MachineConfig,
    policy_key: str,
    jobs: Sequence[Optional[Job]],
    max_cycles: int = 3_000_000,
    salt: str = "",
    alloc: str = "",
) -> str:
    """Content hash identifying one simulation's full input.

    ``alloc`` namespaces allocation-layer runs (e.g. symbiosis
    calibration micro co-runs).  It stays ``""`` for ordinary complex
    runs on purpose: placement is a pure pre-simulation decision, so the
    same pair under any placement policy must share one cache entry.
    """
    digest = hashlib.sha256()
    digest.update(f"v{CACHE_VERSION}".encode("utf-8"))
    # Engine kill switches (REPRO_NO_*) select bit-identical fast paths, but
    # a flipped switch must not serve entries recorded under another engine:
    # results carry engine-side profile fields, and a cache hit must mean
    # "this exact run would have been produced".
    engines = tuple(default() for _, default in ENGINE_SWITCHES)
    digest.update(repr(engines).encode("utf-8"))
    digest.update(config_fingerprint(config).encode("utf-8"))
    digest.update(policy_key.encode("utf-8"))
    digest.update(str(max_cycles).encode("utf-8"))
    digest.update(salt.encode("utf-8"))
    digest.update(f"alloc:{alloc}".encode("utf-8"))
    for job in jobs:
        _feed_job(digest, job)
    return digest.hexdigest()


# --- the cache itself --------------------------------------------------------


@dataclass(frozen=True)
class CacheEntry:
    """One on-disk cache file, as seen by ``entries``/``prune``."""

    key: str
    path: Path
    size_bytes: int
    mtime: float


@dataclass(frozen=True)
class CacheStats:
    """Aggregate cache shape for ``repro cache stats``."""

    directory: Path
    entries: int
    total_bytes: int
    hits: int
    misses: int


class ResultCache:
    """A directory of pickled :class:`RunResult` objects keyed by hash."""

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key``, or ``None``.

        Any failure to read or deserialise — missing file, truncation,
        pickle corruption, a payload written by a different
        :data:`CACHE_VERSION` — is a miss, never an exception.
        """
        try:
            with open(self.path_for(key), "rb") as handle:
                version, payload = pickle.load(handle)
        except Exception:
            self.misses += 1
            return None
        if version != CACHE_VERSION or not isinstance(payload, RunResult):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, result: RunResult) -> bool:
        """Store ``result`` under ``key`` atomically; best-effort.

        Returns False (without raising) when the cache directory is not
        writable — persistence is an optimisation, never a requirement.
        """
        tmp_name = None
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=".write-", suffix=".tmp"
            )
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(
                    (CACHE_VERSION, result), handle, protocol=pickle.HIGHEST_PROTOCOL
                )
            os.replace(tmp_name, self.path_for(key))
            return True
        except OSError:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            return False

    def entries(self) -> List["CacheEntry"]:
        """Every cached entry (key, size, mtime), oldest first.

        Unreadable entries (racing deletes, permission holes) are skipped;
        like :meth:`get`, inspection never raises.
        """
        found: List[CacheEntry] = []
        try:
            paths: Iterable[Path] = self.directory.glob("*.pkl")
        except OSError:
            return found
        for path in paths:
            try:
                stat = path.stat()
            except OSError:
                continue
            found.append(
                CacheEntry(
                    key=path.stem,
                    path=path,
                    size_bytes=stat.st_size,
                    mtime=stat.st_mtime,
                )
            )
        found.sort(key=lambda entry: (entry.mtime, entry.key))
        return found

    def stats(self) -> "CacheStats":
        """Aggregate entry count / byte total for ``repro cache stats``."""
        entries = self.entries()
        return CacheStats(
            directory=self.directory,
            entries=len(entries),
            total_bytes=sum(entry.size_bytes for entry in entries),
            hits=self.hits,
            misses=self.misses,
        )

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
    ) -> int:
        """Evict oldest entries until both bounds hold; returns count removed.

        Eviction is strictly oldest-first (by mtime), so the newest
        results — the ones the service's dedup layer is most likely to
        coalesce against — always survive.  With no bounds given this is
        a no-op.
        """
        entries = self.entries()
        total = sum(entry.size_bytes for entry in entries)
        count = len(entries)
        removed = 0
        for entry in entries:  # oldest first
            over_bytes = max_bytes is not None and total > max_bytes
            over_count = max_entries is not None and count > max_entries
            if not over_bytes and not over_count:
                break
            try:
                entry.path.unlink()
            except OSError:
                continue
            total -= entry.size_bytes
            count -= 1
            removed += 1
        return removed

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        try:
            entries: Iterable[Path] = self.directory.glob("*.pkl")
        except OSError:
            return 0
        for path in entries:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.directory.glob("*.pkl"))
        except OSError:
            return 0


# --- process-wide default cache ---------------------------------------------

_default_cache: Optional[ResultCache] = None
_disabled = False
_pinned = False


def configure(
    cache_dir: Optional[os.PathLike] = None, disabled: bool = False
) -> None:
    """Set the process-wide default cache (CLI ``--cache-dir``/``--no-cache``)."""
    global _default_cache, _disabled, _pinned
    _disabled = disabled
    _pinned = cache_dir is not None and not disabled
    _default_cache = None if disabled else ResultCache(cache_dir)


def default_cache() -> Optional[ResultCache]:
    """The process-wide cache, or ``None`` when disabled.

    Disabled by :func:`configure` (``--no-cache``) or the ``REPRO_NO_CACHE``
    environment variable.  Unless :func:`configure` pinned a directory, the
    environment is re-read on every call so test fixtures can redirect the
    cache mid-process.
    """
    global _default_cache
    if _disabled or os.environ.get(NO_CACHE_ENV):
        return None
    if _default_cache is None or (
        not _pinned and _default_cache.directory != default_cache_dir()
    ):
        _default_cache = ResultCache()
    return _default_cache
