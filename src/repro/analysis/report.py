"""One-shot reproduction report: every headline number in one Markdown file.

``generate_report`` runs a configurable slice of the evaluation (the
motivating example, a subset or all of the 25 pairs, Table 5, the area
model) and writes a self-contained Markdown report with paper-vs-measured
tables — the artifact a reviewer would ask for.

CLI: ``python -m repro report out.md [--scale S] [--pairs N]``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.area import area_model
from repro.analysis.energy import compare_energy
from repro.analysis.experiments import (
    MotivationResult,
    motivation_fig2,
    sweep_pairs,
    table5_rows,
)
from repro.analysis.reporting import geomean
from repro.common.config import MachineConfig, experiment_config, table4_config
from repro.coproc.metrics import StallReason
from repro.workloads.pairs import all_pairs

PAPER_FIG2 = {"private": 1.00, "fts": 1.41, "vls": 1.25, "occamy": 1.62}
PAPER_FIG10 = {"fts": 1.20, "vls": 1.11, "occamy": 1.39}
PAPER_FIG11 = {"private": 0.632, "fts": 0.725, "vls": 0.708, "occamy": 0.842}
POLICIES = ("private", "fts", "vls", "occamy")


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _fig2_section(result: MotivationResult) -> str:
    rows = []
    for key in POLICIES:
        rows.append(
            [
                key,
                f"{result.speedup(key, 1):.2f}x",
                f"{PAPER_FIG2[key]:.2f}x",
                f"{result.speedup(key, 0):.2f}x",
                f"{100 * result.utilization(key):.1f}%",
            ]
        )
    plans = result.results["occamy"].lane_manager.plan_history
    plan_text = " -> ".join(str(plan) for _cycle, plan in plans[:4])
    return (
        "## Motivating example (Fig. 2)\n\n"
        + _md_table(["arch", "sp1", "sp1 (paper)", "sp0", "util"], rows)
        + f"\n\nOccamy's elastic plan: `{plan_text}`\n"
    )


def _pairs_section(outcomes) -> str:
    gm1 = {
        key: geomean([o.speedup(key, 1) for o in outcomes])
        for key in ("fts", "vls", "occamy")
    }
    gm0 = geomean([o.speedup("occamy", 0) for o in outcomes])
    util = {key: geomean([o.utilization(key) for o in outcomes]) for key in POLICIES}
    fts_stalls = geomean(
        [
            max(o.rename_stall_fraction("fts", core) for core in (0, 1)) or 1e-6
            for o in outcomes
        ]
    )
    rows = [
        ["GM Core1 speedup", f"{gm1['fts']:.2f}", f"{gm1['vls']:.2f}",
         f"{gm1['occamy']:.2f}", "1.20 / 1.11 / 1.39"],
        ["GM utilisation", f"{100 * util['fts']:.1f}%", f"{100 * util['vls']:.1f}%",
         f"{100 * util['occamy']:.1f}%",
         "72.5% / 70.8% / 84.2% (Private 63.2%)"],
    ]
    return (
        f"## Co-running pairs (Figs. 10/11/13; {len(outcomes)} pairs)\n\n"
        + _md_table(["metric", "FTS", "VLS", "Occamy", "paper"], rows)
        + f"\n\nOccamy Core0 GM: {gm0:.2f}x (paper ~1.00). "
        f"FTS renaming stalls GM (worst core): {100 * fts_stalls:.0f}% "
        "(paper >70%); 0% on the spatial policies.\n"
    )


def _table5_section(config: MachineConfig) -> str:
    rows = [
        [
            int(row["vl"]),
            f"{row['simd_issue_bound']:.1f}",
            f"{row['mem_bound']:.1f}",
            f"{row['comp_bound']:.1f}",
            f"{row['performance']:.1f}",
        ]
        for row in table5_rows(config)
    ]
    return (
        "## Table 5 (exact reproduction)\n\n"
        + _md_table(["VL", "IssueBound", "MemBound", "CompBound", "Perf"], rows)
        + "\n"
    )


def _area_section() -> str:
    config = table4_config()
    rows = [
        [key, f"{area_model(config, key).total:.3f}",
         "1.265" if key == "occamy" else "1.263"]
        for key in POLICIES
    ]
    config4 = table4_config(4)
    overhead = area_model(config4, "fts").total / area_model(config4, "private").total - 1
    return (
        "## Area (Fig. 12)\n\n"
        + _md_table(["arch", "mm^2", "paper"], rows)
        + f"\n\n4-core FTS overhead: +{100 * overhead:.1f}% (paper +33.5%).\n"
    )


def _energy_section(result: MotivationResult) -> str:
    reports = compare_energy(result.results)
    rows = [
        [key, f"{report.total_uj:.1f}", f"{report.runtime_us:.1f}",
         f"{report.edp:.0f}"]
        for key, report in reports.items()
    ]
    return (
        "## Energy (extension)\n\n"
        + _md_table(["arch", "energy (uJ)", "runtime (us)", "EDP"], rows)
        + "\n"
    )


def generate_report(
    scale: float = 0.4,
    pairs_limit: Optional[int] = 6,
    config: Optional[MachineConfig] = None,
    jobs: Optional[int] = None,
) -> str:
    """Build the Markdown report (runs the simulations; ``jobs`` fans them
    across worker processes)."""
    config = config or experiment_config()
    motivation = motivation_fig2(scale=scale, config=config, jobs=jobs)
    pairs = all_pairs()
    if pairs_limit is not None:
        pairs = pairs[:pairs_limit]
    outcomes = sweep_pairs(pairs, scale=scale, config=config, jobs=jobs)
    sections = [
        "# Occamy reproduction report\n",
        f"Workload scale {scale}; {config.num_cores} cores, "
        f"{config.vector.total_lanes} lanes.  See EXPERIMENTS.md for the "
        "full-suite numbers and fidelity notes.\n",
        _fig2_section(motivation),
        _pairs_section(outcomes),
        _table5_section(config),
        _area_section(),
        _energy_section(motivation),
    ]
    return "\n".join(sections)


def write_report(path: str, **kwargs) -> None:
    """Generate and write the report to ``path``."""
    with open(path, "w") as handle:
        handle.write(generate_report(**kwargs))
