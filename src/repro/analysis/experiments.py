"""Experiment drivers — one per evaluation figure/table (paper §7).

All drivers share a two-level result cache so Fig. 10 (speedups), Fig. 11
(utilisation), Fig. 13 (renaming stalls) and Fig. 15 (overhead) reuse the
same 25-pair x 4-policy simulations instead of re-running them:

* an in-process memo keyed by (pair, policy, scale, config fingerprint);
* the persistent on-disk layer of :mod:`repro.analysis.result_cache`,
  shared across processes and invocations (disable with ``--no-cache`` /
  ``REPRO_NO_CACHE``).

Passing ``jobs`` (or setting ``REPRO_JOBS``) fans cache misses out across
worker processes via :mod:`repro.analysis.parallel`; results are
bit-identical to the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import MachineConfig, config_fingerprint, experiment_config
from repro.compiler.ir import Kernel
from repro.compiler.pipeline import CompileOptions, build_image, compile_kernel
from repro.coproc.coprocessor import SharingMode
from repro.coproc.metrics import StallReason
from repro.core.lane_manager import StaticLaneManager
from repro.core.machine import Job, RunResult, run_policy
from repro.core.policies import ALL_POLICIES, PRIVATE, Policy
from repro.core.roofline import RooflineModel
from repro.isa.registers import OIValue
from repro.workloads.pairs import (
    FOUR_CORE_GROUPS,
    CoRunPair,
    all_pairs,
    jobs_for_pair,
    workload_job,
)
from repro.workloads.spec import spec_workload

#: Default workload scale for the benchmark harness (repeat multiplier).
DEFAULT_SCALE = 0.35

_sweep_cache: Dict[Tuple[object, ...], RunResult] = {}


def _memo_key(
    pair: CoRunPair, policy_key: str, scale: float, config: MachineConfig
) -> Tuple[object, ...]:
    # The full config fingerprint (not just num_cores): any knob change —
    # cache geometry, lane count, latencies — must be a miss.
    return (str(pair), policy_key, scale, config_fingerprint(config))


def lookup_sweep_memo(
    pair: CoRunPair, policy_key: str, scale: float, config: MachineConfig
) -> Optional[RunResult]:
    """The memoised result for one sweep point, if present."""
    return _sweep_cache.get(_memo_key(pair, policy_key, scale, config))


def seed_sweep_memo(
    pair: CoRunPair,
    policy_key: str,
    scale: float,
    config: MachineConfig,
    result: RunResult,
) -> None:
    """Install an externally computed result (the parallel engine's) so
    later serial drivers reuse it."""
    _sweep_cache[_memo_key(pair, policy_key, scale, config)] = result


def clear_sweep_cache() -> None:
    """Drop memoised simulation results — both the in-process memo and the
    active persistent on-disk layer (tests use this for isolation)."""
    from repro.analysis import result_cache

    _sweep_cache.clear()
    disk = result_cache.default_cache()
    if disk is not None:
        disk.clear()


def _cached_pair_run(
    pair: CoRunPair, policy: Policy, scale: float, config: MachineConfig
) -> RunResult:
    from repro.analysis import result_cache

    key = _memo_key(pair, policy.key, scale, config)
    hit = _sweep_cache.get(key)
    if hit is not None:
        return hit
    jobs = jobs_for_pair(pair, scale)
    disk = result_cache.default_cache()
    disk_key = None
    if disk is not None:
        disk_key = result_cache.simulation_key(config, policy.key, jobs)
        result = disk.get(disk_key)
        if result is not None:
            _sweep_cache[key] = result
            return result
    result = run_policy(config, policy, jobs)
    if disk is not None:
        disk.put(disk_key, result)
    _sweep_cache[key] = result
    return result


@dataclass
class PairOutcome:
    """All four policies' results for one co-running pair."""

    pair: CoRunPair
    results: Dict[str, RunResult]

    def speedup(self, policy_key: str, core: int) -> float:
        """Per-core speedup over the Private baseline (Fig. 10)."""
        return self.results[policy_key].speedup_over(self.results["private"], core)

    def utilization(self, policy_key: str) -> float:
        """Whole-run SIMD utilisation (Fig. 11)."""
        return self.results[policy_key].metrics.simd_utilization()

    def rename_stall_fraction(self, policy_key: str, core: int) -> float:
        """Fraction of cycles stalled waiting for free registers (Fig. 13)."""
        return self.results[policy_key].metrics.stall_fraction(
            core, StallReason.RENAME
        )

    def overhead(self, core: int) -> Dict[str, float]:
        """Occamy's EM-SIMD runtime overhead split (Fig. 15)."""
        return self.results["occamy"].metrics.overhead_fraction(core)


def pair_outcome(
    pair: CoRunPair,
    scale: float = DEFAULT_SCALE,
    config: Optional[MachineConfig] = None,
    policies: Sequence[Policy] = ALL_POLICIES,
    jobs: Optional[int] = None,
) -> PairOutcome:
    """Run (or fetch) one pair under every policy."""
    from repro.analysis.parallel import resolve_jobs

    config = config or experiment_config()
    if policies is ALL_POLICIES and resolve_jobs(jobs) > 1:
        return sweep_pairs([pair], scale, config, jobs=jobs)[0]
    results = {
        policy.key: _cached_pair_run(pair, policy, scale, config)
        for policy in policies
    }
    return PairOutcome(pair=pair, results=results)


def sweep_pairs(
    pairs: Optional[Sequence[CoRunPair]] = None,
    scale: float = DEFAULT_SCALE,
    config: Optional[MachineConfig] = None,
    jobs: Optional[int] = None,
) -> List[PairOutcome]:
    """The full Fig. 10/11/13/15 sweep (memoised, optionally parallel).

    ``jobs`` (default: ``$REPRO_JOBS``, else serial) fans the underlying
    simulations across worker processes; the outcomes — and their order —
    are bit-identical either way.
    """
    from repro.analysis.parallel import resolve_jobs, sweep_pairs_parallel

    pairs = list(pairs) if pairs is not None else all_pairs()
    if resolve_jobs(jobs) > 1:
        return sweep_pairs_parallel(pairs, scale=scale, config=config, jobs=jobs)
    return [pair_outcome(pair, scale, config) for pair in pairs]


# --- Fig. 2: the motivating example ----------------------------------------


@dataclass
class MotivationResult:
    """Fig. 2(b)-(f): four architectures co-running WL#0 + WL#1."""

    results: Dict[str, RunResult]

    def speedup(self, policy_key: str, core: int) -> float:
        return self.results[policy_key].speedup_over(self.results["private"], core)

    def utilization(self, policy_key: str) -> float:
        return self.results[policy_key].metrics.simd_utilization()

    def issue_rates(self, policy_key: str, core: int) -> List[float]:
        metrics = self.results[policy_key].metrics
        return [phase.issue_rate for phase in metrics.phases_of(core)]

    def lane_series(self, policy_key: str, core: int) -> List[float]:
        """Per-1000-cycle average busy lanes (the Fig. 2 plots)."""
        series = self.results[policy_key].metrics.busy_lanes_series[core]
        return [total / series.bucket_cycles for total in series.totals()]


def motivation_fig2(
    scale: float = 0.5,
    config: Optional[MachineConfig] = None,
    jobs: Optional[int] = None,
) -> MotivationResult:
    """Run the §2 motivating example on all four architectures.

    Routed through the parallel engine so runs hit the persistent result
    cache and ``jobs > 1`` fans the four policies across processes.
    """
    from repro.analysis.parallel import motivation_runs

    return MotivationResult(results=motivation_runs(scale, config, jobs=jobs))


# --- Fig. 14: case study with fixed lane counts ------------------------------


def run_with_fixed_lanes(
    kernel: Kernel,
    lanes: int,
    config: Optional[MachineConfig] = None,
    core_id: int = 0,
) -> RunResult:
    """Run ``kernel`` alone with a hard-wired lane allocation.

    Used for Fig. 14(a)'s "normalised execution time vs #lanes" sweep.
    """
    config = config or experiment_config()
    fixed = Policy(
        key=f"fixed{lanes}",
        label=f"Fixed({lanes})",
        mode=SharingMode.SPATIAL,
        _factory=lambda cfg, ois: StaticLaneManager(
            {core: lanes for core in range(cfg.num_cores)}
        ),
    )
    program = compile_kernel(kernel, CompileOptions(default_vl=lanes, memory=config.memory))
    jobs: List[Optional[Job]] = [None] * config.num_cores
    jobs[core_id] = Job(program, build_image(kernel, core_id))
    return run_policy(config, fixed, jobs)


@dataclass
class CaseStudyResult:
    """Fig. 14: WL20 + WL17 under varying lane counts and policies."""

    #: lanes -> (phase durations of WL20, duration of WL17), solo runs.
    lane_sweep: Dict[int, Tuple[List[int], int]]
    #: policy -> co-run result.
    corun: Dict[str, RunResult]

    def normalized_times(self, phase_index: int) -> Dict[int, float]:
        """Fig. 14(a): WL20 phase time vs lanes, normalised to the max."""
        times = {
            lanes: durations[phase_index]
            for lanes, (durations, _comp) in self.lane_sweep.items()
        }
        peak = max(times.values())
        return {lanes: t / peak for lanes, t in times.items()}

    def normalized_compute_times(self) -> Dict[int, float]:
        """Fig. 14(a): WL17 time vs lanes, normalised to the max."""
        times = {lanes: comp for lanes, (_d, comp) in self.lane_sweep.items()}
        peak = max(times.values())
        return {lanes: t / peak for lanes, t in times.items()}

    def lane_timeline(self, policy_key: str, core: int) -> List[Tuple[int, float]]:
        """Fig. 14(b): the lanes-allocated step function for WL17."""
        return list(self.corun[policy_key].metrics.lane_timeline[core].points)

    def issue_rates(self, policy_key: str, core: int) -> List[float]:
        metrics = self.corun[policy_key].metrics
        return [phase.issue_rate for phase in metrics.phases_of(core)]


def case_study_fig14(
    scale: float = DEFAULT_SCALE,
    config: Optional[MachineConfig] = None,
    lane_choices: Sequence[int] = (4, 8, 12, 16, 20, 24, 28),
) -> CaseStudyResult:
    """The §7.4 Case 1 study: WL20 (sff2+sff5) + WL17 (wsm52)."""
    config = config or experiment_config()
    wl20 = spec_workload(20, scale=scale)
    wl17 = spec_workload(17, scale=scale)
    lane_sweep: Dict[int, Tuple[List[int], int]] = {}
    for lanes in lane_choices:
        mem_run = run_with_fixed_lanes(wl20, lanes, config)
        comp_run = run_with_fixed_lanes(wl17, lanes, config)
        durations = [p.duration for p in mem_run.metrics.phases_of(0)]
        lane_sweep[lanes] = (durations, comp_run.core_time(0))
    # In the co-run, WL17 must outlive WL20 (the paper's regime) so it
    # inherits the full lane pool after WL20's phases end; compile the
    # compute side with a larger repeat scale than the memory side.
    corun = {}
    for policy in ALL_POLICIES:
        jobs = [
            workload_job("spec", 20, core_id=0, scale=scale),
            workload_job("spec", 17, core_id=1, scale=3 * scale),
        ]
        corun[policy.key] = run_policy(config, policy, jobs)
    return CaseStudyResult(lane_sweep=lane_sweep, corun=corun)


# --- Table 5: the roofline worked example ------------------------------------


def table5_rows(
    config: Optional[MachineConfig] = None,
    lane_choices: Sequence[int] = (4, 8, 12, 16, 20, 24, 28, 32),
) -> List[Dict[str, float]]:
    """Attainable performance for WL8.p1 (rho_eos2) per Eq. 4."""
    config = config or experiment_config()
    roofline = RooflineModel.from_config(config)
    oi = OIValue(issue=1.0 / 6.0, mem=0.25)
    return roofline.table_rows(oi, lane_choices, frequency_ghz=config.frequency_ghz)


# --- Fig. 15: runtime overhead ------------------------------------------------


def overhead_fig15(
    pairs: Optional[Sequence[CoRunPair]] = None,
    scale: float = DEFAULT_SCALE,
    config: Optional[MachineConfig] = None,
) -> List[Tuple[CoRunPair, Dict[str, float]]]:
    """Per-pair EM-SIMD overhead under Occamy (monitor vs reconfig)."""
    outcomes = sweep_pairs(pairs, scale, config)
    rows = []
    for outcome in outcomes:
        per_core = [outcome.overhead(core) for core in (0, 1)]
        rows.append(
            (
                outcome.pair,
                {
                    "monitor": max(oc["monitor"] for oc in per_core),
                    "reconfig": max(oc["reconfig"] for oc in per_core),
                },
            )
        )
    return rows


# --- Fig. 16: four-core scalability --------------------------------------------


def four_core_fig16(
    scale: float = DEFAULT_SCALE,
    config: Optional[MachineConfig] = None,
    groups: Sequence[Sequence[int]] = FOUR_CORE_GROUPS,
    jobs: Optional[int] = None,
) -> List[Dict[str, RunResult]]:
    """Run each Fig. 16 group on the 4-core configuration, all policies.

    Routed through the parallel engine (persistent cache + optional
    process fan-out via ``jobs``/``REPRO_JOBS``).
    """
    from repro.analysis.parallel import four_core_runs

    config = config or experiment_config(num_cores=4)
    return four_core_runs(scale, config, groups=groups, jobs=jobs)


# --- N-core scaling sweep (ROADMAP item 1's experiment axis) -----------------

#: Core counts the ``--cores`` CLI axis accepts.
NCORE_COUNTS: Tuple[int, ...] = (2, 4, 8, 16, 32)

#: Policies the N-core matrix runs: the Private baseline plus one policy
#: per sharing mode (spatial/temporal/coarse-temporal).
NCORE_POLICY_KEYS: Tuple[str, ...] = ("private", "occamy", "fts", "cts")


def ncore_group(num_cores: int) -> Tuple[int, ...]:
    """The deterministic co-run group evaluated at ``num_cores``.

    Tiles the paper's Fig. 16 four-core groups — mixed memory/compute
    pairings — across however many cores the machine has, so every size
    co-runs the same workload blend and the policy comparison stays
    apples-to-apples across the sweep.
    """
    flat = [workload for group in FOUR_CORE_GROUPS for workload in group]
    return tuple(flat[core % len(flat)] for core in range(num_cores))


def _ncore_jobs(group: Sequence[int], scale: float) -> List[Optional[Job]]:
    return [
        workload_job("spec", workload, core_id=core, scale=scale)
        for core, workload in enumerate(group)
    ]


def _cached_group_run(
    label: str,
    policy: Policy,
    scale: float,
    config: MachineConfig,
    jobs: Sequence[Optional[Job]],
) -> RunResult:
    """Two-level cached run keyed by a group label (the N-core analogue of
    :func:`_cached_pair_run`)."""
    from repro.analysis import result_cache

    key = (label, policy.key, scale, config_fingerprint(config))
    hit = _sweep_cache.get(key)
    if hit is not None:
        return hit
    disk = result_cache.default_cache()
    disk_key = None
    if disk is not None:
        disk_key = result_cache.simulation_key(config, policy.key, jobs)
        result = disk.get(disk_key)
        if result is not None:
            _sweep_cache[key] = result
            return result
    result = run_policy(config, policy, jobs)
    if disk is not None:
        disk.put(disk_key, result)
    _sweep_cache[key] = result
    return result


@dataclass
class NCoreOutcome:
    """One machine size's per-policy co-run results."""

    num_cores: int
    group: Tuple[int, ...]
    results: Dict[str, RunResult]

    def speedup(self, policy_key: str, core: int) -> float:
        """Per-core speedup over the Private baseline at this size."""
        return self.results[policy_key].speedup_over(self.results["private"], core)

    def geomean_speedup(self, policy_key: str) -> float:
        """Geometric-mean per-core speedup over Private at this size."""
        product = 1.0
        for core in range(self.num_cores):
            product *= max(self.speedup(policy_key, core), 1e-12)
        return product ** (1.0 / self.num_cores)

    def utilization(self, policy_key: str) -> float:
        return self.results[policy_key].metrics.simd_utilization()


def ncore_outcome(
    num_cores: int,
    scale: float = DEFAULT_SCALE,
    policies: Sequence[str] = NCORE_POLICY_KEYS,
    config: Optional[MachineConfig] = None,
) -> NCoreOutcome:
    """Run (or fetch) the ``num_cores``-machine co-run under ``policies``."""
    from repro.core.policies import POLICIES_BY_KEY

    config = config or experiment_config(num_cores=num_cores)
    group = ncore_group(num_cores)
    label = f"ncore{list(group)}"
    results: Dict[str, RunResult] = {}
    for policy_key in policies:
        jobs = _ncore_jobs(group, scale)
        results[policy_key] = _cached_group_run(
            label, POLICIES_BY_KEY[policy_key], scale, config, jobs
        )
    return NCoreOutcome(num_cores=num_cores, group=group, results=results)


def ncore_sweep(
    core_counts: Sequence[int] = (8, 16, 32),
    scale: float = DEFAULT_SCALE,
    policies: Sequence[str] = NCORE_POLICY_KEYS,
) -> List[NCoreOutcome]:
    """The N-core scaling matrix: every size × every policy, memoised.

    The experiment dimension ROADMAP item 1 asks for — affordable because
    the hierarchical wheel and sharded lane bookkeeping keep per-cycle cost
    proportional to the cores that actually have work.
    """
    return [
        ncore_outcome(num_cores, scale, policies) for num_cores in core_counts
    ]
