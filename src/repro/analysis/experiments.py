"""Experiment drivers — one per evaluation figure/table (paper §7).

All drivers share a two-level result cache so Fig. 10 (speedups), Fig. 11
(utilisation), Fig. 13 (renaming stalls) and Fig. 15 (overhead) reuse the
same 25-pair x 4-policy simulations instead of re-running them:

* an in-process memo keyed by (pair, policy, scale, config fingerprint);
* the persistent on-disk layer of :mod:`repro.analysis.result_cache`,
  shared across processes and invocations (disable with ``--no-cache`` /
  ``REPRO_NO_CACHE``).

Passing ``jobs`` (or setting ``REPRO_JOBS``) fans cache misses out across
worker processes via :mod:`repro.analysis.parallel`; results are
bit-identical to the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import MachineConfig, config_fingerprint, experiment_config
from repro.compiler.ir import Kernel
from repro.compiler.pipeline import CompileOptions, build_image, compile_kernel
from repro.coproc.coprocessor import SharingMode
from repro.coproc.metrics import StallReason
from repro.core.lane_manager import StaticLaneManager
from repro.core.machine import Job, RunResult, run_policy
from repro.core.policies import ALL_POLICIES, PRIVATE, Policy
from repro.core.roofline import RooflineModel
from repro.isa.registers import OIValue
from repro.workloads.pairs import (
    FOUR_CORE_GROUPS,
    CoRunPair,
    all_pairs,
    jobs_for_pair,
    workload_job,
)
from repro.workloads.spec import spec_workload

#: Default workload scale for the benchmark harness (repeat multiplier).
DEFAULT_SCALE = 0.35

_sweep_cache: Dict[Tuple[object, ...], RunResult] = {}


def _memo_key(
    pair: CoRunPair, policy_key: str, scale: float, config: MachineConfig
) -> Tuple[object, ...]:
    # The full config fingerprint (not just num_cores): any knob change —
    # cache geometry, lane count, latencies — must be a miss.
    return (str(pair), policy_key, scale, config_fingerprint(config))


def lookup_sweep_memo(
    pair: CoRunPair, policy_key: str, scale: float, config: MachineConfig
) -> Optional[RunResult]:
    """The memoised result for one sweep point, if present."""
    return _sweep_cache.get(_memo_key(pair, policy_key, scale, config))


def seed_sweep_memo(
    pair: CoRunPair,
    policy_key: str,
    scale: float,
    config: MachineConfig,
    result: RunResult,
) -> None:
    """Install an externally computed result (the parallel engine's) so
    later serial drivers reuse it."""
    _sweep_cache[_memo_key(pair, policy_key, scale, config)] = result


def clear_sweep_cache() -> None:
    """Drop memoised simulation results — both the in-process memo and the
    active persistent on-disk layer (tests use this for isolation)."""
    from repro.analysis import result_cache

    _sweep_cache.clear()
    disk = result_cache.default_cache()
    if disk is not None:
        disk.clear()


def _cached_pair_run(
    pair: CoRunPair, policy: Policy, scale: float, config: MachineConfig
) -> RunResult:
    from repro.analysis import result_cache

    key = _memo_key(pair, policy.key, scale, config)
    hit = _sweep_cache.get(key)
    if hit is not None:
        return hit
    jobs = jobs_for_pair(pair, scale)
    disk = result_cache.default_cache()
    disk_key = None
    if disk is not None:
        disk_key = result_cache.simulation_key(config, policy.key, jobs)
        result = disk.get(disk_key)
        if result is not None:
            _sweep_cache[key] = result
            return result
    result = run_policy(config, policy, jobs)
    if disk is not None:
        disk.put(disk_key, result)
    _sweep_cache[key] = result
    return result


@dataclass
class PairOutcome:
    """All four policies' results for one co-running pair."""

    pair: CoRunPair
    results: Dict[str, RunResult]

    def speedup(self, policy_key: str, core: int) -> float:
        """Per-core speedup over the Private baseline (Fig. 10)."""
        return self.results[policy_key].speedup_over(self.results["private"], core)

    def utilization(self, policy_key: str) -> float:
        """Whole-run SIMD utilisation (Fig. 11)."""
        return self.results[policy_key].metrics.simd_utilization()

    def rename_stall_fraction(self, policy_key: str, core: int) -> float:
        """Fraction of cycles stalled waiting for free registers (Fig. 13)."""
        return self.results[policy_key].metrics.stall_fraction(
            core, StallReason.RENAME
        )

    def overhead(self, core: int) -> Dict[str, float]:
        """Occamy's EM-SIMD runtime overhead split (Fig. 15)."""
        return self.results["occamy"].metrics.overhead_fraction(core)


def pair_outcome(
    pair: CoRunPair,
    scale: float = DEFAULT_SCALE,
    config: Optional[MachineConfig] = None,
    policies: Sequence[Policy] = ALL_POLICIES,
    jobs: Optional[int] = None,
) -> PairOutcome:
    """Run (or fetch) one pair under every policy."""
    from repro.analysis.parallel import resolve_jobs

    config = config or experiment_config()
    if policies is ALL_POLICIES and resolve_jobs(jobs) > 1:
        return sweep_pairs([pair], scale, config, jobs=jobs)[0]
    results = {
        policy.key: _cached_pair_run(pair, policy, scale, config)
        for policy in policies
    }
    return PairOutcome(pair=pair, results=results)


def sweep_pairs(
    pairs: Optional[Sequence[CoRunPair]] = None,
    scale: float = DEFAULT_SCALE,
    config: Optional[MachineConfig] = None,
    jobs: Optional[int] = None,
) -> List[PairOutcome]:
    """The full Fig. 10/11/13/15 sweep (memoised, optionally parallel).

    ``jobs`` (default: ``$REPRO_JOBS``, else serial) fans the underlying
    simulations across worker processes; the outcomes — and their order —
    are bit-identical either way.
    """
    from repro.analysis.parallel import resolve_jobs, sweep_pairs_parallel

    pairs = list(pairs) if pairs is not None else all_pairs()
    if resolve_jobs(jobs) > 1:
        return sweep_pairs_parallel(pairs, scale=scale, config=config, jobs=jobs)
    return [pair_outcome(pair, scale, config) for pair in pairs]


# --- Fig. 2: the motivating example ----------------------------------------


@dataclass
class MotivationResult:
    """Fig. 2(b)-(f): four architectures co-running WL#0 + WL#1."""

    results: Dict[str, RunResult]

    def speedup(self, policy_key: str, core: int) -> float:
        return self.results[policy_key].speedup_over(self.results["private"], core)

    def utilization(self, policy_key: str) -> float:
        return self.results[policy_key].metrics.simd_utilization()

    def issue_rates(self, policy_key: str, core: int) -> List[float]:
        metrics = self.results[policy_key].metrics
        return [phase.issue_rate for phase in metrics.phases_of(core)]

    def lane_series(self, policy_key: str, core: int) -> List[float]:
        """Per-1000-cycle average busy lanes (the Fig. 2 plots)."""
        series = self.results[policy_key].metrics.busy_lanes_series[core]
        return [total / series.bucket_cycles for total in series.totals()]


def motivation_fig2(
    scale: float = 0.5,
    config: Optional[MachineConfig] = None,
    jobs: Optional[int] = None,
) -> MotivationResult:
    """Run the §2 motivating example on all four architectures.

    Routed through the parallel engine so runs hit the persistent result
    cache and ``jobs > 1`` fans the four policies across processes.
    """
    from repro.analysis.parallel import motivation_runs

    return MotivationResult(results=motivation_runs(scale, config, jobs=jobs))


# --- Fig. 14: case study with fixed lane counts ------------------------------


def run_with_fixed_lanes(
    kernel: Kernel,
    lanes: int,
    config: Optional[MachineConfig] = None,
    core_id: int = 0,
) -> RunResult:
    """Run ``kernel`` alone with a hard-wired lane allocation.

    Used for Fig. 14(a)'s "normalised execution time vs #lanes" sweep.
    """
    config = config or experiment_config()
    fixed = Policy(
        key=f"fixed{lanes}",
        label=f"Fixed({lanes})",
        mode=SharingMode.SPATIAL,
        _factory=lambda cfg, ois: StaticLaneManager(
            {core: lanes for core in range(cfg.num_cores)}
        ),
    )
    program = compile_kernel(kernel, CompileOptions(default_vl=lanes, memory=config.memory))
    jobs: List[Optional[Job]] = [None] * config.num_cores
    jobs[core_id] = Job(program, build_image(kernel, core_id))
    return run_policy(config, fixed, jobs)


@dataclass
class CaseStudyResult:
    """Fig. 14: WL20 + WL17 under varying lane counts and policies."""

    #: lanes -> (phase durations of WL20, duration of WL17), solo runs.
    lane_sweep: Dict[int, Tuple[List[int], int]]
    #: policy -> co-run result.
    corun: Dict[str, RunResult]

    def normalized_times(self, phase_index: int) -> Dict[int, float]:
        """Fig. 14(a): WL20 phase time vs lanes, normalised to the max."""
        times = {
            lanes: durations[phase_index]
            for lanes, (durations, _comp) in self.lane_sweep.items()
        }
        peak = max(times.values())
        return {lanes: t / peak for lanes, t in times.items()}

    def normalized_compute_times(self) -> Dict[int, float]:
        """Fig. 14(a): WL17 time vs lanes, normalised to the max."""
        times = {lanes: comp for lanes, (_d, comp) in self.lane_sweep.items()}
        peak = max(times.values())
        return {lanes: t / peak for lanes, t in times.items()}

    def lane_timeline(self, policy_key: str, core: int) -> List[Tuple[int, float]]:
        """Fig. 14(b): the lanes-allocated step function for WL17."""
        return list(self.corun[policy_key].metrics.lane_timeline[core].points)

    def issue_rates(self, policy_key: str, core: int) -> List[float]:
        metrics = self.corun[policy_key].metrics
        return [phase.issue_rate for phase in metrics.phases_of(core)]


def case_study_fig14(
    scale: float = DEFAULT_SCALE,
    config: Optional[MachineConfig] = None,
    lane_choices: Sequence[int] = (4, 8, 12, 16, 20, 24, 28),
) -> CaseStudyResult:
    """The §7.4 Case 1 study: WL20 (sff2+sff5) + WL17 (wsm52)."""
    config = config or experiment_config()
    wl20 = spec_workload(20, scale=scale)
    wl17 = spec_workload(17, scale=scale)
    lane_sweep: Dict[int, Tuple[List[int], int]] = {}
    for lanes in lane_choices:
        mem_run = run_with_fixed_lanes(wl20, lanes, config)
        comp_run = run_with_fixed_lanes(wl17, lanes, config)
        durations = [p.duration for p in mem_run.metrics.phases_of(0)]
        lane_sweep[lanes] = (durations, comp_run.core_time(0))
    # In the co-run, WL17 must outlive WL20 (the paper's regime) so it
    # inherits the full lane pool after WL20's phases end; compile the
    # compute side with a larger repeat scale than the memory side.
    corun = {}
    for policy in ALL_POLICIES:
        jobs = [
            workload_job("spec", 20, core_id=0, scale=scale),
            workload_job("spec", 17, core_id=1, scale=3 * scale),
        ]
        corun[policy.key] = run_policy(config, policy, jobs)
    return CaseStudyResult(lane_sweep=lane_sweep, corun=corun)


# --- Table 5: the roofline worked example ------------------------------------


def table5_rows(
    config: Optional[MachineConfig] = None,
    lane_choices: Sequence[int] = (4, 8, 12, 16, 20, 24, 28, 32),
) -> List[Dict[str, float]]:
    """Attainable performance for WL8.p1 (rho_eos2) per Eq. 4."""
    config = config or experiment_config()
    roofline = RooflineModel.from_config(config)
    oi = OIValue(issue=1.0 / 6.0, mem=0.25)
    return roofline.table_rows(oi, lane_choices, frequency_ghz=config.frequency_ghz)


# --- Fig. 15: runtime overhead ------------------------------------------------


def overhead_fig15(
    pairs: Optional[Sequence[CoRunPair]] = None,
    scale: float = DEFAULT_SCALE,
    config: Optional[MachineConfig] = None,
) -> List[Tuple[CoRunPair, Dict[str, float]]]:
    """Per-pair EM-SIMD overhead under Occamy (monitor vs reconfig)."""
    outcomes = sweep_pairs(pairs, scale, config)
    rows = []
    for outcome in outcomes:
        per_core = [outcome.overhead(core) for core in (0, 1)]
        rows.append(
            (
                outcome.pair,
                {
                    "monitor": max(oc["monitor"] for oc in per_core),
                    "reconfig": max(oc["reconfig"] for oc in per_core),
                },
            )
        )
    return rows


# --- Fig. 16: four-core scalability --------------------------------------------


def four_core_fig16(
    scale: float = DEFAULT_SCALE,
    config: Optional[MachineConfig] = None,
    groups: Sequence[Sequence[int]] = FOUR_CORE_GROUPS,
    jobs: Optional[int] = None,
) -> List[Dict[str, RunResult]]:
    """Run each Fig. 16 group on the 4-core configuration, all policies.

    Routed through the parallel engine (persistent cache + optional
    process fan-out via ``jobs``/``REPRO_JOBS``).
    """
    from repro.analysis.parallel import four_core_runs

    config = config or experiment_config(num_cores=4)
    return four_core_runs(scale, config, groups=groups, jobs=jobs)


# --- N-core scaling sweep (ROADMAP item 1's experiment axis) -----------------

#: Core counts the ``--cores`` CLI axis accepts.
NCORE_COUNTS: Tuple[int, ...] = (2, 4, 8, 16, 32)

#: Policies the N-core matrix runs: the Private baseline plus one policy
#: per sharing mode (spatial/temporal/coarse-temporal).
NCORE_POLICY_KEYS: Tuple[str, ...] = ("private", "occamy", "fts", "cts")


def ncore_group(num_cores: int) -> Tuple[int, ...]:
    """The deterministic co-run group evaluated at ``num_cores``.

    Tiles the paper's Fig. 16 four-core groups — mixed memory/compute
    pairings — across however many cores the machine has, so every size
    co-runs the same workload blend and the policy comparison stays
    apples-to-apples across the sweep.
    """
    flat = [workload for group in FOUR_CORE_GROUPS for workload in group]
    return tuple(flat[core % len(flat)] for core in range(num_cores))


def _ncore_jobs(group: Sequence[int], scale: float) -> List[Optional[Job]]:
    return [
        workload_job("spec", workload, core_id=core, scale=scale)
        for core, workload in enumerate(group)
    ]


def _cached_group_run(
    label: str,
    policy: Policy,
    scale: float,
    config: MachineConfig,
    jobs: Sequence[Optional[Job]],
) -> RunResult:
    """Two-level cached run keyed by a group label (the N-core analogue of
    :func:`_cached_pair_run`)."""
    from repro.analysis import result_cache

    key = (label, policy.key, scale, config_fingerprint(config))
    hit = _sweep_cache.get(key)
    if hit is not None:
        return hit
    disk = result_cache.default_cache()
    disk_key = None
    if disk is not None:
        disk_key = result_cache.simulation_key(config, policy.key, jobs)
        result = disk.get(disk_key)
        if result is not None:
            _sweep_cache[key] = result
            return result
    result = run_policy(config, policy, jobs)
    if disk is not None:
        disk.put(disk_key, result)
    _sweep_cache[key] = result
    return result


@dataclass
class NCoreOutcome:
    """One machine size's per-policy co-run results."""

    num_cores: int
    group: Tuple[int, ...]
    results: Dict[str, RunResult]

    def speedup(self, policy_key: str, core: int) -> float:
        """Per-core speedup over the Private baseline at this size."""
        return self.results[policy_key].speedup_over(self.results["private"], core)

    def geomean_speedup(self, policy_key: str) -> float:
        """Geometric-mean per-core speedup over Private at this size."""
        product = 1.0
        for core in range(self.num_cores):
            product *= max(self.speedup(policy_key, core), 1e-12)
        return product ** (1.0 / self.num_cores)

    def utilization(self, policy_key: str) -> float:
        return self.results[policy_key].metrics.simd_utilization()


def ncore_outcome(
    num_cores: int,
    scale: float = DEFAULT_SCALE,
    policies: Sequence[str] = NCORE_POLICY_KEYS,
    config: Optional[MachineConfig] = None,
) -> NCoreOutcome:
    """Run (or fetch) the ``num_cores``-machine co-run under ``policies``."""
    from repro.core.policies import POLICIES_BY_KEY

    config = config or experiment_config(num_cores=num_cores)
    group = ncore_group(num_cores)
    label = f"ncore{list(group)}"
    results: Dict[str, RunResult] = {}
    for policy_key in policies:
        jobs = _ncore_jobs(group, scale)
        results[policy_key] = _cached_group_run(
            label, POLICIES_BY_KEY[policy_key], scale, config, jobs
        )
    return NCoreOutcome(num_cores=num_cores, group=group, results=results)


def ncore_sweep(
    core_counts: Sequence[int] = (8, 16, 32),
    scale: float = DEFAULT_SCALE,
    policies: Sequence[str] = NCORE_POLICY_KEYS,
) -> List[NCoreOutcome]:
    """The N-core scaling matrix: every size × every policy, memoised.

    The experiment dimension ROADMAP item 1 asks for — affordable because
    the hierarchical wheel and sharded lane bookkeeping keep per-cycle cost
    proportional to the cores that actually have work.
    """
    return [
        ncore_outcome(num_cores, scale, policies) for num_cores in core_counts
    ]


# --- Allocation sweep: pairing policy × sharing policy × core count ----------
#
# The allocation layer (ROADMAP item 1's remaining half) partitions the
# N-core thread blend into 2-core *complexes* — each the paper's evaluated
# machine — and simulates every complex independently under the sharing
# policy.  Placement is a pure pre-simulation decision: the same pair of
# workloads yields the same simulation (same memo/disk key) no matter
# which policy placed them together, which is what the alloc-smoke CI job
# asserts via per-pair fingerprints.

#: Sharing policies the allocation matrix runs within each complex.
ALLOC_SHARING_KEYS: Tuple[str, ...] = NCORE_POLICY_KEYS

#: Calibration micro co-runs use this short repeat scale.
ALLOC_CALIB_SCALE = 0.05


def alloc_group(num_cores: int) -> Tuple[int, ...]:
    """The workload-id blend the allocation sweep places at ``num_cores``.

    Identical to :func:`ncore_group` so the pairing comparison runs the
    same blend the N-core sharing sweep runs — only *who shares with
    whom* changes.
    """
    return ncore_group(num_cores)


def alloc_threads(
    num_cores: int,
    scale: float = DEFAULT_SCALE,
    calib_scale: float = ALLOC_CALIB_SCALE,
):
    """The blend as allocation-layer :class:`~repro.alloc.ThreadSpec`s.

    Keys are zero-padded (``spec:06``) so canonical string order matches
    workload-id order and identical pairs collapse to identical labels.
    """
    from repro.alloc import ThreadSpec

    return [
        ThreadSpec(
            key=f"spec:{workload:02d}",
            kernel=spec_workload(workload, scale=scale),
            calib_kernel=spec_workload(workload, scale=calib_scale),
        )
        for workload in alloc_group(num_cores)
    ]


@dataclass
class AllocOutcome:
    """One (core count, pairing policy, sharing policy) sweep point."""

    num_cores: int
    alloc_key: str
    sharing_key: str
    group: Tuple[int, ...]
    #: Canonical placement: complexes of thread indices into ``group``.
    placement: Tuple[Tuple[int, ...], ...]
    #: One result per complex, in placement order.
    results: Tuple[RunResult, ...]

    def complex_workloads(self, index: int) -> Tuple[int, ...]:
        """The workload ids co-running on complex ``index``."""
        return tuple(self.group[t] for t in self.placement[index])

    def pair_label(self, index: int) -> str:
        return "+".join(str(w) for w in self.complex_workloads(index))

    def pair_labels(self) -> Tuple[str, ...]:
        return tuple(self.pair_label(i) for i in range(len(self.placement)))

    def pair_cycles(self) -> List[int]:
        """Per-complex makespans, in placement order."""
        return [result.total_cycles for result in self.results]

    def thread_cycles(self) -> List[int]:
        """Every thread's own drain time, placement order then core order."""
        return [
            result.core_time(core)
            for result, members in zip(self.results, self.placement)
            for core in range(len(members))
        ]

    def geomean_cycles(self) -> float:
        """The blended metric: geometric-mean per-thread drain cycles.

        The co-scheduling literature's geomean-of-per-thread-performance,
        inverted to cycles (lower is better) — exactly what the symbiosis
        matching minimises, and what the CI gate compares across pairing
        policies.
        """
        from repro.analysis.reporting import geomean

        return geomean(
            [float(c) for c in self.thread_cycles()],
            series=f"alloc {self.alloc_key}/{self.sharing_key}",
        )

    def pair_geomean_cycles(self) -> float:
        """Geometric-mean per-complex makespan (the machine-level view)."""
        from repro.analysis.reporting import geomean

        return geomean(
            [float(c) for c in self.pair_cycles()],
            series=f"alloc {self.alloc_key}/{self.sharing_key}",
        )

    def makespan(self) -> int:
        """Whole-machine finish time: the slowest complex."""
        return max(self.pair_cycles())


def _complex_jobs(
    group: Sequence[int], members: Sequence[int], scale: float
) -> List[Optional[Job]]:
    return [
        workload_job("spec", group[thread], core_id=core, scale=scale)
        for core, thread in enumerate(members)
    ]


def alloc_outcome(
    num_cores: int,
    alloc_key: str,
    sharing_key: str = "occamy",
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    calibrate: bool = False,
    complex_size: int = 2,
) -> AllocOutcome:
    """Place the ``num_cores`` blend with ``alloc_key``, then run every
    complex under ``sharing_key`` (two-level cached, like the pair sweep)."""
    from repro.alloc import ALLOC_POLICIES_BY_KEY, AllocContext
    from repro.common.config import validate_core_count
    from repro.common.errors import ConfigurationError
    from repro.core.policies import POLICIES_BY_KEY

    validate_core_count(num_cores, source="alloc_outcome num_cores")
    if alloc_key not in ALLOC_POLICIES_BY_KEY:
        raise ConfigurationError(
            f"unknown allocation policy {alloc_key!r} "
            f"(have: {', '.join(sorted(ALLOC_POLICIES_BY_KEY))})"
        )
    if sharing_key not in POLICIES_BY_KEY:
        raise ConfigurationError(
            f"unknown sharing policy {sharing_key!r} "
            f"(have: {', '.join(sorted(POLICIES_BY_KEY))})"
        )
    complex_config = experiment_config(num_cores=complex_size)
    context = AllocContext(
        config=complex_config,
        sharing_key=sharing_key,
        complex_size=complex_size,
        seed=seed,
        calibrate=calibrate,
    )
    threads = alloc_threads(num_cores, scale)
    group = alloc_group(num_cores)
    placement = ALLOC_POLICIES_BY_KEY[alloc_key](threads, context)
    policy = POLICIES_BY_KEY[sharing_key]
    results = []
    for members in placement:
        workloads = tuple(group[thread] for thread in members)
        jobs = _complex_jobs(group, members, scale)
        # The label names only the pair (not the placing policy): the same
        # pair under any placement is the same simulation, so it must hit
        # the same memo slot and the same disk entry.
        results.append(
            _cached_group_run(
                f"alloc{list(workloads)}", policy, scale, complex_config, jobs
            )
        )
    return AllocOutcome(
        num_cores=num_cores,
        alloc_key=alloc_key,
        sharing_key=sharing_key,
        group=group,
        placement=placement,
        results=tuple(results),
    )


@dataclass
class PairWinLoss:
    """One complex's cycles under every sharing policy (win/loss row)."""

    label: str
    workloads: Tuple[int, ...]
    cycles: Dict[str, int]

    @property
    def winner(self) -> str:
        """The sharing policy with the fewest cycles (ties: key order)."""
        return min(self.cycles, key=lambda key: (self.cycles[key], key))


def alloc_winloss(
    num_cores: int,
    alloc_key: str = "symbiosis",
    sharing_keys: Sequence[str] = ALLOC_SHARING_KEYS,
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    calibrate: bool = False,
) -> List[PairWinLoss]:
    """Per-pair sharing-policy win/loss under one placement.

    The placement is decided once (``alloc_key`` scoring for occamy);
    each complex then runs under every sharing policy, so the table asks
    "given who shares, which sharing policy wins each pair?" — the
    ROADMAP item 3 follow-on.
    """
    from repro.core.policies import POLICIES_BY_KEY

    base = alloc_outcome(
        num_cores, alloc_key, "occamy", scale=scale, seed=seed, calibrate=calibrate
    )
    complex_config = experiment_config(num_cores=len(base.placement[0]))
    rows = []
    for members in base.placement:
        workloads = tuple(base.group[thread] for thread in members)
        cycles: Dict[str, int] = {}
        for sharing_key in sharing_keys:
            jobs = _complex_jobs(base.group, members, scale)
            result = _cached_group_run(
                f"alloc{list(workloads)}",
                POLICIES_BY_KEY[sharing_key],
                scale,
                complex_config,
                jobs,
            )
            cycles[sharing_key] = result.total_cycles
        rows.append(
            PairWinLoss(
                label="+".join(str(w) for w in workloads),
                workloads=workloads,
                cycles=cycles,
            )
        )
    return rows


def alloc_sweep(
    core_counts: Sequence[int] = (16,),
    alloc_keys: Optional[Sequence[str]] = None,
    sharing_keys: Sequence[str] = ("occamy",),
    scale: float = DEFAULT_SCALE,
    seed: int = 0,
    calibrate: bool = False,
) -> List[AllocOutcome]:
    """The pairing × sharing × core-count matrix, memoised.

    Identical pairs recur across placements, so the marginal cost of an
    extra pairing policy is only the pairs nobody else formed.
    """
    from repro.alloc import ALLOC_POLICY_KEYS

    keys = tuple(alloc_keys) if alloc_keys is not None else ALLOC_POLICY_KEYS
    return [
        alloc_outcome(
            num_cores,
            alloc_key,
            sharing_key,
            scale=scale,
            seed=seed,
            calibrate=calibrate,
        )
        for num_cores in core_counts
        for sharing_key in sharing_keys
        for alloc_key in keys
    ]
