"""Analytical chip-area model (paper §7.3, Fig. 12).

The paper synthesised the key components in TSMC 7 nm; we cannot, so the
model is calibrated to Fig. 12's breakdown for the 2-core / 32-lane
configuration (total 1.263 mm²; SIMD execution units 46%, LSU 23%,
register file 15%, Manager < 1% — Occamy only) and to the two scaling
statements: +3% control-logic area from 2 to 4 cores (§4.2.1) and +33.5%
total area for 4-core FTS, which must keep every core's full-width context
resident (§7.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.config import MachineConfig

#: Calibrated component areas (mm²) for the 2-core, 32-lane, 128-vreg
#: baseline; per-lane / per-core / per-entry scaling applied around them.
BASELINE = {
    "simd_exe_units": 0.581,  # 46% — scales with lane count
    "lsu": 0.290,  # 23% — scales with core count
    "register_file": 0.189,  # 15% — scales with lanes x vregs/block
    "vec_cache": 0.080,  # scales with capacity
    "inst_pool": 0.034,  # control logic: +3% per core doubling
    "decode": 0.022,
    "rename": 0.022,
    "dispatch": 0.022,
    "rob": 0.023,
}

#: The Manager (ResourceTbl + LaneMgr + fifos): < 1% of total, Occamy only.
MANAGER_AREA = 0.002

#: Extra area per core beyond two for FTS's per-core full-width contexts
#: (calibrated so 4-core FTS costs +33.5% over the other architectures).
FTS_CONTEXT_AREA_PER_EXTRA_CORE = 0.436

_BASE_LANES = 32
_BASE_CORES = 2
_BASE_VREGS = 128
_BASE_VEC_CACHE = 128 * 1024

#: Components treated as control logic for the §4.2.1 scaling rule.
_CONTROL = ("inst_pool", "decode", "rename", "dispatch", "rob")


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-component areas in mm²."""

    components: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.components.values())

    def fraction(self, component: str) -> float:
        return self.components.get(component, 0.0) / self.total

    def rows(self) -> Dict[str, float]:
        return dict(sorted(self.components.items(), key=lambda kv: -kv[1]))


def area_model(config: MachineConfig, policy_key: str) -> AreaBreakdown:
    """Chip area of the co-processor under ``policy_key``.

    ``policy_key`` is one of ``private``/``fts``/``vls``/``occamy``.
    """
    lanes = config.vector.total_lanes / _BASE_LANES
    cores = config.num_cores / _BASE_CORES
    vregs = config.vector.vregs_per_block / _BASE_VREGS
    vc = config.memory.vec_cache.size_bytes / _BASE_VEC_CACHE
    control_scale = cores * (1.0 + 0.03 * (cores - 1.0))

    components = {
        "simd_exe_units": BASELINE["simd_exe_units"] * lanes,
        "lsu": BASELINE["lsu"] * cores,
        "register_file": BASELINE["register_file"] * lanes * vregs,
        "vec_cache": BASELINE["vec_cache"] * vc,
    }
    for name in _CONTROL:
        components[name] = BASELINE[name] * control_scale

    if policy_key == "fts":
        extra_cores = max(0, config.num_cores - _BASE_CORES)
        if extra_cores:
            components["register_file"] += (
                FTS_CONTEXT_AREA_PER_EXTRA_CORE * extra_cores
            )
    if policy_key in ("vls", "occamy"):
        components["manager"] = MANAGER_AREA
    return AreaBreakdown(components=components)
