"""The compiler driver: kernel -> vectorized, instrumented Program.

``compile_kernel`` runs phase analysis, vectorization and EM-SIMD code
generation for every loop, producing a program whose ``meta`` carries the
per-phase OIs (for the VLS static plan) and the instrumentation index sets
(for overhead accounting).  ``build_image`` constructs the matching
functional memory.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.common.config import MemoryConfig
from repro.compiler.dag import build_dag
from repro.compiler.emsimd import EmSimdCodegen, PhaseCodegenOptions
from repro.compiler.optimizer import optimize
from repro.compiler.ir import Kernel
from repro.compiler.phase_analysis import PhaseInfo, analyze_kernel
from repro.compiler.vectorizer import vectorize_loop
from repro.isa.instructions import Halt
from repro.isa.program import Program, ProgramBuilder
from repro.memory.image import MemoryImage


@dataclass(frozen=True)
class CompileOptions:
    """Compilation knobs (see :class:`PhaseCodegenOptions`).

    ``memory`` enables the hierarchical-roofline residency hint: when the
    target memory configuration is known at compile time, each phase's
    ``<OI>`` carries the level its working set fits in, and the lane
    manager bounds it by that level's bandwidth instead of DRAM's.
    """

    default_vl: int = 16
    elastic: bool = True
    multiversion_threshold: int = 0
    memory: Optional[MemoryConfig] = None
    unroll: int = 1  # Fig. 9's strip length s
    fold_constants: bool = False  # optimiser: evaluate constant subtrees
    fuse_fma: bool = False  # optimiser: form fused multiply-adds

    def codegen(self) -> PhaseCodegenOptions:
        return PhaseCodegenOptions(
            default_vl=self.default_vl,
            elastic=self.elastic,
            multiversion_threshold=self.multiversion_threshold,
            unroll=self.unroll,
        )


def compile_kernel(kernel: Kernel, options: CompileOptions = CompileOptions()) -> Program:
    """Compile ``kernel`` into an EM-SIMD-instrumented program."""
    builder = ProgramBuilder(name=kernel.name)
    codegen = EmSimdCodegen(builder, options.codegen())
    codegen.emit_params(kernel.params)
    infos: List[PhaseInfo] = []
    phase_ois = []
    for loop in kernel.loops:
        dag = build_dag(loop)
        if options.fold_constants or options.fuse_fma:
            dag = optimize(
                dag, fold=options.fold_constants, fma=options.fuse_fma
            )
        vloop = vectorize_loop(loop, dag=dag)
        infos.append(vloop.info)
        if options.memory is not None:
            level = vloop.info.residency_level(options.memory)
            oi = vloop.info.oi_for_level(level)
        else:
            oi = vloop.info.oi
        phase_ois.append(oi)
        codegen.emit_phase(vloop, oi)
    builder.emit(Halt())
    builder.meta["phase_ois"] = phase_ois
    builder.meta["phase_infos"] = infos
    builder.meta["monitor"] = frozenset(codegen.monitor_idx)
    builder.meta["reconfig"] = frozenset(codegen.reconfig_idx)
    return builder.build()


def build_image(
    kernel: Kernel,
    core_id: int = 0,
    seed: Optional[int] = None,
) -> MemoryImage:
    """Functional memory for ``kernel`` in core ``core_id``'s address range.

    Arrays are filled with deterministic pseudo-random values in
    ``[0.5, 1.5)`` (strictly positive so ``div``/``sqrt`` stay benign);
    reduction outputs become zeroed one-element arrays.  The default seed
    is a *stable* hash of the kernel name — ``hash()`` is randomised per
    process, which would give every invocation different image bytes and
    defeat the persistent result cache's content keys.
    """
    if seed is None:
        seed = zlib.crc32(kernel.name.encode("utf-8"))
    rng = np.random.default_rng(seed)
    image = MemoryImage.for_core(core_id)
    for name in sorted(kernel.arrays()):
        data = rng.random(kernel.array_length, dtype=np.float32) + np.float32(0.5)
        image.add_array(name, data)
    for name in sorted(kernel.reduction_outputs()):
        image.zeros(name, 1)
    return image
