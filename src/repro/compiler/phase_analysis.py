"""Phase behaviour analysis (paper §6.3, Eq. 5).

For a vectorized loop (one phase) the compiler derives the operational
intensity *pair* written into ``<OI>`` at the phase prologue:

* ``<OI>.issue = comp / sum_i byte_type_i`` — compute instructions per byte
  of SIMD ld/st *issue* traffic (every load/store instruction counts);
* ``<OI>.mem = comp / fp`` — compute instructions per byte of per-iteration
  memory *footprint* with data reuse considered: stencil reads of the same
  array at several shifts touch only one new element per iteration.

Counts are taken from the post-CSE DAG, i.e. from the instructions the
vectorizer actually emits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.common.config import MemoryConfig
from repro.compiler.dag import LoopDag, build_dag
from repro.compiler.ir import Kernel, Loop
from repro.isa.registers import OIValue

#: Bytes per element for the only supported data type (float32).
ELEM_BYTES = 4


@dataclass(frozen=True)
class PhaseInfo:
    """Static behaviour of one phase (loop)."""

    loop_name: str
    comp_insts: int  # SIMD compute instructions per iteration (post CSE)
    load_insts: int  # SIMD load instructions per iteration
    store_insts: int  # SIMD store instructions per iteration
    footprint_arrays: int  # distinct arrays touched (reuse considered)
    trip_count: int
    repeats: int

    @property
    def mem_insts(self) -> int:
        return self.load_insts + self.store_insts

    @property
    def issue_bytes(self) -> int:
        """Per-element bytes moved by ld/st *instructions* (Eq. 5 denom)."""
        return ELEM_BYTES * self.mem_insts

    @property
    def footprint_bytes(self) -> int:
        """Per-element memory footprint with data reuse considered."""
        return ELEM_BYTES * self.footprint_arrays

    @property
    def total_footprint_bytes(self) -> int:
        """Whole-phase working set (footprint arrays x trip count)."""
        return self.footprint_arrays * self.trip_count * ELEM_BYTES

    @property
    def oi(self) -> OIValue:
        """The ``<OI>`` pair written at the phase prologue (DRAM level)."""
        return self.oi_for_level("dram")

    def oi_for_level(self, level: str) -> OIValue:
        """The ``<OI>`` pair with an explicit residency-level hint.

        A compute-free loop (pure copy) is clamped to a tiny positive
        intensity: ``<OI> = 0`` is the architectural phase-*end* sentinel
        (Table 1) and must never describe a running phase.
        """
        comp = max(self.comp_insts, 0)
        issue = comp / self.issue_bytes if self.issue_bytes else 0.0
        mem = comp / self.footprint_bytes if self.footprint_bytes else 0.0
        if issue <= 0.0 and mem <= 0.0:
            issue = mem = 0.01
        return OIValue(issue=issue, mem=mem, level=level)

    def residency_level(self, memory: "MemoryConfig") -> str:
        """Which cache level the phase's working set fits in."""
        footprint = self.total_footprint_bytes
        if footprint <= memory.vec_cache.size_bytes:
            return "vec_cache"
        if footprint <= memory.l2.size_bytes:
            return "l2"
        return "dram"

    @property
    def has_data_reuse(self) -> bool:
        """True when stencil reuse makes issue traffic exceed footprint."""
        return self.mem_insts > self.footprint_arrays


def analyze_loop(loop: Loop, dag: LoopDag = None) -> PhaseInfo:
    """Compute the :class:`PhaseInfo` of one loop."""
    if dag is None:
        dag = build_dag(loop)
    touched: Set[str] = {node.array for node in dag.loads()}
    touched |= {array for array, _ in dag.stores}
    # Each Reduce emits one fold instruction per iteration in addition to
    # the DAG's compute nodes.
    return PhaseInfo(
        loop_name=loop.name,
        comp_insts=dag.num_computes + len(dag.reductions),
        load_insts=dag.num_loads,
        store_insts=dag.num_stores,
        footprint_arrays=len(touched),
        trip_count=loop.trip_count,
        repeats=loop.repeats,
    )


def analyze_kernel(kernel: Kernel) -> List[PhaseInfo]:
    """Per-phase behaviour for every loop of ``kernel``, in order."""
    return [analyze_loop(loop) for loop in kernel.loops]
