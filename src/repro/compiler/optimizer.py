"""DAG optimisation passes: constant folding and FMA fusion.

Run between DAG construction and vectorization
(``CompileOptions(fold_constants=True, fuse_fma=True)``):

* **constant folding** evaluates compute nodes whose operands are all
  constants (float32 semantics, matching the machine);
* **FMA fusion** rewrites ``add(mul(a, b), c)`` into a single ``fma``
  node when the multiply has no other user — one fewer issue slot per
  iteration, like LLVM's ``fmuladd`` formation.

Both passes rebuild the DAG so node ids stay dense and topologically
ordered; phase analysis then sees the *optimised* instruction mix, i.e.
the operational intensity written to ``<OI>`` reflects the code actually
executed.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import CompilationError
from repro.compiler.dag import DagNode, LoopDag

#: Constant-foldable operation semantics (float32, like the machine).
_FOLDABLE = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: np.float32(0.0) if b == 0 else a / b,
    "min": min,
    "max": max,
    "abs": lambda a: abs(a),
    "neg": lambda a: -a,
    "sqrt": lambda a: np.sqrt(np.abs(a)),
    "mov": lambda a: a,
}


class _Rebuilder:
    """Accumulates nodes for a rewritten DAG with hash-consing."""

    def __init__(self) -> None:
        self.dag = LoopDag()
        self._memo: Dict[object, int] = {}

    def intern(self, key: object, **fields) -> int:
        if key in self._memo:
            return self._memo[key]
        node = DagNode(node_id=len(self.dag.nodes), **fields)
        self.dag.nodes.append(node)
        self._memo[key] = node.node_id
        return node.node_id

    def const(self, value: float) -> int:
        return self.intern(("const", float(value)), kind="const", value=float(value))


def _use_counts(dag: LoopDag) -> Counter:
    uses: Counter = Counter()
    for node in dag.nodes:
        for operand in node.operands:
            uses[operand] += 1
    for _array, node_id in dag.stores:
        uses[node_id] += 1
    for _op, _name, node_id in dag.reductions:
        uses[node_id] += 1
    return uses


def fold_constants(dag: LoopDag) -> LoopDag:
    """Evaluate compute nodes with all-constant operands (float32)."""
    rebuilder = _Rebuilder()
    mapping: Dict[int, int] = {}
    for node in dag.nodes:
        mapping[node.node_id] = _rewrite_node(node, dag, mapping, rebuilder, fold=True)
    return _finish(dag, mapping, rebuilder)


def fuse_fma(dag: LoopDag) -> LoopDag:
    """Fuse single-use ``mul`` feeding ``add`` into ``fma`` nodes."""
    uses = _use_counts(dag)
    rebuilder = _Rebuilder()
    mapping: Dict[int, int] = {}
    for node in dag.nodes:
        new_id: Optional[int] = None
        if node.kind == "compute" and node.op == "add":
            new_id = _try_fuse(node, dag, uses, mapping, rebuilder)
        if new_id is None:
            new_id = _rewrite_node(node, dag, mapping, rebuilder, fold=False)
        mapping[node.node_id] = new_id
    return _finish(dag, mapping, rebuilder)


def eliminate_dead(dag: LoopDag) -> LoopDag:
    """Drop nodes unreachable from any store or reduction."""
    reachable = set()
    stack = [node_id for _array, node_id in dag.stores]
    stack += [node_id for _op, _name, node_id in dag.reductions]
    while stack:
        node_id = stack.pop()
        if node_id in reachable:
            continue
        reachable.add(node_id)
        stack.extend(dag.node(node_id).operands)

    rebuilder = _Rebuilder()
    mapping: Dict[int, int] = {}
    for node in dag.nodes:
        if node.node_id in reachable:
            mapping[node.node_id] = _rewrite_node(
                node, dag, mapping, rebuilder, fold=False
            )
    return _finish(dag, mapping, rebuilder)


def optimize(dag: LoopDag, fold: bool = True, fma: bool = True) -> LoopDag:
    """Apply the enabled passes in canonical order, then sweep dead code."""
    if fold:
        dag = fold_constants(dag)
    if fma:
        dag = fuse_fma(dag)
    return eliminate_dead(dag)


def _rewrite_node(
    node: DagNode,
    dag: LoopDag,
    mapping: Dict[int, int],
    rebuilder: _Rebuilder,
    fold: bool,
) -> int:
    if node.kind == "load":
        return rebuilder.intern(
            ("load", node.array, node.shift, node.stride, node.offset),
            kind="load", array=node.array, shift=node.shift,
            stride=node.stride, offset=node.offset,
        )
    if node.kind == "param":
        return rebuilder.intern(("param", node.param), kind="param", param=node.param)
    if node.kind == "const":
        return rebuilder.const(node.value)
    operands = tuple(mapping[operand] for operand in node.operands)
    if fold and node.op in _FOLDABLE:
        values = []
        for operand in operands:
            new_node = rebuilder.dag.node(operand)
            if new_node.kind != "const":
                break
            values.append(np.float32(new_node.value))
        else:
            result = _FOLDABLE[node.op](*values)
            return rebuilder.const(float(np.float32(result)))
    return rebuilder.intern(
        ("compute", node.op, operands), kind="compute", op=node.op, operands=operands
    )


def _try_fuse(
    node: DagNode,
    dag: LoopDag,
    uses: Counter,
    mapping: Dict[int, int],
    rebuilder: _Rebuilder,
) -> Optional[int]:
    """Rewrite ``add(mul(a, b), c)`` as ``fma(a, b, c)`` when legal."""
    for mul_position in (0, 1):
        mul_id = node.operands[mul_position]
        other_id = node.operands[1 - mul_position]
        candidate = dag.node(mul_id)
        if (
            candidate.kind == "compute"
            and candidate.op == "mul"
            and uses[mul_id] == 1
        ):
            a, b = (mapping[operand] for operand in candidate.operands)
            c = mapping[other_id]
            return rebuilder.intern(
                ("compute", "fma", (a, b, c)),
                kind="compute", op="fma", operands=(a, b, c),
            )
    return None


def _finish(dag: LoopDag, mapping: Dict[int, int], rebuilder: _Rebuilder) -> LoopDag:
    new = rebuilder.dag
    for array, node_id in dag.stores:
        target = mapping[node_id]
        if new.node(target).kind == "const":
            # Keep stores register-backed (see dag.build_dag's splat rule).
            target = rebuilder.intern(
                ("compute", "mov", (target,)),
                kind="compute", op="mov", operands=(target,),
            )
        new.stores.append((array, target))
    for op, name, node_id in dag.reductions:
        new.reductions.append((op, name, mapping[node_id]))
    return new
