"""EM-SIMD instrumentation and code generation (paper Fig. 9, §6).

For every phase (vectorized loop) the generated code follows the paper's
eager-lazy lane-partitioning pattern:

* **Phase Prologue** (eager): write the phase's ``<OI>``, synchronise so
  the lane manager's plan is fresh, then spin ``MSR <VL>`` until the
  requested vector length is configured;
* **Partition Monitor** (lazy, per iteration head): speculative
  ``MRS <decision>``; falls through when unchanged;
* **Vector Length Reconfiguration** (lazy): splice partial reductions into
  scalar carries (§6.4), spin ``MSR <VL>`` until success, then re-initialise
  loop-invariant splats and reduction accumulators for the new length;
* **Phase Epilogue** (eager): write ``<OI> = 0`` and release all lanes via
  ``MSR <VL>, 0``.

Instrumentation instruction indices are recorded in the builder's ``meta``
(``monitor`` / ``reconfig`` sets) for the Fig. 15 overhead accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.common.errors import CompilationError
from repro.compiler.vectorizer import REDUCTION_IDENTITY, VectorizedLoop
from repro.isa.instructions import (
    MRS,
    MSR,
    AddVL,
    Branch,
    ScalarOp,
    VHReduce,
    VLoad,
    VOp,
    VStore,
    WhileLT,
)
from repro.isa.operands import Imm, PReg, ScalarRef, VReg
from repro.isa.program import ProgramBuilder
from repro.isa.registers import DECISION, OI, STATUS, VL, OIValue

#: Governing predicate for strip bodies / reduction stores.
P0 = PReg("p0")
P1 = PReg("p1")


@dataclass(frozen=True)
class PhaseCodegenOptions:
    """Knobs for one phase's code generation."""

    default_vl: int = 16  # compiler-selected default lane count (Fig. 9)
    elastic: bool = True  # emit the lazy monitor/reconfiguration code
    multiversion_threshold: int = 0  # trip counts below this skip monitoring
    #: Fig. 9's strip length ``s``: body copies per monitored iteration.
    #: Tail-safe because every copy is governed by its own ``whilelt``.
    unroll: int = 1


class EmSimdCodegen:
    """Emits one kernel's phases into a :class:`ProgramBuilder`."""

    def __init__(self, builder: ProgramBuilder, options: PhaseCodegenOptions) -> None:
        self.builder = builder
        self.options = options
        self.monitor_idx: Set[int] = set()
        self.reconfig_idx: Set[int] = set()

    # -- small helpers -------------------------------------------------------

    def _mark(self, region: Set[int], start: int) -> None:
        region.update(range(start, self.builder.position))

    def _emit_set_vl(self, source: object, tag: str, track_decision: bool = False) -> None:
        """The spin loop of Fig. 9: retry ``MSR <VL>`` until success.

        With ``track_decision`` the loop re-reads ``<decision>`` on every
        attempt (a speculative, zero-sync read): a co-runner's phase event
        can re-plan while we spin, and retrying a stale request that the
        new plan made infeasible would live-lock until the co-runner
        exits its phase.
        """
        retry = self.builder.fresh_label(tag)
        self.builder.label(retry)
        if track_decision:
            register = source if isinstance(source, str) else "Xd"
            self.builder.emit(MRS(register, DECISION))
            # A zero decision targets idle cores; never drop a running
            # phase to zero lanes — fall back to the compiler default.
            nonzero = self.builder.fresh_label(f"{tag}_nz")
            self.builder.emit(Branch("ne", nonzero, register, Imm(0)))
            self.builder.emit(
                ScalarOp("mov", register, (Imm(self.options.default_vl),))
            )
            self.builder.label(nonzero)
        self.builder.emit(MSR(VL, source))
        self.builder.emit(MRS("Xs", STATUS))
        self.builder.emit(Branch("ne", retry, "Xs", Imm(1)))

    def emit_params(self, params: Dict[str, float]) -> None:
        """Load kernel parameters into their scalar registers (once)."""
        for name, value in sorted(params.items()):
            self.builder.emit(ScalarOp("mov", f"Xp_{name}", (Imm(float(value)),)))

    # -- one phase ------------------------------------------------------------

    def emit_phase(self, vloop: VectorizedLoop, phase_oi: OIValue) -> None:
        b = self.builder
        loop = vloop.loop
        start_index = loop.max_negative_shift()
        limit_index = start_index + loop.trip_count

        # --- Phase Prologue (eager partitioning) --------------------------
        mark = b.position
        b.emit(ScalarOp("mov", "Xoi", (Imm(phase_oi),)))
        b.emit(MSR(OI, "Xoi"))
        b.emit(MRS("Xs", STATUS))  # synchronise: the plan is now generated
        b.emit(MRS("Xd", DECISION))
        have_dec = b.fresh_label("have_dec")
        b.emit(Branch("ne", have_dec, "Xd", Imm(0)))
        b.emit(ScalarOp("mov", "Xd", (Imm(self.options.default_vl),)))
        b.label(have_dec)
        self._emit_set_vl("Xd", "setvl", track_decision=True)
        b.emit(ScalarOp("mov", "Xc", ("Xd",)))
        self._mark(self.reconfig_idx, mark)

        # --- invariants + reduction state ---------------------------------
        self._emit_invariants(vloop)
        for name, (op, _acc) in vloop.acc_regs.items():
            b.emit(
                ScalarOp("mov", f"Xr_{name}", (Imm(REDUCTION_IDENTITY[op]),))
            )

        # --- repeat loop (prologue hoisted outside, §6.3) ------------------
        rep_top = b.fresh_label("rep")
        rep_done = b.fresh_label("rep_done")
        b.emit(ScalarOp("mov", "Xrep", (Imm(0),)))
        b.label(rep_top)
        b.emit(Branch("ge", rep_done, "Xrep", Imm(loop.repeats)))
        b.emit(ScalarOp("mov", "Xi", (Imm(start_index),)))
        b.emit(ScalarOp("mov", "Xn", (Imm(limit_index),)))

        loop_top = b.fresh_label("loop")
        loop_exit = b.fresh_label("loop_exit")
        body_label = b.fresh_label("body")
        b.label(loop_top)
        b.emit(Branch("ge", loop_exit, "Xi", "Xn"))

        monitored = (
            self.options.elastic
            and loop.trip_count >= self.options.multiversion_threshold
        )
        if monitored:
            # --- Partition Monitor (lazy) ----------------------------------
            mark = b.position
            b.emit(MRS("Xd", DECISION))  # speculative read (§4.1.1)
            b.emit(Branch("eq", body_label, "Xd", "Xc"))
            self._mark(self.monitor_idx, mark)
            # --- Vector Length Reconfiguration -----------------------------
            mark = b.position
            self._emit_reduction_splice(vloop)
            self._emit_set_vl("Xd", "revl", track_decision=True)
            b.emit(ScalarOp("mov", "Xc", ("Xd",)))
            self._emit_invariants(vloop)  # re-init for the new length (§6.4)
            self._mark(self.reconfig_idx, mark)

        b.label(body_label)
        # Fig. 9's strip-mined segment: `unroll` body copies per monitor
        # visit, each with its own governing predicate so partial tails
        # are handled without a remainder loop.
        for _copy in range(max(1, self.options.unroll)):
            self._emit_strip_body(vloop, start_index)
            b.emit(AddVL("Xi", "Xi"))
        b.emit(Branch("al", loop_top))
        b.label(loop_exit)
        b.emit(ScalarOp("add", "Xrep", ("Xrep", Imm(1))))
        b.emit(Branch("al", rep_top))
        b.label(rep_done)

        # --- reduction finalisation ----------------------------------------
        self._emit_reduction_splice(vloop)
        self._emit_reduction_store(vloop)

        # --- Phase Epilogue (eager partitioning) ---------------------------
        mark = b.position
        b.emit(ScalarOp("mov", "Xoi", (Imm(OIValue.ZERO),)))
        b.emit(MSR(OI, "Xoi"))
        self._emit_set_vl(Imm(0), "vl0")
        self._mark(self.reconfig_idx, mark)

    # -- fragments ------------------------------------------------------------

    def _emit_invariants(self, vloop: VectorizedLoop) -> None:
        """Splat loop-invariant params; reset reduction accumulators."""
        b = self.builder
        for node in vloop.dag.params():
            reg = vloop.reg_of[node.node_id]
            b.emit(VOp("dup", reg, (ScalarRef(f"Xp_{node.param}"),)))
        for _name, (op, acc) in vloop.acc_regs.items():
            b.emit(VOp("dup", acc, (Imm(REDUCTION_IDENTITY[op]),)))

    def _emit_reduction_splice(self, vloop: VectorizedLoop) -> None:
        """Fold vector partials into the scalar carries (§6.4)."""
        b = self.builder
        for name, (op, acc) in vloop.acc_regs.items():
            b.emit(VHReduce(op, f"Xh_{name}", acc))
            b.emit(ScalarOp(_scalar_fold(op), f"Xr_{name}", (f"Xr_{name}", f"Xh_{name}")))
            b.emit(VOp("dup", acc, (Imm(REDUCTION_IDENTITY[op]),)))

    def _emit_reduction_store(self, vloop: VectorizedLoop) -> None:
        """Materialise each reduction result into its one-element array."""
        b = self.builder
        if not vloop.acc_regs:
            return
        scratch = vloop.scratch
        if scratch is None:  # pragma: no cover - allocator guarantees it
            raise CompilationError("reduction without scratch register")
        b.emit(ScalarOp("mov", "Xz", (Imm(0),)))
        b.emit(ScalarOp("mov", "Xone", (Imm(1),)))
        b.emit(WhileLT(P1, "Xz", "Xone"))
        for name in vloop.acc_regs:
            b.emit(VOp("dup", scratch, (ScalarRef(f"Xr_{name}"),)))
            b.emit(VStore(scratch, name, "Xz", pred=P1))

    def _emit_strip_body(self, vloop: VectorizedLoop, start_index: int) -> None:
        """One strip-mined, tail-predicated iteration of the loop body."""
        b = self.builder
        b.emit(WhileLT(P0, "Xi", "Xn"))
        for shift, stride, offset in vloop.index_temps:
            reg = _index_reg(shift, stride, offset)
            cursor = "Xi"
            if shift:
                b.emit(ScalarOp("add", reg, (cursor, Imm(shift))))
                cursor = reg
            if stride != 1:
                b.emit(ScalarOp("mul", reg, (cursor, Imm(stride))))
                cursor = reg
            if offset:
                b.emit(ScalarOp("add", reg, (cursor, Imm(offset))))
        for node in vloop.dag.nodes:
            if node.kind == "load":
                key = (node.shift, node.stride, node.offset)
                index = "Xi" if key == (0, 1, 0) else _index_reg(*key)
                b.emit(
                    VLoad(
                        vloop.reg_of[node.node_id],
                        node.array,
                        index,
                        pred=P0,
                        stride=node.stride,
                    )
                )
            elif node.kind == "compute":
                srcs = tuple(
                    self._operand(vloop, operand) for operand in node.operands
                )
                b.emit(VOp(_vector_op(node.op), vloop.reg_of[node.node_id], srcs, pred=P0))
        for array, node_id in vloop.dag.stores:
            b.emit(VStore(vloop.reg_of[node_id], array, "Xi", pred=P0))
        for op, name, node_id in vloop.dag.reductions:
            _op, acc = vloop.acc_regs[name]
            source = self._operand(vloop, node_id)
            b.emit(VOp(_vector_op(op), acc, (acc, source), pred=P0))

    def _operand(self, vloop: VectorizedLoop, node_id: int) -> object:
        node = vloop.dag.node(node_id)
        if node.kind == "const":
            return Imm(float(node.value))
        return vloop.reg_of[node_id]


def _index_reg(shift: int, stride: int, offset: int) -> str:
    """Scalar register holding the effective index for one load key."""
    if stride == 1 and offset == 0:
        return f"Xsh_{shift}"
    return f"Xsh_{shift}_s{stride}_o{offset}"


def _vector_op(ir_op: str) -> str:
    """IR operator -> vector instruction mnemonic."""
    mapping = {
        "mov": "mov",
        "fma": "fma",
        "add": "add",
        "sub": "sub",
        "mul": "mul",
        "div": "div",
        "min": "min",
        "max": "max",
        "sqrt": "sqrt",
        "abs": "abs",
        "neg": "neg",
    }
    try:
        return mapping[ir_op]
    except KeyError as exc:  # pragma: no cover - IR validates ops
        raise CompilationError(f"no vector op for {ir_op!r}") from exc


def _scalar_fold(op: str) -> str:
    """Reduction op -> scalar fold op for the carried partial."""
    return {"add": "add", "min": "min", "max": "max"}[op]
