"""Hash-consed expression DAG for one loop body.

Common subexpressions across all statements of a loop body collapse to a
single node (classic CSE), so instruction counts — and therefore the
operational intensity of Eq. 5 — reflect the code actually generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import VectorizationError
from repro.compiler.ir import Assign, BinOp, Call, Const, Expr, Load, Loop, Param, Reduce


@dataclass(frozen=True)
class DagNode:
    """One value in the loop DAG."""

    node_id: int
    kind: str  # "load" | "param" | "const" | "compute"
    op: Optional[str] = None  # for compute nodes
    operands: Tuple[int, ...] = ()
    array: Optional[str] = None  # for loads
    shift: int = 0
    stride: int = 1
    offset: int = 0
    param: Optional[str] = None
    value: float = 0.0


@dataclass
class LoopDag:
    """The DAG plus the statement outputs it feeds."""

    nodes: List[DagNode] = field(default_factory=list)
    #: ``array name -> node id`` for each Assign, in statement order.
    stores: List[Tuple[str, int]] = field(default_factory=list)
    #: ``(op, name, node id)`` for each Reduce, in statement order.
    reductions: List[Tuple[str, str, int]] = field(default_factory=list)

    def node(self, node_id: int) -> DagNode:
        return self.nodes[node_id]

    def loads(self) -> List[DagNode]:
        return [n for n in self.nodes if n.kind == "load"]

    def computes(self) -> List[DagNode]:
        return [n for n in self.nodes if n.kind == "compute"]

    def params(self) -> List[DagNode]:
        return [n for n in self.nodes if n.kind == "param"]

    @property
    def num_loads(self) -> int:
        return len(self.loads())

    @property
    def num_computes(self) -> int:
        return len(self.computes())

    @property
    def num_stores(self) -> int:
        return len(self.stores)


def build_dag(loop: Loop) -> LoopDag:
    """Build the hash-consed DAG for ``loop``'s body.

    Rejects loops with a loop-carried dependence a vectorizer cannot
    handle: an array that is written and also read at a nonzero shift.
    """
    written = loop.arrays_written()
    dag = LoopDag()
    memo: Dict[object, int] = {}

    def intern(key: object, make) -> int:
        if key in memo:
            return memo[key]
        node = make(len(dag.nodes))
        dag.nodes.append(node)
        memo[key] = node.node_id
        return node.node_id

    def visit(expr: Expr) -> int:
        if isinstance(expr, Load):
            if expr.array in written and (expr.shift != 0 or expr.stride != 1):
                raise VectorizationError(
                    f"loop {loop.name!r}: loop-carried dependence on "
                    f"{expr.array!r} (written and read at shift "
                    f"{expr.shift}/stride {expr.stride})"
                )
            return intern(
                ("load", expr.array, expr.shift, expr.stride, expr.offset),
                lambda i: DagNode(
                    i, "load", array=expr.array, shift=expr.shift,
                    stride=expr.stride, offset=expr.offset,
                ),
            )
        if isinstance(expr, Param):
            return intern(
                ("param", expr.name),
                lambda i: DagNode(i, "param", param=expr.name),
            )
        if isinstance(expr, Const):
            return intern(
                ("const", expr.value),
                lambda i: DagNode(i, "const", value=expr.value),
            )
        if isinstance(expr, BinOp):
            lhs = visit(expr.lhs)
            rhs = visit(expr.rhs)
            return intern(
                ("bin", expr.op, lhs, rhs),
                lambda i: DagNode(i, "compute", op=expr.op, operands=(lhs, rhs)),
            )
        if isinstance(expr, Call):
            arg = visit(expr.arg)
            return intern(
                ("call", expr.op, arg),
                lambda i: DagNode(i, "compute", op=expr.op, operands=(arg,)),
            )
        raise VectorizationError(f"unsupported expression {expr!r}")

    for statement in loop.body:
        root = visit(statement.expr)
        if isinstance(statement, Assign):
            if dag.nodes[root].kind == "const":
                # A bare constant store needs materialising into a vector
                # register; wrap it in a synthetic splat.
                root = intern(
                    ("call", "mov", root),
                    lambda i, src=root: DagNode(i, "compute", op="mov", operands=(src,)),
                )
            dag.stores.append((statement.array, root))
        elif isinstance(statement, Reduce):
            dag.reductions.append((statement.op, statement.name, root))
        else:  # pragma: no cover - exhaustive over Statement
            raise VectorizationError(f"unsupported statement {statement!r}")
    return dag
