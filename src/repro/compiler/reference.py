"""Reference (oracle) execution of kernels in pure numpy.

``reference_execute`` applies each loop's semantics slice-wise over the
functional memory, mirroring the vectorizer's evaluation order (all reads
snapshot pre-iteration state; writes apply in statement order).  Tests
compare the oracle against what any machine/policy simulation produced —
the paper's correctness guarantee (§6.4) says the answers must match under
*every* re-partitioning schedule.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.common.errors import SimulationError
from repro.compiler.ir import Assign, BinOp, Call, Const, Expr, Kernel, Load, Param, Reduce
from repro.memory.image import MemoryImage


def _eval(expr: Expr, arrays: Dict[str, np.ndarray], params: Dict[str, float],
          start: int, stop: int) -> np.ndarray:
    if isinstance(expr, Load):
        if expr.stride == 1 and expr.offset == 0:
            return arrays[expr.array][start + expr.shift : stop + expr.shift]
        first = (start + expr.shift) * expr.stride + expr.offset
        last = first + (stop - start - 1) * expr.stride + 1
        return arrays[expr.array][first:last:expr.stride]
    if isinstance(expr, Param):
        return np.float32(params[expr.name])
    if isinstance(expr, Const):
        return np.float32(expr.value)
    if isinstance(expr, BinOp):
        lhs = _eval(expr.lhs, arrays, params, start, stop)
        rhs = _eval(expr.rhs, arrays, params, start, stop)
        if expr.op == "add":
            return lhs + rhs
        if expr.op == "sub":
            return lhs - rhs
        if expr.op == "mul":
            return lhs * rhs
        if expr.op == "div":
            with np.errstate(divide="ignore", invalid="ignore"):
                out = np.divide(lhs, rhs)
            return np.nan_to_num(out, nan=0.0, posinf=0.0, neginf=0.0)
        if expr.op == "min":
            return np.minimum(lhs, rhs)
        if expr.op == "max":
            return np.maximum(lhs, rhs)
        raise SimulationError(f"unknown binop {expr.op}")  # pragma: no cover
    if isinstance(expr, Call):
        arg = _eval(expr.arg, arrays, params, start, stop)
        if expr.op == "sqrt":
            return np.sqrt(np.abs(arg))
        if expr.op == "abs":
            return np.abs(arg)
        if expr.op == "neg":
            return -arg
        raise SimulationError(f"unknown call {expr.op}")  # pragma: no cover
    raise SimulationError(f"bad expression {expr!r}")  # pragma: no cover


def reference_execute(kernel: Kernel, image: MemoryImage) -> MemoryImage:
    """Run ``kernel`` functionally over a *copy* of ``image``."""
    result = image.copy()
    arrays = {name: array for name, array in result}
    identities = {"add": 0.0, "min": np.float32(3.4e38), "max": np.float32(-3.4e38)}
    for loop in kernel.loops:
        start = loop.max_negative_shift()
        stop = start + loop.trip_count
        # Reduction carries restart at every phase prologue (Fig. 9).
        carries: Dict[str, float] = {
            r.name: identities[r.op] for r in loop.reductions()
        }
        for _repeat in range(loop.repeats):
            snapshot = {
                name: arrays[name].copy() for name in loop.arrays_read()
            }
            values = []
            for statement in loop.body:
                values.append(
                    _eval(statement.expr, snapshot, kernel.params, start, stop)
                )
            for statement, value in zip(loop.body, values):
                if isinstance(statement, Assign):
                    arrays[statement.array][start:stop] = value.astype(np.float32)
                elif isinstance(statement, Reduce):
                    folded = np.broadcast_to(value, (loop.trip_count,))
                    if statement.op == "add":
                        carries[statement.name] += float(
                            np.add.reduce(folded, dtype=np.float64)
                        )
                    elif statement.op == "min":
                        carries[statement.name] = min(
                            carries[statement.name], float(np.min(folded))
                        )
                    else:
                        carries[statement.name] = max(
                            carries[statement.name], float(np.max(folded))
                        )
        for name, carry in carries.items():
            arrays[name][0] = np.float32(carry)
    return result
