"""The Occamy compiler (paper §6).

Takes loop-nest kernels expressed in a small IR, analyses their phase
behaviour (operational intensity, Eq. 5), vectorizes each loop with CSE and
SVE-style tail predication, and instruments the code with the eager-lazy
lane-partitioning pattern of Fig. 9 (phase prologue/epilogue, partition
monitor, vector-length reconfiguration with reduction splicing).
"""

from repro.compiler.ir import (
    Assign,
    BinOp,
    Call,
    Const,
    Kernel,
    Load,
    Loop,
    Param,
    Reduce,
    Store,
)
from repro.compiler.phase_analysis import PhaseInfo, analyze_loop, analyze_kernel
from repro.compiler.pipeline import CompileOptions, build_image, compile_kernel
from repro.compiler.reference import reference_execute
from repro.compiler.vectorizer import VectorizedLoop, vectorize_loop

__all__ = [
    "Assign",
    "BinOp",
    "Call",
    "CompileOptions",
    "Const",
    "Kernel",
    "Load",
    "Loop",
    "Param",
    "PhaseInfo",
    "Reduce",
    "Store",
    "VectorizedLoop",
    "analyze_kernel",
    "analyze_loop",
    "build_image",
    "compile_kernel",
    "reference_execute",
    "vectorize_loop",
]
