"""Vector-length-agnostic vectorization (paper §6.4).

The vectorizer turns one loop into a strip-mined, tail-predicated vector
body over the post-CSE DAG, assigning one architectural vector register to
every DAG value.  Any existing vectorization algorithm could be plugged in
(the paper leverages LLVM); ours is a straightforward single-assignment
allocator with hash-consing CSE, which is sufficient for loop-nest kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import VectorizationError
from repro.compiler.dag import DagNode, LoopDag, build_dag
from repro.compiler.ir import Loop
from repro.compiler.phase_analysis import PhaseInfo, analyze_loop
from repro.isa.operands import VReg

#: Architectural vector registers available (ARM SVE: z0..z31).
NUM_VREGS = 32

#: Reduction identities by operation.
REDUCTION_IDENTITY = {"add": 0.0, "min": 3.4e38, "max": -3.4e38}


@dataclass
class VectorizedLoop:
    """A loop ready for EM-SIMD code generation."""

    loop: Loop
    dag: LoopDag
    info: PhaseInfo
    #: DAG node id -> assigned vector register (loads, computes, params).
    reg_of: Dict[int, VReg] = field(default_factory=dict)
    #: reduction name -> (op, accumulator register).
    acc_regs: Dict[str, Tuple[str, VReg]] = field(default_factory=dict)
    #: scratch register for materialising reduction results (if needed).
    scratch: Optional[VReg] = None
    #: distinct non-trivial (shift, stride, offset) keys needing an index
    #: temporary (the trivial key (0, 1, 0) indexes with Xi directly).
    index_temps: Tuple[Tuple[int, int, int], ...] = ()

    @property
    def registers_used(self) -> int:
        used = len(self.reg_of) + len(self.acc_regs)
        return used + (1 if self.scratch is not None else 0)

    @property
    def shifts(self) -> Tuple[int, ...]:
        """Distinct nonzero unit-stride stencil shifts (compatibility)."""
        return tuple(
            sorted({sh for sh, st, off in self.index_temps if st == 1 and off == 0})
        )


def vectorize_loop(loop: Loop, dag: LoopDag = None) -> VectorizedLoop:
    """Vectorize ``loop``; raises :class:`VectorizationError` on overflow.

    ``dag`` lets the driver pass a pre-optimised DAG (see
    :mod:`repro.compiler.optimizer`); by default the loop's own DAG is
    built here.
    """
    if dag is None:
        dag = build_dag(loop)
    info = analyze_loop(loop, dag)
    vloop = VectorizedLoop(loop=loop, dag=dag, info=info)

    next_reg = 0

    def allocate() -> VReg:
        nonlocal next_reg
        if next_reg >= NUM_VREGS:
            raise VectorizationError(
                f"loop {loop.name!r} needs more than {NUM_VREGS} vector "
                "registers; split the loop body"
            )
        reg = VReg(f"z{next_reg}")
        next_reg += 1
        return reg

    # Reduction accumulators live across the whole loop.
    for op, name, _node in dag.reductions:
        if name in vloop.acc_regs:
            raise VectorizationError(
                f"loop {loop.name!r}: duplicate reduction target {name!r}"
            )
        vloop.acc_regs[name] = (op, allocate())
    if dag.reductions:
        vloop.scratch = allocate()

    # Loop-invariant parameters are splatted once per (re)configuration.
    for node in dag.nodes:
        if node.kind == "param":
            vloop.reg_of[node.node_id] = allocate()

    # Loads and computes in topological (construction) order.
    for node in dag.nodes:
        if node.kind in ("load", "compute"):
            vloop.reg_of[node.node_id] = allocate()

    keys = {
        (node.shift, node.stride, node.offset)
        for node in dag.loads()
        if (node.shift, node.stride, node.offset) != (0, 1, 0)
    }
    vloop.index_temps = tuple(sorted(keys))
    return vloop
