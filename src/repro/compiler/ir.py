"""Loop-nest kernel IR.

A :class:`Kernel` is a sequence of :class:`Loop`s over float32 arrays; each
loop is one *phase* in the paper's sense (§6: "a loop typically being
regarded as a phase").  Loop bodies are element-wise statements over
expressions:

* ``Load(array, shift)`` — ``array[i + shift]`` (shifts express stencils,
  i.e. data reuse across iterations);
* ``Param(name)`` — a loop-invariant scalar parameter (broadcast);
* ``Const(v)`` — a literal;
* ``BinOp``/``Call`` — arithmetic;
* ``Assign(array, expr)`` — ``array[i] = expr``;
* ``Reduce(op, name, expr)`` — ``name ⊕= expr`` (a loop-carried reduction,
  materialised into the one-element output array ``name`` at phase end).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple, Union

from repro.common.errors import CompilationError

#: Binary operators available in kernel expressions.
BIN_OPS = frozenset({"add", "sub", "mul", "div", "min", "max"})

#: Unary calls available in kernel expressions.
CALL_OPS = frozenset({"sqrt", "abs", "neg"})


@dataclass(frozen=True)
class Load:
    """``array[(i + shift) * stride + offset]``.

    ``stride = 1`` is the common unit-stride case.  ``stride > 1`` with an
    ``offset`` expresses interleaved layouts (e.g. channel ``offset`` of an
    RGB image has ``stride = 3``); strided accesses touch ``stride`` times
    the cache lines of a unit-stride access, which the memory system
    charges for.
    """

    array: str
    shift: int = 0
    stride: int = 1
    offset: int = 0

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise CompilationError("stride must be >= 1")
        if self.offset < 0 or self.offset >= self.stride:
            raise CompilationError("offset must lie within one stride")


@dataclass(frozen=True)
class Param:
    """A loop-invariant scalar kernel parameter."""

    name: str


@dataclass(frozen=True)
class Const:
    """A literal float."""

    value: float


@dataclass(frozen=True)
class BinOp:
    op: str
    lhs: "Expr"
    rhs: "Expr"

    def __post_init__(self) -> None:
        if self.op not in BIN_OPS:
            raise CompilationError(f"unknown binary op {self.op!r}")


@dataclass(frozen=True)
class Call:
    op: str
    arg: "Expr"

    def __post_init__(self) -> None:
        if self.op not in CALL_OPS:
            raise CompilationError(f"unknown call {self.op!r}")


Expr = Union[Load, Param, Const, BinOp, Call]


@dataclass(frozen=True)
class Assign:
    """``array[i] = expr``."""

    array: str
    expr: Expr


@dataclass(frozen=True)
class Reduce:
    """``name ⊕= expr`` across iterations (op in add/min/max)."""

    op: str
    name: str
    expr: Expr

    def __post_init__(self) -> None:
        if self.op not in ("add", "min", "max"):
            raise CompilationError(f"unsupported reduction op {self.op!r}")


Statement = Union[Assign, Reduce]

#: Alias used by Store in the public API (an Assign *is* a store).
Store = Assign


@dataclass(frozen=True)
class Loop:
    """One vectorizable loop — one phase.

    ``trip_count`` is the number of element iterations of one pass;
    ``repeats`` repeats the whole pass (the phase prologue/epilogue are
    hoisted outside the repeat loop, the paper's §6.3 code-hoisting
    optimisation).
    """

    name: str
    trip_count: int
    body: Tuple[Statement, ...]
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.trip_count < 1:
            raise CompilationError(f"loop {self.name!r}: empty trip count")
        if self.repeats < 1:
            raise CompilationError(f"loop {self.name!r}: repeats must be >= 1")
        if not self.body:
            raise CompilationError(f"loop {self.name!r}: empty body")

    def max_negative_shift(self) -> int:
        """Largest backward stencil shift (defines the start padding)."""
        return max((-s for s in self._shifts() if s < 0), default=0)

    def max_positive_shift(self) -> int:
        """Largest forward stencil shift (defines the end padding)."""
        return max((s for s in self._shifts() if s > 0), default=0)

    def _shifts(self) -> List[int]:
        shifts: List[int] = []
        for statement in self.body:
            _collect_shifts(statement.expr, shifts)
        return shifts

    def max_stride(self) -> int:
        """Largest load stride in the body (1 when all unit-stride)."""
        strides = [1]
        for statement in self.body:
            _collect_strides(statement.expr, strides)
        return max(strides)

    def arrays_read(self) -> Set[str]:
        reads: Set[str] = set()
        for statement in self.body:
            _collect_reads(statement.expr, reads)
        return reads

    def arrays_written(self) -> Set[str]:
        return {s.array for s in self.body if isinstance(s, Assign)}

    def reductions(self) -> List[Reduce]:
        return [s for s in self.body if isinstance(s, Reduce)]


@dataclass(frozen=True)
class Kernel:
    """A workload: named arrays, parameters and a sequence of phases."""

    name: str
    array_length: int
    loops: Tuple[Loop, ...]
    params: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.array_length < 1:
            raise CompilationError("array_length must be positive")
        if not self.loops:
            raise CompilationError(f"kernel {self.name!r} has no loops")
        for loop in self.loops:
            pad = loop.max_negative_shift() + loop.max_positive_shift()
            required = (loop.trip_count + pad) * loop.max_stride()
            if required > self.array_length:
                raise CompilationError(
                    f"kernel {self.name!r}, loop {loop.name!r}: needs "
                    f"{required} elements (trip count, stencil padding and "
                    f"stride) but arrays have {self.array_length}"
                )

    def arrays(self) -> Set[str]:
        """Every array any loop touches."""
        names: Set[str] = set()
        for loop in self.loops:
            names |= loop.arrays_read() | loop.arrays_written()
        return names

    def reduction_outputs(self) -> Set[str]:
        """Names of reduction results (one-element output arrays)."""
        names: Set[str] = set()
        for loop in self.loops:
            names |= {r.name for r in loop.reductions()}
        return names


def _collect_shifts(expr: Expr, out: List[int]) -> None:
    if isinstance(expr, Load):
        out.append(expr.shift)
    elif isinstance(expr, BinOp):
        _collect_shifts(expr.lhs, out)
        _collect_shifts(expr.rhs, out)
    elif isinstance(expr, Call):
        _collect_shifts(expr.arg, out)


def _collect_strides(expr: Expr, out: List[int]) -> None:
    if isinstance(expr, Load):
        out.append(expr.stride)
    elif isinstance(expr, BinOp):
        _collect_strides(expr.lhs, out)
        _collect_strides(expr.rhs, out)
    elif isinstance(expr, Call):
        _collect_strides(expr.arg, out)


def _collect_reads(expr: Expr, out: Set[str]) -> None:
    if isinstance(expr, Load):
        out.add(expr.array)
    elif isinstance(expr, BinOp):
        _collect_reads(expr.lhs, out)
        _collect_reads(expr.rhs, out)
    elif isinstance(expr, Call):
        _collect_reads(expr.arg, out)
