"""Symbiosis-aware pairing: compatibility matrix + max-weight matching.

The symbiosis policy scores every unordered pair of threads by the
predicted *co-run makespan* of a 2-core complex running them — straight
from the ECM cycle prior (arXiv 1509.03118), with the shared L2/DRAM
ceilings halved and (for spatial sharing policies) the lane pool split,
exactly like the service scheduler's cold-start prior.  No simulation is
needed to build the matrix.

A pair's matching weight is ``-(log t_a + log t_b)`` where ``t_a, t_b``
are the two threads' predicted drain times in the co-run, so maximising
total matching weight minimises the *product* — hence the geometric
mean — of per-thread drain cycles across the whole machine, which is
the blended metric the CI gate measures (the co-scheduling literature's
geomean-of-per-thread-performance, inverted to cycles).

The solver is greedy max-weight matching refined by 2-opt pair swaps to
a fixed point.  A 2-opt-stable matching is never worse than the expected
weight of a uniform random matching: for any two matched edges
``(a,b),(c,d)`` stability gives ``2(w_ab + w_cd) >= w_ac + w_bd + w_ad +
w_bc``; summing over all edge pairs yields ``W >= S/(n-1)`` where ``S``
is the total weight of all unordered pairs and ``S/(n-1)`` is exactly
the random expectation (each specific pair is matched with probability
``1/(n-1)``).  The property test in ``tests/alloc`` pins this bound.

``--calibrate`` replaces the prior with *measured* entries: every
candidate pair is co-run once at a short fixed scale through the result
cache (keyed with the ``alloc=`` ingredient of ``simulation_key``), so a
warm cache makes calibration nearly free and repeated calibrations are
bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.ecm import TEMPORAL_POLICIES, EcmModel
from repro.common.config import MachineConfig
from repro.common.errors import ConfigurationError
from repro.compiler.ir import Kernel

from repro.alloc.placement import Placement, ThreadSpec
from repro.alloc.policies import AllocationPolicy, AllocContext

#: Floor for matrix costs so ``-log(cost)`` stays finite.
_MIN_COST = 1e-9


def matrix_key(key_a: str, key_b: str) -> Tuple[str, str]:
    """The canonical (sorted) identity of an unordered thread pair."""
    return (key_a, key_b) if key_a <= key_b else (key_b, key_a)


@dataclass(frozen=True)
class MatrixEntry:
    """One pair's compatibility score.

    ``drains`` are the two threads' predicted (``source="ecm"``) or
    measured (``source="measured"``) co-run drain times in cycles, in
    canonical key order; lower is better.
    """

    drains: Tuple[float, float]
    source: str

    @property
    def cost(self) -> float:
        """The pair's makespan: the slower thread's drain."""
        return max(self.drains)

    @property
    def weight(self) -> float:
        """Matching weight: minus the summed log drains, so a maximum-
        weight matching minimises the product of per-thread drains."""
        return -sum(math.log(max(t, _MIN_COST)) for t in self.drains)


@dataclass(frozen=True)
class SymbiosisMatrix:
    """Pairwise compatibility, keyed by unordered thread-key pairs."""

    sharing_key: str
    entries: Tuple[Tuple[Tuple[str, str], MatrixEntry], ...]

    def _lookup(self) -> Dict[Tuple[str, str], MatrixEntry]:
        return dict(self.entries)

    def entry(self, key_a: str, key_b: str) -> MatrixEntry:
        key = matrix_key(key_a, key_b)
        table = self._lookup()
        if key not in table:
            raise ConfigurationError(
                f"symbiosis matrix has no entry for pair {key}"
            )
        return table[key]

    def cost(self, key_a: str, key_b: str) -> float:
        return self.entry(key_a, key_b).cost

    def weight(self, key_a: str, key_b: str) -> float:
        return self.entry(key_a, key_b).weight


def _kernel_profile(
    kernel: Kernel, config: MachineConfig, sharing_key: str, solo: EcmModel
) -> Tuple[float, float]:
    """A kernel's resource appetite from its *solo* ECM decomposition:
    ``(memory pressure, mean lane demand)``.

    Memory pressure is the cycle fraction the solo run spends bound on
    the shared L2/DRAM links; lane demand is the cycle-weighted mean
    lane grant.  These are what a co-runner actually takes away from its
    partner.
    """
    prediction = solo.predict_kernel(kernel, sharing_key)
    cycles = prediction.cycles or 1.0
    mem_cycles = sum(
        phase.cycles
        for phase in prediction.phases
        if phase.bottleneck in ("l2", "mem")
    )
    lane_cycles = sum(phase.lanes * phase.cycles for phase in prediction.phases)
    return mem_cycles / cycles, lane_cycles / cycles


def predicted_pair_drains(
    kernels: Sequence[Kernel], config: MachineConfig, sharing_key: str
) -> Tuple[float, ...]:
    """ECM prior for a complex co-running ``kernels``: per-thread drains.

    The coupling is what makes pairs distinguishable (a partner-blind
    prior is additive across threads and every matching ties):

    * **bandwidth** — a thread's share of the L2/DRAM channel is
      ``1 / (1 + partner memory pressure)``: a Vec-Cache-resident
      partner leaves the channel alone, a streaming partner halves it;
    * **lanes** (spatial elastic policies) — a thread may grow into
      whatever the partner's mean lane demand leaves free, but is always
      guaranteed its fair share: ``cap = max(total/n, total - partner
      demand)``.  Temporal policies time-share the full pool and the
      private baseline keeps its fixed split.
    """
    runners = max(1, len(kernels))
    solo = EcmModel(config)
    profiles = [
        _kernel_profile(kernel, config, sharing_key, solo) for kernel in kernels
    ]
    total = config.vector.total_lanes
    fair = max(1, total // runners)
    drains = []
    for index, kernel in enumerate(kernels):
        others = [profiles[j] for j in range(runners) if j != index]
        pressure = sum(mem for mem, _lanes in others)
        model = EcmModel(config, bandwidth_share=1.0 / (1.0 + pressure))
        if sharing_key in TEMPORAL_POLICIES:
            cap = None
        elif sharing_key == "private":
            cap = fair
        else:  # occamy / vls: elastic into the partner's slack
            partner_lanes = sum(lanes for _mem, lanes in others)
            cap = max(fair, int(total - partner_lanes))
        drains.append(
            model.predict_kernel(kernel, sharing_key, max_lanes=cap).cycles
        )
    return tuple(drains)


def candidate_pairs(threads: Sequence[ThreadSpec]) -> List[Tuple[str, str]]:
    """Every unordered key pair a placement could form, deduplicated.

    Symmetric pairs (A,B)/(B,A) collapse to one entry; self-pairs (A,A)
    appear only when the thread multiset actually holds two A's.
    """
    from repro.workloads.pairs import dedup_unordered

    return dedup_unordered([thread.key for thread in threads])


def build_matrix(
    threads: Sequence[ThreadSpec], context: AllocContext
) -> SymbiosisMatrix:
    """The ECM-prior compatibility matrix (no simulation)."""
    config = context.complex_config()
    kernels = {thread.key: thread.kernel for thread in threads}
    entries = []
    for key_a, key_b in candidate_pairs(threads):
        drains = predicted_pair_drains(
            [kernels[key_a], kernels[key_b]], config, context.sharing_key
        )
        entries.append(
            ((key_a, key_b), MatrixEntry(drains=tuple(drains), source="ecm"))
        )
    return SymbiosisMatrix(
        sharing_key=context.sharing_key, entries=tuple(entries)
    )


def calibrate_matrix(
    threads: Sequence[ThreadSpec], context: AllocContext
) -> SymbiosisMatrix:
    """The measured matrix: one short co-run per candidate pair.

    Every entry is measured (never mixed with ECM-prior entries, which
    live at a different scale) by simulating the pair's *calibration
    kernels* on the complex config under the context's sharing policy.
    Runs route through the persistent result cache with the ``alloc``
    key ingredient, so re-calibration is a cache hit.
    """
    from repro.analysis import result_cache
    from repro.compiler.pipeline import CompileOptions, build_image, compile_kernel
    from repro.core.machine import Job, run_policy
    from repro.core.policies import POLICIES_BY_KEY

    if context.sharing_key not in POLICIES_BY_KEY:
        raise ConfigurationError(
            f"unknown sharing policy {context.sharing_key!r} for calibration"
        )
    config = context.complex_config()
    if config.num_cores != 2:
        raise ConfigurationError(
            "symbiosis calibration needs a 2-core complex config, got "
            f"{config.num_cores} cores"
        )
    policy = POLICIES_BY_KEY[context.sharing_key]
    kernels = {thread.key: thread.calibration_kernel for thread in threads}
    options = CompileOptions(memory=config.memory)
    disk = result_cache.default_cache()
    entries = []
    for key_a, key_b in candidate_pairs(threads):
        jobs: List[Optional[Job]] = [
            Job(
                program=compile_kernel(kernels[key], options),
                image=build_image(kernels[key], core_id=core),
            )
            for core, key in enumerate((key_a, key_b))
        ]
        disk_key = None
        result = None
        if disk is not None:
            disk_key = result_cache.simulation_key(
                config,
                policy.key,
                jobs,
                alloc=f"symbiosis-calib:{context.sharing_key}",
            )
            result = disk.get(disk_key)
        if result is None:
            result = run_policy(config, policy, jobs)
            if disk is not None:
                disk.put(disk_key, result)
        entries.append(
            (
                (key_a, key_b),
                MatrixEntry(
                    drains=(
                        float(result.core_time(0)),
                        float(result.core_time(1)),
                    ),
                    source="measured",
                ),
            )
        )
    return SymbiosisMatrix(
        sharing_key=context.sharing_key, entries=tuple(entries)
    )


# --- the matching solver -----------------------------------------------------


def expected_random_matching_weight(
    weights: Sequence[Sequence[float]],
) -> float:
    """Expected total weight of a uniform random perfect matching.

    In a uniform random perfect matching on ``n`` vertices each specific
    pair is matched with probability ``1/(n-1)``, so the expectation is
    the total pairwise weight divided by ``n - 1``.
    """
    n = len(weights)
    if n < 2:
        return 0.0
    total = sum(
        weights[i][j] for i in range(n) for j in range(i + 1, n)
    )
    return total / (n - 1)


def solve_pairing(
    weights: Sequence[Sequence[float]],
) -> Tuple[Tuple[int, int], ...]:
    """Max-weight perfect matching: greedy seed + 2-opt to a fixed point.

    ``weights`` is a symmetric ``n x n`` table (``n`` even; the diagonal
    is ignored).  Deterministic: ties break toward lower indices.  The
    2-opt fixed point guarantees the result never scores below the
    random-matching expectation (see the module docstring).
    """
    n = len(weights)
    if n % 2 != 0:
        raise ConfigurationError(
            f"matching needs an even vertex count, got {n}"
        )
    for row in weights:
        if len(row) != n:
            raise ConfigurationError("weight matrix must be square")
    if n == 0:
        return ()

    # Greedy seed: heaviest compatible edges first.
    edges = sorted(
        ((i, j) for i in range(n) for j in range(i + 1, n)),
        key=lambda edge: (-weights[edge[0]][edge[1]], edge),
    )
    matched: Dict[int, int] = {}
    for i, j in edges:
        if i not in matched and j not in matched:
            matched[i] = j
            matched[j] = i
    pairs = sorted(
        (min(i, j), max(i, j)) for i, j in matched.items() if i < j
    )

    # 2-opt: rewire any two pairs when either alternative weighs more.
    improved = True
    while improved:
        improved = False
        for x in range(len(pairs)):
            for y in range(x + 1, len(pairs)):
                a, b = pairs[x]
                c, d = pairs[y]
                current = weights[a][b] + weights[c][d]
                cross1 = weights[a][c] + weights[b][d]
                cross2 = weights[a][d] + weights[b][c]
                best = max(cross1, cross2)
                if best > current + 1e-12:
                    if cross1 >= cross2:
                        pairs[x] = (min(a, c), max(a, c))
                        pairs[y] = (min(b, d), max(b, d))
                    else:
                        pairs[x] = (min(a, d), max(a, d))
                        pairs[y] = (min(b, c), max(b, c))
                    improved = True
        # loop until a full pass makes no swap
    return tuple(sorted(pairs))


def matching_weight(
    weights: Sequence[Sequence[float]], pairs: Sequence[Tuple[int, int]]
) -> float:
    """Total weight of a matching under ``weights``."""
    return sum(weights[i][j] for i, j in pairs)


# --- the policy --------------------------------------------------------------


class SymbiosisAllocation(AllocationPolicy):
    """ECM-prior (or calibrated) compatibility matrix + matching."""

    key = "symbiosis"
    label = "Symbiosis"

    def place(
        self, threads: Sequence[ThreadSpec], context: AllocContext
    ) -> Placement:
        if context.complex_size != 2:
            raise ConfigurationError(
                "symbiosis pairing is defined for 2-core complexes, got "
                f"complex_size={context.complex_size}"
            )
        if len(threads) % 2 != 0:
            raise ConfigurationError(
                f"symbiosis pairing needs an even thread count, got "
                f"{len(threads)}"
            )
        matrix = (
            calibrate_matrix(threads, context)
            if context.calibrate
            else build_matrix(threads, context)
        )
        n = len(threads)
        weights = [
            [
                (
                    matrix.weight(threads[i].key, threads[j].key)
                    if i != j
                    else 0.0
                )
                for j in range(n)
            ]
            for i in range(n)
        ]
        return solve_pairing(weights)
