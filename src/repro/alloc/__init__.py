"""Thread-to-core allocation: the pairing-policy subsystem.

Decides *which* threads share a co-processor complex before the sharing
policy (private/occamy/fts/cts) decides *how* they share it within the
complex.  See ``docs/allocation.md`` and ROADMAP item 1.

Public surface::

    from repro.alloc import (
        ALLOC_POLICIES_BY_KEY, ALLOC_POLICY_KEYS,
        AllocContext, AllocationPolicy, Placement, ThreadSpec,
        canonical_placement, placement_labels, validate_placement,
    )
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.alloc.placement import (
    DEFAULT_COMPLEX_SIZE,
    Placement,
    ThreadSpec,
    canonical_placement,
    num_complexes,
    placement_labels,
    thread_order,
    validate_placement,
)
from repro.alloc.policies import (
    AllocContext,
    AllocationPolicy,
    OiBalanceAllocation,
    OiPackAllocation,
    RandomAllocation,
    RoundRobinAllocation,
    thread_demand,
)
from repro.alloc.symbiosis import (
    MatrixEntry,
    SymbiosisAllocation,
    SymbiosisMatrix,
    build_matrix,
    calibrate_matrix,
    expected_random_matching_weight,
    matching_weight,
    solve_pairing,
)

#: The policy registry — one instance per family member, keyed by CLI name.
ALLOC_POLICIES_BY_KEY: Dict[str, AllocationPolicy] = {
    policy.key: policy
    for policy in (
        RandomAllocation(),
        RoundRobinAllocation(),
        OiBalanceAllocation(),
        OiPackAllocation(),
        SymbiosisAllocation(),
    )
}

#: Registry order for sweeps and CLI ``--alloc all``.
ALLOC_POLICY_KEYS: Tuple[str, ...] = tuple(ALLOC_POLICIES_BY_KEY)

__all__ = [
    "ALLOC_POLICIES_BY_KEY",
    "ALLOC_POLICY_KEYS",
    "AllocContext",
    "AllocationPolicy",
    "DEFAULT_COMPLEX_SIZE",
    "MatrixEntry",
    "OiBalanceAllocation",
    "OiPackAllocation",
    "Placement",
    "RandomAllocation",
    "RoundRobinAllocation",
    "SymbiosisAllocation",
    "SymbiosisMatrix",
    "ThreadSpec",
    "build_matrix",
    "calibrate_matrix",
    "canonical_placement",
    "expected_random_matching_weight",
    "matching_weight",
    "num_complexes",
    "placement_labels",
    "solve_pairing",
    "thread_demand",
    "thread_order",
    "validate_placement",
]
