"""Thread/placement primitives for the allocation subsystem.

The allocation layer answers a question the paper never asks: on a
machine large enough to hold several co-processor *complexes* (each the
paper's evaluated 2-core machine), **which threads should share a
complex in the first place**?  A :class:`Placement` is that decision —
a partition of the thread set into equal-sized complexes — made before
any simulation runs; the sharing policy (private/occamy/fts/cts) then
plays out *within* each complex exactly as in the 2-core evaluation.

Placement is a pure pre-simulation decision.  Two invariants make that
checkable:

* **Canonical form** — threads within a complex and complexes within a
  placement are ordered deterministically (by thread sort key), so two
  policies that choose the same unordered pair-set produce *identical*
  per-complex simulations, bit for bit, and hit the same result-cache
  entries.
* **Validation** — every thread appears in exactly one complex and every
  complex has exactly ``complex_size`` members; violations raise
  :class:`~repro.common.errors.ConfigurationError` before any simulation
  is attempted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.compiler.ir import Kernel

#: A placement: one tuple of thread indices per complex.
Placement = Tuple[Tuple[int, ...], ...]

#: Default complex width — the paper's evaluated two-core machine.
DEFAULT_COMPLEX_SIZE = 2


@dataclass(frozen=True)
class ThreadSpec:
    """One schedulable thread, as the allocation layer sees it.

    ``key`` is the thread's stable identity (e.g. ``"spec:15"``): two
    threads with equal keys are interchangeable for placement purposes,
    which is what lets the symbiosis matrix deduplicate symmetric pairs.
    ``kernel`` feeds the ECM/OI analysis the scoring policies run;
    ``calib_kernel`` is an optional short-running variant used for
    calibration micro co-runs (defaults to ``kernel``).
    """

    key: str
    kernel: Kernel
    calib_kernel: Optional[Kernel] = field(default=None, compare=False)

    @property
    def calibration_kernel(self) -> Kernel:
        return self.calib_kernel if self.calib_kernel is not None else self.kernel


def thread_order(threads: Sequence[ThreadSpec]) -> Tuple[int, ...]:
    """Thread indices sorted by (key, index) — the canonical total order."""
    return tuple(sorted(range(len(threads)), key=lambda i: (threads[i].key, i)))


def num_complexes(threads: Sequence[ThreadSpec], complex_size: int) -> int:
    """How many complexes the thread set fills; validates divisibility."""
    if complex_size < 1:
        raise ConfigurationError(
            f"complex_size must be positive, got {complex_size}"
        )
    if not threads:
        raise ConfigurationError("allocation needs at least one thread")
    if len(threads) % complex_size != 0:
        raise ConfigurationError(
            f"{len(threads)} thread(s) do not fill complexes of "
            f"{complex_size} core(s) evenly"
        )
    return len(threads) // complex_size


def canonical_placement(
    threads: Sequence[ThreadSpec], complexes: Sequence[Sequence[int]]
) -> Placement:
    """The canonical form of a placement decision.

    Within each complex, thread indices are ordered by ``(key, index)``;
    complexes are then ordered by their member sort keys.  Canonical form
    is what makes placement order-irrelevant: ``(A, B)`` and ``(B, A)``
    collapse to one simulation with one cache key.
    """
    def sort_key(index: int) -> Tuple[str, int]:
        return (threads[index].key, index)

    ordered = [tuple(sorted(group, key=sort_key)) for group in complexes]
    ordered.sort(key=lambda group: tuple(sort_key(i) for i in group))
    return tuple(ordered)


def validate_placement(
    threads: Sequence[ThreadSpec],
    placement: Placement,
    complex_size: int = DEFAULT_COMPLEX_SIZE,
) -> Placement:
    """Check ``placement`` is a partition into equal complexes.

    Returns the placement unchanged; raises ``ConfigurationError`` naming
    the first violation (wrong complex width, missing or repeated thread,
    out-of-range index).
    """
    expected = num_complexes(threads, complex_size)
    if len(placement) != expected:
        raise ConfigurationError(
            f"placement has {len(placement)} complex(es), expected {expected}"
        )
    seen = set()
    for group in placement:
        if len(group) != complex_size:
            raise ConfigurationError(
                f"complex {group} has {len(group)} member(s), expected "
                f"{complex_size}"
            )
        for index in group:
            if not 0 <= index < len(threads):
                raise ConfigurationError(
                    f"placement names thread index {index} outside "
                    f"0..{len(threads) - 1}"
                )
            if index in seen:
                raise ConfigurationError(
                    f"thread index {index} placed more than once"
                )
            seen.add(index)
    return placement


def placement_labels(
    threads: Sequence[ThreadSpec], placement: Placement
) -> Tuple[str, ...]:
    """One stable ``key+key`` label per complex (canonical member order)."""
    return tuple(
        "+".join(threads[index].key for index in group) for group in placement
    )
