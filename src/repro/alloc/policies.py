"""The allocation-policy family: who shares a complex with whom.

Each policy turns a thread set into a canonical :data:`Placement`.  The
family (PAPERS.md arXiv 2507.00855, adapted to this simulator's ECM/OI
machinery):

* ``random`` — seeded shuffle, the baseline every other policy is judged
  against;
* ``round-robin`` — deal threads across complexes in arrival order, the
  "what an OS does by default" baseline;
* ``oi-balance`` — sort threads by ECM-weighted memory operational
  intensity and pair opposite extremes, so every co-processor sees mixed
  compute/memory demand;
* ``oi-pack`` — the adversarial inverse (pack similar OI together), kept
  deliberately as the losing bound of the win/loss story;
* ``symbiosis`` (:mod:`repro.alloc.symbiosis`) — pairwise compatibility
  matrix from the ECM co-run prior, solved with greedy max-weight
  matching plus 2-opt improvement.

Policies never simulate: they read the ECM prior at most (symbiosis
calibration routes micro co-runs through the result cache, but that is
opt-in).  The registry lives in :mod:`repro.alloc` (`ALLOC_POLICIES_BY_KEY`).
"""

from __future__ import annotations

import random as _random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.ecm import EcmModel
from repro.common.config import MachineConfig, experiment_config
from repro.common.errors import ConfigurationError
from repro.compiler.phase_analysis import analyze_kernel

from repro.alloc.placement import (
    DEFAULT_COMPLEX_SIZE,
    Placement,
    ThreadSpec,
    canonical_placement,
    num_complexes,
    thread_order,
    validate_placement,
)


@dataclass(frozen=True)
class AllocContext:
    """Everything a placement decision may consult.

    ``config`` is the *complex* machine (``num_cores == complex_size``),
    not the whole-machine config — allocation reasons about what one
    complex will experience.  ``sharing_key`` is the sharing policy that
    will run within each complex (the symbiosis prior is sharing-aware).
    """

    config: Optional[MachineConfig] = None
    sharing_key: str = "occamy"
    complex_size: int = DEFAULT_COMPLEX_SIZE
    seed: int = 0
    calibrate: bool = False
    calib_scale: float = 0.05

    def complex_config(self) -> MachineConfig:
        return self.config or experiment_config(num_cores=self.complex_size)


class AllocationPolicy(ABC):
    """One member of the pairing-policy family."""

    key: str = ""
    label: str = ""

    @abstractmethod
    def place(
        self, threads: Sequence[ThreadSpec], context: AllocContext
    ) -> Placement:
        """Partition ``threads`` into complexes (canonical form)."""

    def __call__(
        self, threads: Sequence[ThreadSpec], context: Optional[AllocContext] = None
    ) -> Placement:
        context = context or AllocContext()
        placement = canonical_placement(
            threads, self.place(threads, context)
        )
        return validate_placement(threads, placement, context.complex_size)


def thread_demand(thread: ThreadSpec, config: MachineConfig) -> float:
    """A thread's scalar demand: ECM-cycle-weighted mean memory OI.

    Each phase's ``<OI>.mem`` at its residency level is weighted by the
    phase's predicted solo cycles under elastic grants, so a workload
    dominated by a long streaming phase scores memory-hungry even if a
    short compute phase tops it off.  Higher means more compute-dense
    (OI is flops per byte); lower means more bandwidth-hungry.
    """
    model = EcmModel(config)
    weighted = 0.0
    total = 0.0
    for info in analyze_kernel(thread.kernel):
        level = info.residency_level(config.memory)
        lanes = model.lanes_for("occamy", info)
        cycles = model.phase_prediction(info, lanes, level=level).cycles
        weighted += info.oi_for_level(level).mem * cycles
        total += cycles
    return weighted / total if total else 0.0


def _demand_order(
    threads: Sequence[ThreadSpec], config: MachineConfig
) -> Sequence[int]:
    """Thread indices sorted by demand, ties broken canonically."""
    return sorted(
        range(len(threads)),
        key=lambda i: (thread_demand(threads[i], config), threads[i].key, i),
    )


class RandomAllocation(AllocationPolicy):
    """Seeded uniform shuffle chunked into complexes — the baseline."""

    key = "random"
    label = "Random"

    def place(
        self, threads: Sequence[ThreadSpec], context: AllocContext
    ) -> Placement:
        size = context.complex_size
        num_complexes(threads, size)
        indices = list(range(len(threads)))
        _random.Random(context.seed).shuffle(indices)
        return tuple(
            tuple(indices[start : start + size])
            for start in range(0, len(indices), size)
        )


class RoundRobinAllocation(AllocationPolicy):
    """Deal threads across complexes in arrival order (complex ``i`` gets
    threads ``i``, ``i + C``, ``i + 2C``, ...)."""

    key = "round-robin"
    label = "Round-robin"

    def place(
        self, threads: Sequence[ThreadSpec], context: AllocContext
    ) -> Placement:
        count = num_complexes(threads, context.complex_size)
        return tuple(
            tuple(range(start, len(threads), count)) for start in range(count)
        )


class OiBalanceAllocation(AllocationPolicy):
    """Pair opposite OI extremes so each complex sees mixed demand.

    Threads are sorted by :func:`thread_demand`; complex ``i`` folds the
    sorted order onto itself (lowest with highest, second-lowest with
    second-highest, ...), generalised to wider complexes by serpentine
    dealing.
    """

    key = "oi-balance"
    label = "OI-balance"

    def place(
        self, threads: Sequence[ThreadSpec], context: AllocContext
    ) -> Placement:
        count = num_complexes(threads, context.complex_size)
        order = _demand_order(threads, context.complex_config())
        groups = [[] for _ in range(count)]
        # Serpentine deal: pass 0 forward, pass 1 backward, ... so each
        # complex's members come from opposite ends of the demand order.
        for position, index in enumerate(order):
            round_no, slot = divmod(position, count)
            target = slot if round_no % 2 == 0 else count - 1 - slot
            groups[target].append(index)
        return tuple(tuple(group) for group in groups)


class OiPackAllocation(AllocationPolicy):
    """Pack similar OI together — the adversarial losing bound.

    Adjacent chunks of the demand order: all bandwidth-hungry threads
    fight each other for the channel while compute-dense complexes leave
    it idle.  Exists to bound the win/loss table from below.
    """

    key = "oi-pack"
    label = "OI-pack"

    def place(
        self, threads: Sequence[ThreadSpec], context: AllocContext
    ) -> Placement:
        size = context.complex_size
        num_complexes(threads, size)
        order = _demand_order(threads, context.complex_config())
        return tuple(
            tuple(order[start : start + size])
            for start in range(0, len(order), size)
        )
