"""Run fingerprints: everything observable about a :class:`RunResult`.

The differential layers (the determinism suite, the cross-engine fuzzer)
compare complete runs across execution strategies, so the fingerprint must
cover every value a figure or table could read: cycle counts, uop/stall/
overhead counters, phase records, lane timelines, LSU/cache statistics and
the final memory image bytes.  ``fingerprint_sections`` keeps the values
grouped under stable names so a mismatch can be reported as *which* piece
of state diverged rather than as two giant unequal tuples.
"""

from __future__ import annotations

from typing import Dict, List


def fingerprint_sections(result) -> Dict[str, object]:
    """Named, hashable sections of everything observable about a run.

    Accepts any object shaped like :class:`~repro.core.machine.RunResult`.
    Section values are plain hashable tuples, so two runs can be compared
    section-by-section and the diverging sections named.
    """
    m = result.metrics
    return {
        "policy": result.policy_key,
        "total_cycles": result.total_cycles,
        "core_cycles": tuple(result.core_cycles),
        "compute_uops": tuple(m.compute_uops),
        "ldst_uops": tuple(m.ldst_uops),
        "flops": tuple(m.flops),
        "busy_pipe_slots": m.busy_pipe_slots,
        "stalls": tuple(
            tuple(sorted((reason.name, count) for reason, count in per_core.items()))
            for per_core in m.stalls
        ),
        "overhead": (tuple(m.monitor_cycles), tuple(m.reconfig_cycles)),
        "reconfigurations": (tuple(m.reconfig_success), tuple(m.reconfig_failed)),
        "phases": tuple(
            (p.core, repr(p.oi), p.start_cycle, p.end_cycle, p.compute_uops, p.ldst_uops)
            for p in m.phases
        ),
        "lane_timelines": tuple(tuple(t.points) for t in m.lane_timeline),
        "busy_lanes_series": tuple(
            tuple(series.totals()) for series in m.busy_lanes_series
        ),
        "lsu_stats": tuple(repr(stats) for stats in result.lsu_stats),
        "cache_stats": tuple(
            sorted((name, repr(stats)) for name, stats in result.cache_stats.items())
        ),
        "memory_images": tuple(
            None
            if image is None
            else tuple((name, array.tobytes()) for name, array in image)
            for image in result.images
        ),
    }


def run_fingerprint(result) -> tuple:
    """The full fingerprint as one hashable tuple (section order is fixed)."""
    return tuple(fingerprint_sections(result).items())


def diff_fingerprints(baseline: Dict[str, object], other: Dict[str, object]) -> List[str]:
    """Names of the sections in which ``other`` differs from ``baseline``.

    Both arguments come from :func:`fingerprint_sections`.  Returns an
    empty list when the runs are bit-identical.
    """
    diverged = []
    for section, expected in baseline.items():
        if other.get(section) != expected:
            diverged.append(section)
    for section in other:
        if section not in baseline:  # pragma: no cover - defensive
            diverged.append(section)
    return diverged


def describe_divergence(
    baseline: Dict[str, object], other: Dict[str, object], sections: List[str]
) -> List[str]:
    """Short human-readable lines describing each diverging section."""
    lines = []
    for section in sections:
        expected = repr(baseline.get(section))
        got = repr(other.get(section))
        if len(expected) > 120:
            expected = expected[:117] + "..."
        if len(got) > 120:
            got = got[:117] + "..."
        lines.append(f"{section}: baseline={expected} got={got}")
    return lines
