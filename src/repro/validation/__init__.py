"""Differential validation: cross-engine fuzzing and runtime invariant audits.

The simulator has one reference engine (the seed interpreter, cycle by
cycle) and three bit-exactness-preserving fast paths layered on top of it
(pre-decoded scalar dispatch, idle-cycle fast-forward, steady-state loop
replay).  This package keeps them honest as the codebase grows:

:mod:`repro.validation.fingerprint`
    A named-section fingerprint of everything a :class:`RunResult`
    exposes, and a differ that reports exactly which section diverged.
:mod:`repro.validation.difftest`
    The cross-engine differential fuzzer: random programs run through
    every engine combination under every sharing mode, diffed against the
    seed engine (``python -m repro diff-fuzz``).
:mod:`repro.validation.shrink`
    An automatic shrinker reducing a diverging case to a minimal repro
    and emitting it as a ready-to-commit regression test.
:mod:`repro.validation.invariants`
    Opt-in runtime invariant audits (``REPRO_AUDIT`` / ``--audit``) wired
    into the machine, lane table, renamer, LSUs and bandwidth model.
"""

from repro.validation.fingerprint import (
    diff_fingerprints,
    fingerprint_sections,
    run_fingerprint,
)
from repro.validation.invariants import InvariantAuditor, audit_enabled

__all__ = [
    "InvariantAuditor",
    "audit_enabled",
    "diff_fingerprints",
    "fingerprint_sections",
    "run_fingerprint",
]
