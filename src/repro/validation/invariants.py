"""Opt-in runtime invariant audits (``REPRO_AUDIT`` / ``--audit``).

When enabled, an :class:`InvariantAuditor` is attached to the machine at
construction and re-checks the co-processor's structural invariants —

* **lane conservation**: owned + free lane counts equal the total, the
  :class:`LaneTable`'s incremental indexes agree with the per-ExeBU
  ownership ground truth, and (under spatial sharing) the resource
  table's ``<VL>`` registers agree with the lane table;
* **ROB retire ordering**: every instruction pool holds its entries in
  strictly increasing sequence order, dependences point only at older
  instructions, and transmit/commit counters reconcile with occupancy;
* **physical-register leak-freedom**: each core's renamer hold count
  equals the number of in-flight pool entries holding a physical
  register, and every freelist stays within ``[0, capacity]``;
* **replay-template/live-state agreement**: after every committed loop-
  replay period the full machine audit re-runs on the replayed state;
* **bandwidth accounting**: every per-level regulator serves requests at
  or after their arrival, advances its queue monotonically within a
  request, and keeps its counters consistent.

Every check is strictly read-only — enabling the audit cannot perturb the
simulation, so audited runs stay bit-identical to unaudited ones (the
validation tests assert this).  A violated invariant raises
:class:`~repro.common.errors.InvariantViolation`.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.common.errors import InvariantViolation


def audit_enabled() -> bool:
    """Whether machines self-audit by default (``REPRO_AUDIT`` non-empty)."""
    return bool(os.environ.get("REPRO_AUDIT"))


class InvariantAuditor:
    """Read-only consistency checker wired into one :class:`Machine`.

    Construction installs the auditor on the machine's lane table,
    renamer, LSUs and bandwidth regulators (their per-call hooks), and
    :meth:`check_machine` runs the full structural audit — called by
    ``Machine.step`` every simulated cycle and by the replay engine at
    every committed period boundary.
    """

    def __init__(self, machine) -> None:
        self.machine = machine
        self.checks = 0
        coproc = machine.coproc
        coproc.lane_table.auditor = self
        coproc.renamer.auditor = self
        for lsu in coproc.lsus:
            lsu.auditor = self
        for regulator in self._regulators():
            regulator.auditor = self

    def _regulators(self):
        memory = self.machine.coproc.memory
        return (memory.vec_cache_bw, memory.l2_bw, memory.dram_bw)

    @staticmethod
    def _fail(message: str) -> None:
        raise InvariantViolation(f"invariant audit: {message}")

    # --- per-call hooks -----------------------------------------------------

    def on_lane_table(self, table) -> None:
        """After a ``reconfigure``: indexes must agree with ground truth."""
        self.checks += 1
        owners = {}
        for core, indices in table._owned.items():
            if list(indices) != sorted(set(indices)):
                self._fail(f"core {core} lane index list not sorted-unique: {indices}")
            if not indices:
                self._fail(f"core {core} has an empty (should be absent) index entry")
            for index in indices:
                owners[index] = core
        if list(table._free) != sorted(set(table._free)):
            self._fail(f"free list not sorted-unique: {table._free}")
        owned_total = sum(len(v) for v in table._owned.values())
        if owned_total + len(table._free) != table.total_lanes:
            self._fail(
                f"lane conservation broken: {owned_total} owned + "
                f"{len(table._free)} free != {table.total_lanes} total"
            )
        for bu in table._lanes:
            expected = owners.get(bu.index)
            if bu.owner != expected:
                self._fail(
                    f"lane {bu.index} ground-truth owner {bu.owner} != "
                    f"index owner {expected}"
                )
            if bu.owner is None and bu.index not in table._free:
                self._fail(f"free lane {bu.index} missing from the free list")

    def on_renamer(self, renamer) -> None:
        """After an allocate/release: freelists stay within bounds."""
        self.checks += 1
        for slot, free in enumerate(renamer._free):
            if not 0 <= free <= renamer._capacity[slot]:
                self._fail(
                    f"renamer slot {slot} freelist {free} outside "
                    f"[0, {renamer._capacity[slot]}]"
                )
        for core, held in enumerate(renamer._held):
            if held < 0:
                self._fail(f"core {core} holds {held} physical registers")
            if held > renamer._hold_cap:
                self._fail(
                    f"core {core} holds {held} > fairness cap {renamer._hold_cap}"
                )

    def on_lsu_issue(self, lsu, cycle, result) -> None:
        """After an ``issue``: completions cannot precede their request."""
        self.checks += 1
        if result.complete_cycle < cycle:
            self._fail(
                f"core {lsu.core_id} access completes at "
                f"{result.complete_cycle} before issue cycle {cycle}"
            )
        completions = list(lsu._store_completions)
        if any(b < a for a, b in zip(completions, completions[1:])):
            self._fail(
                f"core {lsu.core_id} store queue retires out of FIFO order: "
                f"{completions}"
            )

    def on_bandwidth_serve(self, regulator, nbytes, earliest, start, finish) -> None:
        """After a ``serve``: the channel queue only moves forward."""
        self.checks += 1
        if start < earliest:
            self._fail(
                f"{regulator.name} channel started a request at {start} "
                f"before its arrival at {earliest}"
            )
        expected = start + nbytes / regulator.bytes_per_cycle
        if finish != expected or finish < start:
            self._fail(
                f"{regulator.name} channel finish {finish} inconsistent with "
                f"start {start} + {nbytes}B @ {regulator.bytes_per_cycle}B/cyc"
            )
        if regulator._next_free != finish:
            self._fail(
                f"{regulator.name} channel queue tail {regulator._next_free} "
                f"!= last finish {finish}"
            )

    # --- full-machine audit -------------------------------------------------

    def check_machine(self, cycle: int) -> None:
        """The end-of-cycle structural audit (also run at replay commits)."""
        self.checks += 1
        self._check_lanes()
        self._check_pools(cycle)
        self._check_renamer_leaks()
        self._check_bandwidth()

    def check_replay_commit(self, cycle: int, template) -> None:
        """Audit the live state a committed replay period left behind.

        The replay engine verified every templated event against the live
        machine while applying the period; this confirms the *resulting*
        state still satisfies every structural invariant — the agreement
        check between the template's scripted decisions and the machine
        they produced.
        """
        if template.period <= 0:
            self._fail(f"replayed a non-positive period {template.period}")
        self.check_machine(cycle)

    def _check_lanes(self) -> None:
        from repro.coproc.coprocessor import SharingMode

        coproc = self.machine.coproc
        self.on_lane_table(coproc.lane_table)
        self.checks -= 1  # on_lane_table counted itself
        if coproc.mode is SharingMode.SPATIAL:
            table = coproc.resource_table
            table.check_invariant()  # allocated + free == total (<AL>)
            for core in range(coproc.config.num_cores):
                owned = coproc.lane_table.owned_count(core)
                vl = table.vl(core)
                if owned != vl:
                    self._fail(
                        f"core {core} owns {owned} lanes but <VL> says {vl}"
                    )

    def _check_pools(self, cycle: int) -> None:
        for pool in self.machine.coproc.pools:
            entries = pool._entries
            if pool.transmitted - pool.committed != len(entries):
                self._fail(
                    f"core {pool.core_id} pool occupancy {len(entries)} != "
                    f"{pool.transmitted} transmitted - {pool.committed} committed"
                )
            if len(entries) > pool.capacity:
                self._fail(
                    f"core {pool.core_id} pool holds {len(entries)} > "
                    f"capacity {pool.capacity}"
                )
            last_seq = None
            for entry in entries:
                if entry.core != pool.core_id:
                    self._fail(
                        f"core {entry.core} entry seq {entry.seq} in core "
                        f"{pool.core_id}'s pool"
                    )
                if last_seq is not None and entry.seq <= last_seq:
                    self._fail(
                        f"core {pool.core_id} pool out of program order: "
                        f"seq {entry.seq} after {last_seq} (retire ordering)"
                    )
                last_seq = entry.seq
                for dep in entry.deps:
                    if dep.seq >= entry.seq:
                        self._fail(
                            f"entry seq {entry.seq} depends on younger/equal "
                            f"seq {dep.seq}"
                        )

    def _check_renamer_leaks(self) -> None:
        coproc = self.machine.coproc
        renamer = coproc.renamer
        self.on_renamer(renamer)
        self.checks -= 1  # on_renamer counted itself
        holders = [0] * coproc.config.num_cores
        for pool in coproc.pools:
            for entry in pool._entries:
                if entry.holds_phys_reg:
                    holders[pool.core_id] += 1
        slot_held = {}
        for core in range(coproc.config.num_cores):
            if renamer._held[core] != holders[core]:
                self._fail(
                    f"core {core} renamer holds {renamer._held[core]} physical "
                    f"registers but {holders[core]} in-flight entries hold one "
                    f"(leak or double release)"
                )
            slot = renamer._slot(core)
            slot_held[slot] = slot_held.get(slot, 0) + renamer._held[core]
        for slot, held in slot_held.items():
            if renamer._free[slot] + held != renamer._capacity[slot]:
                self._fail(
                    f"renamer slot {slot}: {renamer._free[slot]} free + "
                    f"{held} held != capacity {renamer._capacity[slot]}"
                )

    def _check_bandwidth(self) -> None:
        for regulator in self._regulators():
            if regulator._next_free < 0:
                self._fail(
                    f"{regulator.name} channel queue tail is negative: "
                    f"{regulator._next_free}"
                )
            if regulator.bytes_served < 0 or regulator.requests_served < 0:
                self._fail(
                    f"{regulator.name} channel counters negative: "
                    f"{regulator.bytes_served}B / {regulator.requests_served} reqs"
                )
            if regulator.requests_served == 0 and regulator.bytes_served != 0:
                self._fail(
                    f"{regulator.name} channel served {regulator.bytes_served}B "
                    f"in zero requests"
                )
