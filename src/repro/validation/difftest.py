"""Cross-engine differential fuzzing (``python -m repro diff-fuzz``).

The simulator can execute one program ninety-six ways: the scalar cores
run either the seed interpreter or the pre-decoded dispatch table
(``REPRO_NO_PRE_DECODE``), idle stretches are either stepped or
fast-forwarded (``fast_forward``), steady loops are either stepped or
replayed from verified templates (``fast_path``), the run loop is either
the reference every-cycle tick or the tickless event wheel with ready-set
dispatch indexing (``REPRO_NO_EVENT_WHEEL``), the co-processor dispatches
either per-uop or through the opcode-grouped batch-execute backend
(``REPRO_NO_BATCH_EXEC``), the tickless wheel optionally upgrades to the
hierarchical wake index with active-list iteration
(``REPRO_NO_HIER_WHEEL``, meaningful only on top of the event wheel), and
the lane bookkeeping is either scanning or sharded — bulk-round greedy
partition, busy-pool CTS arbitration, per-owner lane counters
(``REPRO_NO_LANE_SHARDS``).  All ninety-six are promised bit-identical.
This module generates randomized multi-phase co-running programs, runs
each through every engine combination under every sharing mode, and diffs
the complete run fingerprint (architectural memory state, metrics, lane
timelines, stalls, phase records, cycle counts) against the seed engine —
the ECM-style model-validation loop turned on the simulator itself.

Cases are described by :class:`CaseSpec`, an explicit per-phase
instruction mix (not an opaque RNG trace), so the shrinker in
:mod:`repro.validation.shrink` can reduce a diverging case field by field
and a minimized spec can be pasted verbatim into a regression test.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.config import MachineConfig, experiment_config
from repro.compiler.ir import Kernel
from repro.compiler.pipeline import CompileOptions, build_image, compile_kernel
from repro.core.machine import Job, Machine
from repro.core.policies import policy
from repro.validation.fingerprint import (
    describe_divergence,
    diff_fingerprints,
    fingerprint_sections,
)
from repro.workloads.generator import COMPUTE_OI_RANGE, MEMORY_OI_RANGE
from repro.workloads.synth import Counts, solve_counts, synth_loop

#: One policy per sharing mode (spatial, temporal, coarse-temporal) — the
#: engine fast paths interact with the *mode*, not with the lane manager,
#: so this triple covers every dispatch/arbitration code path.
DEFAULT_POLICIES: Tuple[str, ...] = ("occamy", "fts", "cts")

#: Element trip counts the fuzzer draws from.  Deliberately smaller than
#: the benchmark trips: engine divergence is a per-iteration property, so
#: short loops find the same bugs at a fraction of the cost, and small
#: footprints still split across residency classes under the scaled caches.
STREAMING_TRIPS = (192, 320, 512)
RESIDENT_TRIPS = (96, 160, 256)


@dataclass(frozen=True)
class EngineSpec:
    """One of the ninety-six engine combinations."""

    pre_decode: bool
    fast_forward: bool
    fast_path: bool
    event_wheel: bool = False
    batch_exec: bool = False
    hier_wheel: bool = False
    lane_shards: bool = False

    @property
    def label(self) -> str:
        parts = []
        if self.pre_decode:
            parts.append("decode")
        if self.fast_forward:
            parts.append("ff")
        if self.fast_path:
            parts.append("replay")
        if self.event_wheel:
            parts.append("wheel")
        if self.batch_exec:
            parts.append("batch")
        if self.hier_wheel:
            parts.append("hier")
        if self.lane_shards:
            parts.append("shards")
        return "+".join(parts) if parts else "interp"


#: Kill-switch environment variable per :class:`EngineSpec` axis.  Every
#: axis must have one — the result-cache key coverage test asserts this
#: mapping stays total, so a new engine cannot silently poison cached
#: results or escape the fuzz matrix.
ENGINE_KILL_SWITCH_ENV: Dict[str, str] = {
    "pre_decode": "REPRO_NO_PRE_DECODE",
    "fast_forward": "REPRO_NO_FAST_FORWARD",
    "fast_path": "REPRO_NO_LOOP_REPLAY",
    "event_wheel": "REPRO_NO_EVENT_WHEEL",
    "batch_exec": "REPRO_NO_BATCH_EXEC",
    "hier_wheel": "REPRO_NO_HIER_WHEEL",
    "lane_shards": "REPRO_NO_LANE_SHARDS",
}

#: The seed engine: interpreter, cycle by cycle, no replay, no wheel,
#: per-uop dispatch, scanning lane bookkeeping.
BASELINE_ENGINE = EngineSpec(pre_decode=False, fast_forward=False, fast_path=False)

#: Every *valid* non-baseline combination, cheapest first.  The
#: hierarchical wheel rides on top of the event wheel — ``hier_wheel``
#: without ``event_wheel`` is latched off at construction, so those
#: duplicate combinations are excluded rather than fuzzed twice.
FAST_ENGINES: Tuple[EngineSpec, ...] = tuple(
    EngineSpec(
        pre_decode,
        fast_forward,
        fast_path,
        event_wheel,
        batch_exec,
        hier_wheel,
        lane_shards,
    )
    for lane_shards in (False, True)
    for hier_wheel in (False, True)
    for batch_exec in (False, True)
    for event_wheel in (False, True)
    for pre_decode in (False, True)
    for fast_forward in (False, True)
    for fast_path in (False, True)
    if (event_wheel or not hier_wheel)
    and any(
        (
            pre_decode,
            fast_forward,
            fast_path,
            event_wheel,
            batch_exec,
            hier_wheel,
            lane_shards,
        )
    )
)

#: Curated engine subset for expensive sweeps (e.g. the 16-core diff-fuzz
#: CI smoke): the seed-adjacent extremes plus each new axis isolated and
#: ablated from the everything-on stack.
KEY_ENGINES: Tuple[EngineSpec, ...] = (
    EngineSpec(True, True, True, True, True, True, True),  # everything on
    EngineSpec(True, True, True, True, True, False, False),  # pre-PR-9 stack
    EngineSpec(False, False, False, True, False, True, False),  # hier wheel alone
    EngineSpec(False, False, False, False, False, False, True),  # shards alone
    EngineSpec(True, True, True, True, True, True, False),  # all minus shards
    EngineSpec(True, True, True, True, True, False, True),  # all minus hier
)


@dataclass(frozen=True)
class PhaseSpec:
    """One phase: an explicit instruction mix plus loop shape."""

    comp: int
    reads: int
    extra_loads: int
    stores: int
    trip: int
    repeats: int

    def counts(self) -> Counts:
        """The (validated) instruction mix; raises ``CompilationError``."""
        return Counts(self.comp, self.reads, self.extra_loads, self.stores)


@dataclass(frozen=True)
class CaseSpec:
    """One fuzz case: per-core phase lists plus compiler options.

    ``cores[i]`` is either a tuple of :class:`PhaseSpec` or ``None`` (an
    idle core slot) — the shrinker uses ``None`` to drop whole co-runners.
    """

    seed: int
    cores: Tuple[Optional[Tuple[PhaseSpec, ...]], ...]
    unroll: int = 1
    fold_constants: bool = False
    fuse_fma: bool = False


@dataclass
class Divergence:
    """One engine/policy combination disagreeing with the seed engine."""

    seed: int
    policy: str
    engine: str
    sections: List[str]
    detail: List[str]
    spec: Optional[CaseSpec] = field(default=None, repr=False)

    def __str__(self) -> str:
        return (
            f"seed {self.seed}: {self.engine} under {self.policy} diverged "
            f"in {', '.join(self.sections)}"
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "policy": self.policy,
            "engine": self.engine,
            "sections": list(self.sections),
            "detail": list(self.detail),
            "spec": None if self.spec is None else asdict(self.spec),
        }


# --- case generation --------------------------------------------------------


def generate_case(seed: int, num_cores: int = 2) -> CaseSpec:
    """Draw one deterministic random case.

    Even cores lean memory-intensive and odd cores compute-intensive (the
    paper's pairing, tiled across wider machines), with enough probability
    mass on the flipped and mixed shapes that same-class co-runners and
    multi-phase workloads are exercised too.  For ``num_cores=2`` the draw
    sequence is byte-identical to the historical two-core generator, so
    existing regression seeds keep reproducing the same cases.
    """
    rng = random.Random(seed)
    cores: List[Tuple[PhaseSpec, ...]] = []
    for core in range(num_cores):
        phases: List[PhaseSpec] = []
        for _ in range(rng.randint(1, 2)):
            streaming = rng.random() < (0.75 if core % 2 == 0 else 0.3)
            if streaming:
                oi = round(rng.uniform(*MEMORY_OI_RANGE), 3)
                counts = solve_counts(oi, min_footprint=3)
                trip = rng.choice(STREAMING_TRIPS)
                repeats = 1
            else:
                oi = round(rng.uniform(*COMPUTE_OI_RANGE), 3)
                counts = solve_counts(oi)
                trip = rng.choice(RESIDENT_TRIPS)
                repeats = rng.randint(1, 3)
            phases.append(
                PhaseSpec(
                    comp=counts.comp,
                    reads=counts.reads,
                    extra_loads=counts.extra_loads,
                    stores=counts.stores,
                    trip=trip,
                    repeats=repeats,
                )
            )
        cores.append(tuple(phases))
    return CaseSpec(
        seed=seed,
        cores=tuple(cores),
        unroll=rng.choice((1, 1, 1, 2)),
        fold_constants=rng.random() < 0.25,
        fuse_fma=rng.random() < 0.25,
    )


def case_kernels(spec: CaseSpec) -> List[Optional[Kernel]]:
    """Materialise the spec's per-core kernels (deterministic)."""
    kernels: List[Optional[Kernel]] = []
    for core, phases in enumerate(spec.cores):
        if not phases:
            kernels.append(None)
            continue
        loops = tuple(
            synth_loop(
                f"s{spec.seed}c{core}p{index}",
                phase.counts(),
                trip_count=phase.trip,
                repeats=phase.repeats,
            )
            for index, phase in enumerate(phases)
        )
        kernels.append(
            Kernel(
                name=f"difftest.s{spec.seed}c{core}",
                array_length=max(loop.trip_count for loop in loops) + 2,
                loops=loops,
            )
        )
    return kernels


# --- engine execution -------------------------------------------------------


#: Engine axes selected through the environment at construction time:
#: ``REPRO_NO_PRE_DECODE`` is read at ``ScalarCore`` construction,
#: ``REPRO_NO_EVENT_WHEEL``, ``REPRO_NO_BATCH_EXEC`` and
#: ``REPRO_NO_HIER_WHEEL`` at ``Machine`` construction, and
#: ``REPRO_NO_LANE_SHARDS`` at ``CoProcessor``/lane-manager construction.
#: (``fast_forward``/``fast_path`` are ``run()`` arguments.)
_CONSTRUCTION_AXES: Tuple[str, ...] = (
    "pre_decode",
    "event_wheel",
    "batch_exec",
    "hier_wheel",
    "lane_shards",
)


@contextmanager
def _engine_env(engine: EngineSpec):
    """Select the construction-time engine switches before building the
    machine, restoring the caller's environment afterwards."""
    saved: Dict[str, Optional[str]] = {}
    for axis in _CONSTRUCTION_AXES:
        var = ENGINE_KILL_SWITCH_ENV[axis]
        saved[var] = os.environ.pop(var, None)
        if not getattr(engine, axis):
            os.environ[var] = "1"
    try:
        yield
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value


class CompiledCase:
    """One spec compiled once; images are rebuilt fresh for every run."""

    def __init__(self, spec: CaseSpec, config: Optional[MachineConfig] = None) -> None:
        self.spec = spec
        self.config = config if config is not None else experiment_config()
        options = CompileOptions(
            memory=self.config.memory,
            unroll=spec.unroll,
            fold_constants=spec.fold_constants,
            fuse_fma=spec.fuse_fma,
        )
        self.kernels = case_kernels(spec)
        self.programs = [
            None if kernel is None else compile_kernel(kernel, options)
            for kernel in self.kernels
        ]
        if all(program is None for program in self.programs):
            raise ValueError("a case needs at least one running core")

    def jobs(self) -> List[Optional[Job]]:
        """Fresh jobs — runs mutate their memory images."""
        return [
            None
            if program is None
            else Job(program=program, image=build_image(kernel, core_id=core))
            for core, (kernel, program) in enumerate(zip(self.kernels, self.programs))
        ]

    def run(
        self,
        policy_key: str,
        engine: EngineSpec,
        max_cycles: int = 3_000_000,
        audit: Optional[bool] = None,
    ):
        """One simulation of this case under ``policy_key`` on ``engine``."""
        with _engine_env(engine):
            machine = Machine(self.config, policy(policy_key), self.jobs(), audit=audit)
            return machine.run(
                max_cycles=max_cycles,
                fast_forward=engine.fast_forward,
                fast_path=engine.fast_path,
            )


def check_case(
    spec: CaseSpec,
    policies: Sequence[str] = DEFAULT_POLICIES,
    engines: Sequence[EngineSpec] = FAST_ENGINES,
    config: Optional[MachineConfig] = None,
    max_cycles: int = 3_000_000,
    audit: Optional[bool] = None,
) -> List[Divergence]:
    """Diff every requested engine against the seed engine.

    Returns one :class:`Divergence` per (policy, engine) pair whose full
    run fingerprint differs from the baseline's; empty means the fast
    paths are bit-exact on this case.
    """
    compiled = CompiledCase(spec, config)
    divergences: List[Divergence] = []
    for policy_key in policies:
        baseline = fingerprint_sections(
            compiled.run(policy_key, BASELINE_ENGINE, max_cycles, audit)
        )
        for engine in engines:
            sections = fingerprint_sections(
                compiled.run(policy_key, engine, max_cycles, audit)
            )
            diverged = diff_fingerprints(baseline, sections)
            if diverged:
                divergences.append(
                    Divergence(
                        seed=spec.seed,
                        policy=policy_key,
                        engine=engine.label,
                        sections=diverged,
                        detail=describe_divergence(baseline, sections, diverged),
                        spec=spec,
                    )
                )
    return divergences


@dataclass
class FuzzReport:
    """Outcome of one fuzzing sweep."""

    seeds: List[int]
    cases: int
    runs: int
    divergences: List[Divergence]

    @property
    def clean(self) -> bool:
        return not self.divergences

    def to_json(self) -> Dict[str, object]:
        return {
            "seeds": self.seeds,
            "cases": self.cases,
            "runs": self.runs,
            "clean": self.clean,
            "divergences": [d.to_json() for d in self.divergences],
        }


def place_case(
    spec: CaseSpec,
    alloc_key: str,
    complex_size: int = 2,
    sharing_key: str = "occamy",
    seed: int = 0,
    config: Optional[MachineConfig] = None,
) -> List[Tuple[Tuple[int, ...], CaseSpec]]:
    """Split an N-core case into per-complex sub-cases via ``alloc_key``.

    Returns ``(complex member indices, sub-case)`` pairs.  Placement is a
    pure pre-simulation decision, so two policies forming the same
    unordered core set produce byte-identical sub-cases — the diff-fuzz
    matrix then proves every (placement, sharing-policy) combination
    bit-identical across engines.
    """
    from repro.alloc import ALLOC_POLICIES_BY_KEY, AllocContext, ThreadSpec
    from repro.common.errors import ConfigurationError

    if alloc_key not in ALLOC_POLICIES_BY_KEY:
        raise ConfigurationError(
            f"unknown allocation policy {alloc_key!r} "
            f"(have: {', '.join(sorted(ALLOC_POLICIES_BY_KEY))})"
        )
    kernels = case_kernels(spec)
    if any(kernel is None for kernel in kernels):
        raise ConfigurationError(
            "placement-aware fuzzing needs every core populated "
            f"(case seed {spec.seed} has idle slots)"
        )
    threads = [
        ThreadSpec(key=f"c{core:02d}", kernel=kernel)
        for core, kernel in enumerate(kernels)
    ]
    context = AllocContext(
        config=config or experiment_config(complex_size),
        sharing_key=sharing_key,
        complex_size=complex_size,
        seed=seed,
    )
    placement = ALLOC_POLICIES_BY_KEY[alloc_key](threads, context)
    return [
        (
            members,
            CaseSpec(
                seed=spec.seed,
                cores=tuple(spec.cores[index] for index in members),
                unroll=spec.unroll,
                fold_constants=spec.fold_constants,
                fuse_fma=spec.fuse_fma,
            ),
        )
        for members in placement
    ]


def fuzz_seeds(
    seeds: Sequence[int],
    policies: Sequence[str] = DEFAULT_POLICIES,
    engines: Sequence[EngineSpec] = FAST_ENGINES,
    config: Optional[MachineConfig] = None,
    max_cycles: int = 3_000_000,
    audit: Optional[bool] = None,
    progress: Optional[Callable[[str], None]] = None,
    num_cores: int = 2,
    alloc: Optional[str] = None,
    complex_size: int = 2,
) -> FuzzReport:
    """Run :func:`check_case` over ``seeds``; collect every divergence.

    ``num_cores`` widens the generated co-runs (and, when no explicit
    ``config`` is given, the machine) — the N-core smoke lever.  With
    ``alloc`` set, each N-core case is first split into 2-core complexes
    by that allocation policy (:func:`place_case`) and every complex is
    diffed independently on the complex-sized machine.
    """
    divergences: List[Divergence] = []
    runs_per_case = len(policies) * (len(engines) + 1)
    if alloc is not None:
        complex_config = config or experiment_config(complex_size)
        total_runs = 0
        for index, seed in enumerate(seeds):
            spec = generate_case(seed, num_cores)
            found: List[Divergence] = []
            for _members, sub in place_case(
                spec, alloc, complex_size=complex_size, config=complex_config
            ):
                found.extend(
                    check_case(
                        sub, policies, engines, complex_config, max_cycles, audit
                    )
                )
                total_runs += runs_per_case
            divergences.extend(found)
            if progress is not None and ((index + 1) % 10 == 0 or found):
                status = (
                    f"{len(divergences)} divergence(s)" if divergences else "clean"
                )
                progress(f"  [{index + 1}/{len(seeds)}] seed {seed}: {status}")
        return FuzzReport(
            seeds=list(seeds),
            cases=len(seeds),
            runs=total_runs,
            divergences=divergences,
        )
    if config is None:
        config = experiment_config(num_cores)
    for index, seed in enumerate(seeds):
        spec = generate_case(seed, num_cores)
        found = check_case(spec, policies, engines, config, max_cycles, audit)
        divergences.extend(found)
        if progress is not None and ((index + 1) % 10 == 0 or found):
            status = f"{len(divergences)} divergence(s)" if divergences else "clean"
            progress(f"  [{index + 1}/{len(seeds)}] seed {seed}: {status}")
    return FuzzReport(
        seeds=list(seeds),
        cases=len(seeds),
        runs=len(seeds) * runs_per_case,
        divergences=divergences,
    )
