"""The register renamer and its physical-register freelist (Fig. 5).

Physical vector registers live in RegBlks — one 128-bit slice per owned
lane.  Because an architectural register at vector length *l* consumes one
slice in each of the core's *l* RegBlks, capacity counted in *architectural
register units* is simply ``vregs_per_block`` per ownership domain:

* **Spatial sharing** (Private / VLS / Occamy): each core's architectural
  context resides only in its own RegBlks, so every core gets a private
  freelist of ``vregs_per_block - arch_vregs`` in-flight registers.
* **Temporal sharing** (FTS): every core's full-width context must be
  resident in *every* RegBlk simultaneously.  Per §7.6 FTS maintains the
  same number of physical registers *per core* as the two-core case (the
  +33.5% area at four cores), so the shared freelist is
  ``(vregs_per_block/2 - arch_vregs) * num_cores``.  All cores allocate
  from it — the register pressure behind the paper's Fig. 13 renaming
  stalls.  A small per-core reservation keeps one memory-hungry core from
  starving the others outright (the hardware's FCFS rename would otherwise
  deadlock-prone-ly hand every register to whoever asks fastest).
"""

from __future__ import annotations

from typing import List

from repro.common.config import VectorConfig
from repro.common.errors import ConfigurationError, ProtocolError

#: Registers every other core is guaranteed under temporal sharing.
SHARED_MIN_RESERVE = 16


class Renamer:
    """Freelist accounting for in-flight vector register writes."""

    def __init__(self, config: VectorConfig, num_cores: int, shared: bool) -> None:
        self.config = config
        self.num_cores = num_cores
        self.shared = shared
        per_core_share = config.vregs_per_block // 2
        if shared:
            pool = (per_core_share - config.arch_vregs) * num_cores
            if pool < 1:
                raise ConfigurationError(
                    "temporal sharing needs vregs_per_block/2 > "
                    f"{config.arch_vregs} architectural registers"
                )
            self._free: List[int] = [pool]
            self._held = [0] * num_cores
            self._hold_cap = max(
                SHARED_MIN_RESERVE, pool - SHARED_MIN_RESERVE * (num_cores - 1)
            )
        else:
            pool = config.vregs_per_block - config.arch_vregs
            self._free = [pool] * num_cores
            self._held = [0] * num_cores
            self._hold_cap = pool
        self._capacity = list(self._free)
        self.allocations = 0
        self.failed_allocations = 0
        #: Runtime invariant auditor (``REPRO_AUDIT``); when set, every
        #: allocate/release re-checks the freelist bounds.
        self.auditor = None

    def _slot(self, core: int) -> int:
        return 0 if self.shared else core

    def capacity(self, core: int) -> int:
        """Freelist size of the pool serving ``core``."""
        return self._capacity[self._slot(core)]

    def available(self, core: int) -> int:
        """Free physical registers currently available to ``core``."""
        pool = self._free[self._slot(core)]
        return min(pool, self._hold_cap - self._held[core])

    def try_allocate(self, core: int) -> bool:
        """Claim one physical register for a new in-flight write.

        Returns False (a renaming stall) when the pool is empty or the
        core has hit its fairness cap under temporal sharing.
        """
        if self.available(core) <= 0:
            self.failed_allocations += 1
            return False
        self._free[self._slot(core)] -= 1
        self._held[core] += 1
        self.allocations += 1
        if self.auditor is not None:
            self.auditor.on_renamer(self)
        return True

    def allocate_batch(self, core: int, count: int) -> None:
        """Claim ``count`` physical registers at once (batch-execute backend).

        Exactly equivalent to ``count`` successful :meth:`try_allocate`
        calls; the batch planner must have proven availability against
        :meth:`available` before applying its plan.
        """
        if count <= 0:
            return
        if self.available(core) < count:
            raise ProtocolError(
                f"batch allocation of {count} registers for core {core} "
                f"exceeds availability {self.available(core)}"
            )
        self._free[self._slot(core)] -= count
        self._held[core] += count
        self.allocations += count
        if self.auditor is not None:
            self.auditor.on_renamer(self)

    def note_failed_allocation(self) -> None:
        """Record one renaming stall observed by the batch planner.

        The planner never calls :meth:`try_allocate` (its walk is
        side-effect free), so the failure counter the reference scan would
        have bumped is settled here when the plan is applied.
        """
        self.failed_allocations += 1

    def release(self, core: int) -> None:
        """Return one physical register at commit of the in-flight write."""
        slot = self._slot(core)
        if self._held[core] <= 0 or self._free[slot] >= self._capacity[slot]:
            raise ProtocolError("renamer freelist overflow (double release)")
        self._free[slot] += 1
        self._held[core] -= 1
        if self.auditor is not None:
            self.auditor.on_renamer(self)

    def release_batch(self, core: int, count: int) -> None:
        """Return ``count`` physical registers at once (batched commit).

        Exactly equivalent to ``count`` :meth:`release` calls.
        """
        if count <= 0:
            return
        slot = self._slot(core)
        if self._held[core] < count or self._free[slot] + count > self._capacity[slot]:
            raise ProtocolError("renamer freelist overflow (double release)")
        self._free[slot] += count
        self._held[core] -= count
        if self.auditor is not None:
            self.auditor.on_renamer(self)

    def snapshot(self) -> tuple:
        """Capture freelist state for speculative execution."""
        return (
            list(self._free),
            list(self._held),
            self.allocations,
            self.failed_allocations,
        )

    def restore(self, snap: tuple) -> None:
        """Rewind to a :meth:`snapshot` (aborted speculative execution)."""
        free, held, allocations, failed = snap
        self._free = list(free)
        self._held = list(held)
        self.allocations = allocations
        self.failed_allocations = failed

    def in_flight(self, core: int) -> int:
        """Registers currently held by in-flight writes of ``core``."""
        return self._held[core]
