"""``ResourceTbl`` — the (4*C + 1)-register table of §4.2.1.

Per core it holds the four dedicated registers ``<OI>``, ``<decision>``,
``<VL>`` and ``<status>``; one shared ``<AL>`` register counts free lanes.
The table is the single source of truth the scalar cores, the dispatcher
and the lane manager all read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ProtocolError
from repro.isa.registers import OIValue, SystemRegister


@dataclass
class _CoreEntry:
    oi: OIValue = OIValue.ZERO
    decision: int = 0
    vl: int = 0
    status: int = 0


class ResourceTable:
    """Dedicated EM-SIMD registers for ``num_cores`` cores plus ``<AL>``."""

    def __init__(self, num_cores: int, total_lanes: int) -> None:
        self.num_cores = num_cores
        self.total_lanes = total_lanes
        self._cores: List[_CoreEntry] = [_CoreEntry() for _ in range(num_cores)]
        self._free_lanes = total_lanes

    def _entry(self, core: int) -> _CoreEntry:
        try:
            return self._cores[core]
        except IndexError as exc:
            raise ProtocolError(f"no such core {core}") from exc

    # --- reads (MRS) -----------------------------------------------------

    def read(self, core: int, sysreg: SystemRegister) -> object:
        """Read a dedicated register as core ``core`` sees it."""
        entry = self._entry(core)
        if sysreg is SystemRegister.OI:
            return entry.oi
        if sysreg is SystemRegister.DECISION:
            return entry.decision
        if sysreg is SystemRegister.VL:
            return entry.vl
        if sysreg is SystemRegister.STATUS:
            return entry.status
        if sysreg is SystemRegister.AL:
            return self._free_lanes
        raise ProtocolError(f"unknown system register {sysreg}")

    def oi(self, core: int) -> OIValue:
        return self._entry(core).oi

    def decision(self, core: int) -> int:
        return self._entry(core).decision

    def vl(self, core: int) -> int:
        return self._entry(core).vl

    def status(self, core: int) -> int:
        return self._entry(core).status

    @property
    def free_lanes(self) -> int:
        """The shared ``<AL>`` register."""
        return self._free_lanes

    # --- writes ----------------------------------------------------------

    def set_oi(self, core: int, value: OIValue) -> None:
        self._entry(core).oi = value

    def set_decision(self, core: int, lanes: int) -> None:
        if lanes < 0 or lanes > self.total_lanes:
            raise ProtocolError(f"decision {lanes} out of range")
        self._entry(core).decision = lanes

    def set_status(self, core: int, status: int) -> None:
        self._entry(core).status = status

    def apply_vl(self, core: int, lanes: int) -> bool:
        """Atomically retarget core ``core`` to ``lanes`` lanes.

        Implements the §4.2.2 update: succeeds iff
        ``core.<VL> + <AL> >= lanes``; on success ``<AL>`` absorbs the
        difference, ``<VL>`` becomes ``lanes`` and ``<status>`` is set to 1.
        On failure only ``<status>`` is cleared.  Returns success.
        """
        entry = self._entry(core)
        if lanes < 0 or lanes > self.total_lanes:
            raise ProtocolError(f"requested VL {lanes} out of range")
        available = entry.vl + self._free_lanes
        if lanes > available:
            entry.status = 0
            return False
        self._free_lanes = available - lanes
        entry.vl = lanes
        entry.status = 1
        return True

    def force_vl(self, core: int, lanes: int) -> None:
        """Set ``<VL>`` without touching ``<AL>`` (temporal-sharing setup).

        Under FTS every core sees the full lane pool simultaneously; the
        spatial-accounting invariant is deliberately suspended.
        """
        self._entry(core).vl = lanes
        self._entry(core).status = 1

    def running_phases(self) -> Dict[int, OIValue]:
        """Cores currently inside a phase (``<OI>`` != 0) -> their OI."""
        return {
            core: entry.oi
            for core, entry in enumerate(self._cores)
            if not entry.oi.is_phase_end
        }

    def check_invariant(self) -> None:
        """Spatial-mode invariant: allocated + free == total."""
        allocated = sum(entry.vl for entry in self._cores)
        if allocated + self._free_lanes != self.total_lanes:
            raise ProtocolError(
                f"lane accounting broken: {allocated} allocated + "
                f"{self._free_lanes} free != {self.total_lanes} total"
            )
