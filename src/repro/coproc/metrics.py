"""Measurement: SIMD utilisation, issue rates, stalls, lane timelines.

Definitions follow §2 of the paper:

* **SIMD utilisation** — ``sum_c busy_lanes(c) / (total_lanes * C)`` where a
  lane contributes one busy *pipe-slot* per compute uop dispatched on it and
  each ExeBU has ``pipes`` (= compute issue width) execution pipes;
* **SIMD issue rate** — compute instructions dispatched per core per cycle,
  reported per *phase*;
* **lane timeline** — the step function of lanes owned per core
  (Fig. 2(b)-(e) and Fig. 14(b));
* **stall attribution** — one reason per core per cycle when the oldest
  waiting instruction cannot dispatch (renaming stalls feed Fig. 13).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.timeline import BucketSeries, Timeline
from repro.isa.registers import OIValue


class StallReason(enum.Enum):
    """Why a core's oldest waiting vector instruction did not dispatch."""

    EMPTY = "empty"  # nothing in the pool (scalar side is the bottleneck)
    DEPENDENCY = "dependency"  # waiting for source operands / memory data
    RENAME = "rename"  # no free physical register (Fig. 13)
    ISSUE_BUDGET = "issue-budget"  # lane pipes / ld-st slots exhausted
    STORE_QUEUE = "store-queue"  # STQ full
    RECONFIG = "reconfig"  # EM-SIMD barrier / pipeline drain


@dataclass
class PhaseRecord:
    """One dynamic phase execution on one core."""

    core: int
    oi: OIValue
    start_cycle: int
    end_cycle: Optional[int] = None
    compute_uops: int = 0
    ldst_uops: int = 0
    vl_at_start: int = 0

    @property
    def duration(self) -> int:
        end = self.end_cycle if self.end_cycle is not None else self.start_cycle
        return max(0, end - self.start_cycle)

    @property
    def issue_rate(self) -> float:
        """SIMD compute instructions issued per cycle during this phase."""
        return self.compute_uops / self.duration if self.duration else 0.0


class Metrics:
    """Aggregates everything the evaluation section reports."""

    def __init__(
        self,
        num_cores: int,
        total_lanes: int,
        pipes_per_lane: int,
        bucket_cycles: int = 1000,
    ) -> None:
        self.num_cores = num_cores
        self.total_lanes = total_lanes
        self.pipes_per_lane = pipes_per_lane
        self.busy_pipe_slots = 0.0
        self.compute_uops = [0] * num_cores
        self.ldst_uops = [0] * num_cores
        self.flops = [0] * num_cores
        self.busy_lanes_series = [BucketSeries(bucket_cycles) for _ in range(num_cores)]
        self.lane_timeline = [Timeline() for _ in range(num_cores)]
        self.stalls: List[Dict[StallReason, int]] = [
            {reason: 0 for reason in StallReason} for _ in range(num_cores)
        ]
        self.phases: List[PhaseRecord] = []
        self._open_phase: List[Optional[PhaseRecord]] = [None] * num_cores
        self.core_done_cycle: List[Optional[int]] = [None] * num_cores
        self.reconfig_success = [0] * num_cores
        self.reconfig_failed = [0] * num_cores
        self.monitor_cycles = [0] * num_cores
        self.reconfig_cycles = [0] * num_cores
        #: Per-core sleep occupancy (1.0 per slept cycle), bucketed like the
        #: lane-usage series.  Written only by the tickless event-wheel run
        #: loop via :meth:`on_sleep_span`; not part of the result
        #: fingerprint (it describes the engine, not the machine).
        self.sleep_series = [BucketSeries(bucket_cycles) for _ in range(num_cores)]
        self.total_cycles = 0
        #: Per-cycle event journal used by the idle-cycle fast-forward and
        #: the tickless scheduler's sleep capture.  Sharded per core so
        #: settling a component's slept span reads only that core's entries
        #: (O(its events), not O(all cores' events)).  Epoch stamps make the
        #: per-cycle reset O(1): :meth:`begin_idle_cycle` bumps the epoch and
        #: a core's list is lazily cleared on its first append of the cycle.
        self._journal_armed = False
        self._journal_epoch = 0
        self._journal_stamp = [-1] * num_cores
        self._journal: List[List[Tuple[str, int, object]]] = [
            [] for _ in range(num_cores)
        ]
        self._journal_touched: List[int] = []
        #: Loop-replay template recorder (see :mod:`repro.core.replay`);
        #: when set, stall/overhead events are mirrored into the template.
        self.recorder = None

    # --- co-processor events --------------------------------------------

    def on_compute_dispatch(self, core: int, vl_lanes: int, flops: int, cycle: int) -> None:
        self.compute_uops[core] += 1
        self.flops[core] += flops
        self.busy_pipe_slots += vl_lanes
        self.busy_lanes_series[core].add(cycle, vl_lanes / self.pipes_per_lane)
        phase = self._open_phase[core]
        if phase is not None:
            phase.compute_uops += 1

    def on_ldst_dispatch(self, core: int, vl_lanes: int, nbytes: int, cycle: int) -> None:
        self.ldst_uops[core] += 1
        phase = self._open_phase[core]
        if phase is not None:
            phase.ldst_uops += 1

    # --- batched dispatch accounting (batch-execute backend) ---------------

    def on_compute_dispatch_batch(
        self, core: int, vls: List[int], total_flops: int, cycle: int
    ) -> None:
        """Aggregated :meth:`on_compute_dispatch` for one opcode group.

        Bit-exact relative to the per-entry calls: the uop/flop counters are
        integer sums, ``busy_pipe_slots`` accumulates integers into a float
        (exact below 2**53, order-independent), and each busy-lane sample is
        ``vl / pipes_per_lane`` — a dyadic rational when ``pipes_per_lane``
        is a power of two, so the bulk sum is exact too.  For a
        non-power-of-two pipe count the division is inexact and summation
        order would show, so fall back to per-entry series adds.
        """
        count = len(vls)
        if count == 0:
            return
        total_vl = sum(vls)
        self.compute_uops[core] += count
        self.flops[core] += total_flops
        self.busy_pipe_slots += total_vl
        pipes = self.pipes_per_lane
        series = self.busy_lanes_series[core]
        if pipes & (pipes - 1) == 0:
            series.add_bulk(cycle, total_vl / pipes, count)
        else:
            for vl in vls:
                series.add(cycle, vl / pipes)
        phase = self._open_phase[core]
        if phase is not None:
            phase.compute_uops += count

    def on_ldst_dispatch_batch(self, core: int, count: int) -> None:
        """Aggregated :meth:`on_ldst_dispatch` for one memory-op group."""
        if count <= 0:
            return
        self.ldst_uops[core] += count
        phase = self._open_phase[core]
        if phase is not None:
            phase.ldst_uops += count

    def on_stall(self, core: int, reason: StallReason, cycle: int) -> None:
        self.stalls[core][reason] += 1
        if self._journal_armed:
            self._journal_append(core, ("stall", core, reason))
        if self.recorder is not None:
            self.recorder.on_stall(core, reason)

    def on_lane_change(self, core: int, lanes: int, cycle: int) -> None:
        self.lane_timeline[core].record(cycle, lanes)

    def on_reconfig(self, core: int, success: bool) -> None:
        if success:
            self.reconfig_success[core] += 1
        else:
            self.reconfig_failed[core] += 1

    def on_phase_marker(self, core: int, oi: OIValue, cycle: int, vl: int) -> None:
        """A ``MSR <OI>`` executed: phase begins (oi != 0) or ends (oi == 0)."""
        open_phase = self._open_phase[core]
        if open_phase is not None:
            open_phase.end_cycle = cycle
            self._open_phase[core] = None
        if not oi.is_phase_end:
            record = PhaseRecord(core=core, oi=oi, start_cycle=cycle, vl_at_start=vl)
            self.phases.append(record)
            self._open_phase[core] = record

    def on_overhead_cycle(self, core: int, kind: str) -> None:
        """A scalar cycle spent purely in EM-SIMD instrumentation."""
        if kind == "monitor":
            self.monitor_cycles[core] += 1
        else:
            self.reconfig_cycles[core] += 1
        if self._journal_armed:
            self._journal_append(core, ("overhead", core, kind))
        if self.recorder is not None:
            self.recorder.on_overhead(core, kind)

    # --- idle-cycle fast-forward support ----------------------------------

    def _journal_append(self, core: int, event: Tuple[str, int, object]) -> None:
        """Record one armed-cycle event in ``core``'s journal shard."""
        if self._journal_stamp[core] != self._journal_epoch:
            self._journal_stamp[core] = self._journal_epoch
            self._journal[core] = [event]
            self._journal_touched.append(core)
        else:
            self._journal[core].append(event)

    def begin_idle_cycle(self) -> None:
        """Arm (and reset) the per-cycle event journal.

        The machine's fast-forward loop calls this before every
        :meth:`~repro.core.machine.Machine.step`.  During a zero-progress
        cycle the only metric mutations are stall attributions and EM-SIMD
        overhead cycles, both pure per-cycle counter increments; the journal
        captures exactly those so skipped idle cycles replay them verbatim.
        Resetting is an epoch bump — no per-core work for cores that stay
        silent this cycle.
        """
        self._journal_armed = True
        self._journal_epoch += 1
        self._journal_touched = []

    def core_idle_events(self, core: int) -> Tuple[Tuple[str, int, object], ...]:
        """The armed cycle's journal entries attributed to ``core``.

        Used by the tickless scheduler to capture, at the cycle a component
        goes to sleep, exactly the increments that component repeats every
        slept cycle.  O(that core's events): the journal is sharded per
        core, so no scan over other cores' entries.
        """
        if not self._journal_armed or self._journal_stamp[core] != self._journal_epoch:
            return ()
        return tuple(self._journal[core])

    def replay_idle_cycles(self, times: int) -> None:
        """Repeat the just-journalled idle cycle's increments ``times`` more
        times — the accounting for cycles elided by the fast-forward."""
        if times <= 0 or not self._journal_armed:
            return
        for core in self._journal_touched:
            for kind, _core, what in self._journal[core]:
                if kind == "stall":
                    self.stalls[core][what] += times
                elif what == "monitor":
                    self.monitor_cycles[core] += times
                else:
                    self.reconfig_cycles[core] += times

    def mirror_core_idle_events(
        self, events: Tuple[Tuple[str, int, object], ...]
    ) -> None:
        """Re-journal already-settled events into the armed cycle.

        A mid-cycle wake settles a sleeper's span through
        :meth:`replay_core_idle_cycles`; those same increments also belong
        to the *current* armed cycle's journal so a subsequent fast-forward
        or sleep capture sees them, exactly as if they had been recorded
        live by :meth:`on_stall`/:meth:`on_overhead_cycle`.
        """
        if not self._journal_armed:
            return
        for event in events:
            self._journal_append(event[1], event)

    def replay_core_idle_cycles(
        self, events: Tuple[Tuple[str, int, object], ...], times: int
    ) -> None:
        """Settle one component's slept span: repeat its captured per-cycle
        journal entries ``times`` times.

        The tickless scheduler captures, at the cycle a component goes to
        sleep, the journal entries attributed to that component (its stall
        reason and any EM-SIMD overhead); a frozen component repeats those
        exact increments every cycle, so the whole span lands as a handful
        of bulk adds when the component wakes.
        """
        if times <= 0:
            return
        for kind, core, what in events:
            if kind == "stall":
                self.stalls[core][what] += times
            elif what == "monitor":
                self.monitor_cycles[core] += times
            else:
                self.reconfig_cycles[core] += times

    def on_sleep_span(self, core: int, start_cycle: int, end_cycle: int) -> None:
        """Record that ``core``'s complex slept over ``[start, end)``."""
        self.sleep_series[core].add_range(start_cycle, end_cycle, 1.0)

    def snapshot(self) -> tuple:
        """Capture every counter the loop replay can touch.

        The replay never executes EM-SIMD instructions, so phase markers,
        lane timelines, reconfig counters and core-done records cannot
        change; open :class:`PhaseRecord` s *do* accumulate uop counts and
        are saved field-wise (records are shared by reference with
        :attr:`phases`).
        """
        return (
            self.busy_pipe_slots,
            list(self.compute_uops),
            list(self.ldst_uops),
            list(self.flops),
            [dict(s) for s in self.stalls],
            list(self.monitor_cycles),
            list(self.reconfig_cycles),
            [(s._sums.copy(), s._counts.copy()) for s in self.busy_lanes_series],
            [
                (p, p.compute_uops, p.ldst_uops)
                for p in self._open_phase
                if p is not None
            ],
        )

    def restore(self, snap: tuple) -> None:
        """Rewind to a :meth:`snapshot` (aborted loop replay)."""
        (
            self.busy_pipe_slots,
            compute_uops,
            ldst_uops,
            flops,
            stalls,
            monitor,
            reconfig,
            series,
            open_phases,
        ) = snap
        self.compute_uops = list(compute_uops)
        self.ldst_uops = list(ldst_uops)
        self.flops = list(flops)
        self.stalls = [dict(s) for s in stalls]
        self.monitor_cycles = list(monitor)
        self.reconfig_cycles = list(reconfig)
        for bucket, (sums, counts) in zip(self.busy_lanes_series, series):
            bucket._sums = list(sums)
            bucket._counts = list(counts)
        for record, compute, ldst in open_phases:
            record.compute_uops = compute
            record.ldst_uops = ldst

    def on_core_done(self, core: int, cycle: int) -> None:
        if self.core_done_cycle[core] is None:
            self.core_done_cycle[core] = cycle
            self.lane_timeline[core].record(cycle, 0)

    def close(self, cycle: int) -> None:
        """Finalise at end of simulation."""
        self.total_cycles = cycle
        for core in range(self.num_cores):
            phase = self._open_phase[core]
            if phase is not None:
                phase.end_cycle = cycle
                self._open_phase[core] = None
            if self.core_done_cycle[core] is None:
                self.core_done_cycle[core] = cycle

    # --- derived results ---------------------------------------------------

    def simd_utilization(self, end_cycle: Optional[int] = None) -> float:
        """Overall SIMD utilisation per the paper's §2 formula."""
        cycles = end_cycle if end_cycle is not None else self.total_cycles
        if cycles <= 0:
            return 0.0
        capacity = self.total_lanes * self.pipes_per_lane * cycles
        return min(1.0, self.busy_pipe_slots / capacity)

    def core_cycles(self, core: int) -> int:
        """Cycles from start until core ``core`` finished its workload."""
        done = self.core_done_cycle[core]
        return done if done is not None else self.total_cycles

    def phases_of(self, core: int) -> List[PhaseRecord]:
        return [p for p in self.phases if p.core == core]

    def stall_fraction(self, core: int, reason: StallReason) -> float:
        """Fraction of the core's active cycles stalled for ``reason``."""
        cycles = self.core_cycles(core)
        if cycles <= 0:
            return 0.0
        return min(1.0, self.stalls[core][reason] / cycles)

    def overhead_fraction(self, core: int) -> Dict[str, float]:
        """Fig. 15: instrumentation overhead relative to core runtime."""
        cycles = max(1, self.core_cycles(core))
        return {
            "monitor": self.monitor_cycles[core] / cycles,
            "reconfig": self.reconfig_cycles[core] / cycles,
        }
