"""Dynamic instruction records and the per-core Instruction Pool.

A :class:`DynamicInstruction` is one *executed instance* of a static
instruction: it snapshots everything the co-processor needs for timing
(vector length at transmit, effective address, dependence edges).
Functional values are computed by the scalar core at transmit time — legal
because each core transmits in program order (§4.1.1) — so the co-processor
is purely a timing machine.

The :class:`InstructionPool` is the per-core in-flight window (Fig. 5's
Instruction Pool + ROB): entries enter at transmit, dispatch out of order
once ready, and commit in order from the head.
"""

from __future__ import annotations

import enum
from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from math import ceil
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.isa.instructions import Instruction
from repro.isa.registers import SystemRegister


class EntryState(enum.Enum):
    WAITING = "waiting"
    ISSUED = "issued"
    DONE = "done"


class EntryKind(enum.Enum):
    COMPUTE = "compute"
    LOAD = "load"
    STORE = "store"
    EMSIMD = "emsimd"


@dataclass
class DynamicInstruction:
    """One in-flight instance of a transmitted vector/EM-SIMD instruction."""

    seq: int
    core: int
    kind: EntryKind
    instr: Instruction
    vl_lanes: int
    transmit_cycle: int
    deps: Tuple["DynamicInstruction", ...] = ()
    # Load/store fields.
    addr: int = 0
    nbytes: int = 0
    # Compute fields.
    flops: int = 0
    long_latency: bool = False
    writes_vreg: bool = False
    scalar_dst: Optional[str] = None
    # EM-SIMD fields.
    sysreg: Optional[SystemRegister] = None
    value: object = None
    # Progress.
    state: EntryState = EntryState.WAITING
    complete_cycle: float = 0.0
    holds_phys_reg: bool = False

    def ready(self, cycle: float) -> bool:
        """All source producers have completed by ``cycle``."""
        for dep in self.deps:
            if dep.state is EntryState.WAITING or dep.complete_cycle > cycle:
                return False
        return True

    def completed(self, cycle: float) -> bool:
        return self.state is not EntryState.WAITING and self.complete_cycle <= cycle

    @property
    def is_emsimd(self) -> bool:
        return self.kind is EntryKind.EMSIMD


class InstructionPool:
    """Per-core in-flight window with in-order commit.

    With ``indexed=True`` the pool additionally maintains an incrementally
    updated *ready set*: a wake-cycle heap of entries whose producers have
    all issued, promoted into an age-ordered ready list as their operands'
    completion cycles pass.  Dispatch then consumes
    :meth:`ready_dispatchable` instead of re-scanning the full window every
    cycle.  Any code path that mutates entries behind the index's back
    (speculative rollback, replay commits, snapshot restore) must call
    :meth:`mark_dirty`; the next indexed read rebuilds from scratch.
    """

    def __init__(self, core_id: int, capacity: int, indexed: bool = False) -> None:
        if capacity < 1:
            raise SimulationError("pool capacity must be positive")
        self.core_id = core_id
        self.capacity = capacity
        self._entries: List[DynamicInstruction] = []
        self.transmitted = 0
        self.committed = 0
        self._indexed = indexed
        self._dirty = True
        self._by_seq: Dict[int, DynamicInstruction] = {}
        self._dep_waiters: Dict[int, List[DynamicInstruction]] = {}
        self._pending_deps: Dict[int, int] = {}
        self._wake_at: Dict[int, int] = {}
        self._wake_heap: List[Tuple[int, int]] = []
        self._ready_seqs: List[int] = []
        self._waiting_seqs: List[int] = []
        self._emsimd_seqs: Deque[int] = deque()
        #: Optional ``(core_id, busy)`` callback fired on every 0↔non-zero
        #: occupancy transition (and idempotently on restore), so the
        #: co-processor can keep a busy-pool set instead of scanning every
        #: pool per cycle for CTS arbitration.
        self.on_occupancy = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, entry: DynamicInstruction) -> None:
        """Enqueue a freshly transmitted instruction (program order)."""
        if self.full:
            raise SimulationError(f"core {self.core_id}: pool overflow")
        self._entries.append(entry)
        self.transmitted += 1
        if self.on_occupancy is not None and len(self._entries) == 1:
            self.on_occupancy(self.core_id, True)
        if self._indexed and not self._dirty:
            self._by_seq[entry.seq] = entry
            if entry.is_emsimd:
                self._emsimd_seqs.append(entry.seq)
            elif entry.state is EntryState.WAITING:
                self._register(entry)

    def head(self) -> Optional[DynamicInstruction]:
        """The oldest in-flight instruction."""
        return self._entries[0] if self._entries else None

    def entries(self) -> List[DynamicInstruction]:
        """All in-flight entries, oldest first (read-only view for tools)."""
        return list(self._entries)

    def next_completion(self, cycle: float) -> Optional[float]:
        """Earliest future completion among already-issued entries.

        Next-event hook for the idle-cycle fast-forward: while no entry
        completes, a stalled window cannot commit, unblock dependants, free
        physical registers or drain for an EM-SIMD barrier.
        """
        nxt: Optional[float] = None
        for entry in self._entries:
            if entry.state is EntryState.WAITING:
                continue
            if entry.complete_cycle > cycle and (
                nxt is None or entry.complete_cycle < nxt
            ):
                nxt = entry.complete_cycle
        return nxt

    def dispatchable(self) -> List[DynamicInstruction]:
        """Entries eligible for dispatch this cycle, oldest first.

        EM-SIMD instructions serialise the window (§4.2.2 executes them in
        order on a drained pipeline), so scanning stops at the first one.
        """
        eligible: List[DynamicInstruction] = []
        for entry in self._entries:
            if entry.is_emsimd:
                break
            if entry.state is EntryState.WAITING:
                eligible.append(entry)
        return eligible

    def commit_ready(self, cycle: float, width: int) -> List[DynamicInstruction]:
        """Pop up to ``width`` completed entries from the head, in order."""
        committed: List[DynamicInstruction] = []
        while self._entries and len(committed) < width:
            head = self._entries[0]
            if head.state is EntryState.WAITING or head.complete_cycle > cycle:
                break
            committed.append(self._entries.pop(0))
        self.committed += len(committed)
        if committed and not self._entries and self.on_occupancy is not None:
            self.on_occupancy(self.core_id, False)
        if committed and self._indexed and not self._dirty:
            for entry in committed:
                self._by_seq.pop(entry.seq, None)
                self._dep_waiters.pop(entry.seq, None)
                if (
                    entry.is_emsimd
                    and self._emsimd_seqs
                    and self._emsimd_seqs[0] == entry.seq
                ):
                    self._emsimd_seqs.popleft()
        return committed

    def commit_ready_batched(self, cycle: float, width: int) -> List[DynamicInstruction]:
        """Batched :meth:`commit_ready`: one prefix scan and a single slice
        delete instead of up to ``width`` O(n) head pops.

        The batch-execute backend's commit kernel — result and index
        bookkeeping are identical to the per-entry loop (property-tested).
        """
        entries = self._entries
        count = 0
        limit = min(width, len(entries))
        while count < limit:
            head = entries[count]
            if head.state is EntryState.WAITING or head.complete_cycle > cycle:
                break
            count += 1
        if count == 0:
            return []
        committed = entries[:count]
        del entries[:count]
        self.committed += count
        if not entries and self.on_occupancy is not None:
            self.on_occupancy(self.core_id, False)
        if self._indexed and not self._dirty:
            for entry in committed:
                self._by_seq.pop(entry.seq, None)
                self._dep_waiters.pop(entry.seq, None)
                if (
                    entry.is_emsimd
                    and self._emsimd_seqs
                    and self._emsimd_seqs[0] == entry.seq
                ):
                    self._emsimd_seqs.popleft()
        return committed

    # ------------------------------------------------------------------
    # Ready-set index (incremental dispatch candidates)
    # ------------------------------------------------------------------

    def mark_dirty(self) -> None:
        """Invalidate the ready-set index after an out-of-band mutation."""
        self._dirty = True

    def pop_head_for_replay(self) -> DynamicInstruction:
        """Pop the head entry during a replayed commit (bypasses width/time
        checks — the template already proved them) and invalidate the index."""
        self._dirty = True
        self.committed += 1
        entry = self._entries.pop(0)
        if not self._entries and self.on_occupancy is not None:
            self.on_occupancy(self.core_id, False)
        return entry

    def on_issue(self, entry: DynamicInstruction, cycle: int) -> bool:
        """Notify the index that ``entry`` moved WAITING→ISSUED with its
        completion cycle assigned, waking any dependants it was blocking.

        Returns True when a dependant became ready *at or before*
        ``cycle`` — a zero-latency completion (store-forwarded load, L0
        hit) enables younger entries within the same dispatch scan, so the
        caller must refresh its candidate list mid-scan.
        """
        if not self._indexed or self._dirty:
            return False
        waiting = self._waiting_seqs
        pos = bisect_left(waiting, entry.seq)
        if pos < len(waiting) and waiting[pos] == entry.seq:
            waiting.pop(pos)
        waiters = self._dep_waiters.pop(entry.seq, None)
        if not waiters:
            return False
        done = ceil(entry.complete_cycle)
        pending = self._pending_deps
        wake_at = self._wake_at
        woke_now = False
        for waiter in waiters:
            seq = waiter.seq
            left = pending.get(seq)
            if left is None:
                continue
            if done > wake_at[seq]:
                wake_at[seq] = done
            left -= 1
            pending[seq] = left
            if left == 0:
                heappush(self._wake_heap, (wake_at[seq], seq))
                if wake_at[seq] <= cycle:
                    woke_now = True
        return woke_now

    def ready_dispatchable(self, cycle: int) -> List[DynamicInstruction]:
        """Dispatch candidates this cycle, oldest first, via the ready index.

        Invariant (property-tested): equals
        ``[e for e in self.dispatchable() if e.ready(cycle)]``.
        """
        if self._dirty:
            self._rebuild()
        heap = self._wake_heap
        ready = self._ready_seqs
        while heap and heap[0][0] <= cycle:
            seq = heappop(heap)[1]
            lo, hi = 0, len(ready)
            while lo < hi:
                mid = (lo + hi) // 2
                if ready[mid] < seq:
                    lo = mid + 1
                else:
                    hi = mid
            ready.insert(lo, seq)
        barrier = self._emsimd_seqs[0] if self._emsimd_seqs else None
        out: List[DynamicInstruction] = []
        stale: List[int] = []
        for seq in ready:
            if barrier is not None and seq > barrier:
                break
            entry = self._by_seq.get(seq)
            if entry is None or entry.state is not EntryState.WAITING:
                stale.append(seq)
                continue
            if not entry.ready(cycle):
                # A producer was rewound without a dirty mark; rebuild from
                # scratch rather than trust the stale wake cycle.
                self._dirty = True
                return self.ready_dispatchable(cycle)
            out.append(entry)
        for seq in stale:
            ready.remove(seq)
        return out

    def oldest_waiting_seq(self) -> Optional[int]:
        """Sequence number of the oldest dispatch-eligible WAITING entry.

        ``None`` iff :meth:`dispatchable` is empty — i.e. no non-EM-SIMD
        entry before the EM-SIMD barrier is still WAITING.  This gives the
        zero-dispatch path the reference scan's stall attribution anchor
        (whose reason leads the age-order scan) without walking the window.
        """
        if self._dirty:
            self._rebuild()
        barrier = self._emsimd_seqs[0] if self._emsimd_seqs else None
        waiting = self._waiting_seqs
        while waiting:
            seq = waiting[0]
            if barrier is not None and seq > barrier:
                return None
            entry = self._by_seq.get(seq)
            if entry is None or entry.state is not EntryState.WAITING:
                waiting.pop(0)  # stale: mutated behind the index's back
                continue
            return seq
        return None

    def _register(self, entry: DynamicInstruction) -> None:
        insort(self._waiting_seqs, entry.seq)
        pending = 0
        wake = 0
        for dep in entry.deps:
            if dep.state is EntryState.WAITING:
                pending += 1
                self._dep_waiters.setdefault(dep.seq, []).append(entry)
            else:
                done = ceil(dep.complete_cycle)
                if done > wake:
                    wake = done
        self._pending_deps[entry.seq] = pending
        self._wake_at[entry.seq] = wake
        if pending == 0:
            heappush(self._wake_heap, (wake, entry.seq))

    def _rebuild(self) -> None:
        self._by_seq = {e.seq: e for e in self._entries}
        self._dep_waiters = {}
        self._pending_deps = {}
        self._wake_at = {}
        self._wake_heap = []
        self._ready_seqs = []
        self._waiting_seqs = []
        self._emsimd_seqs = deque(e.seq for e in self._entries if e.is_emsimd)
        for entry in self._entries:
            if not entry.is_emsimd and entry.state is EntryState.WAITING:
                self._register(entry)
        self._dirty = False

    def snapshot(self) -> tuple:
        """Capture window state for speculative execution.

        Saves the entry list plus the three mutable progress fields of every
        entry currently in flight; entries pushed *after* the snapshot are
        dropped wholesale on restore, entries already in flight get their
        progress rewound.
        """
        return (
            list(self._entries),
            [(e.state, e.complete_cycle, e.holds_phys_reg) for e in self._entries],
            self.transmitted,
            self.committed,
        )

    def restore(self, snap: tuple) -> None:
        """Rewind to a :meth:`snapshot` (aborted speculative execution)."""
        entries, fields, transmitted, committed = snap
        self._entries = list(entries)
        if self.on_occupancy is not None:
            # Idempotent: the busy-set callback adds/discards, so simply
            # reasserting the restored occupancy is always correct.
            self.on_occupancy(self.core_id, bool(self._entries))
        for entry, (state, complete_cycle, holds) in zip(self._entries, fields):
            entry.state = state
            entry.complete_cycle = complete_cycle
            entry.holds_phys_reg = holds
        self.transmitted = transmitted
        self.committed = committed
        self._dirty = True

    def pending_emsimd(self) -> int:
        """Number of EM-SIMD instructions still in flight (for MRS sync)."""
        if self._indexed and not self._dirty:
            return len(self._emsimd_seqs)
        return sum(1 for e in self._entries if e.is_emsimd)

    def drained_for_head(self) -> bool:
        """True when the head is the *only* in-flight instruction or older
        ones have committed — i.e. the SIMD pipeline is drained up to it."""
        if not self._entries:
            return True
        head = self._entries[0]
        return head.state is EntryState.WAITING and all(
            e is head or e.state is not EntryState.ISSUED for e in self._entries[:1]
        )
