"""Dynamic instruction records and the per-core Instruction Pool.

A :class:`DynamicInstruction` is one *executed instance* of a static
instruction: it snapshots everything the co-processor needs for timing
(vector length at transmit, effective address, dependence edges).
Functional values are computed by the scalar core at transmit time — legal
because each core transmits in program order (§4.1.1) — so the co-processor
is purely a timing machine.

The :class:`InstructionPool` is the per-core in-flight window (Fig. 5's
Instruction Pool + ROB): entries enter at transmit, dispatch out of order
once ready, and commit in order from the head.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.isa.instructions import Instruction
from repro.isa.registers import SystemRegister


class EntryState(enum.Enum):
    WAITING = "waiting"
    ISSUED = "issued"
    DONE = "done"


class EntryKind(enum.Enum):
    COMPUTE = "compute"
    LOAD = "load"
    STORE = "store"
    EMSIMD = "emsimd"


@dataclass
class DynamicInstruction:
    """One in-flight instance of a transmitted vector/EM-SIMD instruction."""

    seq: int
    core: int
    kind: EntryKind
    instr: Instruction
    vl_lanes: int
    transmit_cycle: int
    deps: Tuple["DynamicInstruction", ...] = ()
    # Load/store fields.
    addr: int = 0
    nbytes: int = 0
    # Compute fields.
    flops: int = 0
    long_latency: bool = False
    writes_vreg: bool = False
    scalar_dst: Optional[str] = None
    # EM-SIMD fields.
    sysreg: Optional[SystemRegister] = None
    value: object = None
    # Progress.
    state: EntryState = EntryState.WAITING
    complete_cycle: float = 0.0
    holds_phys_reg: bool = False

    def ready(self, cycle: float) -> bool:
        """All source producers have completed by ``cycle``."""
        for dep in self.deps:
            if dep.state is EntryState.WAITING or dep.complete_cycle > cycle:
                return False
        return True

    def completed(self, cycle: float) -> bool:
        return self.state is not EntryState.WAITING and self.complete_cycle <= cycle

    @property
    def is_emsimd(self) -> bool:
        return self.kind is EntryKind.EMSIMD


class InstructionPool:
    """Per-core in-flight window with in-order commit."""

    def __init__(self, core_id: int, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError("pool capacity must be positive")
        self.core_id = core_id
        self.capacity = capacity
        self._entries: List[DynamicInstruction] = []
        self.transmitted = 0
        self.committed = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, entry: DynamicInstruction) -> None:
        """Enqueue a freshly transmitted instruction (program order)."""
        if self.full:
            raise SimulationError(f"core {self.core_id}: pool overflow")
        self._entries.append(entry)
        self.transmitted += 1

    def head(self) -> Optional[DynamicInstruction]:
        """The oldest in-flight instruction."""
        return self._entries[0] if self._entries else None

    def entries(self) -> List[DynamicInstruction]:
        """All in-flight entries, oldest first (read-only view for tools)."""
        return list(self._entries)

    def next_completion(self, cycle: float) -> Optional[float]:
        """Earliest future completion among already-issued entries.

        Next-event hook for the idle-cycle fast-forward: while no entry
        completes, a stalled window cannot commit, unblock dependants, free
        physical registers or drain for an EM-SIMD barrier.
        """
        nxt: Optional[float] = None
        for entry in self._entries:
            if entry.state is EntryState.WAITING:
                continue
            if entry.complete_cycle > cycle and (
                nxt is None or entry.complete_cycle < nxt
            ):
                nxt = entry.complete_cycle
        return nxt

    def dispatchable(self) -> List[DynamicInstruction]:
        """Entries eligible for dispatch this cycle, oldest first.

        EM-SIMD instructions serialise the window (§4.2.2 executes them in
        order on a drained pipeline), so scanning stops at the first one.
        """
        eligible: List[DynamicInstruction] = []
        for entry in self._entries:
            if entry.is_emsimd:
                break
            if entry.state is EntryState.WAITING:
                eligible.append(entry)
        return eligible

    def commit_ready(self, cycle: float, width: int) -> List[DynamicInstruction]:
        """Pop up to ``width`` completed entries from the head, in order."""
        committed: List[DynamicInstruction] = []
        while self._entries and len(committed) < width:
            head = self._entries[0]
            if head.state is EntryState.WAITING or head.complete_cycle > cycle:
                break
            committed.append(self._entries.pop(0))
        self.committed += len(committed)
        return committed

    def snapshot(self) -> tuple:
        """Capture window state for speculative execution.

        Saves the entry list plus the three mutable progress fields of every
        entry currently in flight; entries pushed *after* the snapshot are
        dropped wholesale on restore, entries already in flight get their
        progress rewound.
        """
        return (
            list(self._entries),
            [(e.state, e.complete_cycle, e.holds_phys_reg) for e in self._entries],
            self.transmitted,
            self.committed,
        )

    def restore(self, snap: tuple) -> None:
        """Rewind to a :meth:`snapshot` (aborted speculative execution)."""
        entries, fields, transmitted, committed = snap
        self._entries = list(entries)
        for entry, (state, complete_cycle, holds) in zip(self._entries, fields):
            entry.state = state
            entry.complete_cycle = complete_cycle
            entry.holds_phys_reg = holds
        self.transmitted = transmitted
        self.committed = committed

    def pending_emsimd(self) -> int:
        """Number of EM-SIMD instructions still in flight (for MRS sync)."""
        return sum(1 for e in self._entries if e.is_emsimd)

    def drained_for_head(self) -> bool:
        """True when the head is the *only* in-flight instruction or older
        ones have committed — i.e. the SIMD pipeline is drained up to it."""
        if not self._entries:
            return True
        head = self._entries[0]
        return head.state is EntryState.WAITING and all(
            e is head or e.state is not EntryState.ISSUED for e in self._entries[:1]
        )
