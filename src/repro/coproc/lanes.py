"""ExeBUs and the two configuration tables (``Dispatch.Cfg``/``RegFile.Cfg``).

Each :class:`ExeBU` is a homogeneous 128-bit execution unit hard-wired to
one RegBlk; both are always assigned to the same core together (§4.2.1), so
one :class:`LaneTable` models both configuration tables: entry *i* records
the owner of ExeBU *i* and of RegBlk *i*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.errors import ProtocolError

#: Owner value for an unassigned lane.
FREE: Optional[int] = None


@dataclass
class ExeBU:
    """One 128-bit basic execution unit plus its register block."""

    index: int
    owner: Optional[int] = FREE
    uops_executed: int = 0

    @property
    def is_free(self) -> bool:
        return self.owner is FREE


class LaneTable:
    """Ownership of the N ExeBU/RegBlk pairs (Dispatch.Cfg + RegFile.Cfg)."""

    def __init__(self, total_lanes: int) -> None:
        if total_lanes < 1:
            raise ProtocolError("need at least one lane")
        self.total_lanes = total_lanes
        self._lanes: List[ExeBU] = [ExeBU(index=i) for i in range(total_lanes)]
        self.reconfigurations = 0

    def owner_of(self, lane: int) -> Optional[int]:
        """The core owning lane ``lane`` (None when free)."""
        return self._lanes[lane].owner

    def lanes_of(self, core: int) -> List[int]:
        """Indices of the lanes currently owned by ``core``."""
        return [bu.index for bu in self._lanes if bu.owner == core]

    def owned_count(self, core: int) -> int:
        """Number of lanes owned by ``core``."""
        return sum(1 for bu in self._lanes if bu.owner == core)

    @property
    def free_count(self) -> int:
        """Number of unassigned lanes."""
        return sum(1 for bu in self._lanes if bu.is_free)

    def reconfigure(self, core: int, lanes: int) -> None:
        """Give ``core`` exactly ``lanes`` lanes (§4.2.2).

        Frees every ExeBU/RegBlk previously owned by ``core``, then claims
        ``lanes`` free ones.  Data in freed RegBlks is *not* preserved — the
        compiler guarantees it is dead (§4.2.2).
        """
        if lanes < 0:
            raise ProtocolError("cannot assign a negative lane count")
        for bu in self._lanes:
            if bu.owner == core:
                bu.owner = FREE
        if lanes > self.free_count:
            raise ProtocolError(
                f"core {core} requested {lanes} lanes but only "
                f"{self.free_count} are free"
            )
        assigned = 0
        for bu in self._lanes:
            if assigned == lanes:
                break
            if bu.is_free:
                bu.owner = core
                assigned += 1
        self.reconfigurations += 1

    def record_uops(self, core: int, uops: int) -> None:
        """Attribute ``uops`` executed micro-ops to each lane of ``core``."""
        for bu in self._lanes:
            if bu.owner == core:
                bu.uops_executed += uops

    def ownership_vector(self) -> Sequence[Optional[int]]:
        """Owner of each lane, by lane index (for tests/visualisation)."""
        return tuple(bu.owner for bu in self._lanes)
