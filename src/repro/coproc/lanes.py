"""ExeBUs and the two configuration tables (``Dispatch.Cfg``/``RegFile.Cfg``).

Each :class:`ExeBU` is a homogeneous 128-bit execution unit hard-wired to
one RegBlk; both are always assigned to the same core together (§4.2.1), so
one :class:`LaneTable` models both configuration tables: entry *i* records
the owner of ExeBU *i* and of RegBlk *i*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ProtocolError

#: Owner value for an unassigned lane.
FREE: Optional[int] = None


@dataclass
class ExeBU:
    """One 128-bit basic execution unit plus its register block."""

    index: int
    owner: Optional[int] = FREE
    uops_executed: int = 0

    @property
    def is_free(self) -> bool:
        return self.owner is FREE


class LaneTable:
    """Ownership of the N ExeBU/RegBlk pairs (Dispatch.Cfg + RegFile.Cfg).

    Ownership is kept both on the :class:`ExeBU` records (the ground
    truth, used by :meth:`owner_of`/:meth:`ownership_vector`) and in two
    incremental indexes — a sorted free list and a per-core lane-index
    map — so the per-dispatch queries (:meth:`owned_count`,
    :meth:`lanes_of`, :attr:`free_count`) cost O(1)/O(owned) instead of
    scanning all N lanes.  A property test pins the indexes against the
    scan answers across random reconfiguration sequences.
    """

    def __init__(self, total_lanes: int) -> None:
        if total_lanes < 1:
            raise ProtocolError("need at least one lane")
        self.total_lanes = total_lanes
        self._lanes: List[ExeBU] = [ExeBU(index=i) for i in range(total_lanes)]
        #: Unassigned lane indices, ascending (claims take the lowest).
        self._free: List[int] = list(range(total_lanes))
        #: core -> ascending indices of the lanes it owns.
        self._owned: Dict[int, List[int]] = {}
        #: core -> owned-lane count, maintained incrementally alongside
        #: ``_owned`` (sharded bookkeeping: O(1) per-owner census without
        #: touching the index lists; pinned against :meth:`scan_counters`
        #: by a property test).
        self._owner_counts: Dict[int, int] = {}
        self.reconfigurations = 0
        #: Runtime invariant auditor (``REPRO_AUDIT``); when set, every
        #: reconfiguration re-checks lane conservation and index agreement.
        self.auditor = None

    def owner_of(self, lane: int) -> Optional[int]:
        """The core owning lane ``lane`` (None when free)."""
        return self._lanes[lane].owner

    def lanes_of(self, core: int) -> List[int]:
        """Indices of the lanes currently owned by ``core``."""
        return list(self._owned.get(core, ()))

    def owned_count(self, core: int) -> int:
        """Number of lanes owned by ``core``."""
        return len(self._owned.get(core, ()))

    @property
    def free_count(self) -> int:
        """Number of unassigned lanes."""
        return len(self._free)

    def reconfigure(self, core: int, lanes: int) -> None:
        """Give ``core`` exactly ``lanes`` lanes (§4.2.2).

        Frees every ExeBU/RegBlk previously owned by ``core``, then claims
        the ``lanes`` lowest-indexed free ones.  Data in freed RegBlks is
        *not* preserved — the compiler guarantees it is dead (§4.2.2).
        """
        if lanes < 0:
            raise ProtocolError("cannot assign a negative lane count")
        released = self._owned.pop(core, [])
        self._owner_counts.pop(core, None)
        for index in released:
            self._lanes[index].owner = FREE
        if released:
            self._free = self._merge_sorted(self._free, released)
        if lanes > len(self._free):
            raise ProtocolError(
                f"core {core} requested {lanes} lanes but only "
                f"{len(self._free)} are free"
            )
        claimed = self._free[:lanes]
        del self._free[:lanes]
        for index in claimed:
            self._lanes[index].owner = core
        if claimed:
            self._owned[core] = claimed
            self._owner_counts[core] = len(claimed)
        self.reconfigurations += 1
        if self.auditor is not None:
            self.auditor.on_lane_table(self)

    def counters(self) -> Dict[Optional[int], int]:
        """The incrementally maintained per-owner census.

        Maps each owning core to its lane count, with :data:`FREE` (None)
        mapping to the free-lane count.  O(owners) — never scans the lanes.
        """
        census: Dict[Optional[int], int] = dict(self._owner_counts)
        census[FREE] = len(self._free)
        return census

    def scan_counters(self) -> Dict[Optional[int], int]:
        """Per-owner census recomputed from the per-lane ground truth.

        The from-scratch O(total_lanes) scan the property tests pin
        :meth:`counters` against.
        """
        census: Dict[Optional[int], int] = {FREE: 0}
        for bu in self._lanes:
            census[bu.owner] = census.get(bu.owner, 0) + 1
        if census[FREE] == 0 and self._free:  # pragma: no cover - defensive
            raise ProtocolError("free list disagrees with lane owners")
        return census

    @staticmethod
    def _merge_sorted(left: List[int], right: List[int]) -> List[int]:
        """Merge two ascending, disjoint index lists in O(len(left+right)).

        Replaces the ``sorted(left + right)`` on every release — under CTS
        the whole lane pool changes hands each quantum, so the merge is on
        the reconfiguration hot path.
        """
        merged: List[int] = []
        i = j = 0
        nl, nr = len(left), len(right)
        while i < nl and j < nr:
            if left[i] < right[j]:
                merged.append(left[i])
                i += 1
            else:
                merged.append(right[j])
                j += 1
        merged.extend(left[i:])
        merged.extend(right[j:])
        return merged

    def active_mask(self, core: int) -> List[bool]:
        """Per-lane ownership mask for ``core`` (True = lane active)."""
        mask = [False] * self.total_lanes
        for index in self._owned.get(core, ()):
            mask[index] = True
        return mask

    def record_uops(self, core: int, uops: int) -> None:
        """Attribute ``uops`` executed micro-ops to each lane of ``core``."""
        for index in self._owned.get(core, ()):
            self._lanes[index].uops_executed += uops

    def record_uops_batched(self, core: int, uops: int) -> None:
        """Batched :meth:`record_uops`: one masked bulk update over all lanes.

        The batch-execute backend's lane-attribution kernel.  Exactly
        equivalent to the scalar per-lane loop — in particular it must not
        touch lanes outside the core's current ownership mask, even right
        after a mid-phase reclaim handed those lanes to another core.
        """
        owned = self._owned.get(core)
        if not owned or uops == 0:
            return
        lanes = self._lanes
        for index in owned:
            lanes[index].uops_executed += uops

    def ownership_vector(self) -> Sequence[Optional[int]]:
        """Owner of each lane, by lane index (for tests/visualisation)."""
        return tuple(bu.owner for bu in self._lanes)
