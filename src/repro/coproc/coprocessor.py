"""The co-processor engine: per-cycle dispatch, execute, commit (§4.2).

The engine is a pure *timing* machine — functional values were already
computed by the scalar cores at transmit time (legal because transmission
is in program order per core).  Each cycle it:

1. commits completed instructions in order from each pool head, returning
   physical registers to the renamer;
2. executes at most one EM-SIMD instruction per core at its pool head —
   ``MSR <VL>`` only once the core's SIMD pipeline is drained (which the
   in-order commit guarantees when the MSR reaches the head);
3. dispatches ready SVE uops out of order within each pool window, bounded
   by the compute/ld-st issue budgets, the renamer freelist, the store
   queue and — under temporal sharing — a *global* budget shared by all
   cores (one full-width uop occupies every lane pipe).
"""

from __future__ import annotations

import enum
import math
from bisect import bisect_left
from typing import Dict, List, Optional, Set

from repro.common.config import MachineConfig
from repro.common.errors import SimulationError
from repro.coproc.batch_exec import BatchExecutor
from repro.coproc.dynamic import DynamicInstruction, EntryKind, EntryState, InstructionPool
from repro.coproc.lanes import LaneTable
from repro.coproc.lsu import LoadStoreUnit
from repro.coproc.metrics import Metrics, StallReason
from repro.coproc.renamer import Renamer
from repro.coproc.resource_table import ResourceTable
from repro.isa.registers import OIValue, SystemRegister
from repro.memory.hierarchy import VectorMemorySystem

#: Instructions committed per core per cycle.
COMMIT_WIDTH = 8

#: Latency of a long-latency vector op (div/sqrt), in cycles.
LONG_LATENCY = 12


class SharingMode(enum.Enum):
    """How cores share the lane pool."""

    SPATIAL = "spatial"  # Private / VLS / Occamy: partitioned ownership
    TEMPORAL = "temporal"  # FTS: fine-grained full-width time multiplexing
    #: CTS (Beldianu & Ziavras's coarse-grained alternative): one core owns
    #: the whole co-processor per quantum; switching pays a drain/restore
    #: penalty but there is no shared-VRF renaming pressure.
    COARSE_TEMPORAL = "coarse-temporal"


class CoProcessor:
    """The shared SIMD co-processor serving ``config.num_cores`` cores."""

    def __init__(
        self,
        config: MachineConfig,
        mode: SharingMode,
        metrics: Metrics,
        lane_manager: "LaneManagerProtocol",
        indexed: bool = False,
        batch_exec: bool = False,
        lane_shards: Optional[bool] = None,
    ) -> None:
        from repro.core.partition import default_lane_shards

        self.config = config
        self.mode = mode
        self.metrics = metrics
        self.lane_manager = lane_manager
        num_cores = config.num_cores
        total = config.vector.total_lanes
        self.resource_table = ResourceTable(num_cores, total)
        self.lane_table = LaneTable(total)
        self.renamer = Renamer(
            config.vector, num_cores, shared=(mode is SharingMode.TEMPORAL)
        )
        self.memory = VectorMemorySystem(config.memory)
        self.lsus = [
            LoadStoreUnit(c, self.memory, config.core.store_queue_entries)
            for c in range(num_cores)
        ]
        #: When ``indexed`` (the event-wheel engine), dispatch consumes each
        #: pool's incrementally maintained ready set instead of re-scanning
        #: the whole window every cycle.  The batch-execute backend plans
        #: from the same ready set, so it forces the index on too.
        self._indexed = indexed or batch_exec
        self.pools = [
            InstructionPool(
                c, config.core.instruction_pool_entries, indexed=self._indexed
            )
            for c in range(num_cores)
        ]
        #: Opcode-grouped dispatch/commit backend (``REPRO_NO_BATCH_EXEC``).
        self._batch = BatchExecutor(self) if batch_exec else None
        #: Sharded-bookkeeping switch (``REPRO_NO_LANE_SHARDS``), latched at
        #: construction like the other engine axes.  When on, the pools push
        #: 0↔non-zero occupancy transitions into :attr:`_busy_pools` so CTS
        #: arbitration asks "who has work" in O(busy cores) instead of
        #: scanning every pool each cycle.
        self._lane_shards = (
            default_lane_shards() if lane_shards is None else lane_shards
        )
        self._busy_pools: Optional[Set[int]] = set() if self._lane_shards else None
        if self._busy_pools is not None:
            busy_pools = self._busy_pools

            def _on_occupancy(core: int, busy: bool) -> None:
                if busy:
                    busy_pools.add(core)
                else:
                    busy_pools.discard(core)

            for pool in self.pools:
                pool.on_occupancy = _on_occupancy
        self.core_active = [True] * num_cores
        self._seq = 0
        self._rotate = 0
        #: Loop-replay template recorder (see :mod:`repro.core.replay`);
        #: when set, dispatch/commit/EM-SIMD events are mirrored into it.
        self.recorder = None
        #: Tickless-scheduler callback: invoked with the current cycle when a
        #: CTS ownership switch fires while components are asleep, so the
        #: machine can settle and wake them *before* the dispatch phase runs
        #: (the switch changes sleepers' per-cycle stall attribution).
        self.wake_all_hook = None
        # Coarse-temporal (CTS) arbitration state.
        self._cts_owner = 0
        self._cts_until = config.vector.cts_quantum
        self._cts_blocked_until = 0
        self.cts_switches = 0

    # --- scalar-core-facing interface -------------------------------------

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def can_transmit(self, core: int) -> bool:
        """True when core ``core`` may transmit one more instruction."""
        return not self.pools[core].full

    def transmit(self, entry: DynamicInstruction) -> None:
        """Enqueue a retired vector/EM-SIMD instruction (program order)."""
        self.pools[entry.core].push(entry)

    def pending_emsimd(self, core: int) -> int:
        """In-flight EM-SIMD instructions of ``core`` (MRS sync, §4.1.1)."""
        return self.pools[core].pending_emsimd()

    def read_sysreg(self, core: int, sysreg: SystemRegister) -> object:
        """Architectural read of a dedicated register (MRS)."""
        return self.resource_table.read(core, sysreg)

    def configured_vl(self, core: int) -> int:
        """Current ``<VL>`` of ``core`` in lanes."""
        return self.resource_table.vl(core)

    def drained(self, core: int) -> bool:
        """True when core ``core`` has no in-flight vector instructions."""
        return self.pools[core].empty

    def set_core_active(self, core: int, active: bool) -> None:
        self.core_active[core] = active

    # --- idle-cycle fast-forward hooks -------------------------------------

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle at which the engine's state can change.

        Valid only immediately after a zero-progress :meth:`step`: with
        nothing dispatched, executed or committed this cycle, the engine is
        frozen until (a) an issued instruction completes, (b) a queued store
        retires from an STQ, or (c) — under coarse temporal sharing — the
        ownership quantum expires or the hand-over drain ends.  Returns the
        first integer cycle at which any of those occur, or ``None`` when no
        event is pending (the machine is deadlocked).
        """
        nxt = math.inf
        for pool in self.pools:
            completion = pool.next_completion(cycle)
            if completion is not None and completion < nxt:
                nxt = completion
        for lsu in self.lsus:
            retire = lsu.next_store_retire(cycle)
            if retire is not None and retire < nxt:
                nxt = retire
        if self.mode is SharingMode.COARSE_TEMPORAL:
            for boundary in (self._cts_blocked_until, self._cts_until):
                if cycle < boundary < nxt:
                    nxt = boundary
        if nxt is math.inf:
            return None
        return int(math.ceil(nxt))

    def skip_idle_cycles(self, cycles: int) -> None:
        """Account for ``cycles`` elided zero-progress cycles.

        The only engine state the per-cycle loop mutates during an idle
        cycle is the dispatch-fairness rotation (advanced once per
        :meth:`_dispatch` in the spatial/temporal modes); replay it so a
        fast-forwarded run stays bit-identical to the cycle-by-cycle one.
        """
        if cycles <= 0:
            return
        if self.mode is not SharingMode.COARSE_TEMPORAL:
            self._rotate = (self._rotate + cycles) % self.config.num_cores

    # --- per-cycle engine ---------------------------------------------------

    def step(
        self,
        cycle: int,
        awake: Optional[List[bool]] = None,
        core_events: Optional[List[int]] = None,
        active: Optional[List[int]] = None,
    ) -> int:
        """Advance one cycle; returns the number of events processed.

        ``awake`` (tickless engine only) masks out sleeping core complexes:
        their commit/EM-SIMD/dispatch phases are skipped entirely — their
        per-cycle metric events are settled in bulk when they wake.
        ``core_events`` when provided accumulates per-core event counts so
        the scheduler can make per-component sleep decisions.  ``active``
        (hierarchical-wheel engine) is the machine's sorted awake-live core
        list: the per-core phases walk it instead of every core slot, so a
        cycle costs O(components with work).  Cores absent from it are
        either asleep (the ``awake`` mask skips them anyway) or done/absent
        (provably no-ops in every phase: empty pool, inactive core flag,
        lazily-drained LSU).
        """
        events = 0
        recorder = self.recorder
        cores = active if active is not None else range(self.config.num_cores)
        for core in cores:
            if awake is not None and not awake[core]:
                continue
            self.lsus[core].on_cycle(cycle)
            if self._batch is not None and recorder is None:
                committed = self._batch.commit_core(core, cycle)
            else:
                committed = 0
                for entry in self.pools[core].commit_ready(cycle, COMMIT_WIDTH):
                    if entry.holds_phys_reg:
                        self.renamer.release(core)
                    if recorder is not None:
                        recorder.on_commit(core, entry)
                    committed += 1
            if core_events is not None:
                core_events[core] += committed
            events += committed
        events += self._execute_emsimd(cycle, awake, core_events, active)
        events += self._dispatch(cycle, awake, core_events, active)
        return events

    def _execute_emsimd(
        self,
        cycle: int,
        awake: Optional[List[bool]] = None,
        core_events: Optional[List[int]] = None,
        active: Optional[List[int]] = None,
    ) -> int:
        """Process at most one head-of-pool EM-SIMD instruction per core."""
        events = 0
        cores = active if active is not None else range(self.config.num_cores)
        for core in cores:
            if awake is not None and not awake[core]:
                continue
            pool = self.pools[core]
            head = pool.head()
            if head is None or not head.is_emsimd or head.state is not EntryState.WAITING:
                continue
            # The head being EM-SIMD means every older instruction committed:
            # the core's SIMD pipeline is drained (in-order commit).
            if head.sysreg is SystemRegister.OI:
                self._apply_oi(core, head, cycle)
            elif head.sysreg is SystemRegister.VL:
                self._apply_vl(core, head, cycle)
            else:
                raise SimulationError(f"MSR to read-only register {head.sysreg}")
            head.state = EntryState.DONE
            head.complete_cycle = cycle + 1
            if self.recorder is not None:
                self.recorder.on_emsimd()
            if core_events is not None:
                core_events[core] += 1
            events += 1
        return events

    def _apply_oi(self, core: int, entry: DynamicInstruction, cycle: int) -> None:
        oi = entry.value
        if not isinstance(oi, OIValue):
            raise SimulationError(f"MSR <OI> needs an OIValue, got {oi!r}")
        self.resource_table.set_oi(core, oi)
        self.metrics.on_phase_marker(core, oi, cycle, self.resource_table.vl(core))
        decisions = self.lane_manager.on_phase_change(self.resource_table, cycle)
        for decided_core, lanes in decisions.items():
            self.resource_table.set_decision(decided_core, lanes)

    def _apply_vl(self, core: int, entry: DynamicInstruction, cycle: int) -> None:
        lanes = int(entry.value)  # type: ignore[arg-type]
        if self.mode is not SharingMode.SPATIAL:
            # Full-width time multiplexing: every core sees all lanes.
            self.resource_table.force_vl(core, lanes)
            self.metrics.on_lane_change(core, lanes, cycle)
            self.metrics.on_reconfig(core, success=True)
            return
        success = self.resource_table.apply_vl(core, lanes)
        if success:
            self.lane_table.reconfigure(core, lanes)
            self.metrics.on_lane_change(core, lanes, cycle)
        self.metrics.on_reconfig(core, success)

    def _core_order(self, active: Optional[List[int]] = None) -> List[int]:
        """Rotate dispatch priority for fairness under temporal sharing.

        With a sorted ``active`` list, returns the reference rotation
        filtered to the active cores (the dropped cores are dispatch no-ops:
        asleep cores are masked out by the caller and done/absent cores have
        empty pools and an inactive core flag).
        """
        n = self.config.num_cores
        self._rotate = (self._rotate + 1) % n
        if active is None:
            return [(self._rotate + i) % n for i in range(n)]
        start = bisect_left(active, self._rotate)
        return active[start:] + active[:start]

    def _cts_arbitrate(self, cycle: int) -> Optional[int]:
        """Coarse-temporal ownership: rotate at quantum expiry or when the
        owner has nothing in flight; each hand-over pays the drain/restore
        penalty.  Returns the core allowed to dispatch this cycle."""
        if cycle < self._cts_blocked_until:
            return None  # still draining/restoring from the last hand-over
        owner = self._cts_owner
        expired = cycle >= self._cts_until
        busy = self._busy_pools
        if busy is not None:
            # Sharded fast path: the pools maintain the busy set on 0↔non-
            # zero occupancy transitions, so arbitration costs O(busy cores)
            # instead of an all-pool scan.  ``min`` over the non-owner busy
            # cores equals the reference's ``others_waiting[0]`` (it scans
            # cores in ascending order).
            owner_busy = owner in busy
            if not (expired or not owner_busy):
                return self._cts_owner
            next_owner = min(
                (core for core in busy if core != owner), default=None
            )
            waiting = next_owner is not None
        else:
            n = self.config.num_cores
            owner_busy = not self.pools[owner].empty
            others_waiting = [
                core
                for core in range(n)
                if core != owner and not self.pools[core].empty
            ]
            waiting = bool(others_waiting)
            next_owner = others_waiting[0] if others_waiting else None
        if waiting and (expired or not owner_busy):
            self._cts_owner = next_owner
            penalty = self.config.vector.cts_switch_penalty
            # The quantum starts once the hand-over drain completes, so a
            # penalty longer than the quantum cannot ping-pong ownership.
            self._cts_until = cycle + penalty + self.config.vector.cts_quantum
            self._cts_blocked_until = cycle + penalty
            self.cts_switches += 1
            if self.recorder is not None:
                self.recorder.on_cts_switch(
                    self._cts_owner, self._cts_until, self._cts_blocked_until
                )
        if cycle < self._cts_blocked_until:
            return None  # draining/restoring contexts
        return self._cts_owner

    def _dispatch(
        self,
        cycle: int,
        awake: Optional[List[bool]] = None,
        core_events: Optional[List[int]] = None,
        active: Optional[List[int]] = None,
    ) -> int:
        vector = self.config.vector
        dispatched = 0
        if self.mode is SharingMode.COARSE_TEMPORAL:
            switches_before = self.cts_switches
            owner = self._cts_arbitrate(cycle)
            if (
                awake is not None
                and self.cts_switches != switches_before
                and self.wake_all_hook is not None
            ):
                # An ownership switch changes sleepers' per-cycle stall
                # attribution from this very cycle on: settle and wake them
                # (in place, through the shared ``awake`` list) before
                # dispatching.
                self.wake_all_hook(cycle)
            # The mid-cycle wake mutates ``active`` in place (via the
            # machine's settle path), so read it only afterwards.
            cores = active if active is not None else range(self.config.num_cores)
            for core in cores:
                if awake is not None and not awake[core]:
                    continue
                if core == owner:
                    budget = {
                        "compute": vector.compute_issue_width,
                        "ldst": vector.ldst_issue_width,
                    }
                    issued = self._dispatch_entrypoint(core, budget, cycle)
                    if core_events is not None:
                        core_events[core] += issued
                    dispatched += issued
                elif not self.pools[core].empty:
                    self.metrics.on_stall(core, StallReason.ISSUE_BUDGET, cycle)
                elif self.core_active[core]:
                    self.metrics.on_stall(core, StallReason.EMPTY, cycle)
            return dispatched
        if self.mode is SharingMode.TEMPORAL:
            shared_budget = {
                "compute": vector.compute_issue_width,
                "ldst": vector.ldst_issue_width,
            }
        else:
            shared_budget = None
        for core in self._core_order(active):
            if awake is not None and not awake[core]:
                continue
            # Spatial modes get a fresh per-core budget, built lazily so a
            # mostly-idle wide machine does not allocate ``num_cores`` dicts
            # every cycle; temporal sharing keeps the one shared budget.
            budget = (
                shared_budget
                if shared_budget is not None
                else {
                    "compute": vector.compute_issue_width,
                    "ldst": vector.ldst_issue_width,
                }
            )
            issued = self._dispatch_entrypoint(core, budget, cycle)
            if core_events is not None:
                core_events[core] += issued
            dispatched += issued
        return dispatched

    def _dispatch_entrypoint(self, core: int, budget: Dict[str, int], cycle: int) -> int:
        """Route one core's dispatch through the batch backend when enabled."""
        if self._batch is not None:
            return self._batch.dispatch_core(core, budget, cycle)
        return self._dispatch_core(core, budget, cycle)

    def _dispatch_core(
        self, core: int, budget: Dict[str, int], cycle: int, use_index: bool = True
    ) -> int:
        pool = self.pools[core]
        if pool.empty:
            if self.core_active[core]:
                self.metrics.on_stall(core, StallReason.EMPTY, cycle)
            return 0
        indexed = use_index and self._indexed
        scan = pool.ready_dispatchable(cycle) if indexed else pool.dispatchable()
        dispatched = 0
        blocked: Optional[StallReason] = None
        index = 0
        while index < len(scan):
            entry = scan[index]
            index += 1
            if budget["compute"] <= 0 and budget["ldst"] <= 0:
                blocked = blocked or StallReason.ISSUE_BUDGET
                break
            if not entry.ready(cycle):
                blocked = blocked or StallReason.DEPENDENCY
                continue
            woke_now = False
            if entry.kind is EntryKind.COMPUTE:
                if budget["compute"] <= 0:
                    blocked = blocked or StallReason.ISSUE_BUDGET
                    continue
                if entry.writes_vreg and not self.renamer.try_allocate(core):
                    # Renaming happens in program order: a rename stall
                    # blocks every younger instruction too.
                    blocked = StallReason.RENAME
                    break
                entry.holds_phys_reg = entry.writes_vreg
                latency = LONG_LATENCY if entry.long_latency else self.config.vector.compute_latency
                entry.state = EntryState.ISSUED
                entry.complete_cycle = cycle + latency
                budget["compute"] -= 1
                woke_now = pool.on_issue(entry, cycle)
                self.metrics.on_compute_dispatch(core, entry.vl_lanes, entry.flops, cycle)
                if self.recorder is not None:
                    self.recorder.on_dispatch(core, entry)
                dispatched += 1
            elif entry.kind in (EntryKind.LOAD, EntryKind.STORE):
                if budget["ldst"] <= 0:
                    blocked = blocked or StallReason.ISSUE_BUDGET
                    continue
                is_store = entry.kind is EntryKind.STORE
                lsu = self.lsus[core]
                if is_store and lsu.store_queue_full(cycle):
                    blocked = blocked or StallReason.STORE_QUEUE
                    continue
                if not is_store and not self.renamer.try_allocate(core):
                    blocked = StallReason.RENAME
                    break
                entry.holds_phys_reg = not is_store
                result = lsu.issue(entry.addr, entry.nbytes, cycle, is_store)
                entry.state = EntryState.ISSUED
                entry.complete_cycle = result.complete_cycle
                budget["ldst"] -= 1
                woke_now = pool.on_issue(entry, cycle)
                self.metrics.on_ldst_dispatch(core, entry.vl_lanes, entry.nbytes, cycle)
                if self.recorder is not None:
                    self.recorder.on_dispatch(core, entry)
                dispatched += 1
            else:  # EM-SIMD entries never appear (dispatchable() stops there)
                raise SimulationError("EM-SIMD instruction in dispatch scan")
            if woke_now:
                # A zero-latency completion made a younger dependant ready
                # within this very scan — exactly what the reference
                # age-order pass picks up as it walks past it.  Rebuild the
                # candidate list from the index, dropping everything at or
                # before the issuing entry (older skipped entries are not
                # revisited by the reference either).
                scan = [
                    e
                    for e in pool.ready_dispatchable(cycle)
                    if e.seq > entry.seq
                ]
                index = 0
        if dispatched == 0:
            if indexed:
                self._attribute_indexed_stall(core, pool, scan, budget, blocked, cycle)
                return 0
            head = pool.head()
            if head is not None and head.is_emsimd:
                self.metrics.on_stall(core, StallReason.RECONFIG, cycle)
            elif blocked is not None:
                self.metrics.on_stall(core, blocked, cycle)
            elif any(e.state is EntryState.WAITING for e in pool.dispatchable()):
                self.metrics.on_stall(core, StallReason.DEPENDENCY, cycle)
        return dispatched

    def _attribute_indexed_stall(
        self,
        core: int,
        pool: InstructionPool,
        scan: List[DynamicInstruction],
        budget: Dict[str, int],
        blocked: Optional[StallReason],
        cycle: int,
    ) -> None:
        """Zero-dispatch stall attribution from the ready index.

        Reconstructs the reference scan's reason (first blocked reason in
        age order over the whole window).  With zero dispatches the budgets
        never moved, so the reference loop's reason is anchored at the
        oldest dispatchable entry: a both-budgets-exhausted break there,
        DEPENDENCY if it is not ready, else the indexed scan's own first
        reason (the oldest dispatchable entry *is* ``scan[0]``, and both
        scans visit the same ready entries in the same order with the same
        budget state).  A RENAME failure overrides unconditionally in both
        scans at the same (first ready renaming) entry.  Shared by the
        indexed reference scan and the batch-execute planner — at zero
        dispatches neither has mutated budgets or rebuilt ``scan``, so
        their inputs here are identical.
        """
        oldest = pool.oldest_waiting_seq()
        if oldest is None:
            blocked = None
        elif blocked is StallReason.RENAME:
            pass
        elif budget["compute"] <= 0 and budget["ldst"] <= 0:
            blocked = StallReason.ISSUE_BUDGET
        elif not scan or scan[0].seq != oldest:
            blocked = StallReason.DEPENDENCY
        head = pool.head()
        if head is not None and head.is_emsimd:
            self.metrics.on_stall(core, StallReason.RECONFIG, cycle)
        elif blocked is not None:
            self.metrics.on_stall(core, blocked, cycle)


class LaneManagerProtocol:
    """Duck-typed interface the engine expects from a lane manager."""

    def on_phase_change(
        self, table: ResourceTable, cycle: int
    ) -> Dict[int, int]:  # pragma: no cover - interface only
        raise NotImplementedError
