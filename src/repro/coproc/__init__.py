"""The Occamy SIMD co-processor micro-architecture (paper §4).

The co-processor is shared by all scalar cores.  Its lanes (``ExeBU``s) and
register blocks (``RegBlk``s) are (re)assigned to cores through the three
tables of §4.2.1 — ``ResourceTbl``, ``Dispatch.Cfg`` and ``RegFile.Cfg`` —
and instructions flow per core through an in-order instruction pool with a
renamer freelist, per-core LSU and the shared vector memory system.
"""

from repro.coproc.coprocessor import CoProcessor, SharingMode
from repro.coproc.dynamic import DynamicInstruction, InstructionPool
from repro.coproc.lanes import ExeBU, LaneTable
from repro.coproc.lsu import LoadStoreUnit
from repro.coproc.renamer import Renamer
from repro.coproc.resource_table import ResourceTable

__all__ = [
    "CoProcessor",
    "DynamicInstruction",
    "ExeBU",
    "InstructionPool",
    "LaneTable",
    "LoadStoreUnit",
    "Renamer",
    "ResourceTable",
    "SharingMode",
]
