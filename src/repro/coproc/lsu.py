"""Per-core load/store unit (LSU) of the co-processor.

The LSU turns one SVE ld/st uop into a byte-ranged request against the
shared :class:`~repro.memory.hierarchy.VectorMemorySystem`, after the MOB
clears address-overlap hazards.  Its throughput — ``ldst_issue_width`` uops
per cycle, each moving ``VL * 16`` bytes — is exactly the paper's SIMD
issue bandwidth (Eq. 2), which becomes the memory bottleneck at small
vector lengths (Fig. 7).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import SimulationError
from repro.memory.hierarchy import AccessResult, VectorMemorySystem
from repro.memory.mob import MemoryOrderingBuffer


@dataclass
class LsuStats:
    """Traffic counters for one core's LSU."""

    loads: int = 0
    stores: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0
    vec_cache_hits: int = 0
    l2_hits: int = 0
    dram_accesses: int = 0


class LoadStoreUnit:
    """One core's vector load/store pipeline."""

    def __init__(
        self,
        core_id: int,
        memory: VectorMemorySystem,
        store_queue_entries: int = 16,
    ) -> None:
        self.core_id = core_id
        self.memory = memory
        self.store_queue_entries = store_queue_entries
        self.mob = MemoryOrderingBuffer()
        self.stats = LsuStats()
        self._store_completions: deque = deque()
        #: Runtime invariant auditor (``REPRO_AUDIT``); when set, every
        #: issued access re-checks completion and STQ ordering.
        self.auditor = None

    def stq_occupancy(self, cycle: float) -> int:
        """Occupied STQ entries once completed stores have retired at ``cycle``.

        The narrowed batch-dispatch interface: the batch planner reads the
        occupancy once at the top of its scan and shadow-counts its own
        planned stores, instead of re-asking :meth:`store_queue_full` per
        entry the way the reference scan does.  Both observe the same
        drained queue (retirement is idempotent within a cycle).
        """
        self._drain_stores(cycle)
        return len(self._store_completions)

    def store_queue_full(self, cycle: float) -> bool:
        """True when a new store would have no STQ entry this cycle."""
        return self.stq_occupancy(cycle) >= self.store_queue_entries

    def _drain_stores(self, cycle: float) -> None:
        while self._store_completions and self._store_completions[0] <= cycle:
            self._store_completions.popleft()

    def issue(self, addr: int, nbytes: int, cycle: float, is_store: bool) -> AccessResult:
        """Issue one ld/st uop at ``cycle``; returns its completion."""
        if nbytes < 0:
            raise SimulationError("negative access size")
        start = self.mob.earliest_start(addr, nbytes, cycle, is_store)
        result = self.memory.access(addr, nbytes, start, is_store)
        self.mob.track(addr, nbytes, result.complete_cycle, is_store)
        if is_store:
            self.stats.stores += 1
            self.stats.bytes_stored += nbytes
            completion = result.complete_cycle
            if self._store_completions and completion < self._store_completions[-1]:
                completion = self._store_completions[-1]  # FIFO retirement
            self._store_completions.append(completion)
        else:
            self.stats.loads += 1
            self.stats.bytes_loaded += nbytes
        self.stats.vec_cache_hits += result.vec_cache_hits
        self.stats.l2_hits += result.l2_hits
        self.stats.dram_accesses += result.dram_accesses
        if self.auditor is not None:
            self.auditor.on_lsu_issue(self, cycle, result)
        return result

    def on_cycle(self, cycle: float) -> None:
        """Housekeeping: retire completed stores from the STQ model."""
        self._drain_stores(cycle)

    def snapshot(self) -> tuple:
        """Capture MOB/STQ/statistics state for speculative execution.

        The shared memory hierarchy is *not* included — callers wrap it in
        its own transaction (it is shared across all cores' LSUs).
        """
        return (
            self.mob.snapshot(),
            tuple(self._store_completions),
            (
                self.stats.loads,
                self.stats.stores,
                self.stats.bytes_loaded,
                self.stats.bytes_stored,
                self.stats.vec_cache_hits,
                self.stats.l2_hits,
                self.stats.dram_accesses,
            ),
        )

    def restore(self, snap: tuple) -> None:
        """Rewind to a :meth:`snapshot` (aborted speculative execution)."""
        mob_snap, completions, stats = snap
        self.mob.restore(mob_snap)
        self._store_completions = deque(completions)
        (
            self.stats.loads,
            self.stats.stores,
            self.stats.bytes_loaded,
            self.stats.bytes_stored,
            self.stats.vec_cache_hits,
            self.stats.l2_hits,
            self.stats.dram_accesses,
        ) = stats

    def next_store_retire(self, cycle: float) -> Optional[float]:
        """Earliest future cycle a queued store retires (frees an STQ slot).

        Next-event hook for the idle-cycle fast-forward: an STQ-full stall
        can only clear when the oldest outstanding store completes.
        """
        for completion in self._store_completions:
            if completion > cycle:
                return completion
        return None
