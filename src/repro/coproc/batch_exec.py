"""Batch-execute backend: opcode-grouped dispatch and commit kernels.

The reference engine dispatches one lane-operation at a time: an age-order
Python loop that, per entry, re-checks budgets, renaming, the store queue,
then issues and books metrics individually.  This backend restructures each
cycle into two passes:

1. **Plan** — a side-effect-free walk of the ready candidates that mirrors
   the reference scan's decision sequence exactly (issue budgets, renamer
   availability and the STQ occupancy are tracked as local shadow counters;
   each is provably decremented by exactly one per accepted entry, so the
   shadow stays equal to the state the reference loop would observe).  The
   walk groups accepted entries by opcode class: short-latency computes,
   long-latency computes, and memory ops (kept in strict age order — they
   touch the shared MOB/bandwidth state).
2. **Apply** — each group executes as one bulk operation: a single batched
   register allocation, one tight loop stamping the group's common
   completion cycle, and one aggregated metrics update per group instead of
   one per uop.

**Scalar fallback.**  The plan/apply split is only valid when nothing an
accepted entry does can change a *later* planning decision within the same
scan.  Three situations break that and fall back to the reference per-entry
loop for the whole core-cycle (counted, and attributed in ``--profile``):

* a **zero-byte memory access** — the only zero-latency completion in the
  machine; it can wake a younger dependant mid-scan, which the reference
  loop observes by rebuilding its candidate list;
* a **sub-cycle compute latency** (``compute_latency < 1``), which would
  open the same mid-scan wake for computes;
* an active **loop-replay recorder**, whose template wants the per-entry
  ``on_dispatch``/``on_commit`` event stream in reference order.

The backend is bit-identical to the reference interpreter across every
sharing mode and engine combination — the differential fuzzer diffs all 32
engine variants — and is kill-switched by ``REPRO_NO_BATCH_EXEC``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import SimulationError
from repro.coproc.dynamic import DynamicInstruction, EntryKind, EntryState
from repro.coproc.metrics import StallReason


@dataclass
class BatchPlan:
    """One core-cycle's planned dispatch, grouped by opcode class."""

    short_compute: List[DynamicInstruction] = field(default_factory=list)
    long_compute: List[DynamicInstruction] = field(default_factory=list)
    #: Memory ops in scan (age) order — MOB and bandwidth-regulator state
    #: is order-sensitive, so these never reorder within the group.
    memory: List[DynamicInstruction] = field(default_factory=list)
    allocations: int = 0
    rename_failed: bool = False
    blocked: Optional[StallReason] = None
    #: A planned entry turned out irregular (zero-byte memory access):
    #: discard the plan untouched and rerun through the reference loop.
    irregular: bool = False

    @property
    def dispatched(self) -> int:
        return len(self.short_compute) + len(self.long_compute) + len(self.memory)


class BatchExecutor:
    """Opcode-grouped dispatch/commit engine bolted onto a co-processor."""

    def __init__(self, coproc) -> None:
        # Imported here: coprocessor.py imports this module at its top, so a
        # module-level import back would hit a half-initialised module.
        from repro.coproc.coprocessor import COMMIT_WIDTH, LONG_LATENCY

        self.coproc = coproc
        self._commit_width = COMMIT_WIDTH
        self._long_latency = LONG_LATENCY
        self._short_latency = coproc.config.vector.compute_latency
        # A compute must never complete within its own dispatch cycle — the
        # planner relies on that to rule out mid-scan wakes from computes.
        self._latency_safe = coproc.config.vector.compute_latency >= 1
        #: Attribution counters surfaced through ``--profile``.
        self.batched_calls = 0
        self.scalar_calls = 0
        self.batched_uops = 0
        self.fallback_reasons: Dict[str, int] = {}

    # --- dispatch ----------------------------------------------------------

    def dispatch_core(self, core: int, budget: Dict[str, int], cycle: int) -> int:
        """Batched replacement for ``CoProcessor._dispatch_core``."""
        coproc = self.coproc
        pool = coproc.pools[core]
        if pool.empty:
            if coproc.core_active[core]:
                coproc.metrics.on_stall(core, StallReason.EMPTY, cycle)
            return 0
        if coproc.recorder is not None:
            return self._fallback(core, budget, cycle, "recorder")
        if not self._latency_safe:
            return self._fallback(core, budget, cycle, "sub-cycle-latency")
        scan = pool.ready_dispatchable(cycle)
        plan = self._plan(core, scan, budget, cycle)
        if plan.irregular:
            return self._fallback(core, budget, cycle, "zero-byte-access")
        self.batched_calls += 1
        dispatched = self._apply(core, pool, plan, budget, cycle)
        if dispatched == 0:
            coproc._attribute_indexed_stall(
                core, pool, scan, budget, plan.blocked, cycle
            )
            return 0
        self.batched_uops += dispatched
        return dispatched

    def _fallback(
        self, core: int, budget: Dict[str, int], cycle: int, reason: str
    ) -> int:
        self.scalar_calls += 1
        self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1
        return self.coproc._dispatch_core(core, budget, cycle)

    def _plan(
        self,
        core: int,
        scan: List[DynamicInstruction],
        budget: Dict[str, int],
        cycle: int,
    ) -> BatchPlan:
        """Mirror the reference scan's decisions without mutating anything.

        The only engine state touched is the idempotent STQ retirement
        inside :meth:`~repro.coproc.lsu.LoadStoreUnit.stq_occupancy`, which
        the reference loop performs identically via ``store_queue_full``.
        """
        coproc = self.coproc
        plan = BatchPlan()
        compute_left = budget["compute"]
        ldst_left = budget["ldst"]
        avail = coproc.renamer.available(core)
        lsu = coproc.lsus[core]
        stq_used = lsu.stq_occupancy(cycle)
        stq_cap = lsu.store_queue_entries
        blocked: Optional[StallReason] = None
        for entry in scan:
            if compute_left <= 0 and ldst_left <= 0:
                blocked = blocked or StallReason.ISSUE_BUDGET
                break
            # ``entry.ready(cycle)`` holds for every index candidate, and no
            # plan decision can un-ready a later one (nothing completes
            # mid-scan once the irregular cases are fenced off), so the
            # reference loop's DEPENDENCY re-check is vacuous here.
            kind = entry.kind
            if kind is EntryKind.COMPUTE:
                if compute_left <= 0:
                    blocked = blocked or StallReason.ISSUE_BUDGET
                    continue
                if entry.writes_vreg:
                    if avail <= 0:
                        plan.rename_failed = True
                        blocked = StallReason.RENAME
                        break
                    avail -= 1
                    plan.allocations += 1
                compute_left -= 1
                if entry.long_latency:
                    plan.long_compute.append(entry)
                else:
                    plan.short_compute.append(entry)
            elif kind is EntryKind.LOAD or kind is EntryKind.STORE:
                if ldst_left <= 0:
                    blocked = blocked or StallReason.ISSUE_BUDGET
                    continue
                is_store = kind is EntryKind.STORE
                if is_store and stq_used >= stq_cap:
                    blocked = blocked or StallReason.STORE_QUEUE
                    continue
                if not is_store:
                    if avail <= 0:
                        plan.rename_failed = True
                        blocked = StallReason.RENAME
                        break
                    avail -= 1
                    plan.allocations += 1
                if entry.nbytes <= 0:
                    # Zero-byte access: completes within this very cycle and
                    # can wake a younger dependant mid-scan.  Abandon the
                    # plan (nothing was mutated) and take the scalar loop.
                    plan.irregular = True
                    return plan
                if is_store:
                    stq_used += 1
                ldst_left -= 1
                plan.memory.append(entry)
            else:  # EM-SIMD entries never appear (the scan stops at them)
                raise SimulationError("EM-SIMD instruction in dispatch scan")
        plan.blocked = blocked
        return plan

    def _apply(
        self,
        core: int,
        pool,
        plan: BatchPlan,
        budget: Dict[str, int],
        cycle: int,
    ) -> int:
        """Execute the plan as bulk per-group operations.

        Call order differs from the reference loop (all computes before all
        memory ops), which is observationally equivalent: computes touch no
        memory state; ``on_issue`` heap pops order by ``(wake, seq)``
        regardless of push order and its pending-counter decrements
        commute; every completion lands strictly after ``cycle`` (latency
        >= 1 computes, non-zero-byte memory), so no mid-scan wake occurs.
        """
        coproc = self.coproc
        metrics = coproc.metrics
        if plan.allocations:
            coproc.renamer.allocate_batch(core, plan.allocations)
        if plan.rename_failed:
            coproc.renamer.note_failed_allocation()
        dispatched = plan.dispatched
        if dispatched == 0:
            return 0
        for group, latency in (
            (plan.short_compute, self._short_latency),
            (plan.long_compute, self._long_latency),
        ):
            if not group:
                continue
            complete = cycle + latency
            total_flops = 0
            vls: List[int] = []
            for entry in group:
                entry.holds_phys_reg = entry.writes_vreg
                entry.state = EntryState.ISSUED
                entry.complete_cycle = complete
                total_flops += entry.flops
                vls.append(entry.vl_lanes)
                pool.on_issue(entry, cycle)
            metrics.on_compute_dispatch_batch(core, vls, total_flops, cycle)
        if plan.memory:
            lsu = coproc.lsus[core]
            for entry in plan.memory:
                is_store = entry.kind is EntryKind.STORE
                entry.holds_phys_reg = not is_store
                result = lsu.issue(entry.addr, entry.nbytes, cycle, is_store)
                entry.state = EntryState.ISSUED
                entry.complete_cycle = result.complete_cycle
                pool.on_issue(entry, cycle)
            metrics.on_ldst_dispatch_batch(core, len(plan.memory))
        budget["compute"] -= len(plan.short_compute) + len(plan.long_compute)
        budget["ldst"] -= len(plan.memory)
        return dispatched

    # --- commit ------------------------------------------------------------

    def commit_core(self, core: int, cycle: int) -> int:
        """Batched in-order commit: one prefix scan, one slice delete, one
        bulk physical-register release.  Returns the entries committed."""
        coproc = self.coproc
        committed = coproc.pools[core].commit_ready_batched(cycle, self._commit_width)
        if committed:
            holders = sum(1 for entry in committed if entry.holds_phys_reg)
            if holders:
                coproc.renamer.release_batch(core, holders)
        return len(committed)
