"""The Vec Cache -> L2 -> DRAM hierarchy shared by all cores (Fig. 4).

An access is decomposed into cache lines; each line is served by the first
level that hits.  Latencies accumulate down the hierarchy and every level's
bandwidth regulator delays traffic that exceeds its bytes/cycle budget, so
a single memory-intensive core can saturate DRAM and stall everyone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MemoryConfig
from repro.memory.bandwidth import BandwidthRegulator
from repro.memory.cache import Cache


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one vector memory access."""

    complete_cycle: float  # when the data is available / committed
    lines: int  # cache lines touched
    vec_cache_hits: int
    l2_hits: int
    dram_accesses: int

    @property
    def deepest_level(self) -> str:
        """Name of the slowest level this access reached."""
        if self.dram_accesses:
            return "dram"
        if self.l2_hits:
            return "l2"
        return "vec_cache"


class VectorMemorySystem:
    """Shared vector memory: VecCache, unified L2 and a DRAM channel."""

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        self.vec_cache = Cache("vec_cache", config.vec_cache)
        self.l2 = Cache("l2", config.l2)
        self.vec_cache_bw = BandwidthRegulator(
            "vec_cache", config.vec_cache.bytes_per_cycle
        )
        self.l2_bw = BandwidthRegulator("l2", config.l2.bytes_per_cycle)
        self.dram_bw = BandwidthRegulator("dram", config.dram_bytes_per_cycle)

    def access(self, addr: int, nbytes: int, cycle: float, is_store: bool) -> AccessResult:
        """Serve ``[addr, addr + nbytes)`` starting no earlier than ``cycle``.

        Returns when the access completes.  Loads complete when all lines
        have arrived; stores complete when all lines are owned by the Vec
        Cache (write-allocate).
        """
        line_bytes = self.config.line_bytes
        lines = self.vec_cache.lines_spanning(addr, nbytes)
        if not lines:
            return AccessResult(cycle, 0, 0, 0, 0)

        vc_hits = 0
        l2_hits = 0
        dram = 0
        complete = float(cycle)
        for line in lines:
            # Every line moves through the Vec Cache port.
            ready = self.vec_cache_bw.serve(line_bytes, cycle)
            latency = self.config.vec_cache.latency
            if self.vec_cache.access(line, is_store):
                vc_hits += 1
            else:
                # Miss: fetch from L2 (and DRAM below it), then fill.
                ready = self.l2_bw.serve(line_bytes, ready)
                latency += self.config.l2.latency
                if self.l2.access(line, is_store=False):
                    l2_hits += 1
                else:
                    ready = self.dram_bw.serve(line_bytes, ready)
                    latency += self.config.dram_latency
                    dram += 1
                    l2_victim = self.l2.fill(line, is_store=False)
                    if l2_victim is not None:
                        self.dram_bw.serve(line_bytes, ready)
                vc_victim = self.vec_cache.fill(line, is_store)
                if vc_victim is not None:
                    # Dirty eviction consumes L2 bandwidth (write-back).
                    self.l2_bw.serve(line_bytes, ready)
                    self.l2.fill(vc_victim, is_store=True)
            complete = max(complete, ready + latency)
        return AccessResult(
            complete_cycle=complete,
            lines=len(lines),
            vec_cache_hits=vc_hits,
            l2_hits=l2_hits,
            dram_accesses=dram,
        )

    def reset_bandwidth(self) -> None:
        """Forget queued traffic (between independent simulations)."""
        self.vec_cache_bw.reset()
        self.l2_bw.reset()
        self.dram_bw.reset()

    # --- speculative-execution transactions --------------------------------

    def begin_txn(self) -> None:
        """Make subsequent accesses revocable (loop-replay speculation).

        Cache tag/LRU mutations are journalled lazily per set; the three
        bandwidth regulators are tiny and snapshotted whole.
        """
        self.vec_cache.begin_txn()
        self.l2.begin_txn()
        self._bw_snap = (
            self.vec_cache_bw.snapshot(),
            self.l2_bw.snapshot(),
            self.dram_bw.snapshot(),
        )

    def commit_txn(self) -> None:
        """Keep every access made since :meth:`begin_txn`."""
        self.vec_cache.commit_txn()
        self.l2.commit_txn()
        self._bw_snap = None

    def abort_txn(self) -> None:
        """Rewind tags, LRU order, stats and queued traffic to
        :meth:`begin_txn`."""
        self.vec_cache.abort_txn()
        self.l2.abort_txn()
        vc, l2, dram = self._bw_snap
        self.vec_cache_bw.restore(vc)
        self.l2_bw.restore(l2)
        self.dram_bw.restore(dram)
        self._bw_snap = None
