"""Vector-side memory system: Vec Cache -> shared L2 -> DRAM.

The co-processor's LSU issues byte-ranged requests into
:class:`VectorMemorySystem`; each level is a real set-associative LRU cache
with a latency and a bytes/cycle bandwidth regulator, so co-running
workloads contend both for capacity and for bandwidth — the effect the
paper's memory-intensive phases are bounded by.
"""

from repro.memory.bandwidth import BandwidthRegulator
from repro.memory.cache import Cache, CacheStats
from repro.memory.hierarchy import AccessResult, VectorMemorySystem
from repro.memory.image import MemoryImage
from repro.memory.mob import MemoryOrderingBuffer

__all__ = [
    "AccessResult",
    "BandwidthRegulator",
    "Cache",
    "CacheStats",
    "MemoryImage",
    "MemoryOrderingBuffer",
    "VectorMemorySystem",
]
