"""Bandwidth regulation for shared memory levels.

Each cache level and the DRAM channel can move a fixed number of bytes per
cycle.  :class:`BandwidthRegulator` serialises requests through that budget:
a request arriving while the channel is busy queues behind earlier traffic,
which is exactly how co-running workloads steal bandwidth from each other.
"""

from __future__ import annotations


class BandwidthRegulator:
    """A shared channel moving ``bytes_per_cycle`` bytes per cycle."""

    def __init__(self, name: str, bytes_per_cycle: float) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        self.name = name
        self.bytes_per_cycle = float(bytes_per_cycle)
        self._next_free = 0.0
        self.bytes_served = 0
        self.requests_served = 0
        #: Runtime invariant auditor (``REPRO_AUDIT``); when set, every
        #: served request re-checks the channel's queue accounting.
        self.auditor = None

    def serve(self, nbytes: int, earliest_cycle: float) -> float:
        """Schedule ``nbytes`` no earlier than ``earliest_cycle``.

        Returns the (fractional) cycle at which the last byte has moved.
        """
        if nbytes <= 0:
            return earliest_cycle
        start = max(self._next_free, float(earliest_cycle))
        finish = start + nbytes / self.bytes_per_cycle
        self._next_free = finish
        self.bytes_served += nbytes
        self.requests_served += 1
        if self.auditor is not None:
            self.auditor.on_bandwidth_serve(self, nbytes, earliest_cycle, start, finish)
        return finish

    def snapshot(self) -> tuple:
        """Capture queue/statistics state for speculative execution."""
        return (self._next_free, self.bytes_served, self.requests_served)

    def restore(self, snap: tuple) -> None:
        """Rewind to a :meth:`snapshot` (aborted speculative execution)."""
        self._next_free, self.bytes_served, self.requests_served = snap

    def busy_until(self) -> float:
        """Cycle at which all currently queued traffic completes."""
        return self._next_free

    def utilization(self, total_cycles: int) -> float:
        """Fraction of the channel's capacity used over ``total_cycles``."""
        if total_cycles <= 0:
            return 0.0
        capacity = self.bytes_per_cycle * total_cycles
        return min(1.0, self.bytes_served / capacity)

    def reset(self) -> None:
        """Forget all queued traffic and statistics."""
        self._next_free = 0.0
        self.bytes_served = 0
        self.requests_served = 0
