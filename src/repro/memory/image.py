"""Functional memory: named numpy arrays with simulated addresses.

Each workload owns one :class:`MemoryImage`.  Images for different cores use
disjoint simulated address ranges, so co-running workloads never alias but
do contend for the shared Vec Cache / L2 / DRAM resources.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from repro.common.errors import SimulationError

#: Address-space stride between cores' images (1 GiB).
CORE_ADDRESS_STRIDE = 1 << 30

#: Alignment of every array base (one typical cache line).
ARRAY_ALIGN = 64


class MemoryImage:
    """Named float32 arrays plus a simulated byte-address layout."""

    def __init__(self, base_address: int = 0) -> None:
        self.base_address = base_address
        self._arrays: Dict[str, np.ndarray] = {}
        self._bases: Dict[str, int] = {}
        self._cursor = base_address

    @classmethod
    def for_core(cls, core_id: int) -> "MemoryImage":
        """An image placed in core ``core_id``'s private address range."""
        return cls(base_address=core_id * CORE_ADDRESS_STRIDE)

    def add_array(self, name: str, data: np.ndarray) -> np.ndarray:
        """Register ``data`` (converted to float32) under ``name``."""
        if name in self._arrays:
            raise SimulationError(f"array {name!r} already registered")
        array = np.ascontiguousarray(data, dtype=np.float32)
        self._arrays[name] = array
        self._bases[name] = self._cursor
        size = array.nbytes
        self._cursor += size + (-size % ARRAY_ALIGN)
        return array

    def zeros(self, name: str, length: int) -> np.ndarray:
        """Register a zero-filled array of ``length`` float32 elements."""
        return self.add_array(name, np.zeros(length, dtype=np.float32))

    def array(self, name: str) -> np.ndarray:
        """The registered array called ``name``."""
        try:
            return self._arrays[name]
        except KeyError as exc:
            raise SimulationError(f"unknown array {name!r}") from exc

    def address_of(self, name: str, elem_index: int, elem_bytes: int = 4) -> int:
        """Simulated byte address of ``name[elem_index]``."""
        return self._bases[name] + elem_index * elem_bytes

    def footprint_bytes(self) -> int:
        """Total bytes occupied by all registered arrays."""
        return sum(array.nbytes for array in self._arrays.values())

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def __iter__(self) -> Iterator[Tuple[str, np.ndarray]]:
        return iter(self._arrays.items())

    def copy(self, base_address: int = None) -> "MemoryImage":
        """Deep copy, optionally relocated to ``base_address``."""
        clone = MemoryImage(
            self.base_address if base_address is None else base_address
        )
        for name, array in self._arrays.items():
            clone.add_array(name, array.copy())
        return clone
