"""Memory Ordering Buffer (paper §4.1.2).

The MOB tracks byte regions with at least one incomplete SVE ld/st, so a
younger access that overlaps an older incomplete *store* is delayed until
that store completes.  Functional correctness in this model is guaranteed by
in-order per-core execution; the MOB contributes the *timing* of
address-overlap hazards and is exercised directly by the ordering tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass
class _Entry:
    start: int
    end: int  # exclusive
    complete_cycle: float
    is_store: bool


class MemoryOrderingBuffer:
    """Tracks in-flight vector memory regions for one core."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("MOB capacity must be positive")
        self.capacity = capacity
        self._entries: List[_Entry] = []
        self.conflicts_detected = 0

    def _prune(self, cycle: float) -> None:
        self._entries = [e for e in self._entries if e.complete_cycle > cycle]

    def earliest_start(self, addr: int, nbytes: int, cycle: float, is_store: bool) -> float:
        """Earliest cycle a new access to ``[addr, addr+nbytes)`` may begin.

        Ordering rules: any access must wait for older overlapping *stores*;
        a store must additionally wait for older overlapping *loads*
        (write-after-read).
        """
        self._prune(cycle)
        start = float(cycle)
        end = addr + nbytes
        for entry in self._entries:
            if entry.end <= addr or entry.start >= end:
                continue
            if entry.is_store or is_store:
                if entry.complete_cycle > start:
                    start = entry.complete_cycle
                    self.conflicts_detected += 1
        return start

    def track(self, addr: int, nbytes: int, complete_cycle: float, is_store: bool) -> None:
        """Record an access that will complete at ``complete_cycle``."""
        self._prune(complete_cycle - 1e9)  # cheap opportunistic prune
        if len(self._entries) >= self.capacity:
            # A full MOB stalls allocation; model by dropping the oldest
            # completed entries first, then the oldest outstanding one.
            self._entries.sort(key=lambda e: e.complete_cycle)
            self._entries.pop(0)
        self._entries.append(
            _Entry(start=addr, end=addr + nbytes, complete_cycle=complete_cycle, is_store=is_store)
        )

    def snapshot(self) -> tuple:
        """Capture buffer state for speculative execution.

        ``_Entry`` records are never mutated after insertion (only created
        and pruned), so a shallow list copy is an exact pre-image.
        """
        return (list(self._entries), self.conflicts_detected)

    def restore(self, snap: tuple) -> None:
        """Rewind to a :meth:`snapshot` (aborted speculative execution)."""
        self._entries, self.conflicts_detected = snap

    def outstanding(self, cycle: float) -> int:
        """Number of regions still incomplete at ``cycle``."""
        self._prune(cycle)
        return len(self._entries)
