"""A set-associative, write-back, write-allocate cache with LRU replacement.

The cache tracks tags only (data values live in :class:`MemoryImage`); its
job is to decide hit/miss per line and to surface dirty-eviction traffic to
the next level.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.config import CacheConfig


@dataclass
class CacheStats:
    """Hit/miss/writeback counters for one cache."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """Tag store for one cache level.

    Each set is an :class:`OrderedDict` mapping line address -> dirty flag,
    ordered least-recently-used first.
    """

    def __init__(self, name: str, config: CacheConfig) -> None:
        self.name = name
        self.config = config
        self.stats = CacheStats()
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        #: Lazy undo journal for speculative execution (loop replay): when
        #: armed, the first mutation of each set saves a pre-image so an
        #: aborted transaction can restore tags and LRU order exactly.
        self._txn_log: Optional[Dict[int, "OrderedDict[int, bool]"]] = None
        self._txn_stats: Optional[Tuple[int, int, int]] = None

    def _set_for(self, line_addr: int) -> "OrderedDict[int, bool]":
        index = (line_addr // self.config.line_bytes) % self.config.num_sets
        log = self._txn_log
        if log is not None and index not in log:
            log[index] = self._sets[index].copy()
        return self._sets[index]

    # --- speculative-execution transactions --------------------------------

    def begin_txn(self) -> None:
        """Arm the undo journal; mutations until commit/abort are revocable."""
        self._txn_log = {}
        self._txn_stats = (self.stats.hits, self.stats.misses, self.stats.writebacks)

    def commit_txn(self) -> None:
        """Keep every mutation made since :meth:`begin_txn`."""
        self._txn_log = None
        self._txn_stats = None

    def abort_txn(self) -> None:
        """Restore tags, LRU order and stats to the :meth:`begin_txn` state."""
        assert self._txn_log is not None and self._txn_stats is not None
        for index, pre_image in self._txn_log.items():
            self._sets[index] = pre_image
        self.stats.hits, self.stats.misses, self.stats.writebacks = self._txn_stats
        self._txn_log = None
        self._txn_stats = None

    def line_of(self, addr: int) -> int:
        """The line-aligned address containing byte ``addr``."""
        return addr - (addr % self.config.line_bytes)

    def lines_spanning(self, addr: int, nbytes: int) -> List[int]:
        """Line addresses touched by ``[addr, addr + nbytes)``."""
        if nbytes <= 0:
            return []
        first = self.line_of(addr)
        last = self.line_of(addr + nbytes - 1)
        step = self.config.line_bytes
        return list(range(first, last + step, step))

    def probe(self, line_addr: int) -> bool:
        """Check residency without updating LRU state or stats."""
        return line_addr in self._set_for(line_addr)

    def access(self, line_addr: int, is_store: bool) -> bool:
        """Look up one line; returns True on hit and updates LRU/dirty."""
        target_set = self._set_for(line_addr)
        if line_addr in target_set:
            dirty = target_set.pop(line_addr)
            target_set[line_addr] = dirty or is_store
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, line_addr: int, is_store: bool) -> Optional[int]:
        """Install a line after a miss.

        Returns the address of a *dirty* victim line that must be written
        back to the next level, or None when no writeback is needed.
        """
        target_set = self._set_for(line_addr)
        victim: Optional[int] = None
        if line_addr not in target_set and len(target_set) >= self.config.ways:
            evicted_addr, evicted_dirty = target_set.popitem(last=False)
            if evicted_dirty:
                self.stats.writebacks += 1
                victim = evicted_addr
        target_set.pop(line_addr, None)
        target_set[line_addr] = is_store
        return victim

    def invalidate_all(self) -> None:
        """Drop every line (dirty data is discarded — test helper only)."""
        for target_set in self._sets:
            target_set.clear()

    def resident_lines(self) -> int:
        """Number of lines currently resident."""
        return sum(len(s) for s in self._sets)
