"""The multi-core system: scalar cores + shared co-processor + policy.

:class:`Machine` wires up one :class:`~repro.coproc.coprocessor.CoProcessor`
(under a sharing :class:`~repro.core.policies.Policy`) with one scalar core
per workload and advances everything cycle by cycle until every workload
halts and drains.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.config import MachineConfig
from repro.common.errors import DeadlockError, SimulationError
from repro.coproc.coprocessor import CoProcessor
from repro.coproc.metrics import Metrics
from repro.core.policies import Policy
from repro.core.replay import (
    GLOBAL_PROFILE,
    ReplayController,
    ReplayProfile,
    default_loop_replay,
)
from repro.core.scalar_core import ScalarCore
from repro.isa.program import Program
from repro.memory.image import MemoryImage
from repro.validation.invariants import InvariantAuditor, audit_enabled

#: Cycles without any retire/dispatch/commit before declaring deadlock.
DEADLOCK_WINDOW = 100_000


def default_fast_forward() -> bool:
    """Whether :meth:`Machine.run` fast-forwards idle cycles by default.

    On unless ``REPRO_NO_FAST_FORWARD`` is set (to any non-empty value);
    the two modes are bit-identical — the switch exists for the
    determinism test layer and for debugging the fast-forward itself.
    """
    return not os.environ.get("REPRO_NO_FAST_FORWARD")


@dataclass
class Job:
    """One workload: a compiled program plus its functional memory."""

    program: Program
    image: MemoryImage


@dataclass
class RunResult:
    """Everything a simulation produced."""

    policy_key: str
    config: MachineConfig
    metrics: Metrics
    total_cycles: int
    core_cycles: List[int]
    images: List[Optional[MemoryImage]]
    lane_manager: object
    #: Per-core LSU traffic statistics (loads/stores/bytes, hit levels).
    lsu_stats: List[object] = field(default_factory=list)
    #: Cache tag statistics: {"vec_cache": CacheStats, "l2": CacheStats}.
    cache_stats: Dict[str, object] = field(default_factory=dict)

    def core_time(self, core: int) -> int:
        """Cycles until core ``core``'s workload completed."""
        return self.core_cycles[core]

    def speedup_over(self, baseline: "RunResult", core: int) -> float:
        """Per-core speedup relative to a baseline run (paper Fig. 10)."""
        mine = self.core_time(core)
        theirs = baseline.core_time(core)
        if mine <= 0:
            return float("inf")
        return theirs / mine


class Machine:
    """A ``config.num_cores``-core system under one sharing policy."""

    def __init__(
        self,
        config: MachineConfig,
        policy: Policy,
        jobs: Sequence[Optional[Job]],
        audit: Optional[bool] = None,
    ) -> None:
        if len(jobs) != config.num_cores:
            raise SimulationError(
                f"need one job slot per core: {len(jobs)} jobs, "
                f"{config.num_cores} cores"
            )
        self.config = config
        self.policy = policy
        self.jobs = list(jobs)
        phase_ois: Dict[int, list] = {
            core: list(job.program.meta.get("phase_ois", []))
            for core, job in enumerate(jobs)
            if job is not None
        }
        self.lane_manager = policy.build_lane_manager(config, phase_ois)
        self.metrics = Metrics(
            num_cores=config.num_cores,
            total_lanes=config.vector.total_lanes,
            pipes_per_lane=config.vector.compute_issue_width,
        )
        self.coproc = CoProcessor(config, policy.mode, self.metrics, self.lane_manager)
        self._done: List[bool] = [job is None for job in jobs]
        #: Loop-replay template recorder (set by the replay engine while a
        #: steady-state period is being recorded; see :mod:`repro.core.replay`).
        self._loop_recorder = None
        self._ff_skipped = 0
        #: Simulated-cycle attribution of the last completed :meth:`run`
        #: (kept off :class:`RunResult` so cached result pickles keep their
        #: shape across cache versions).
        self.profile: Optional[ReplayProfile] = None
        #: Opt-in runtime invariant auditor (``REPRO_AUDIT`` / ``audit=True``);
        #: strictly read-only, so audited runs stay bit-identical.
        self.auditor = None
        if audit if audit is not None else audit_enabled():
            self.auditor = InvariantAuditor(self)
        self.cores: List[Optional[ScalarCore]] = []
        for core_id, job in enumerate(jobs):
            if job is None:
                self.cores.append(None)
                self.coproc.set_core_active(core_id, False)
                self.metrics.on_core_done(core_id, 0)
            else:
                self.cores.append(
                    ScalarCore(
                        core_id=core_id,
                        program=job.program,
                        image=job.image,
                        coproc=self.coproc,
                        metrics=self.metrics,
                        config=config.core,
                    )
                )

    def step(self, cycle: int) -> int:
        """Advance every core and the co-processor by one cycle.

        Returns the number of events processed (0 means no forward
        progress this cycle).  Exposed so tests and interactive tools can
        interleave simulation with external actions (e.g. forcing lane
        decisions); normal users call :meth:`run`.
        """
        progress = 0
        for core_id, core in enumerate(self.cores):
            if core is not None and not self._done[core_id]:
                progress += core.step(cycle)
        progress += self.coproc.step(cycle)
        for core_id, core in enumerate(self.cores):
            if core is None or self._done[core_id]:
                continue
            if core.halted and self.coproc.drained(core_id):
                self._done[core_id] = True
                self.metrics.on_core_done(core_id, cycle)
                self.coproc.set_core_active(core_id, False)
                if self._loop_recorder is not None:
                    self._loop_recorder.on_core_done()
                progress += 1
        if self.auditor is not None:
            self.auditor.check_machine(cycle)
        return progress

    @property
    def finished(self) -> bool:
        """True when every workload has halted and drained."""
        return all(self._done)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle at which any component's state can change.

        Only meaningful right after a zero-progress :meth:`step`; see
        :meth:`CoProcessor.next_event_cycle` for the event sources.
        """
        candidates = [self.coproc.next_event_cycle(cycle)]
        for core_id, core in enumerate(self.cores):
            if core is not None and not self._done[core_id]:
                candidates.append(core.next_event_cycle(cycle))
        live = [c for c in candidates if c is not None]
        return min(live) if live else None

    def _fast_forward(self, cycle: int, last_progress: int, max_cycles: int) -> int:
        """Jump the clock over known-idle cycles after a zero-progress step.

        A zero-progress cycle leaves every pool, queue and register table
        untouched, so each elided cycle would repeat exactly the metric
        increments just journalled by the real step.  The jump is capped at
        the deadlock horizon and at ``max_cycles`` so both failure paths
        fire at the same cycle as the cycle-by-cycle loop; when no event is
        pending at all, the machine is frozen and we jump straight to the
        horizon.  Returns the cycle the caller should resume *after* (the
        run loop's ``cycle += 1`` then lands on the first interesting one).
        """
        next_event = self.next_event_cycle(cycle)
        horizon = last_progress + DEADLOCK_WINDOW + 1
        target = horizon if next_event is None else next_event
        target = min(target, horizon, max_cycles)
        skipped = target - cycle - 1
        if skipped > 0:
            self.metrics.replay_idle_cycles(skipped)
            self.coproc.skip_idle_cycles(skipped)
            self._ff_skipped += skipped
            if self._loop_recorder is not None:
                # A jump cut short by the deadlock horizon or cycle budget
                # depends on absolute time and poisons the loop template.
                self._loop_recorder.on_fast_forward(
                    skipped, capped=(target != next_event)
                )
            return cycle + skipped
        return cycle

    def run(
        self,
        max_cycles: int = 3_000_000,
        fast_forward: Optional[bool] = None,
        fast_path: Optional[bool] = None,
    ) -> RunResult:
        """Simulate until every workload halts and drains.

        ``fast_forward`` elides stretches of cycles in which no core and no
        co-processor structure can make progress (memory-latency drains,
        EM-SIMD barriers) by jumping the clock to the next scheduled event.
        ``fast_path`` additionally replays whole steady-state loop
        iterations from a verified event template (see
        :mod:`repro.core.replay`) and defaults to
        :func:`~repro.core.replay.default_loop_replay`.  Both switches are
        bit-identical to the cycle-by-cycle loop — the determinism suite
        asserts it.
        """
        if fast_forward is None:
            fast_forward = default_fast_forward()
        if fast_path is None:
            fast_path = default_loop_replay()
        replay = ReplayController(self) if fast_path else None
        cycle = 0
        last_progress = 0
        while not self.finished:
            if cycle >= max_cycles:
                raise SimulationError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"(policy={self.policy.key})"
                )
            if replay is not None:
                cycle, last_progress = replay.on_cycle(
                    cycle, max_cycles, last_progress
                )
                if cycle >= max_cycles:
                    continue
            if fast_forward:
                self.metrics.begin_idle_cycle()
            if self.step(cycle):
                last_progress = cycle
            else:
                if cycle - last_progress > DEADLOCK_WINDOW:
                    raise DeadlockError(
                        f"no forward progress since cycle {last_progress} "
                        f"(policy={self.policy.key})"
                    )
                if fast_forward:
                    cycle = self._fast_forward(cycle, last_progress, max_cycles)
            cycle += 1
        self.metrics.close(cycle)
        profile = replay.profile if replay is not None else ReplayProfile()
        profile.total_cycles = cycle
        profile.fastforward_cycles = self._ff_skipped
        profile.interpreted_cycles = (
            cycle - self._ff_skipped - profile.replayed_cycles
        )
        self.profile = profile
        GLOBAL_PROFILE.merge(profile)
        return RunResult(
            policy_key=self.policy.key,
            config=self.config,
            metrics=self.metrics,
            total_cycles=cycle,
            core_cycles=[self.metrics.core_cycles(c) for c in range(self.config.num_cores)],
            images=[job.image if job else None for job in self.jobs],
            lane_manager=self.lane_manager,
            lsu_stats=[lsu.stats for lsu in self.coproc.lsus],
            cache_stats={
                "vec_cache": self.coproc.memory.vec_cache.stats,
                "l2": self.coproc.memory.l2.stats,
            },
        )


def run_policy(
    config: MachineConfig,
    policy: Policy,
    jobs: Sequence[Optional[Job]],
    max_cycles: int = 3_000_000,
    fast_forward: Optional[bool] = None,
    fast_path: Optional[bool] = None,
    audit: Optional[bool] = None,
) -> RunResult:
    """Convenience wrapper: build a machine and run it."""
    return Machine(config, policy, jobs, audit=audit).run(
        max_cycles=max_cycles, fast_forward=fast_forward, fast_path=fast_path
    )
