"""The multi-core system: scalar cores + shared co-processor + policy.

:class:`Machine` wires up one :class:`~repro.coproc.coprocessor.CoProcessor`
(under a sharing :class:`~repro.core.policies.Policy`) with one scalar core
per workload and advances everything cycle by cycle until every workload
halts and drains.
"""

from __future__ import annotations

import math
import os
from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import MachineConfig, default_batch_exec
from repro.common.errors import DeadlockError, SimulationError
from repro.coproc.coprocessor import CoProcessor, SharingMode
from repro.coproc.metrics import Metrics
from repro.core.policies import Policy
from repro.core.replay import (
    GLOBAL_PROFILE,
    ReplayController,
    ReplayProfile,
    default_loop_replay,
)
from repro.core.scalar_core import ScalarCore
from repro.isa.program import Program
from repro.memory.image import MemoryImage
from repro.validation.invariants import InvariantAuditor, audit_enabled

#: Cycles without any retire/dispatch/commit before declaring deadlock.
DEADLOCK_WINDOW = 100_000


def default_fast_forward() -> bool:
    """Whether :meth:`Machine.run` fast-forwards idle cycles by default.

    On unless ``REPRO_NO_FAST_FORWARD`` is set (to any non-empty value);
    the two modes are bit-identical — the switch exists for the
    determinism test layer and for debugging the fast-forward itself.
    """
    return not os.environ.get("REPRO_NO_FAST_FORWARD")


def default_event_wheel() -> bool:
    """Whether :meth:`Machine.run` uses the tickless event-wheel scheduler.

    On unless ``REPRO_NO_EVENT_WHEEL`` is set (to any non-empty value).
    The tickless engine — per-component sleep/wake plus ready-set dispatch
    indexing — is bit-identical to the cycle-by-cycle interpreter; the kill
    switch exists for the differential-fuzz engine matrix and debugging.
    """
    return not os.environ.get("REPRO_NO_EVENT_WHEEL")


def default_hier_wheel() -> bool:
    """Whether the tickless engine uses the hierarchical wake index.

    On unless ``REPRO_NO_HIER_WHEEL`` is set (to any non-empty value).
    The hierarchical wheel groups components into complexes under a
    top-level heap and keeps an *active list* of awake live cores so every
    per-cycle loop costs O(components with work), not O(num_cores).  It is
    bit-identical to the flat :class:`~repro.core.scheduling.EventWheel`
    path; the kill switch exists for the differential-fuzz engine matrix.
    Only meaningful when the event wheel itself is enabled.
    """
    return not os.environ.get("REPRO_NO_HIER_WHEEL")


@dataclass
class Job:
    """One workload: a compiled program plus its functional memory."""

    program: Program
    image: MemoryImage


@dataclass
class RunResult:
    """Everything a simulation produced."""

    policy_key: str
    config: MachineConfig
    metrics: Metrics
    total_cycles: int
    core_cycles: List[int]
    images: List[Optional[MemoryImage]]
    lane_manager: object
    #: Per-core LSU traffic statistics (loads/stores/bytes, hit levels).
    lsu_stats: List[object] = field(default_factory=list)
    #: Cache tag statistics: {"vec_cache": CacheStats, "l2": CacheStats}.
    cache_stats: Dict[str, object] = field(default_factory=dict)

    def core_time(self, core: int) -> int:
        """Cycles until core ``core``'s workload completed."""
        return self.core_cycles[core]

    def speedup_over(self, baseline: "RunResult", core: int) -> float:
        """Per-core speedup relative to a baseline run (paper Fig. 10)."""
        mine = self.core_time(core)
        theirs = baseline.core_time(core)
        if mine <= 0:
            return float("inf")
        return theirs / mine


class Machine:
    """A ``config.num_cores``-core system under one sharing policy."""

    def __init__(
        self,
        config: MachineConfig,
        policy: Policy,
        jobs: Sequence[Optional[Job]],
        audit: Optional[bool] = None,
        event_wheel: Optional[bool] = None,
        batch_exec: Optional[bool] = None,
        hier_wheel: Optional[bool] = None,
    ) -> None:
        if len(jobs) != config.num_cores:
            raise SimulationError(
                f"need one job slot per core: {len(jobs)} jobs, "
                f"{config.num_cores} cores"
            )
        self.config = config
        self.policy = policy
        self.jobs = list(jobs)
        phase_ois: Dict[int, list] = {
            core: list(job.program.meta.get("phase_ois", []))
            for core, job in enumerate(jobs)
            if job is not None
        }
        self.lane_manager = policy.build_lane_manager(config, phase_ois)
        self.metrics = Metrics(
            num_cores=config.num_cores,
            total_lanes=config.vector.total_lanes,
            pipes_per_lane=config.vector.compute_issue_width,
        )
        #: Tickless event-wheel engine switch (``REPRO_NO_EVENT_WHEEL``).
        self._event_wheel = (
            default_event_wheel() if event_wheel is None else event_wheel
        )
        #: Batch-execute backend switch (``REPRO_NO_BATCH_EXEC``).
        self._batch_exec = (
            default_batch_exec() if batch_exec is None else batch_exec
        )
        #: Hierarchical wake-index switch (``REPRO_NO_HIER_WHEEL``); only
        #: active on top of the event wheel.
        self._hier_wheel = (
            default_hier_wheel() if hier_wheel is None else hier_wheel
        ) and self._event_wheel
        self.coproc = CoProcessor(
            config,
            policy.mode,
            self.metrics,
            self.lane_manager,
            indexed=self._event_wheel,
            batch_exec=self._batch_exec,
        )
        self._done: List[bool] = [job is None for job in jobs]
        # Per-component (core complex = scalar core + pool + LSU) sleep
        # bookkeeping for the tickless scheduler.
        num_cores = config.num_cores
        self._awake: List[bool] = [True] * num_cores
        self._asleep_count = 0
        self._live_count = 0
        self._sleep_from: List[int] = [0] * num_cores
        self._sleep_events: List[Tuple[Tuple[str, int, object], ...]] = [
            ()
        ] * num_cores
        self._wheel = None
        #: Sorted list of awake live cores (hierarchical-wheel mode only);
        #: ``None`` under the flat wheel and the reference engine.
        self._active: Optional[List[int]] = None
        self._comp_busy: List[int] = [0] * num_cores
        self._comp_idle: List[int] = [0] * num_cores
        self._comp_asleep: List[int] = [0] * num_cores
        #: Loop-replay template recorder (set by the replay engine while a
        #: steady-state period is being recorded; see :mod:`repro.core.replay`).
        self._loop_recorder = None
        self._ff_skipped = 0
        #: Simulated-cycle attribution of the last completed :meth:`run`
        #: (kept off :class:`RunResult` so cached result pickles keep their
        #: shape across cache versions).
        self.profile: Optional[ReplayProfile] = None
        #: Opt-in runtime invariant auditor (``REPRO_AUDIT`` / ``audit=True``);
        #: strictly read-only, so audited runs stay bit-identical.
        self.auditor = None
        if audit if audit is not None else audit_enabled():
            self.auditor = InvariantAuditor(self)
        self.cores: List[Optional[ScalarCore]] = []
        for core_id, job in enumerate(jobs):
            if job is None:
                self.cores.append(None)
                self.coproc.set_core_active(core_id, False)
                self.metrics.on_core_done(core_id, 0)
            else:
                self.cores.append(
                    ScalarCore(
                        core_id=core_id,
                        program=job.program,
                        image=job.image,
                        coproc=self.coproc,
                        metrics=self.metrics,
                        config=config.core,
                    )
                )

    def step(self, cycle: int) -> int:
        """Advance every core and the co-processor by one cycle.

        Returns the number of events processed (0 means no forward
        progress this cycle).  Exposed so tests and interactive tools can
        interleave simulation with external actions (e.g. forcing lane
        decisions); normal users call :meth:`run`.
        """
        progress = 0
        for core_id, core in enumerate(self.cores):
            if core is not None and not self._done[core_id]:
                progress += core.step(cycle)
        progress += self.coproc.step(cycle)
        for core_id, core in enumerate(self.cores):
            if core is None or self._done[core_id]:
                continue
            if core.halted and self.coproc.drained(core_id):
                self._done[core_id] = True
                self.metrics.on_core_done(core_id, cycle)
                self.coproc.set_core_active(core_id, False)
                if self._loop_recorder is not None:
                    self._loop_recorder.on_core_done()
                progress += 1
        if self.auditor is not None:
            self.auditor.check_machine(cycle)
        return progress

    @property
    def finished(self) -> bool:
        """True when every workload has halted and drained."""
        return all(self._done)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle at which any component's state can change.

        Only meaningful right after a zero-progress :meth:`step`; see
        :meth:`CoProcessor.next_event_cycle` for the event sources.
        """
        candidates = [self.coproc.next_event_cycle(cycle)]
        for core_id, core in enumerate(self.cores):
            if core is not None and not self._done[core_id]:
                candidates.append(core.next_event_cycle(cycle))
        live = [c for c in candidates if c is not None]
        return min(live) if live else None

    def _fast_forward(self, cycle: int, last_progress: int, max_cycles: int) -> int:
        """Jump the clock over known-idle cycles after a zero-progress step.

        A zero-progress cycle leaves every pool, queue and register table
        untouched, so each elided cycle would repeat exactly the metric
        increments just journalled by the real step.  While a real event is
        pending the jump goes straight to it — a legitimately long skip
        (e.g. a drain covering more than ``DEADLOCK_WINDOW`` cycles) is
        *not* a hang, so the deadlock horizon does not cap it; only when no
        event is pending at all (the machine is frozen for good) does the
        jump stop at the horizon, where the deadlock check fires at the
        same cycle as the cycle-by-cycle loop.  ``max_cycles`` always caps.
        Returns the cycle the caller should resume *after* (the run loop's
        ``cycle += 1`` then lands on the first interesting one).
        """
        next_event = self.next_event_cycle(cycle)
        if next_event is None:
            target = last_progress + DEADLOCK_WINDOW + 1
        else:
            target = next_event
        target = min(target, max_cycles)
        skipped = target - cycle - 1
        if skipped > 0:
            self.metrics.replay_idle_cycles(skipped)
            self.coproc.skip_idle_cycles(skipped)
            self._ff_skipped += skipped
            if self._loop_recorder is not None:
                # A jump cut short by the deadlock horizon or cycle budget
                # depends on absolute time and poisons the loop template.
                self._loop_recorder.on_fast_forward(
                    skipped, capped=(target != next_event)
                )
            return cycle + skipped
        return cycle

    def run(
        self,
        max_cycles: int = 3_000_000,
        fast_forward: Optional[bool] = None,
        fast_path: Optional[bool] = None,
    ) -> RunResult:
        """Simulate until every workload halts and drains.

        ``fast_forward`` elides stretches of cycles in which no core and no
        co-processor structure can make progress (memory-latency drains,
        EM-SIMD barriers) by jumping the clock to the next scheduled event.
        ``fast_path`` additionally replays whole steady-state loop
        iterations from a verified event template (see
        :mod:`repro.core.replay`) and defaults to
        :func:`~repro.core.replay.default_loop_replay`.  Both switches are
        bit-identical to the cycle-by-cycle loop — the determinism suite
        asserts it.
        """
        if fast_forward is None:
            fast_forward = default_fast_forward()
        if fast_path is None:
            fast_path = default_loop_replay()
        replay = ReplayController(self) if fast_path else None
        if self._event_wheel:
            cycle = self._run_wheel(max_cycles, fast_forward, replay)
        else:
            cycle = self._run_reference(max_cycles, fast_forward, replay)
        self.metrics.close(cycle)
        profile = replay.profile if replay is not None else ReplayProfile()
        profile.total_cycles = cycle
        profile.fastforward_cycles = self._ff_skipped
        profile.interpreted_cycles = (
            cycle - self._ff_skipped - profile.replayed_cycles
        )
        profile.component_busy = list(self._comp_busy)
        profile.component_idle = list(self._comp_idle)
        profile.component_asleep = list(self._comp_asleep)
        batch = self.coproc._batch
        if batch is not None:
            profile.batched_dispatch_calls = batch.batched_calls
            profile.scalar_dispatch_calls = batch.scalar_calls
            profile.batched_uops = batch.batched_uops
        self.profile = profile
        GLOBAL_PROFILE.merge(profile)
        return RunResult(
            policy_key=self.policy.key,
            config=self.config,
            metrics=self.metrics,
            total_cycles=cycle,
            core_cycles=[self.metrics.core_cycles(c) for c in range(self.config.num_cores)],
            images=[job.image if job else None for job in self.jobs],
            lane_manager=self.lane_manager,
            lsu_stats=[lsu.stats for lsu in self.coproc.lsus],
            cache_stats={
                "vec_cache": self.coproc.memory.vec_cache.stats,
                "l2": self.coproc.memory.l2.stats,
            },
        )

    def _run_reference(
        self, max_cycles: int, fast_forward: bool, replay: Optional[ReplayController]
    ) -> int:
        """The seed cycle-by-cycle loop (``REPRO_NO_EVENT_WHEEL``)."""
        cycle = 0
        last_progress = 0
        while not self.finished:
            if cycle >= max_cycles:
                raise SimulationError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"(policy={self.policy.key})"
                )
            if replay is not None:
                cycle, last_progress = replay.on_cycle(
                    cycle, max_cycles, last_progress
                )
                if cycle >= max_cycles:
                    continue
            if fast_forward:
                self.metrics.begin_idle_cycle()
            if self.step(cycle):
                last_progress = cycle
            else:
                if (
                    cycle - last_progress > DEADLOCK_WINDOW
                    and self.next_event_cycle(cycle) is None
                ):
                    raise DeadlockError(
                        f"no forward progress since cycle {last_progress} "
                        f"(policy={self.policy.key})"
                    )
                if fast_forward:
                    cycle = self._fast_forward(cycle, last_progress, max_cycles)
            cycle += 1
        return cycle

    # --- tickless event-wheel engine ---------------------------------------

    def _run_wheel(
        self, max_cycles: int, fast_forward: bool, replay: Optional[ReplayController]
    ) -> int:
        """The tickless run loop: per-component sleep/wake on an event wheel.

        A *component* is one core complex — scalar core, instruction pool
        and LSU.  After a cycle in which a component processed no event, it
        reports its wake cycle (earliest future cycle at which its
        behaviour can change: next pool completion, store retire, pending
        scalar writeback, or CTS quantum boundary) into the wheel and goes
        to sleep; its per-cycle journal entries (stall reason, EM-SIMD
        overhead) are captured once and settled in bulk when it wakes.
        Sleeping components are skipped by :meth:`CoProcessor.step`; when
        every live component sleeps, the global clock jumps straight to the
        earliest wake.  Temporal sharing (FTS) never sleeps — its shared
        issue budget and renamer couple the cores every cycle — and the
        loop-replay controller suspends sleeping while it probes, records
        or replays.  Bit-identical to :meth:`_run_reference` (the
        differential fuzzer diffs the two engines).
        """
        from repro.core.scheduling import EventWheel, HierarchicalEventWheel

        num_cores = self.config.num_cores
        metrics = self.metrics
        coproc = self.coproc
        wheel = HierarchicalEventWheel() if self._hier_wheel else EventWheel()
        self._wheel = wheel
        awake = self._awake
        live = [
            core_id
            for core_id, core in enumerate(self.cores)
            if core is not None and not self._done[core_id]
        ]
        self._live_count = len(live)
        self._active = live if self._hier_wheel else None
        sleep_allowed = coproc.mode is not SharingMode.TEMPORAL
        coproc.wake_all_hook = self._wake_all_mid_cycle
        core_events = [0] * num_cores
        cycle = 0
        last_progress = 0
        try:
            while not self.finished:
                if cycle >= max_cycles:
                    self._settle_all(cycle)
                    raise SimulationError(
                        f"simulation exceeded {max_cycles} cycles "
                        f"(policy={self.policy.key})"
                    )
                if replay is not None and replay.engaged:
                    self._settle_all(cycle)
                    cycle, last_progress = replay.on_cycle(
                        cycle, max_cycles, last_progress
                    )
                    if cycle >= max_cycles:
                        continue
                if self._asleep_count:
                    for component in wheel.due(cycle):
                        self._settle(component, cycle)
                    if fast_forward and self._asleep_count == self._live_count:
                        nxt = wheel.next_wake()
                        if nxt is None:
                            # Every component is frozen with no event
                            # pending: jump to the deadlock horizon.
                            nxt = last_progress + DEADLOCK_WINDOW + 1
                        target = min(nxt, max_cycles)
                        if target > cycle:
                            skipped = target - cycle
                            coproc.skip_idle_cycles(skipped)
                            self._ff_skipped += skipped
                            cycle = target
                            continue
                metrics.begin_idle_cycle()
                progress = self._step_wheel(cycle, core_events)
                if progress:
                    last_progress = cycle
                else:
                    if (
                        cycle - last_progress > DEADLOCK_WINDOW
                        and self.next_event_cycle(cycle) is None
                    ):
                        self._settle_all(cycle)
                        raise DeadlockError(
                            f"no forward progress since cycle {last_progress} "
                            f"(policy={self.policy.key})"
                        )
                    if (
                        fast_forward
                        and self._asleep_count == 0
                        and (
                            not sleep_allowed
                            or (replay is not None and replay.engaged)
                        )
                    ):
                        # Per-component sleep cannot act (FTS coupling or
                        # an engaged replay controller): fall back to the
                        # global idle fast-forward, exactly as the
                        # reference engine would.
                        cycle = self._fast_forward(cycle, last_progress, max_cycles)
                if sleep_allowed and (replay is None or not replay.engaged):
                    active = self._active
                    candidates = (
                        range(num_cores) if active is None else tuple(active)
                    )
                    for component in candidates:
                        if (
                            not awake[component]
                            or self._done[component]
                            or self.cores[component] is None
                            or core_events[component]
                        ):
                            continue
                        wake = self._component_wake(component, cycle)
                        if wake is not None and wake <= cycle + 1:
                            continue  # nothing to skip before the next event
                        awake[component] = False
                        self._asleep_count += 1
                        self._sleep_from[component] = cycle + 1
                        self._sleep_events[component] = metrics.core_idle_events(
                            component
                        )
                        if active is not None:
                            active.remove(component)
                        if wake is not None:
                            wheel.schedule(component, wake)
                cycle += 1
        finally:
            coproc.wake_all_hook = None
        self._settle_all(cycle)
        return cycle

    def _step_wheel(self, cycle: int, core_events: List[int]) -> int:
        """One tickless cycle: step only awake components.

        With the hierarchical wheel the three per-core loops walk the
        sorted active list instead of every core slot, so a cycle costs
        O(awake components); ``core_events`` is still reset for *all* slots
        because a mid-cycle CTS wake can re-activate a sleeper whose entry
        must read zero.  The active list is mutated in place by done
        detection here and by :meth:`_settle` on mid-cycle wakes, so both
        post-dispatch loops walk snapshots.
        """
        awake = self._awake
        active = self._active
        for component in range(len(core_events)):
            core_events[component] = 0
        progress = 0
        cores = self.cores
        if active is None:
            stepping = [
                core_id
                for core_id, core in enumerate(cores)
                if core is not None and not self._done[core_id] and awake[core_id]
            ]
        else:
            stepping = active
        for core_id in stepping:
            retired = cores[core_id].step(cycle)
            core_events[core_id] += retired
            progress += retired
        progress += self.coproc.step(cycle, awake, core_events, active)
        checklist = (
            tuple(active)
            if active is not None
            else tuple(
                core_id
                for core_id, core in enumerate(cores)
                if core is not None and not self._done[core_id] and awake[core_id]
            )
        )
        for core_id in checklist:
            core = cores[core_id]
            if core.halted and self.coproc.drained(core_id):
                self._done[core_id] = True
                self.metrics.on_core_done(core_id, cycle)
                self.coproc.set_core_active(core_id, False)
                if self._loop_recorder is not None:
                    self._loop_recorder.on_core_done()
                self._live_count -= 1
                if active is not None:
                    active.remove(core_id)
                core_events[core_id] += 1
                progress += 1
        for core_id in checklist:
            if self._done[core_id]:
                continue
            if core_events[core_id]:
                self._comp_busy[core_id] += 1
            else:
                self._comp_idle[core_id] += 1
        if self.auditor is not None:
            self.auditor.check_machine(cycle)
        return progress

    def _component_wake(self, component: int, cycle: int) -> Optional[int]:
        """Earliest future cycle at which ``component`` can change behaviour.

        The wake-cycle contract: a sleeping component repeats this cycle's
        journal entries verbatim until (a) one of its issued instructions
        completes (unblocking commit, dependants, renamer frees and the
        transmit gate), (b) a queued store retires from its STQ, (c) a
        pending vector→scalar writeback lands in the scalar core, or — under
        coarse temporal sharing — (d) a quantum/drain boundary passes.  CTS
        ownership *switches* between boundaries are handled by a mid-cycle
        wake from the arbiter (:attr:`CoProcessor.wake_all_hook`).  Early
        wakes are harmless; ``None`` means no self-generated event can ever
        occur (the component sleeps until an external wake or deadlock).
        """
        earliest: float = math.inf
        completion = self.coproc.pools[component].next_completion(cycle)
        if completion is not None and completion < earliest:
            earliest = completion
        retire = self.coproc.lsus[component].next_store_retire(cycle)
        if retire is not None and retire < earliest:
            earliest = retire
        core = self.cores[component]
        if core is not None:
            pending = core.next_event_cycle(cycle)
            if pending is not None and pending < earliest:
                earliest = pending
        if self.coproc.mode is SharingMode.COARSE_TEMPORAL:
            for boundary in (
                self.coproc._cts_blocked_until,
                self.coproc._cts_until,
            ):
                if cycle < boundary < earliest:
                    earliest = boundary
        if earliest is math.inf:
            return None
        return int(math.ceil(earliest))

    def _settle(self, component: int, cycle: int) -> None:
        """Wake ``component``, settling its slept span's metrics in bulk."""
        if self._awake[component]:
            return
        start = self._sleep_from[component]
        slept = cycle - start
        if slept > 0:
            self.metrics.replay_core_idle_cycles(
                self._sleep_events[component], slept
            )
            self.metrics.on_sleep_span(component, start, cycle)
            self._comp_asleep[component] += slept
        self._awake[component] = True
        self._asleep_count -= 1
        if self._active is not None:
            insort(self._active, component)
        if self._wheel is not None:
            self._wheel.cancel(component)

    def _settle_all(self, cycle: int) -> None:
        for component in range(self.config.num_cores):
            self._settle(component, cycle)

    def _wake_all_mid_cycle(self, cycle: int) -> None:
        """CTS arbiter callback: an ownership switch fired at ``cycle``.

        Sleeping components' scalar phases for this very cycle were skipped
        while still frozen (the switch happens in the later dispatch
        phase), so after settling the span up to ``cycle`` their captured
        EM-SIMD overhead entries are replayed once more; the dispatch phase
        then runs live with the post-switch attribution.  Their commit and
        EM-SIMD phases this cycle are provably no-ops (no completion due
        before their wake, head not an executable EM-SIMD).
        """
        for component in range(self.config.num_cores):
            if self._awake[component]:
                continue
            events = self._sleep_events[component]
            self._settle(component, cycle)
            overhead = tuple(event for event in events if event[0] == "overhead")
            if overhead:
                self.metrics.replay_core_idle_cycles(overhead, 1)
                # Mirror the replayed entries into the armed per-cycle
                # journal: if the component goes back to sleep at the end
                # of this very cycle, its frozen journal must include the
                # scalar-phase overhead it keeps incurring.
                self.metrics.mirror_core_idle_events(overhead)


def run_policy(
    config: MachineConfig,
    policy: Policy,
    jobs: Sequence[Optional[Job]],
    max_cycles: int = 3_000_000,
    fast_forward: Optional[bool] = None,
    fast_path: Optional[bool] = None,
    audit: Optional[bool] = None,
    event_wheel: Optional[bool] = None,
    batch_exec: Optional[bool] = None,
    hier_wheel: Optional[bool] = None,
) -> RunResult:
    """Convenience wrapper: build a machine and run it."""
    return Machine(
        config,
        policy,
        jobs,
        audit=audit,
        event_wheel=event_wheel,
        batch_exec=batch_exec,
        hier_wheel=hier_wheel,
    ).run(max_cycles=max_cycles, fast_forward=fast_forward, fast_path=fast_path)
