"""The scalar (CPU) core model: interpreter + transmit rules (§4.1).

Each scalar core interprets the mini ISA in order, retiring up to
``scalar_ipc`` instructions per cycle.  Vector/EM-SIMD instructions are
*functionally executed at transmit time* — legal because each core
transmits in program order — and then handed to the co-processor as
:class:`DynamicInstruction` timing records (§4.1.1).

Ordering rules implemented here (Table 2, scalar-core-managed cells):

* ⟨Scalar, SVE/EM-SIMD⟩ — scalar operands are read at transmit, so the
  dependency is resolved by in-order interpretation;
* ⟨SVE, Scalar⟩ — a scalar read of a register written by an in-flight
  vector instruction (``VHReduce``) stalls until that instruction
  completes;
* ⟨EM-SIMD, Scalar/SVE⟩ — ``MRS`` of any register except ``<decision>``
  stalls until the core's older EM-SIMD writes have executed; ``MSR
  <decision>`` is transmitted speculatively (§4.1.1) and reads the table
  immediately.

Two execution strategies implement the same semantics:

* the **seed interpreter** (:meth:`ScalarCore._execute`): an
  ``isinstance`` chain that re-decodes operands on every execution —
  kept as the reference path, selected by ``REPRO_NO_PRE_DECODE=1``;
* the **pre-decoded dispatch table** (default): at construction every
  :class:`Program` instruction is resolved once into a bound handler
  closure with pre-parsed operands (:class:`DecodedInstr`), so the hot
  loop performs no ``isinstance`` checks, no label lookups and no
  operand re-classification.

Both paths are bit-identical — the determinism suite asserts it.
"""

from __future__ import annotations

import math
import os
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.common.config import CoreConfig
from repro.common.errors import SimulationError
from repro.coproc.coprocessor import CoProcessor
from repro.coproc.dynamic import DynamicInstruction, EntryKind, EntryState
from repro.coproc.metrics import Metrics
from repro.isa.instructions import (
    MRS,
    MSR,
    AddVL,
    Branch,
    Halt,
    Instruction,
    Label,
    ScalarOp,
    VHReduce,
    VLoad,
    VOp,
    VStore,
    WhileLT,
)
from repro.isa.operands import Imm, PReg, ScalarRef, VReg
from repro.isa.program import Program
from repro.isa.registers import SystemRegister
from repro.memory.image import MemoryImage

#: Sentinel returned by operand reads that must stall.
_STALL = object()

#: Elements per 128-bit lane for 32-bit data.
ELEMS_PER_LANE = 4


def default_pre_decode() -> bool:
    """Whether cores execute via the pre-decoded dispatch table.

    On unless ``REPRO_NO_PRE_DECODE`` is set (to any non-empty value);
    the two paths are bit-identical — the switch exists so the
    determinism layer can pin the decoded path against the seed
    interpreter.
    """
    return not os.environ.get("REPRO_NO_PRE_DECODE")


#: Scalar ALU semantics, shared by the seed interpreter and the decoded
#: handlers so both paths compute identical values.
_SCALAR_IMPLS: Dict[str, Callable[[List[object]], object]] = {
    "mov": lambda v: v[0],
    "add": lambda v: v[0] + v[1],
    "sub": lambda v: v[0] - v[1],
    "mul": lambda v: v[0] * v[1],
    "div": lambda v: v[0] / v[1] if v[1] else 0,
    "rem": lambda v: v[0] % v[1] if v[1] else 0,
    "and": lambda v: int(v[0]) & int(v[1]),
    "or": lambda v: int(v[0]) | int(v[1]),
    "min": lambda v: min(v),
    "max": lambda v: max(v),
    "lsl": lambda v: int(v[0]) << int(v[1]),
    "lsr": lambda v: int(v[0]) >> int(v[1]),
}

#: Branch-condition semantics (``al`` handled separately).
_BRANCH_IMPLS: Dict[str, Callable[[object, object], bool]] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


def _vop_div(operands: List[object]) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.divide(operands[0], operands[1])
    return np.nan_to_num(result, nan=0.0, posinf=0.0, neginf=0.0)


#: Element-wise vector semantics, shared by both execution paths.
_VOP_IMPLS: Dict[str, Callable[[List[object]], np.ndarray]] = {
    "add": lambda o: o[0] + o[1],
    "sub": lambda o: o[0] - o[1],
    "mul": lambda o: o[0] * o[1],
    "div": _vop_div,
    "sqrt": lambda o: np.sqrt(np.abs(o[0])),
    "fma": lambda o: o[0] * o[1] + o[2],
    "min": lambda o: np.minimum(o[0], o[1]),
    "max": lambda o: np.maximum(o[0], o[1]),
    "abs": lambda o: np.abs(o[0]),
    "neg": lambda o: -o[0],
    "dup": lambda o: o[0] + np.float32(0.0),
    "mov": lambda o: o[0] + np.float32(0.0),
    "cmpgt": lambda o: (o[0] > o[1]).astype(np.float32),
    "sel": lambda o: np.where(o[0] > 0, o[1], o[2]).astype(np.float32),
}


def _apply_vop(op: str, operands: List[object]) -> np.ndarray:
    """Element-wise semantics of a vector compute operation."""
    try:
        impl = _VOP_IMPLS[op]
    except KeyError:  # pragma: no cover - guarded by VOp validation
        raise SimulationError(f"unknown vector op {op}")
    return impl(operands)


class DecodedInstr:
    """One pre-decoded instruction: a bound handler plus static facts.

    ``run(cycle)`` executes the instruction exactly as the seed
    interpreter would, returning the same ``(outcome, stall_kind)``
    pair.  Operand classification (immediate vs register vs vector),
    label resolution and semantic-function lookup all happened once at
    decode time.
    """

    __slots__ = ("pc", "instr", "run", "is_vector", "is_branch")

    def __init__(
        self,
        pc: int,
        instr: Instruction,
        run: Callable[[int], Tuple[str, Optional[str]]],
        is_branch: bool = False,
    ) -> None:
        self.pc = pc
        self.instr = instr
        self.run = run
        self.is_vector = instr.is_vector
        self.is_branch = is_branch


def _scalar_spec(src: object) -> Tuple[bool, object]:
    """Classify a scalar operand once: (is_immediate, payload)."""
    if isinstance(src, Imm):
        return True, src.value
    if isinstance(src, (int, float)):
        return True, src
    return False, src.name if isinstance(src, ScalarRef) else src


#: Vector-operand spec kinds (decode-time classification).
_V_VREG, _V_SCALAR, _V_IMM = 0, 1, 2


def _vector_spec(operand: object) -> Tuple[int, object]:
    if isinstance(operand, VReg):
        return _V_VREG, operand.name
    if isinstance(operand, (ScalarRef, str)):
        return _V_SCALAR, operand.name if isinstance(operand, ScalarRef) else operand
    if isinstance(operand, Imm):
        return _V_IMM, np.float32(operand.value)
    raise SimulationError(f"bad vector operand {operand!r}")


class ScalarCore:
    """One in-order-retire scalar core driving the shared co-processor."""

    def __init__(
        self,
        core_id: int,
        program: Program,
        image: MemoryImage,
        coproc: CoProcessor,
        metrics: Metrics,
        config: CoreConfig,
        pre_decode: Optional[bool] = None,
    ) -> None:
        self.core_id = core_id
        self.program = program
        self.image = image
        self.coproc = coproc
        self.metrics = metrics
        self.config = config
        self.pc = 0
        self.halted = False
        self.regs: Dict[str, object] = {}
        self.vregs: Dict[str, np.ndarray] = {}
        self.pregs: Dict[str, int] = {}
        self._last_writer: Dict[str, DynamicInstruction] = {}
        self._pending_scalar: Dict[str, DynamicInstruction] = {}
        self.retired = 0
        self.retired_vector = 0
        self._monitor_idx = frozenset(program.meta.get("monitor", ()))
        self._reconfig_idx = frozenset(program.meta.get("reconfig", ()))
        self.pre_decode = default_pre_decode() if pre_decode is None else pre_decode
        #: Replay hooks: ``on_backedge(core_id, from_pc, target_pc, cycle)``
        #: fires when a taken branch jumps backwards; ``recorder`` (when
        #: set) receives an ``on_exec`` call per retired instruction.
        self.on_backedge: Optional[Callable[[int, int, int, int], None]] = None
        self.recorder = None
        #: Undo journal armed by the replay engine: when set, in-place
        #: memory-image writes append ``(array, index, old_slice)``.
        self._undo_log: Optional[List[Tuple[np.ndarray, int, np.ndarray]]] = None
        #: Pre-decoded dispatch table, one entry per instruction
        #: (``None`` for labels).  Built eagerly: the loop-replay engine
        #: uses it even when the seed interpreter drives `step`.
        self.decoded: List[Optional[DecodedInstr]] = [
            self._decode(index, instr)
            for index, instr in enumerate(program.instructions)
        ]

    # --- operand helpers ---------------------------------------------------

    def _read_reg(self, name: str, cycle: int) -> object:
        """Read scalar register ``name``; ``_STALL`` while a vector write
        to it is still in flight."""
        pending = self._pending_scalar.get(name)
        if pending is not None:
            if not pending.completed(cycle):
                return _STALL
            del self._pending_scalar[name]
        return self.regs.get(name, 0)

    def _read_scalar(self, src: object, cycle: int) -> object:
        """Read a scalar operand; returns ``_STALL`` if a vector write to it
        is still in flight."""
        if isinstance(src, Imm):
            return src.value
        if isinstance(src, (int, float)):
            return src
        name = src.name if isinstance(src, ScalarRef) else src
        return self._read_reg(name, cycle)

    def _elems(self) -> int:
        """Current vector length in 32-bit elements."""
        return self.coproc.configured_vl(self.core_id) * ELEMS_PER_LANE

    def _vec_operand(self, operand: object, active: int, cycle: int) -> object:
        """Materialise a vector operand as an array of >= ``active`` elems
        (or ``_STALL`` when a broadcast scalar is still pending)."""
        kind, payload = _vector_spec(operand)
        return self._vec_read(kind, payload, active, cycle)

    def _vec_read(self, kind: int, payload: object, active: int, cycle: int) -> object:
        """Materialise a pre-classified vector operand spec."""
        if kind == _V_VREG:
            value = self.vregs.get(payload)
            if value is None:
                value = np.zeros(active, dtype=np.float32)
            elif len(value) < active:
                value = np.concatenate(
                    [value, np.zeros(active - len(value), dtype=np.float32)]
                )
            return value[:active]
        if kind == _V_SCALAR:
            scalar = self._read_reg(payload, cycle)
            if scalar is _STALL:
                return _STALL
            return np.float32(scalar)
        return payload  # immediate, already an np.float32

    def _deps_for(self, names: Tuple[str, ...]) -> Tuple[DynamicInstruction, ...]:
        return tuple(
            self._last_writer[name] for name in names if name in self._last_writer
        )

    def _active(self, pred: Optional[PReg]) -> int:
        if pred is None:
            return self._elems()
        return self.pregs.get(pred.name, 0)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle a blocked scalar read can unblock.

        Next-event hook for the idle-cycle fast-forward.  A core stalled on
        a pending ``VHReduce`` scalar write-back resumes exactly when that
        in-flight instruction completes; every other scalar-side stall
        (transmit back-pressure, MRS synchronisation) clears via
        co-processor events the engine reports itself.
        """
        nxt: Optional[float] = None
        for entry in self._pending_scalar.values():
            if entry.state is EntryState.WAITING:
                continue
            if entry.complete_cycle > cycle and (
                nxt is None or entry.complete_cycle < nxt
            ):
                nxt = entry.complete_cycle
        if nxt is None:
            return None
        return int(math.ceil(nxt))

    # --- the per-cycle interpreter ------------------------------------------

    def step(self, cycle: int) -> int:
        """Retire up to ``scalar_ipc`` instructions; returns retired count."""
        if self.halted:
            return 0
        slots = self.config.scalar_ipc
        transmits = self.config.transmit_width
        retired_indices: List[int] = []
        stall_kind: Optional[str] = None
        decoded = self.decoded
        use_decoded = self.pre_decode
        recorder = self.recorder
        while slots > 0 and not self.halted:
            d = decoded[self.pc]
            if d is None:  # label: occupies no slot
                self.pc += 1
                continue
            if d.is_vector and transmits <= 0:
                break
            if use_decoded:
                outcome, kind = d.run(cycle)
            else:
                outcome, kind = self._execute(d.instr, cycle)
            if outcome == "stall":
                stall_kind = kind
                break
            # The retired instruction's own index feeds the Fig. 15
            # overhead attribution — for branches too (the branch *target*
            # is where execution resumes, not what retired this cycle).
            retired_indices.append(self.pc)
            if recorder is not None:
                recorder.on_exec(
                    self.core_id,
                    self.pc,
                    outcome,
                    self._branch_target if outcome == "branch" else 0,
                )
            if outcome == "branch":
                target = self._branch_target
                if target <= self.pc and self.on_backedge is not None:
                    self.on_backedge(self.core_id, self.pc, target, cycle)
                self.pc = target
            else:
                self.pc += 1
            slots -= 1
            if d.is_vector:
                transmits -= 1
            self.retired += 1
        self._account_overhead(retired_indices, stall_kind)
        return len(retired_indices)

    def _account_overhead(
        self, retired_indices: List[int], stall_kind: Optional[str]
    ) -> None:
        """Attribute whole cycles spent purely in EM-SIMD instrumentation
        (Fig. 15's monitoring vs reconfiguration split)."""
        if stall_kind == "reconfig":
            self.metrics.on_overhead_cycle(self.core_id, "reconfig")
            return
        if not retired_indices:
            return
        instrumented = self._monitor_idx | self._reconfig_idx
        if all(index in instrumented for index in retired_indices):
            if any(index in self._reconfig_idx for index in retired_indices):
                self.metrics.on_overhead_cycle(self.core_id, "reconfig")
            else:
                self.metrics.on_overhead_cycle(self.core_id, "monitor")

    # --- replay support ----------------------------------------------------

    def replay_snapshot(self) -> tuple:
        """Cheap copy of every mutable field the replay engine may touch."""
        return (
            self.pc,
            self.halted,
            self.retired,
            self.retired_vector,
            dict(self.regs),
            dict(self.vregs),
            dict(self.pregs),
            dict(self._last_writer),
            dict(self._pending_scalar),
        )

    def replay_restore(self, snap: tuple) -> None:
        """Undo to a :meth:`replay_snapshot` state (aborted replay).

        The register dictionaries are restored *in place*: decoded handler
        closures captured the dict objects at construction, so rebinding
        the attributes would leave the handlers writing into orphans.
        """
        (
            self.pc,
            self.halted,
            self.retired,
            self.retired_vector,
            regs,
            vregs,
            pregs,
            last_writer,
            pending,
        ) = snap
        self.regs.clear()
        self.regs.update(regs)
        self.vregs.clear()
        self.vregs.update(vregs)
        self.pregs.clear()
        self.pregs.update(pregs)
        self._last_writer.clear()
        self._last_writer.update(last_writer)
        self._pending_scalar.clear()
        self._pending_scalar.update(pending)

    # --- instruction pre-decoding -------------------------------------------

    def _decode(self, index: int, instr: Instruction) -> Optional[DecodedInstr]:
        """Resolve ``instr`` once into a bound handler closure."""
        if isinstance(instr, Label):
            return None
        if isinstance(instr, ScalarOp):
            return DecodedInstr(index, instr, self._make_scalar_op(instr))
        if isinstance(instr, Branch):
            return DecodedInstr(
                index, instr, self._make_branch(instr), is_branch=True
            )
        if isinstance(instr, AddVL):
            return DecodedInstr(index, instr, self._make_addvl(instr))
        if isinstance(instr, Halt):
            return DecodedInstr(index, instr, self._make_halt())
        if isinstance(instr, MSR):
            return DecodedInstr(index, instr, self._make_msr(instr))
        if isinstance(instr, MRS):
            return DecodedInstr(index, instr, self._make_mrs(instr))
        if isinstance(instr, WhileLT):
            return DecodedInstr(index, instr, self._make_whilelt(instr))
        if isinstance(instr, VOp):
            return DecodedInstr(index, instr, self._make_vop(instr))
        if isinstance(instr, VLoad):
            return DecodedInstr(index, instr, self._make_vload(instr))
        if isinstance(instr, VStore):
            return DecodedInstr(index, instr, self._make_vstore(instr))
        if isinstance(instr, VHReduce):
            return DecodedInstr(index, instr, self._make_vhreduce(instr))
        raise SimulationError(f"cannot decode {instr!r}")

    def _make_scalar_op(self, instr: ScalarOp):
        impl = _SCALAR_IMPLS[instr.op]
        specs = tuple(_scalar_spec(src) for src in instr.srcs)
        dst = instr.dst
        read_reg = self._read_reg
        regs = self.regs

        def run(cycle: int) -> Tuple[str, Optional[str]]:
            values = []
            for is_imm, payload in specs:
                if is_imm:
                    values.append(payload)
                else:
                    value = read_reg(payload, cycle)
                    if value is _STALL:
                        return "stall", None
                    values.append(value)
            regs[dst] = impl(values)
            return "ok", None

        return run

    def _make_branch(self, instr: Branch):
        target = self.program.target(instr.target)
        if instr.cond == "al":

            def run_always(cycle: int) -> Tuple[str, Optional[str]]:
                self._branch_target = target
                return "branch", None

            return run_always
        impl = _BRANCH_IMPLS[instr.cond]
        spec1 = _scalar_spec(instr.src1)
        spec2 = _scalar_spec(instr.src2)
        read = self._read_scalar_spec

        def run(cycle: int) -> Tuple[str, Optional[str]]:
            lhs = read(spec1, cycle)
            rhs = read(spec2, cycle)
            if lhs is _STALL or rhs is _STALL:
                return "stall", None
            if impl(lhs, rhs):
                self._branch_target = target
                return "branch", None
            return "ok", None

        return run

    def _read_scalar_spec(self, spec: Tuple[bool, object], cycle: int) -> object:
        is_imm, payload = spec
        if is_imm:
            return payload
        return self._read_reg(payload, cycle)

    def _make_addvl(self, instr: AddVL):
        spec = _scalar_spec(instr.src)
        dst = instr.dst
        elem_bytes = instr.elem_bytes

        def run(cycle: int) -> Tuple[str, Optional[str]]:
            value = self._read_scalar_spec(spec, cycle)
            if value is _STALL:
                return "stall", None
            lanes = self.coproc.configured_vl(self.core_id)
            self.regs[dst] = value + lanes * 16 // elem_bytes
            return "ok", None

        return run

    def _make_halt(self):
        def run(cycle: int) -> Tuple[str, Optional[str]]:
            self.halted = True
            return "ok", None

        return run

    def _make_msr(self, instr: MSR):
        spec = _scalar_spec(instr.src)
        sysreg = instr.sysreg
        coproc = self.coproc
        core_id = self.core_id

        def run(cycle: int) -> Tuple[str, Optional[str]]:
            if not coproc.can_transmit(core_id):
                return "stall", None
            value = self._read_scalar_spec(spec, cycle)
            if value is _STALL:
                return "stall", None
            entry = DynamicInstruction(
                seq=coproc.next_seq(),
                core=core_id,
                kind=EntryKind.EMSIMD,
                instr=instr,
                vl_lanes=coproc.configured_vl(core_id),
                transmit_cycle=cycle,
                sysreg=sysreg,
                value=value,
            )
            coproc.transmit(entry)
            self.retired_vector += 1
            return "ok", None

        return run

    def _make_mrs(self, instr: MRS):
        sysreg = instr.sysreg
        dst = instr.dst
        coproc = self.coproc
        core_id = self.core_id
        synchronising = sysreg is not SystemRegister.DECISION

        def run(cycle: int) -> Tuple[str, Optional[str]]:
            if synchronising and coproc.pending_emsimd(core_id) > 0:
                return "stall", "reconfig"
            self.regs[dst] = coproc.read_sysreg(core_id, sysreg)
            return "ok", None

        return run

    def _make_whilelt(self, instr: WhileLT):
        counter_spec = _scalar_spec(instr.counter)
        limit_spec = _scalar_spec(instr.limit)
        pdst = instr.pdst.name
        coproc = self.coproc
        core_id = self.core_id

        def run(cycle: int) -> Tuple[str, Optional[str]]:
            if not coproc.can_transmit(core_id):
                return "stall", None
            counter = self._read_scalar_spec(counter_spec, cycle)
            limit = self._read_scalar_spec(limit_spec, cycle)
            if counter is _STALL or limit is _STALL:
                return "stall", None
            active = max(0, min(self._elems(), int(limit) - int(counter)))
            self.pregs[pdst] = active
            entry = DynamicInstruction(
                seq=coproc.next_seq(),
                core=core_id,
                kind=EntryKind.COMPUTE,
                instr=instr,
                vl_lanes=0,  # predicate generation occupies no FP lanes
                transmit_cycle=cycle,
                writes_vreg=False,
            )
            self._last_writer[pdst] = entry
            coproc.transmit(entry)
            self.retired_vector += 1
            return "ok", None

        return run

    def _make_vop(self, instr: VOp):
        impl = _VOP_IMPLS[instr.op]
        src_specs = tuple(_vector_spec(src) for src in instr.srcs)
        dst = instr.dst.name
        pred = instr.pred
        dep_names = tuple(
            src.name for src in instr.srcs if isinstance(src, VReg)
        ) + ((pred.name,) if pred else ())
        flops_per_element = instr.flops_per_element
        long_latency = instr.is_long_latency
        coproc = self.coproc
        core_id = self.core_id

        def run(cycle: int) -> Tuple[str, Optional[str]]:
            if not coproc.can_transmit(core_id):
                return "stall", None
            active = self._active(pred)
            operands = []
            for kind, payload in src_specs:
                value = self._vec_read(kind, payload, active, cycle)
                if value is _STALL:
                    return "stall", None
                operands.append(value)
            elems = self._elems()
            width = max(elems, active)
            # Merging predication: inactive lanes keep the old destination
            # value (SVE /M), which reduction accumulators rely on in tail
            # iterations.
            old = self.vregs.get(dst)
            result = np.zeros(width, dtype=np.float32)
            if old is not None:
                span = min(len(old), width)
                result[:span] = old[:span]
            if active > 0:
                result[:active] = impl(operands)
            self.vregs[dst] = result
            entry = DynamicInstruction(
                seq=coproc.next_seq(),
                core=core_id,
                kind=EntryKind.COMPUTE,
                instr=instr,
                vl_lanes=coproc.configured_vl(core_id),
                transmit_cycle=cycle,
                deps=self._deps_for(dep_names),
                flops=flops_per_element * active,
                long_latency=long_latency,
                writes_vreg=True,
            )
            self._last_writer[dst] = entry
            coproc.transmit(entry)
            self.retired_vector += 1
            return "ok", None

        return run

    def _make_vload(self, instr: VLoad):
        dst = instr.dst.name
        array_name = instr.array
        index_spec = _scalar_spec(instr.index)
        pred = instr.pred
        stride = instr.stride
        elem_bytes = instr.elem_bytes
        dep_names = (pred.name,) if pred else ()
        coproc = self.coproc
        core_id = self.core_id
        image = self.image

        def run(cycle: int) -> Tuple[str, Optional[str]]:
            if not coproc.can_transmit(core_id):
                return "stall", None
            index = self._read_scalar_spec(index_spec, cycle)
            if index is _STALL:
                return "stall", None
            index = int(index)
            active = self._active(pred)
            array = image.array(array_name)
            span = (active - 1) * stride + 1 if active > 0 else 0
            if active > 0 and index + span > len(array):
                raise SimulationError(
                    f"core {core_id}: load of {array_name}"
                    f"[{index}:{index + span}:{stride}] overruns "
                    f"length {len(array)}"
                )
            elems = self._elems()
            value = np.zeros(max(elems, active), dtype=np.float32)
            if active > 0:
                value[:active] = array[index : index + span : stride]
            self.vregs[dst] = value
            entry = DynamicInstruction(
                seq=coproc.next_seq(),
                core=core_id,
                kind=EntryKind.LOAD,
                instr=instr,
                vl_lanes=coproc.configured_vl(core_id),
                transmit_cycle=cycle,
                deps=self._deps_for(dep_names),
                addr=image.address_of(array_name, index, elem_bytes),
                # A strided access touches every line in its span.
                nbytes=span * elem_bytes,
                writes_vreg=True,
            )
            self._last_writer[dst] = entry
            coproc.transmit(entry)
            self.retired_vector += 1
            return "ok", None

        return run

    def _make_vstore(self, instr: VStore):
        src = instr.src
        array_name = instr.array
        index_spec = _scalar_spec(instr.index)
        pred = instr.pred
        elem_bytes = instr.elem_bytes
        src_spec = _vector_spec(src)
        dep_names = (src.name,) + ((pred.name,) if pred else ())
        coproc = self.coproc
        core_id = self.core_id
        image = self.image

        def run(cycle: int) -> Tuple[str, Optional[str]]:
            if not coproc.can_transmit(core_id):
                return "stall", None
            index = self._read_scalar_spec(index_spec, cycle)
            if index is _STALL:
                return "stall", None
            index = int(index)
            active = self._active(pred)
            array = image.array(array_name)
            if active > 0 and index + active > len(array):
                raise SimulationError(
                    f"core {core_id}: store to {array_name}"
                    f"[{index}:{index + active}] overruns length {len(array)}"
                )
            value = self._vec_read(src_spec[0], src_spec[1], active, cycle)
            if value is _STALL:
                return "stall", None
            if active > 0:
                if self._undo_log is not None:
                    self._undo_log.append(
                        (array, index, array[index : index + active].copy())
                    )
                array[index : index + active] = value[:active]
            entry = DynamicInstruction(
                seq=coproc.next_seq(),
                core=core_id,
                kind=EntryKind.STORE,
                instr=instr,
                vl_lanes=coproc.configured_vl(core_id),
                transmit_cycle=cycle,
                deps=self._deps_for(dep_names),
                addr=image.address_of(array_name, index, elem_bytes),
                nbytes=active * elem_bytes,
                writes_vreg=False,
            )
            coproc.transmit(entry)
            self.retired_vector += 1
            return "ok", None

        return run

    def _make_vhreduce(self, instr: VHReduce):
        op = instr.op
        dst = instr.dst
        pred = instr.pred
        src_spec = _vector_spec(instr.src)
        dep_names = (instr.src.name,) + ((pred.name,) if pred else ())
        coproc = self.coproc
        core_id = self.core_id

        def run(cycle: int) -> Tuple[str, Optional[str]]:
            if not coproc.can_transmit(core_id):
                return "stall", None
            active = self._active(pred)
            source = self._vec_read(src_spec[0], src_spec[1], active, cycle)
            if active > 0:
                if op == "add":
                    value = float(np.add.reduce(source[:active], dtype=np.float64))
                elif op == "max":
                    value = float(np.max(source[:active]))
                else:
                    value = float(np.min(source[:active]))
            else:
                value = 0.0
            self.regs[dst] = value
            entry = DynamicInstruction(
                seq=coproc.next_seq(),
                core=core_id,
                kind=EntryKind.COMPUTE,
                instr=instr,
                vl_lanes=coproc.configured_vl(core_id),
                transmit_cycle=cycle,
                deps=self._deps_for(dep_names),
                flops=active,
                writes_vreg=False,
                scalar_dst=dst,
            )
            self._pending_scalar[dst] = entry
            coproc.transmit(entry)
            self.retired_vector += 1
            return "ok", None

        return run

    # --- instruction semantics (the seed interpreter) ------------------------

    def _execute(self, instr: Instruction, cycle: int) -> Tuple[str, Optional[str]]:
        """Execute one instruction. Returns (outcome, stall_kind) where
        outcome is "ok", "branch" or "stall"."""
        if isinstance(instr, ScalarOp):
            return self._exec_scalar_op(instr, cycle)
        if isinstance(instr, Branch):
            return self._exec_branch(instr, cycle)
        if isinstance(instr, AddVL):
            value = self._read_scalar(instr.src, cycle)
            if value is _STALL:
                return "stall", None
            lanes = self.coproc.configured_vl(self.core_id)
            self.regs[instr.dst] = value + lanes * 16 // instr.elem_bytes
            return "ok", None
        if isinstance(instr, Halt):
            self.halted = True
            return "ok", None
        if isinstance(instr, MSR):
            return self._exec_msr(instr, cycle)
        if isinstance(instr, MRS):
            return self._exec_mrs(instr, cycle)
        if isinstance(instr, WhileLT):
            return self._exec_whilelt(instr, cycle)
        if isinstance(instr, VOp):
            return self._exec_vop(instr, cycle)
        if isinstance(instr, VLoad):
            return self._exec_vload(instr, cycle)
        if isinstance(instr, VStore):
            return self._exec_vstore(instr, cycle)
        if isinstance(instr, VHReduce):
            return self._exec_vhreduce(instr, cycle)
        raise SimulationError(f"cannot execute {instr!r}")

    def _exec_scalar_op(self, instr: ScalarOp, cycle: int) -> Tuple[str, Optional[str]]:
        values = []
        for src in instr.srcs:
            value = self._read_scalar(src, cycle)
            if value is _STALL:
                return "stall", None
            values.append(value)
        try:
            impl = _SCALAR_IMPLS[instr.op]
        except KeyError:  # pragma: no cover - guarded by ScalarOp validation
            raise SimulationError(f"unknown scalar op {instr.op}")
        self.regs[instr.dst] = impl(values)
        return "ok", None

    _branch_target = 0

    def _exec_branch(self, instr: Branch, cycle: int) -> Tuple[str, Optional[str]]:
        if instr.cond == "al":
            taken = True
        else:
            lhs = self._read_scalar(instr.src1, cycle)
            rhs = self._read_scalar(instr.src2, cycle)
            if lhs is _STALL or rhs is _STALL:
                return "stall", None
            taken = _BRANCH_IMPLS[instr.cond](lhs, rhs)
        if taken:
            self._branch_target = self.program.target(instr.target)
            return "branch", None
        return "ok", None

    def _exec_msr(self, instr: MSR, cycle: int) -> Tuple[str, Optional[str]]:
        if not self.coproc.can_transmit(self.core_id):
            return "stall", None
        value = self._read_scalar(instr.src, cycle)
        if value is _STALL:
            return "stall", None
        entry = DynamicInstruction(
            seq=self.coproc.next_seq(),
            core=self.core_id,
            kind=EntryKind.EMSIMD,
            instr=instr,
            vl_lanes=self.coproc.configured_vl(self.core_id),
            transmit_cycle=cycle,
            sysreg=instr.sysreg,
            value=value,
        )
        self.coproc.transmit(entry)
        self.retired_vector += 1
        return "ok", None

    def _exec_mrs(self, instr: MRS, cycle: int) -> Tuple[str, Optional[str]]:
        if instr.sysreg is not SystemRegister.DECISION:
            # Synchronising read: wait for older EM-SIMD writes to execute.
            if self.coproc.pending_emsimd(self.core_id) > 0:
                return "stall", "reconfig"
        self.regs[instr.dst] = self.coproc.read_sysreg(self.core_id, instr.sysreg)
        return "ok", None

    def _exec_whilelt(self, instr: WhileLT, cycle: int) -> Tuple[str, Optional[str]]:
        if not self.coproc.can_transmit(self.core_id):
            return "stall", None
        counter = self._read_scalar(instr.counter, cycle)
        limit = self._read_scalar(instr.limit, cycle)
        if counter is _STALL or limit is _STALL:
            return "stall", None
        active = max(0, min(self._elems(), int(limit) - int(counter)))
        self.pregs[instr.pdst.name] = active
        entry = DynamicInstruction(
            seq=self.coproc.next_seq(),
            core=self.core_id,
            kind=EntryKind.COMPUTE,
            instr=instr,
            vl_lanes=0,  # predicate generation occupies no FP lanes
            transmit_cycle=cycle,
            writes_vreg=False,
        )
        self._last_writer[instr.pdst.name] = entry
        self.coproc.transmit(entry)
        self.retired_vector += 1
        return "ok", None

    def _exec_vop(self, instr: VOp, cycle: int) -> Tuple[str, Optional[str]]:
        if not self.coproc.can_transmit(self.core_id):
            return "stall", None
        active = self._active(instr.pred)
        operands = []
        for src in instr.srcs:
            value = self._vec_operand(src, active, cycle)
            if value is _STALL:
                return "stall", None
            operands.append(value)
        elems = self._elems()
        width = max(elems, active)
        # Merging predication: inactive lanes keep the old destination value
        # (SVE /M), which reduction accumulators rely on in tail iterations.
        old = self.vregs.get(instr.dst.name)
        result = np.zeros(width, dtype=np.float32)
        if old is not None:
            span = min(len(old), width)
            result[:span] = old[:span]
        if active > 0:
            result[:active] = _apply_vop(instr.op, operands)
        self.vregs[instr.dst.name] = result
        dep_names = tuple(
            src.name for src in instr.srcs if isinstance(src, VReg)
        ) + ((instr.pred.name,) if instr.pred else ())
        entry = DynamicInstruction(
            seq=self.coproc.next_seq(),
            core=self.core_id,
            kind=EntryKind.COMPUTE,
            instr=instr,
            vl_lanes=self.coproc.configured_vl(self.core_id),
            transmit_cycle=cycle,
            deps=self._deps_for(dep_names),
            flops=instr.flops_per_element * active,
            long_latency=instr.is_long_latency,
            writes_vreg=True,
        )
        self._last_writer[instr.dst.name] = entry
        self.coproc.transmit(entry)
        self.retired_vector += 1
        return "ok", None

    def _exec_vload(self, instr: VLoad, cycle: int) -> Tuple[str, Optional[str]]:
        if not self.coproc.can_transmit(self.core_id):
            return "stall", None
        index = self._read_scalar(instr.index, cycle)
        if index is _STALL:
            return "stall", None
        index = int(index)
        active = self._active(instr.pred)
        stride = instr.stride
        array = self.image.array(instr.array)
        span = (active - 1) * stride + 1 if active > 0 else 0
        if active > 0 and index + span > len(array):
            raise SimulationError(
                f"core {self.core_id}: load of {instr.array}"
                f"[{index}:{index + span}:{stride}] overruns "
                f"length {len(array)}"
            )
        elems = self._elems()
        value = np.zeros(max(elems, active), dtype=np.float32)
        if active > 0:
            value[:active] = array[index : index + span : stride]
        self.vregs[instr.dst.name] = value
        dep_names = (instr.pred.name,) if instr.pred else ()
        entry = DynamicInstruction(
            seq=self.coproc.next_seq(),
            core=self.core_id,
            kind=EntryKind.LOAD,
            instr=instr,
            vl_lanes=self.coproc.configured_vl(self.core_id),
            transmit_cycle=cycle,
            deps=self._deps_for(dep_names),
            addr=self.image.address_of(instr.array, index, instr.elem_bytes),
            # A strided access touches every line in its span.
            nbytes=span * instr.elem_bytes,
            writes_vreg=True,
        )
        self._last_writer[instr.dst.name] = entry
        self.coproc.transmit(entry)
        self.retired_vector += 1
        return "ok", None

    def _exec_vstore(self, instr: VStore, cycle: int) -> Tuple[str, Optional[str]]:
        if not self.coproc.can_transmit(self.core_id):
            return "stall", None
        index = self._read_scalar(instr.index, cycle)
        if index is _STALL:
            return "stall", None
        index = int(index)
        active = self._active(instr.pred)
        array = self.image.array(instr.array)
        if active > 0 and index + active > len(array):
            raise SimulationError(
                f"core {self.core_id}: store to {instr.array}"
                f"[{index}:{index + active}] overruns length {len(array)}"
            )
        value = self._vec_operand(instr.src, active, cycle)
        if value is _STALL:
            return "stall", None
        if active > 0:
            if self._undo_log is not None:
                self._undo_log.append(
                    (array, index, array[index : index + active].copy())
                )
            array[index : index + active] = value[:active]
        dep_names = (instr.src.name,) + ((instr.pred.name,) if instr.pred else ())
        entry = DynamicInstruction(
            seq=self.coproc.next_seq(),
            core=self.core_id,
            kind=EntryKind.STORE,
            instr=instr,
            vl_lanes=self.coproc.configured_vl(self.core_id),
            transmit_cycle=cycle,
            deps=self._deps_for(dep_names),
            addr=self.image.address_of(instr.array, index, instr.elem_bytes),
            nbytes=active * instr.elem_bytes,
            writes_vreg=False,
        )
        self.coproc.transmit(entry)
        self.retired_vector += 1
        return "ok", None

    def _exec_vhreduce(self, instr: VHReduce, cycle: int) -> Tuple[str, Optional[str]]:
        if not self.coproc.can_transmit(self.core_id):
            return "stall", None
        active = self._active(instr.pred)
        source = self._vec_operand(instr.src, active, cycle)
        if active > 0:
            if instr.op == "add":
                value = float(np.add.reduce(source[:active], dtype=np.float64))
            elif instr.op == "max":
                value = float(np.max(source[:active]))
            else:
                value = float(np.min(source[:active]))
        else:
            value = 0.0
        self.regs[instr.dst] = value
        dep_names = (instr.src.name,) + ((instr.pred.name,) if instr.pred else ())
        entry = DynamicInstruction(
            seq=self.coproc.next_seq(),
            core=self.core_id,
            kind=EntryKind.COMPUTE,
            instr=instr,
            vl_lanes=self.coproc.configured_vl(self.core_id),
            transmit_cycle=cycle,
            deps=self._deps_for(dep_names),
            flops=active,
            writes_vreg=False,
            scalar_dst=instr.dst,
        )
        self._pending_scalar[instr.dst] = entry
        self.coproc.transmit(entry)
        self.retired_vector += 1
        return "ok", None
