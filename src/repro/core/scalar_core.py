"""The scalar (CPU) core model: interpreter + transmit rules (§4.1).

Each scalar core interprets the mini ISA in order, retiring up to
``scalar_ipc`` instructions per cycle.  Vector/EM-SIMD instructions are
*functionally executed at transmit time* — legal because each core
transmits in program order — and then handed to the co-processor as
:class:`DynamicInstruction` timing records (§4.1.1).

Ordering rules implemented here (Table 2, scalar-core-managed cells):

* ⟨Scalar, SVE/EM-SIMD⟩ — scalar operands are read at transmit, so the
  dependency is resolved by in-order interpretation;
* ⟨SVE, Scalar⟩ — a scalar read of a register written by an in-flight
  vector instruction (``VHReduce``) stalls until that instruction
  completes;
* ⟨EM-SIMD, Scalar/SVE⟩ — ``MRS`` of any register except ``<decision>``
  stalls until the core's older EM-SIMD writes have executed; ``MRS
  <decision>`` is transmitted speculatively (§4.1.1) and reads the table
  immediately.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.config import CoreConfig
from repro.common.errors import SimulationError
from repro.coproc.coprocessor import CoProcessor
from repro.coproc.dynamic import DynamicInstruction, EntryKind, EntryState
from repro.coproc.metrics import Metrics
from repro.isa.instructions import (
    MRS,
    MSR,
    AddVL,
    Branch,
    Halt,
    Instruction,
    Label,
    ScalarOp,
    VHReduce,
    VLoad,
    VOp,
    VStore,
    WhileLT,
)
from repro.isa.operands import Imm, PReg, ScalarRef, VReg
from repro.isa.program import Program
from repro.isa.registers import SystemRegister
from repro.memory.image import MemoryImage

#: Sentinel returned by operand reads that must stall.
_STALL = object()

#: Elements per 128-bit lane for 32-bit data.
ELEMS_PER_LANE = 4


class ScalarCore:
    """One in-order-retire scalar core driving the shared co-processor."""

    def __init__(
        self,
        core_id: int,
        program: Program,
        image: MemoryImage,
        coproc: CoProcessor,
        metrics: Metrics,
        config: CoreConfig,
    ) -> None:
        self.core_id = core_id
        self.program = program
        self.image = image
        self.coproc = coproc
        self.metrics = metrics
        self.config = config
        self.pc = 0
        self.halted = False
        self.regs: Dict[str, object] = {}
        self.vregs: Dict[str, np.ndarray] = {}
        self.pregs: Dict[str, int] = {}
        self._last_writer: Dict[str, DynamicInstruction] = {}
        self._pending_scalar: Dict[str, DynamicInstruction] = {}
        self.retired = 0
        self.retired_vector = 0
        self._monitor_idx = frozenset(program.meta.get("monitor", ()))
        self._reconfig_idx = frozenset(program.meta.get("reconfig", ()))

    # --- operand helpers ---------------------------------------------------

    def _read_scalar(self, src: object, cycle: int) -> object:
        """Read a scalar operand; returns ``_STALL`` if a vector write to it
        is still in flight."""
        if isinstance(src, Imm):
            return src.value
        if isinstance(src, (int, float)):
            return src
        name = src.name if isinstance(src, ScalarRef) else src
        pending = self._pending_scalar.get(name)
        if pending is not None:
            if not pending.completed(cycle):
                return _STALL
            del self._pending_scalar[name]
        return self.regs.get(name, 0)

    def _elems(self) -> int:
        """Current vector length in 32-bit elements."""
        return self.coproc.configured_vl(self.core_id) * ELEMS_PER_LANE

    def _vec_operand(self, operand: object, active: int, cycle: int) -> object:
        """Materialise a vector operand as an array of >= ``active`` elems
        (or ``_STALL`` when a broadcast scalar is still pending)."""
        if isinstance(operand, VReg):
            value = self.vregs.get(operand.name)
            if value is None:
                value = np.zeros(active, dtype=np.float32)
            elif len(value) < active:
                value = np.concatenate(
                    [value, np.zeros(active - len(value), dtype=np.float32)]
                )
            return value[:active]
        if isinstance(operand, (ScalarRef, str)):
            scalar = self._read_scalar(operand, cycle)
            if scalar is _STALL:
                return _STALL
            return np.float32(scalar)
        if isinstance(operand, Imm):
            return np.float32(operand.value)
        raise SimulationError(f"bad vector operand {operand!r}")

    def _deps_for(self, names: Tuple[str, ...]) -> Tuple[DynamicInstruction, ...]:
        return tuple(
            self._last_writer[name] for name in names if name in self._last_writer
        )

    def _active(self, pred: Optional[PReg]) -> int:
        if pred is None:
            return self._elems()
        return self.pregs.get(pred.name, 0)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle a blocked scalar read can unblock.

        Next-event hook for the idle-cycle fast-forward.  A core stalled on
        a pending ``VHReduce`` scalar write-back resumes exactly when that
        in-flight instruction completes; every other scalar-side stall
        (transmit back-pressure, MRS synchronisation) clears via
        co-processor events the engine reports itself.
        """
        nxt: Optional[float] = None
        for entry in self._pending_scalar.values():
            if entry.state is EntryState.WAITING:
                continue
            if entry.complete_cycle > cycle and (
                nxt is None or entry.complete_cycle < nxt
            ):
                nxt = entry.complete_cycle
        if nxt is None:
            return None
        return int(math.ceil(nxt))

    # --- the per-cycle interpreter ------------------------------------------

    def step(self, cycle: int) -> int:
        """Retire up to ``scalar_ipc`` instructions; returns retired count."""
        if self.halted:
            return 0
        slots = self.config.scalar_ipc
        transmits = self.config.transmit_width
        retired_indices: List[int] = []
        stall_kind: Optional[str] = None
        while slots > 0 and not self.halted:
            instr = self.program.instructions[self.pc]
            if isinstance(instr, Label):
                self.pc += 1
                continue
            if instr.is_vector and transmits <= 0:
                break
            outcome, kind = self._execute(instr, cycle)
            if outcome == "stall":
                stall_kind = kind
                break
            retired_indices.append(self.pc if outcome != "branch" else self.pc)
            if outcome == "branch":
                self.pc = self._branch_target
            else:
                self.pc += 1
            slots -= 1
            if instr.is_vector:
                transmits -= 1
            self.retired += 1
        self._account_overhead(retired_indices, stall_kind)
        return len(retired_indices)

    def _account_overhead(
        self, retired_indices: List[int], stall_kind: Optional[str]
    ) -> None:
        """Attribute whole cycles spent purely in EM-SIMD instrumentation
        (Fig. 15's monitoring vs reconfiguration split)."""
        if stall_kind == "reconfig":
            self.metrics.on_overhead_cycle(self.core_id, "reconfig")
            return
        if not retired_indices:
            return
        instrumented = self._monitor_idx | self._reconfig_idx
        if all(index in instrumented for index in retired_indices):
            if any(index in self._reconfig_idx for index in retired_indices):
                self.metrics.on_overhead_cycle(self.core_id, "reconfig")
            else:
                self.metrics.on_overhead_cycle(self.core_id, "monitor")

    # --- instruction semantics ----------------------------------------------

    def _execute(self, instr: Instruction, cycle: int) -> Tuple[str, Optional[str]]:
        """Execute one instruction. Returns (outcome, stall_kind) where
        outcome is "ok", "branch" or "stall"."""
        if isinstance(instr, ScalarOp):
            return self._exec_scalar_op(instr, cycle)
        if isinstance(instr, Branch):
            return self._exec_branch(instr, cycle)
        if isinstance(instr, AddVL):
            value = self._read_scalar(instr.src, cycle)
            if value is _STALL:
                return "stall", None
            lanes = self.coproc.configured_vl(self.core_id)
            self.regs[instr.dst] = value + lanes * 16 // instr.elem_bytes
            return "ok", None
        if isinstance(instr, Halt):
            self.halted = True
            return "ok", None
        if isinstance(instr, MSR):
            return self._exec_msr(instr, cycle)
        if isinstance(instr, MRS):
            return self._exec_mrs(instr, cycle)
        if isinstance(instr, WhileLT):
            return self._exec_whilelt(instr, cycle)
        if isinstance(instr, VOp):
            return self._exec_vop(instr, cycle)
        if isinstance(instr, VLoad):
            return self._exec_vload(instr, cycle)
        if isinstance(instr, VStore):
            return self._exec_vstore(instr, cycle)
        if isinstance(instr, VHReduce):
            return self._exec_vhreduce(instr, cycle)
        raise SimulationError(f"cannot execute {instr!r}")

    def _exec_scalar_op(self, instr: ScalarOp, cycle: int) -> Tuple[str, Optional[str]]:
        values = []
        for src in instr.srcs:
            value = self._read_scalar(src, cycle)
            if value is _STALL:
                return "stall", None
            values.append(value)
        op = instr.op
        if op == "mov":
            result = values[0]
        elif op == "add":
            result = values[0] + values[1]
        elif op == "sub":
            result = values[0] - values[1]
        elif op == "mul":
            result = values[0] * values[1]
        elif op == "div":
            result = values[0] / values[1] if values[1] else 0
        elif op == "rem":
            result = values[0] % values[1] if values[1] else 0
        elif op == "and":
            result = int(values[0]) & int(values[1])
        elif op == "or":
            result = int(values[0]) | int(values[1])
        elif op == "min":
            result = min(values)
        elif op == "max":
            result = max(values)
        elif op == "lsl":
            result = int(values[0]) << int(values[1])
        elif op == "lsr":
            result = int(values[0]) >> int(values[1])
        else:  # pragma: no cover - guarded by ScalarOp validation
            raise SimulationError(f"unknown scalar op {op}")
        self.regs[instr.dst] = result
        return "ok", None

    _branch_target = 0

    def _exec_branch(self, instr: Branch, cycle: int) -> Tuple[str, Optional[str]]:
        if instr.cond == "al":
            taken = True
        else:
            lhs = self._read_scalar(instr.src1, cycle)
            rhs = self._read_scalar(instr.src2, cycle)
            if lhs is _STALL or rhs is _STALL:
                return "stall", None
            taken = {
                "eq": lhs == rhs,
                "ne": lhs != rhs,
                "lt": lhs < rhs,
                "le": lhs <= rhs,
                "gt": lhs > rhs,
                "ge": lhs >= rhs,
            }[instr.cond]
        if taken:
            self._branch_target = self.program.target(instr.target)
            return "branch", None
        return "ok", None

    def _exec_msr(self, instr: MSR, cycle: int) -> Tuple[str, Optional[str]]:
        if not self.coproc.can_transmit(self.core_id):
            return "stall", None
        value = self._read_scalar(instr.src, cycle)
        if value is _STALL:
            return "stall", None
        entry = DynamicInstruction(
            seq=self.coproc.next_seq(),
            core=self.core_id,
            kind=EntryKind.EMSIMD,
            instr=instr,
            vl_lanes=self.coproc.configured_vl(self.core_id),
            transmit_cycle=cycle,
            sysreg=instr.sysreg,
            value=value,
        )
        self.coproc.transmit(entry)
        self.retired_vector += 1
        return "ok", None

    def _exec_mrs(self, instr: MRS, cycle: int) -> Tuple[str, Optional[str]]:
        if instr.sysreg is not SystemRegister.DECISION:
            # Synchronising read: wait for older EM-SIMD writes to execute.
            if self.coproc.pending_emsimd(self.core_id) > 0:
                return "stall", "reconfig"
        self.regs[instr.dst] = self.coproc.read_sysreg(self.core_id, instr.sysreg)
        return "ok", None

    def _exec_whilelt(self, instr: WhileLT, cycle: int) -> Tuple[str, Optional[str]]:
        if not self.coproc.can_transmit(self.core_id):
            return "stall", None
        counter = self._read_scalar(instr.counter, cycle)
        limit = self._read_scalar(instr.limit, cycle)
        if counter is _STALL or limit is _STALL:
            return "stall", None
        active = max(0, min(self._elems(), int(limit) - int(counter)))
        self.pregs[instr.pdst.name] = active
        entry = DynamicInstruction(
            seq=self.coproc.next_seq(),
            core=self.core_id,
            kind=EntryKind.COMPUTE,
            instr=instr,
            vl_lanes=0,  # predicate generation occupies no FP lanes
            transmit_cycle=cycle,
            writes_vreg=False,
        )
        self._last_writer[instr.pdst.name] = entry
        self.coproc.transmit(entry)
        self.retired_vector += 1
        return "ok", None

    def _exec_vop(self, instr: VOp, cycle: int) -> Tuple[str, Optional[str]]:
        if not self.coproc.can_transmit(self.core_id):
            return "stall", None
        active = self._active(instr.pred)
        operands = []
        for src in instr.srcs:
            value = self._vec_operand(src, active, cycle)
            if value is _STALL:
                return "stall", None
            operands.append(value)
        elems = self._elems()
        width = max(elems, active)
        # Merging predication: inactive lanes keep the old destination value
        # (SVE /M), which reduction accumulators rely on in tail iterations.
        old = self.vregs.get(instr.dst.name)
        result = np.zeros(width, dtype=np.float32)
        if old is not None:
            span = min(len(old), width)
            result[:span] = old[:span]
        if active > 0:
            result[:active] = _apply_vop(instr.op, operands)
        self.vregs[instr.dst.name] = result
        dep_names = tuple(
            src.name for src in instr.srcs if isinstance(src, VReg)
        ) + ((instr.pred.name,) if instr.pred else ())
        entry = DynamicInstruction(
            seq=self.coproc.next_seq(),
            core=self.core_id,
            kind=EntryKind.COMPUTE,
            instr=instr,
            vl_lanes=self.coproc.configured_vl(self.core_id),
            transmit_cycle=cycle,
            deps=self._deps_for(dep_names),
            flops=instr.flops_per_element * active,
            long_latency=instr.is_long_latency,
            writes_vreg=True,
        )
        self._last_writer[instr.dst.name] = entry
        self.coproc.transmit(entry)
        self.retired_vector += 1
        return "ok", None

    def _exec_vload(self, instr: VLoad, cycle: int) -> Tuple[str, Optional[str]]:
        if not self.coproc.can_transmit(self.core_id):
            return "stall", None
        index = self._read_scalar(instr.index, cycle)
        if index is _STALL:
            return "stall", None
        index = int(index)
        active = self._active(instr.pred)
        stride = instr.stride
        array = self.image.array(instr.array)
        span = (active - 1) * stride + 1 if active > 0 else 0
        if active > 0 and index + span > len(array):
            raise SimulationError(
                f"core {self.core_id}: load of {instr.array}"
                f"[{index}:{index + span}:{stride}] overruns "
                f"length {len(array)}"
            )
        elems = self._elems()
        value = np.zeros(max(elems, active), dtype=np.float32)
        if active > 0:
            value[:active] = array[index : index + span : stride]
        self.vregs[instr.dst.name] = value
        dep_names = (instr.pred.name,) if instr.pred else ()
        entry = DynamicInstruction(
            seq=self.coproc.next_seq(),
            core=self.core_id,
            kind=EntryKind.LOAD,
            instr=instr,
            vl_lanes=self.coproc.configured_vl(self.core_id),
            transmit_cycle=cycle,
            deps=self._deps_for(dep_names),
            addr=self.image.address_of(instr.array, index, instr.elem_bytes),
            # A strided access touches every line in its span.
            nbytes=span * instr.elem_bytes,
            writes_vreg=True,
        )
        self._last_writer[instr.dst.name] = entry
        self.coproc.transmit(entry)
        self.retired_vector += 1
        return "ok", None

    def _exec_vstore(self, instr: VStore, cycle: int) -> Tuple[str, Optional[str]]:
        if not self.coproc.can_transmit(self.core_id):
            return "stall", None
        index = self._read_scalar(instr.index, cycle)
        if index is _STALL:
            return "stall", None
        index = int(index)
        active = self._active(instr.pred)
        array = self.image.array(instr.array)
        if active > 0 and index + active > len(array):
            raise SimulationError(
                f"core {self.core_id}: store to {instr.array}"
                f"[{index}:{index + active}] overruns length {len(array)}"
            )
        value = self._vec_operand(instr.src, active, cycle)
        if value is _STALL:
            return "stall", None
        if active > 0:
            array[index : index + active] = value[:active]
        dep_names = (instr.src.name,) + ((instr.pred.name,) if instr.pred else ())
        entry = DynamicInstruction(
            seq=self.coproc.next_seq(),
            core=self.core_id,
            kind=EntryKind.STORE,
            instr=instr,
            vl_lanes=self.coproc.configured_vl(self.core_id),
            transmit_cycle=cycle,
            deps=self._deps_for(dep_names),
            addr=self.image.address_of(instr.array, index, instr.elem_bytes),
            nbytes=active * instr.elem_bytes,
            writes_vreg=False,
        )
        self.coproc.transmit(entry)
        self.retired_vector += 1
        return "ok", None

    def _exec_vhreduce(self, instr: VHReduce, cycle: int) -> Tuple[str, Optional[str]]:
        if not self.coproc.can_transmit(self.core_id):
            return "stall", None
        active = self._active(instr.pred)
        source = self._vec_operand(instr.src, active, cycle)
        if active > 0:
            if instr.op == "add":
                value = float(np.add.reduce(source[:active], dtype=np.float64))
            elif instr.op == "max":
                value = float(np.max(source[:active]))
            else:
                value = float(np.min(source[:active]))
        else:
            value = 0.0
        self.regs[instr.dst] = value
        dep_names = (instr.src.name,) + ((instr.pred.name,) if instr.pred else ())
        entry = DynamicInstruction(
            seq=self.coproc.next_seq(),
            core=self.core_id,
            kind=EntryKind.COMPUTE,
            instr=instr,
            vl_lanes=self.coproc.configured_vl(self.core_id),
            transmit_cycle=cycle,
            deps=self._deps_for(dep_names),
            flops=active,
            writes_vreg=False,
            scalar_dst=instr.dst,
        )
        self._pending_scalar[instr.dst] = entry
        self.coproc.transmit(entry)
        self.retired_vector += 1
        return "ok", None


def _apply_vop(op: str, operands: List[object]) -> np.ndarray:
    """Element-wise semantics of a vector compute operation."""
    if op == "add":
        return operands[0] + operands[1]
    if op == "sub":
        return operands[0] - operands[1]
    if op == "mul":
        return operands[0] * operands[1]
    if op == "div":
        with np.errstate(divide="ignore", invalid="ignore"):
            result = np.divide(operands[0], operands[1])
        return np.nan_to_num(result, nan=0.0, posinf=0.0, neginf=0.0)
    if op == "sqrt":
        return np.sqrt(np.abs(operands[0]))
    if op == "fma":
        return operands[0] * operands[1] + operands[2]
    if op == "min":
        return np.minimum(operands[0], operands[1])
    if op == "max":
        return np.maximum(operands[0], operands[1])
    if op == "abs":
        return np.abs(operands[0])
    if op == "neg":
        return -operands[0]
    if op in ("dup", "mov"):
        return operands[0] + np.float32(0.0)
    if op == "cmpgt":
        return (operands[0] > operands[1]).astype(np.float32)
    if op == "sel":
        return np.where(operands[0] > 0, operands[1], operands[2]).astype(np.float32)
    raise SimulationError(f"unknown vector op {op}")  # pragma: no cover
