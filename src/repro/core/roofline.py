"""The vector-length-aware roofline model (paper §5.1, Fig. 7, Eq. 2-4).

Three ceilings bound the attainable performance ``AP_l(<OI>)`` of a phase
running on ``l`` lanes:

* **computation**:  ``FP_peak(l) = peak_flops_per_lane * l``  (scales with l)
* **SIMD issue bandwidth**:  ``issue_bytes_per_lane * l * <OI>.issue``
  (Eq. 2 — the ld/st data-path width scales with l)
* **memory bandwidth**:  ``mem_bandwidth * <OI>.mem``  (independent of l)

and Eq. 4 takes their minimum.  Units are *flops per cycle* with the
paper's per-32-bit-lane flop accounting; multiply by the clock to get
GFLOP/s (Table 5 uses 2 GHz).

Note on calibration: the paper's Eq. 2 (``2 * VL * 16`` bytes/cycle, VL in
128-bit lanes) is mutually inconsistent with its own Table 5, which implies
an *effective* issue bandwidth of 4 bytes/cycle per 32-bit lane — the value
that also emerges mechanically in our simulator from the in-flight-window /
memory-latency product.  We therefore default ``issue_bytes_per_lane`` to
4.0, which reproduces Table 5 exactly (see
``benchmarks/test_table5_roofline.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import MachineConfig
from repro.common.errors import ConfigurationError
from repro.isa.registers import OIValue


#: Default hierarchical bandwidth ceilings (B/cycle) by memory level,
#: matching Table 4: a per-lane-ported Vec Cache, a 64 B/cycle unified L2
#: and a 32 B/cycle DRAM channel.
DEFAULT_BANDWIDTHS = {"vec_cache": 1024.0, "l2": 64.0, "dram": 32.0}


@dataclass(frozen=True)
class RooflineModel:
    """Attainable-performance model for one lane-count choice.

    The memory ceiling is *hierarchical* (§5.1): each ``OIValue`` carries
    the residency level of its phase's footprint, selecting which level's
    bandwidth bounds it.
    """

    peak_flops_per_lane: float = 1.0  # FP peak slope (flops/cycle/lane)
    issue_bytes_per_lane: float = 4.0  # effective SIMD issue BW slope (B/cycle/lane)
    mem_bandwidths: Tuple[Tuple[str, float], ...] = tuple(
        sorted(DEFAULT_BANDWIDTHS.items())
    )
    max_lanes: int = 32

    def __post_init__(self) -> None:
        bandwidths = dict(self.mem_bandwidths)
        if min(self.peak_flops_per_lane, self.issue_bytes_per_lane) <= 0:
            raise ConfigurationError("roofline ceilings must be positive")
        if "dram" not in bandwidths or any(bw <= 0 for bw in bandwidths.values()):
            raise ConfigurationError("need positive bandwidths incl. 'dram'")
        if self.max_lanes < 1:
            raise ConfigurationError("max_lanes must be positive")

    @property
    def mem_bandwidth(self) -> float:
        """The DRAM (streaming) bandwidth ceiling in B/cycle."""
        return dict(self.mem_bandwidths)["dram"]

    def bandwidth_for(self, level: str) -> float:
        """Bandwidth ceiling (B/cycle) of ``level``.

        Raises :class:`ConfigurationError` on an unknown residency level —
        a silent DRAM fallback would hand a typo'd level a plausible but
        wrong memory ceiling (``OIValue`` validates levels at construction,
        so this only fires for levels built outside the ISA layer).
        """
        bandwidths = dict(self.mem_bandwidths)
        try:
            return bandwidths[level]
        except KeyError:
            raise ConfigurationError(
                f"unknown residency level {level!r}; "
                f"expected one of {sorted(bandwidths)}"
            ) from None

    @classmethod
    def from_config(
        cls,
        config: MachineConfig,
        issue_bytes_per_lane: float = 4.0,
    ) -> "RooflineModel":
        """Build the model the LaneMgr uses for ``config``."""
        bandwidths = {
            "vec_cache": float(config.memory.vec_cache.bytes_per_cycle),
            "l2": float(config.memory.l2.bytes_per_cycle),
            "dram": float(config.memory.dram_bytes_per_cycle),
        }
        return cls(
            peak_flops_per_lane=1.0,
            issue_bytes_per_lane=issue_bytes_per_lane,
            mem_bandwidths=tuple(sorted(bandwidths.items())),
            max_lanes=config.vector.total_lanes,
        )

    # --- the three ceilings (flops/cycle) ---------------------------------

    def fp_peak(self, lanes: int) -> float:
        """Computation ceiling at ``lanes`` lanes."""
        return self.peak_flops_per_lane * lanes

    def issue_bound(self, lanes: int, oi: OIValue) -> float:
        """SIMD-issue-bandwidth ceiling (Eq. 2 folded into Eq. 4)."""
        return self.issue_bytes_per_lane * lanes * oi.issue

    def mem_bound(self, oi: OIValue) -> float:
        """Memory-bandwidth ceiling (lane-count independent).

        Uses the bandwidth of the level the phase's footprint resides in
        (the compiler's hint carried in ``<OI>``).
        """
        return self.bandwidth_for(oi.level) * oi.mem

    # --- Eq. 3 / Eq. 4 -----------------------------------------------------

    def attainable(self, lanes: int, oi: OIValue) -> float:
        """``AP_l(<OI>)`` — Eq. 4: the minimum of the three ceilings."""
        if lanes <= 0 or oi.is_phase_end:
            return 0.0
        return min(self.fp_peak(lanes), self.issue_bound(lanes, oi), self.mem_bound(oi))

    def net_gain(self, lanes: int, oi: OIValue) -> float:
        """Eq. 3: performance gained by growing from ``lanes`` to ``lanes+1``."""
        return self.attainable(lanes + 1, oi) - self.attainable(lanes, oi)

    def saturation_lanes(self, oi: OIValue, epsilon: float = 1e-9) -> int:
        """Smallest lane count beyond which Eq. 3 yields no gain."""
        if oi.is_phase_end:
            return 0
        lanes = 1
        while lanes < self.max_lanes and self.net_gain(lanes, oi) > epsilon:
            lanes += 1
        return lanes

    def attainable_gflops(self, lanes: int, oi: OIValue, frequency_ghz: float = 2.0) -> float:
        """Attainable performance in GFLOP/s (Table 5's units)."""
        return self.attainable(lanes, oi) * frequency_ghz

    def table_rows(
        self, oi: OIValue, lane_choices: Sequence[int], frequency_ghz: float = 2.0
    ) -> List[Dict[str, float]]:
        """The per-VL ceiling/performance rows of Table 5."""
        rows = []
        for lanes in lane_choices:
            rows.append(
                {
                    "vl": lanes,
                    "simd_issue_bound": self.issue_bound(lanes, oi) * frequency_ghz,
                    "mem_bound": self.mem_bound(oi) * frequency_ghz,
                    "comp_bound": self.fp_peak(lanes) * frequency_ghz,
                    "performance": self.attainable_gflops(lanes, oi, frequency_ghz),
                }
            )
        return rows
